#!/usr/bin/env python3
"""Quickstart: compile an annotated task program and run it on the LEGaTO stack.

The example builds the default LEGaTO deployment (a small RECS|BOX population
with CPU, GPU and FPGA microservers), compiles a five-kernel task program
written in the pragma-annotated front-end language, runs it under the
energy-aware OmpSs-like runtime, and prints where each task ran and what it
cost -- the "single programming model, many devices" workflow of the paper's
Fig. 2.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import LegatoConfig, LegatoSystem
from repro.runtime.ompss import SchedulingPolicy

PROGRAM = """
// Smart-home-style analytics pipeline expressed as LEGaTO tasks.
#pragma legato task out(frames) workload(scalar) gops(8)
kernel capture

#pragma legato task in(frames) out(objects) workload(dnn_inference) gops(600) memory(2.0)
kernel detect_objects

#pragma legato task in(frames) out(transcript) workload(streaming) gops(120)
kernel transcribe_audio

#pragma legato task in(objects, transcript) out(decision) workload(scalar) gops(4) critical
kernel decide

#pragma legato task in(decision) out(audit_log) workload(crypto) gops(2) secure
kernel audit
"""


def main() -> None:
    system = LegatoSystem(LegatoConfig.default())

    print("=== LEGaTO deployment ===")
    for key, value in system.describe().items():
        print(f"  {key}: {value}")

    print("\n=== Compilation ===")
    compiled = system.compile(PROGRAM)
    for key, value in compiled.report().items():
        print(f"  {key}: {value}")

    print("\n=== Execution (energy-aware scheduling) ===")
    trace = system.run_tasks(compiled.lowered.tasks)
    for execution in trace.executions:
        print(
            f"  {execution.task.name:<20s} -> {execution.device_kind:<8s} "
            f"({execution.device_name})  {execution.duration_s * 1e3:7.2f} ms  "
            f"{execution.energy_j:8.2f} J"
        )
    print(f"  makespan: {trace.makespan_s * 1e3:.2f} ms, energy: {trace.total_energy_j:.2f} J")

    print("\n=== Same program, performance-only baseline ===")
    baseline = LegatoSystem(LegatoConfig.default().as_baseline())
    baseline_trace = baseline.run_tasks(baseline.compile(PROGRAM).lowered.tasks)
    print(
        f"  baseline energy: {baseline_trace.total_energy_j:.2f} J  "
        f"(LEGaTO saves {baseline_trace.total_energy_j / trace.total_energy_j:.1f}x)"
    )

    print("\n=== Project-goal dashboard (reference ML workload) ===")
    for row in system.evaluate_goals(num_batches=3).as_rows():
        print(
            f"  {row['dimension']:<13s} target {row['target_x']:>4.0f}x   "
            f"achieved {row['achieved_x']:>5.1f}x   met: {row['met']}"
        )


if __name__ == "__main__":
    main()
