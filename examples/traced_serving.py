#!/usr/bin/env python3
"""Traced serving demo: where did each request's latency go?

Serves a two-tenant workload on a deployment with request-scoped tracing
enabled (``TelemetrySpec(enabled=True, tracing=True)``) and then reads
the trace three ways:

1. the per-stage latency breakdown with critical-path attribution
   (``report.trace_summary()``) -- which seam of
   gateway -> batcher -> scheduler -> node the latency actually sits in;
2. the dashboard tick stream (``deployment.serve_iter``), where each
   window now counts the spans that ended inside it per stage;
3. a few raw spans of the slowest completed request, following the
   ``request`` root to its linked ``task`` trace.

Run with:  PYTHONPATH=src python examples/traced_serving.py
"""

from __future__ import annotations

from repro import LegatoSystem, ServingWorkload
from repro.api import DeploymentSpec, ServingSpec, TelemetrySpec, TopologySpec
from repro.serving import Tenant


def main() -> None:
    tenants = [
        Tenant(name="acme", rate_limit_rps=25.0, burst=25, energy_weight=0.2,
               latency_slo_s=120.0),
        Tenant(name="globex", rate_limit_rps=25.0, burst=25, energy_weight=0.8),
    ]
    mix = {
        "acme": {"ml_inference": 0.7, "smartmirror": 0.3},
        "globex": {"iot_gateway": 0.8, "ml_inference": 0.2},
    }
    workload = ServingWorkload.synthetic(
        tenants, mix, offered_rps=40.0, duration_s=30.0, seed=11
    )

    spec = DeploymentSpec(
        name="traced-demo",
        topology=TopologySpec(cluster_scale=4),
        serving=ServingSpec(max_batch_size=8, max_delay_s=2.0),
        telemetry=TelemetrySpec(enabled=True, tracing=True),
    )
    deployment = LegatoSystem().deploy(spec)
    report = deployment.serve(workload)
    print(f"=== {report.completed}/{report.offered} served, "
          f"{report.rejected} rejected, p99 {report.p99_latency_s:.1f} s ===\n")

    # 1. Per-stage breakdown: counts, p50/p99, critical-path shares.
    summary = report.trace_summary()
    print(summary.format())

    # 2. The tick stream now carries per-window span activity.
    print("\ndashboard ticks (spans ended per window):")
    for tick in deployment.serve_iter(workload, tick_s=10.0):
        stages = ", ".join(
            f"{name}={count}" for name, count in sorted((tick.stage_spans or {}).items())
        )
        print(f"  t=[{tick.start_s:5.1f}, {tick.end_s:5.1f})  "
              f"completed={tick.completed:<4d} {stages}")

    # 3. Follow the slowest completed request through its spans.
    report = deployment.last_report
    roots = [
        span for span in report.trace_spans
        if span.name == "request" and span.annotations.get("verdict") == "completed"
    ]
    slowest = max(roots, key=lambda span: span.duration_s)
    linked = {slowest.trace_id, slowest.annotations.get("task_id")}
    print(f"\nslowest completed request {slowest.trace_id!r} "
          f"({slowest.duration_s:.2f} s end to end):")
    for span in report.trace_spans:
        if span.trace_id in linked and span.ended:
            notes = {k: v for k, v in span.annotations.items()
                     if k in ("node", "verdict", "requeues", "batch_id")}
            print(f"  {span.name:<20s} [{span.start_s:7.2f} .. {span.end_s:7.2f}] "
                  f"{span.duration_s:6.2f} s  {notes}")


if __name__ == "__main__":
    main()
