#!/usr/bin/env python3
"""Middleware demo (paper Section II.B): firmware management + IaaS on a RECS|BOX.

Populates a RECS|BOX, powers the microservers on through the embedded
management firmware, polls their sensors over the management network, then
uses the OpenStack-like IaaS layer to create tenant projects with quotas and
to schedule instances (including accelerator flavours) onto the managed
nodes.  Finally a node failure is injected via missed heartbeats and the
firmware flags it.

Run with:  python examples/middleware_iaas.py
"""

from __future__ import annotations

from repro.hardware.recsbox import RecsBox, RecsBoxConfig
from repro.middleware import IaasManager, ManagementController, NodePowerState, Quota


def main() -> None:
    box = RecsBox.from_config(RecsBoxConfig.full_rack(replication=1))
    firmware = ManagementController(box)

    print(f"=== RECS|BOX {box.name}: {box.microserver_count} microservers ===")
    print(f"  inventory: {box.inventory()}")

    print("\n=== Firmware: power sequencing and sensor poll ===")
    firmware.power_on_all()
    print(f"  powered on: {len(firmware.nodes_in_state(NodePowerState.ON))} nodes")
    readings = firmware.poll_sensors(time_s=1.0, utilisations={})
    hottest = max(readings, key=lambda r: r.temperature_c)
    print(f"  sensor poll: {len(readings)} readings, hottest node {hottest.node_id} "
          f"at {hottest.temperature_c:.1f} C / {hottest.power_w:.1f} W")
    print(f"  management-network messages so far: {firmware.management_net.stats.messages}")

    print("\n=== IaaS: projects, quotas and instance scheduling ===")
    iaas = IaasManager(box, firmware=firmware)
    iaas.create_project("analytics", quota=Quota(vcpus=32, memory_gib=64.0, instances=10))
    iaas.create_project("edge-ml", quota=Quota(vcpus=16, memory_gib=32.0, instances=10))

    placements = []
    for project, flavor in [
        ("analytics", "m1.large"),
        ("analytics", "m1.small"),
        ("edge-ml", "g1.gpu"),
        ("edge-ml", "f1.fpga"),
        ("edge-ml", "m1.tiny"),
    ]:
        instance = iaas.spawn(project, flavor)
        placements.append(instance)
        print(f"  {project:<10s} {flavor:<9s} -> {instance.node_id}")

    print("\n  host vCPU utilisation:")
    for node, utilisation in sorted(iaas.host_utilisation().items()):
        if utilisation > 0:
            print(f"    {node:<40s} {100 * utilisation:5.1f} %")

    print("\n=== Failure handling: a node stops answering heartbeats ===")
    victim = placements[0].node_id
    failed = []
    for round_index in range(3):
        responding = [n for n in firmware.nodes_in_state(NodePowerState.ON) if n != victim]
        failed = firmware.heartbeat(float(round_index + 2), responding=responding)
    print(f"  firmware declared failed: {failed}")
    print(f"  event log for {victim}: {firmware.events_for(victim)}")


if __name__ == "__main__":
    main()
