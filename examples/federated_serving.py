#!/usr/bin/env python3
"""Federated serving demo: one spec, a sharded fleet, regional pricing.

Three tenants share a 4-shard federation (16 nodes total): a
latency-sensitive tenant, an energy-frugal tenant pinned by contract to
the cheap hydro-powered eu-north region, and a bursty batch tenant.
Requests are routed in two levels -- a cheap aggregate shard pick
(free CPU/memory, thermal headroom, energy price), then HEATS node
placement inside the chosen shard -- while tenant affinity keeps each
tenant's traffic on one shard so the per-shard prediction-score caches
stay hot.

The whole fleet is declared as one ``DeploymentSpec`` (the ``federated``
preset, re-batched) and the run streams through
``Deployment.serve_iter`` -- the per-tick report stream a live dashboard
would consume.

Run with:  PYTHONPATH=src python examples/federated_serving.py
"""

from __future__ import annotations

from dataclasses import replace

from repro import LegatoSystem, ServingWorkload
from repro.api import DeploymentSpec, ServingSpec
from repro.serving import Tenant


def main() -> None:
    tenants = [
        Tenant(name="video-analytics", rate_limit_rps=40.0, burst=40,
               energy_weight=0.1, latency_slo_s=60.0),
        Tenant(name="sensor-fleet", rate_limit_rps=15.0, burst=15,
               energy_weight=0.9, region="eu-north"),
        Tenant(name="batch-reports", rate_limit_rps=25.0, burst=50,
               energy_weight=0.6),
    ]
    workload = ServingWorkload.synthetic(
        tenants,
        endpoint_mix={
            "video-analytics": {"smartmirror": 0.6, "ml_inference": 0.4},
            "sensor-fleet": {"iot_gateway": 0.8, "ml_inference": 0.2},
            "batch-reports": {"ml_inference": 0.5, "iot_gateway": 0.5},
        },
        offered_rps=110.0,
        duration_s=40.0,
        seed=41,
    )

    spec = replace(
        DeploymentSpec.preset("federated"),
        serving=ServingSpec(max_batch_size=8, max_delay_s=1.5),
    )
    deployment = LegatoSystem().deploy(spec)
    topology = deployment.snapshot()["topology"]
    print(f"=== {len(workload.requests)} requests from {len(tenants)} tenants "
          f"across {len(topology['shards'])} shards ===")
    for shard in topology["shards"]:
        print(f"  {shard['name']:<22s} {shard['nodes']} nodes, "
              f"{shard['energy_price_per_kwh']:.2f} $/kWh "
              f"(profiling seed {shard['seed']})")

    print("\ndashboard stream (10 s ticks):")
    print(f"  {'window':>12s} {'arrived':>8s} {'done':>6s} {'total':>6s} "
          f"{'p95 (s)':>8s}")
    for tick in deployment.serve_iter(workload, tick_s=10.0):
        start, end = tick.start_s, tick.end_s
        print(f"  {start:5.0f}-{end:<5.0f}s {tick.arrivals:>8d} "
              f"{tick.completed:>6d} {tick.cumulative_completed:>6d} "
              f"{tick.p95_latency_s:>8.2f}")

    report = deployment.last_report
    print(f"\noverall: {report.completed}/{report.offered} served, "
          f"{report.ops_per_sec:.1f} ops/sec, p99 {report.p99_latency_s:.1f} s, "
          f"{report.energy_per_request_j:.2f} J/request")

    stats = report.federation_stats
    print("\nrouting:")
    for shard_name, count in sorted(stats.placements_by_shard.items()):
        print(f"  {shard_name:<22s} {count:>4d} batch placements")
    print(f"  affinity hit rate      {stats.affinity_hit_rate:.0%} "
          f"({stats.affinity_hits} hits / {stats.affinity_misses} misses)")
    print(f"  region-seeded tenants  {stats.region_seeded}")
    print(f"  cross-shard migrations {stats.cross_shard_migrations}")

    federation = deployment.backend.federation
    print(f"\n{'tenant':<16s} {'shard pin':>22s} {'served':>7s} "
          f"{'p99 (s)':>8s} {'J/req':>7s}")
    for name, tenant_report in report.tenant_reports.items():
        pin = federation.scheduler.affinity_shard(name) or "-"
        print(f"{name:<16s} {pin:>22s} {tenant_report.completed:>7d} "
              f"{tenant_report.p99_latency_s:>8.2f} "
              f"{tenant_report.energy_per_request_j:>7.2f}")

    print(
        "\nThe eco tenant lands on its contracted cheap-energy region, the "
        "others spread by load and price; every tenant sticks to one shard "
        "so its score cache stays hot."
    )


if __name__ == "__main__":
    main()
