#!/usr/bin/env python3
"""Chaos scenario demo: flash crowd + mid-run shard partition, live.

Builds a :class:`~repro.scenarios.ScenarioSpec` — a quiet Poisson floor
plus a flash crowd, with a shard partition opening mid-spike and healing
before the end of the run — and serves it on a traced federated
deployment inside a :func:`~repro.scenarios.chaos_session`, so the
:class:`~repro.telemetry.LiveConsole` frames show the crowd arriving,
a shard draining out of routing, and the heal.  ``chaos.<event>`` spans
ride the same trace stream as everything else.

Runs headlessly and deterministically (fixed spec, fixed seeds).  When
``LIVE_CONSOLE_HTML`` names a path, a self-contained HTML snapshot of
the frame stream is written there, as in ``live_console.py``.

Run with:  PYTHONPATH=src python examples/chaos_scenario.py
"""

from __future__ import annotations

import os
from dataclasses import replace
from pathlib import Path

from repro.api import Deployment, DeploymentSpec
from repro.scenarios import (
    ArrivalSpec,
    ChaosEventSpec,
    ChaosSchedule,
    ParetoSpec,
    ScenarioSpec,
    TenantTrafficSpec,
    build_workload,
    chaos_session,
    conservation_violations,
    ScenarioOutcome,
)
from repro.telemetry import LiveConsole, render_ansi


def build_spec() -> ScenarioSpec:
    """A flash crowd with a shard partition opening mid-spike."""
    return ScenarioSpec(
        name="flash-crowd-partition",
        duration_s=60.0,
        traffic=(
            TenantTrafficSpec(
                name="crowd",
                arrival=ArrivalSpec(kind="flash_crowd", rate_rps=3.0,
                                    spike_rps=18.0, spike_start_s=15.0,
                                    spike_duration_s=15.0),
                endpoint_mix=(("ml_inference", 0.7), ("iot_gateway", 0.3)),
            ),
            TenantTrafficSpec(
                name="steady",
                arrival=ArrivalSpec(kind="poisson", rate_rps=2.0),
            ),
        ),
        chaos=ChaosSchedule(events=(
            ChaosEventSpec(kind="partition", at_s=20.0, duration_s=20.0),
        )),
        sizes=ParetoSpec(alpha=1.6, lower=0.5, upper=3.0),
    )


def main() -> None:
    spec = build_spec()
    workload = build_workload(spec)

    deploy_spec = DeploymentSpec.preset("federated")
    deploy_spec = replace(
        deploy_spec,
        telemetry=replace(deploy_spec.telemetry, enabled=True, tracing=True),
        scheduler=replace(deploy_spec.scheduler, rescheduling_interval_s=5.0),
    )
    deployment = Deployment.from_spec(deploy_spec)

    console = LiveConsole(deployment, tick_s=5.0)
    with chaos_session(deployment, spec) as engine:
        frames = console.run(workload)
    for frame in frames:
        print(render_ansi(frame))

    report = deployment.last_report
    outcome = ScenarioOutcome(
        spec=spec, workload=workload, report=report, chaos=engine.report()
    )
    violations = conservation_violations(outcome)

    print(f"\nscenario '{spec.name}': {len(frames)} frames; served "
          f"{report.completed}/{report.offered} "
          f"(p99 {report.p99_latency_s:.1f} s)")
    for record in outcome.chaos.records:
        print(f"  chaos @ {record.time_s:5.1f}s  {record.kind:<16} "
              f"{record.status:<10} {record.target or '-'}")
    print("invariants: " + ("ok" if not violations else "; ".join(violations)))

    html_path = os.environ.get("LIVE_CONSOLE_HTML")
    if html_path:
        html = console.html(frames, title="chaos scenario snapshot")
        Path(html_path).write_text(html)
        print(f"HTML snapshot -> {html_path} ({len(html)} bytes)")
    deployment.close()


if __name__ == "__main__":
    main()
