#!/usr/bin/env python3
"""Live console demo: per-shard tiles over a federated serving run.

Serves a two-tenant workload on a traced federated deployment and
renders the :class:`~repro.telemetry.console.LiveConsole` frame stream
(one frame per ``serve_iter`` tick) as ANSI dashboard blocks -- per-shard
load, queue depth, SLA hit rate, energy price, and autoscale actions.
The same frame model feeds a ``JsonlExporter`` event stream, and --- when
``LIVE_CONSOLE_HTML`` names a path --- a self-contained single-file HTML
snapshot (inline JS frame scrubber, no external assets) is written there,
which is what CI uploads as an artifact.

Runs headlessly with a fixed tick count: the workload duration and
``tick_s`` are constants, so the frame stream is deterministic.

Run with:  PYTHONPATH=src python examples/live_console.py
"""

from __future__ import annotations

import os
from dataclasses import replace
from pathlib import Path

from repro import ServingWorkload
from repro.api import Deployment, DeploymentSpec
from repro.serving import Tenant
from repro.telemetry import JsonlExporter, LiveConsole, render_ansi


def main() -> None:
    tenants = [
        Tenant(name="dashboards", rate_limit_rps=120.0, burst=60,
               energy_weight=0.2, latency_slo_s=120.0),
        Tenant(name="sensors", rate_limit_rps=120.0, burst=60,
               energy_weight=0.8, region="eu-north"),
    ]
    mix = {
        "dashboards": {"ml_inference": 0.7, "smartmirror": 0.3},
        "sensors": {"iot_gateway": 0.8, "ml_inference": 0.2},
    }
    workload = ServingWorkload.synthetic(
        tenants, mix, offered_rps=30.0, duration_s=30.0, seed=17
    )

    spec = DeploymentSpec.preset("federated")
    spec = replace(
        spec, telemetry=replace(spec.telemetry, enabled=True, tracing=True)
    )
    deployment = Deployment.from_spec(spec)

    feed = JsonlExporter()
    console = LiveConsole(deployment, tick_s=5.0, exporter=feed)
    frames = console.run(workload)
    for frame in frames:
        print(render_ansi(frame))

    report = deployment.last_report
    print(f"\n{len(frames)} frames rendered, {len(feed.lines)} feed events; "
          f"served {report.completed}/{report.offered} "
          f"(p99 {report.p99_latency_s:.1f} s)")

    html_path = os.environ.get("LIVE_CONSOLE_HTML")
    if html_path:
        html = console.html(frames, title="live console snapshot")
        Path(html_path).write_text(html)
        print(f"HTML snapshot -> {html_path} ({len(html)} bytes)")
    deployment.close()


if __name__ == "__main__":
    main()
