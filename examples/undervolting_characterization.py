#!/usr/bin/env python3
"""FPGA undervolting characterisation (paper Section III, Fig. 5).

Sweeps VCCBRAM from the nominal 1.0 V down to the crash voltage on all four
calibrated platforms (VC707, KC705-A, KC705-B, ZC702), prints the guardband
/ critical / crash regions, the power saving and the fault rate, and then
shows how an undervolted ML accelerator keeps its accuracy below the
guardband (Section III.C).

Run with:  python examples/undervolting_characterization.py
"""

from __future__ import annotations

from repro.undervolting import UndervoltedInferenceStudy, sweep_platform
from repro.undervolting.platforms import PLATFORMS


def main() -> None:
    print("=== Voltage sweep (10 mV steps) ===")
    for name in sorted(PLATFORMS):
        result = sweep_platform(name, step_v=0.01)
        print(
            f"  {name:<8s} Vmin={result.vmin:.2f} V  Vcrash={result.vcrash:.2f} V  "
            f"fault rate at Vcrash={result.max_faults_per_mbit:6.0f} faults/Mbit  "
            f"max BRAM power saving={100 * result.max_power_saving_fraction:4.1f} %"
        )

    print("\n=== VC707 detail (every 30 mV) ===")
    detail = sweep_platform("VC707", step_v=0.03)
    print(f"  {'V':>5s} {'region':>10s} {'faults/Mbit':>12s} {'saving %':>9s}")
    for point in detail.points:
        faults = "-" if point.region.value == "crash" else f"{point.faults_per_mbit:.1f}"
        print(
            f"  {point.voltage_v:5.2f} {point.region.value:>10s} {faults:>12s} "
            f"{100 * point.power_saving_fraction:9.1f}"
        )

    print("\n=== Undervolted DNN inference on VC707 (Section III.C) ===")
    study = UndervoltedInferenceStudy(platform="VC707")
    print(f"  baseline accuracy: {study.baseline_accuracy:.3f}")
    for point in study.sweep(step_v=0.04, mitigate=True):
        print(
            f"  V={point.voltage_v:.2f}  region={point.region.value:<9s} "
            f"accuracy={point.accuracy:.3f}  BRAM power saving={100 * point.power_saving_fraction:4.1f} %"
        )
    recommended = study.recommended_operating_point(max_accuracy_drop=0.01)
    print(
        f"\n  recommended operating point: {recommended.voltage_v:.2f} V "
        f"({100 * recommended.power_saving_fraction:.0f} % BRAM power saving, "
        f"accuracy {recommended.accuracy:.3f})"
    )


if __name__ == "__main__":
    main()
