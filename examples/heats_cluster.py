#!/usr/bin/env python3
"""HEATS demo (paper Section V): energy/performance-aware cluster scheduling.

Builds a heterogeneous cluster (x86, ARM64, GPU-SoC and low-power ARM
nodes), runs the HEATS learning phase (probing + model fitting), then
replays the same synthetic task stream under HEATS at three
energy/performance weights and under three baseline schedulers, printing
the energy / turnaround trade-off each policy achieves.

Run with:  python examples/heats_cluster.py
"""

from __future__ import annotations

from repro.scheduler import (
    Cluster,
    ClusterSimulator,
    EnergyGreedyScheduler,
    HeatsScheduler,
    PerformanceBestFitScheduler,
    RoundRobinScheduler,
    WorkloadGenerator,
)
from repro.scheduler.modeling import ProfilingCampaign
from repro.scheduler.simulation import run_policy_comparison
from repro.scheduler.workload import TaskRequest

NUM_TASKS = 80


def reweight(requests, weight):
    return [
        TaskRequest(
            task_id=r.task_id,
            arrival_s=r.arrival_s,
            workload=r.workload,
            gops=r.gops,
            cores=r.cores,
            memory_gib=r.memory_gib,
            energy_weight=weight,
        )
        for r in requests
    ]


def main() -> None:
    def fresh_cluster() -> Cluster:
        return Cluster.heats_testbed(scale=2)

    print("=== Learning phase: probing every node ===")
    campaign = ProfilingCampaign(fresh_cluster(), noise_fraction=0.03, seed=21).run()
    models = campaign.fit()
    errors = campaign.prediction_error(models)
    print(f"  probes: {len(campaign.observations)}, "
          f"mean time-model error: {100 * sum(errors.values()) / len(errors):.1f} %")

    requests = WorkloadGenerator(seed=21, mean_interarrival_s=10.0).generate(NUM_TASKS)

    print(f"\n=== Replaying {NUM_TASKS} tasks under each policy ===")
    print(f"{'policy':<22s} {'task energy (kJ)':>17s} {'total energy (kJ)':>18s} "
          f"{'mean turnaround (s)':>20s} {'migrations':>11s}")

    for weight in (0.0, 0.5, 1.0):
        result = ClusterSimulator(fresh_cluster(), HeatsScheduler(models)).run(
            reweight(requests, weight)
        )
        print(
            f"{'heats(w=%.1f)' % weight:<22s} {result.task_energy_j / 1e3:17.1f} "
            f"{result.total_energy_j / 1e3:18.1f} {result.mean_turnaround_s:20.1f} "
            f"{result.num_migrations:11d}"
        )

    baselines = run_policy_comparison(
        fresh_cluster,
        {
            "round_robin": lambda c: RoundRobinScheduler(models),
            "performance_best_fit": lambda c: PerformanceBestFitScheduler(models),
            "energy_greedy": lambda c: EnergyGreedyScheduler(models),
        },
        reweight(requests, 0.5),
    )
    for name, result in baselines.items():
        print(
            f"{name:<22s} {result.task_energy_j / 1e3:17.1f} "
            f"{result.total_energy_j / 1e3:18.1f} {result.mean_turnaround_s:20.1f} "
            f"{result.num_migrations:11d}"
        )

    print(
        "\nHEATS with an energy-leaning weight places work on the most efficient "
        "nodes (low task energy); with a performance-leaning weight it matches the "
        "performance-only scheduler; the weight is the customer-facing trade-off knob."
    )


if __name__ == "__main__":
    main()
