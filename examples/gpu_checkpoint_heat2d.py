#!/usr/bin/env python3
"""Transparent GPU/CPU checkpointing of Heat2D (paper Section IV, Fig. 6).

Part 1 runs a small, fully materialised Heat2D simulation with UVM-resident
grids, injects a failure mid-run, and shows that FTI recovery restores the
protected data (the Listing-1 workflow end to end).

Part 2 regenerates the Fig. 6 experiment at the paper's problem sizes
(16/32 GiB per rank, 4 ranks per node, 1-16 nodes) comparing the initial
blocking implementation with the optimised asynchronous one.

Run with:  python examples/gpu_checkpoint_heat2d.py
"""

from __future__ import annotations

from repro.checkpoint import CheckpointStrategy
from repro.checkpoint.heat2d import Heat2dConfig, Heat2dSimulation, run_fig6_experiment
from repro.checkpoint.mtbf import CheckpointEfficiencyModel, sustainable_mtbf_ratio


def part1_failure_recovery() -> None:
    print("=== Part 1: Heat2D with failure injection and FTI recovery ===")
    config = Heat2dConfig(
        ranks=4,
        rows_per_rank=32,
        cols=32,
        iterations=40,
        snapshot_interval_iters=10,
        strategy=CheckpointStrategy.ASYNC,
    )
    simulation = Heat2dSimulation(config)
    result = simulation.run(inject_failure_at=25)
    print(f"  iterations run      : {result.iterations_run}")
    print(f"  checkpoints taken   : {result.checkpoints_taken}")
    print(f"  recoveries performed: {result.recoveries_performed}")
    print(f"  max ckpt overhead   : {result.max_checkpoint_overhead_s * 1e3:.3f} ms")
    print(f"  max recovery time   : {result.max_recovery_time_s * 1e3:.3f} ms")
    print(f"  final residual      : {result.final_residual:.4f}")


def part2_fig6() -> None:
    print("\n=== Part 2: Fig. 6 experiment (synthetic 16/32 GiB per rank) ===")
    points = run_fig6_experiment()
    print(f"  {'size':>12s} {'nodes':>6s} {'strategy':>9s} {'ckpt (s)':>9s} {'recover (s)':>12s}")
    for point in points:
        print(
            f"  {point.gib_per_rank:9.0f} GiB {point.nodes:6d} {point.strategy.value:>9s} "
            f"{point.checkpoint_time_s:9.1f} {point.recover_time_s:12.1f}"
        )

    initial = next(p for p in points if p.nodes == 1 and p.gib_per_rank == 16.0 and p.strategy is CheckpointStrategy.INITIAL)
    asynchronous = next(p for p in points if p.nodes == 1 and p.gib_per_rank == 16.0 and p.strategy is CheckpointStrategy.ASYNC)
    print(
        f"\n  async vs initial: checkpoints {initial.checkpoint_time_s / asynchronous.checkpoint_time_s:.1f}x "
        f"faster, recovery {initial.recover_time_s / asynchronous.recover_time_s:.1f}x faster "
        f"(paper: 12.05x and 5.13x)"
    )
    mtbf_factor = sustainable_mtbf_ratio(
        CheckpointEfficiencyModel(initial.checkpoint_time_s, initial.recover_time_s),
        CheckpointEfficiencyModel(asynchronous.checkpoint_time_s, asynchronous.recover_time_s),
        overhead_budget=0.05,
    )
    print(f"  sustainable-MTBF reduction at 5 % overhead: {mtbf_factor:.1f}x (paper estimate: 7x)")


if __name__ == "__main__":
    part1_failure_recovery()
    part2_fig6()
