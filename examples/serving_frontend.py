#!/usr/bin/env python3
"""Serving front-end demo: two tenants with different SLAs on one cluster.

A latency-sensitive tenant (energy weight 0.1, p99 SLO) and an
energy-frugal tenant (energy weight 0.9, tight rate limit) share the same
HEATS-scheduled cluster through the multi-tenant front-end: requests flow
through admission control (token buckets, bounded queues), are coalesced
into batches, placed by HEATS (with the prediction-score cache on the hot
path), and reported per tenant as p50/p95/p99 latency, throughput,
rejection rate, and energy per request.

The deployment is declared as a :class:`DeploymentSpec` and served
through a reusable :class:`Deployment` session: the cluster is profiled
once, then *two* workloads (the evening rush, then an overnight lull)
run against the same warm models and score cache -- the second serve
pays no cold start, which the session's telemetry counters prove.

Run with:  PYTHONPATH=src python examples/serving_frontend.py
"""

from __future__ import annotations

from repro import LegatoSystem, ServingWorkload
from repro.api import DeploymentSpec, ServingSpec, TopologySpec
from repro.serving import Tenant


def make_workload(offered_rps: float, seed: int) -> ServingWorkload:
    tenants = [
        Tenant(
            name="video-analytics",  # pays for performance, enforces a p99 SLO
            rate_limit_rps=40.0,
            burst=40,
            energy_weight=0.1,
            latency_slo_s=30.0,
        ),
        Tenant(
            name="sensor-fleet",  # trades latency for energy, tightly rate-limited
            rate_limit_rps=8.0,
            burst=8,
            energy_weight=0.9,
        ),
    ]
    return ServingWorkload.synthetic(
        tenants,
        endpoint_mix={
            "video-analytics": {"smartmirror": 0.6, "ml_inference": 0.4},
            "sensor-fleet": {"iot_gateway": 0.7, "ml_inference": 0.3},
        },
        offered_rps=offered_rps,
        duration_s=45.0,
        seed=seed,
    )


def print_report(report) -> None:
    print(f"overall: {report.completed}/{report.offered} served in "
          f"{report.batches} batches, {report.ops_per_sec:.1f} ops/sec, "
          f"p99 {report.p99_latency_s:.1f} s, "
          f"rejection rate {report.rejection_rate:.1%}, "
          f"{report.energy_per_request_j:.2f} J/request")
    if report.cache_stats is not None:
        print(f"score cache: {report.cache_stats.hits} hits / "
              f"{report.cache_stats.lookups} lookups "
              f"({report.cache_stats.hit_rate:.0%} hit rate)")

    print(f"\n{'tenant':<16s} {'served':>7s} {'reject':>7s} {'p50 (s)':>8s} "
          f"{'p95 (s)':>8s} {'p99 (s)':>8s} {'rps':>6s} {'J/req':>7s} {'SLO':>5s}")
    for name, tenant_report in report.tenant_reports.items():
        print(
            f"{name:<16s} {tenant_report.completed:>7d} "
            f"{tenant_report.rejection_rate:>6.1%} "
            f"{tenant_report.p50_latency_s:>8.2f} {tenant_report.p95_latency_s:>8.2f} "
            f"{tenant_report.p99_latency_s:>8.2f} {tenant_report.throughput_rps:>6.2f} "
            f"{tenant_report.energy_per_request_j:>7.2f} "
            f"{'met' if tenant_report.slo_met else 'MISS':>5s}"
        )


def main() -> None:
    spec = DeploymentSpec(
        name="frontend-demo",
        topology=TopologySpec(cluster_scale=2),
        serving=ServingSpec(max_batch_size=8, max_delay_s=1.5),
    )
    print("=== Deployment spec (overrides vs defaults) ===")
    for path, change in spec.diff().items():
        print(f"  {path}: {change['baseline']} -> {change['value']}")

    with LegatoSystem().deploy(spec) as deployment:
        rush = make_workload(offered_rps=30.0, seed=33)
        print(f"\n=== Evening rush: {len(rush.requests)} requests ===")
        print_report(deployment.serve(rush))

        lull = make_workload(offered_rps=6.0, seed=34)
        print(f"\n=== Overnight lull: {len(lull.requests)} requests "
              f"(same warm deployment) ===")
        print_report(deployment.serve(lull))

        metrics = deployment.metrics()
        print(f"\nsession: {metrics.counter('deployment.serve_runs'):.0f} serves, "
              f"{metrics.counter('deployment.profiling_campaigns'):.0f} profiling "
              f"campaign(s) -- the second serve reused the warm models")

    print(
        "\nThe performance tenant gets fast nodes and low latency; the eco "
        "tenant's energy-leaning weight routes its batches to efficient nodes "
        "(lower J/request, higher latency) and its token bucket sheds the "
        "traffic burst above 8 rps."
    )


if __name__ == "__main__":
    main()
