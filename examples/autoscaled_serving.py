#!/usr/bin/env python3
"""Autoscaled serving demo: a step load against an elastic deployment.

Two tenants offer a quiet baseline, then a 5x traffic spike, then quiet
again.  The backend starts as a single 4-node shard; the autoscale control
loop watches the telemetry bus (saturation, queueing delay, unplaced
attempts, forecast demand) and grows nodes/shards through the spike, then
drains the extra capacity away once the rush is over -- every scaling
decision is recorded and printed, along with the node-seconds the
elasticity saved over static peak provisioning.

The deployment is the ``autoscaled`` spec preset, re-batched; a second
(quiet) workload is then served on the *same* session to show the
elastic topology staying warm between runs.

Run with:  PYTHONPATH=src python examples/autoscaled_serving.py
"""

from __future__ import annotations

from dataclasses import replace

from repro import LegatoSystem, ServingWorkload
from repro.api import DeploymentSpec, ServingSpec
from repro.serving import Tenant


def step_load_workload(tenants) -> ServingWorkload:
    """Quiet -> spike -> quiet, stitched from three Poisson segments."""
    mix = {
        "dashboards": {"ml_inference": 0.6, "smartmirror": 0.4},
        "sensors": {"iot_gateway": 0.8, "ml_inference": 0.2},
    }
    segments = [
        (20.0, 0.0, 1),  # 20 s of quiet baseline
        (100.0, 20.0, 2),  # 20 s spike at 5x
        (20.0, 40.0, 3),  # 20 s of quiet tail
    ]
    requests = []
    for rps, offset, seed in segments:
        segment = ServingWorkload.synthetic(
            tenants, mix, offered_rps=rps, duration_s=20.0, seed=seed
        )
        requests.extend(
            replace(
                r,
                request_id=f"s{seed}-{r.request_id}",
                arrival_s=r.arrival_s + offset,
                deadline_s=r.deadline_s + offset if r.deadline_s is not None else None,
            )
            for r in segment.requests
        )
    requests.sort(key=lambda r: (r.arrival_s, r.request_id))
    return ServingWorkload(tenants=tuple(tenants), requests=tuple(requests))


def main() -> None:
    tenants = [
        Tenant(name="dashboards", rate_limit_rps=300.0, burst=150,
               energy_weight=0.2, latency_slo_s=120.0),
        Tenant(name="sensors", rate_limit_rps=300.0, burst=150,
               energy_weight=0.8, region="eu-north"),
    ]
    workload = step_load_workload(tenants)
    print(f"=== step load: {len(workload.requests)} requests "
          "(quiet / 5x spike / quiet) ===")

    spec = replace(
        DeploymentSpec.preset("autoscaled"),
        serving=ServingSpec(max_batch_size=8, max_delay_s=1.0),
    )
    deployment = LegatoSystem().deploy(spec)
    report = deployment.serve(workload)

    print(f"\nserved {report.completed}/{report.offered} "
          f"({report.ops_per_sec:.1f} ops/sec, p99 {report.p99_latency_s:.1f} s, "
          f"{report.dropped} dropped)")

    auto = report.autoscale_report
    print(f"\nelastic history ({auto.control_ticks} control ticks):")
    for decision in auto.decisions:
        print(f"  t={decision.time_s:6.1f}s  {decision.action.value:<12s} "
              f"{decision.target}  [{decision.reason}]")

    horizon = report.horizon_s
    static_node_seconds = auto.peak_nodes * horizon
    print(f"\nnode-seconds: {auto.node_seconds:.0f} elastic vs "
          f"{static_node_seconds:.0f} at static peak provisioning "
          f"({auto.peak_nodes} nodes x {horizon:.0f} s) -> "
          f"{100 * (1 - auto.node_seconds / static_node_seconds):.0f}% saved")
    print(f"node envelope: {auto.min_nodes} min / {auto.peak_nodes} peak / "
          f"{auto.final_nodes} final, {auto.final_shards} shard(s) at the end")

    # Same session, next workload: the (possibly grown) topology and every
    # learned model stay warm; only the per-run controller is fresh.
    quiet = ServingWorkload.synthetic(
        tenants,
        {"dashboards": {"ml_inference": 1.0}, "sensors": {"iot_gateway": 1.0}},
        offered_rps=15.0,
        duration_s=20.0,
        seed=9,
    )
    follow_up = deployment.serve(quiet)
    topology = deployment.snapshot()["topology"]
    print(f"\nfollow-up quiet run on the warm session: "
          f"{follow_up.completed}/{follow_up.offered} served on "
          f"{topology['total_nodes']} node(s) across "
          f"{len(topology['shards'])} shard(s); "
          f"{deployment.metrics().counter('deployment.profiling_campaigns'):.0f} "
          f"profiling campaign(s) total for the whole session")


if __name__ == "__main__":
    main()
