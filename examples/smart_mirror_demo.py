#!/usr/bin/env python3
"""Smart Mirror demo (paper Section VI): detection + tracking on the edge server.

The example runs the Smart Mirror pipeline -- synthetic scene, detector
suite, Kalman + Hungarian multi-object tracking -- on three hardware
compositions: the original two-GTX1080 workstation prototype (21 FPS at
~400 W) and two three-slot edge-server compositions, including the
optimised low-power target (10 FPS under 50 W).

Run with:  python examples/smart_mirror_demo.py
"""

from __future__ import annotations

from repro.usecases.smartmirror import PipelineConfiguration, SmartMirrorPipeline

FRAMES = 150


def main() -> None:
    configurations = [
        PipelineConfiguration.workstation_prototype(),
        PipelineConfiguration.edge_cpu_2gpu(),
        PipelineConfiguration.edge_low_power(),
    ]

    print(f"Running the Smart Mirror pipeline for {FRAMES} frames per composition...\n")
    print(
        f"{'composition':<24s} {'FPS':>6s} {'power(W)':>9s} {'J/frame':>8s} "
        f"{'MOTA':>6s} {'recall':>7s} {'ID switches':>12s}"
    )
    reports = []
    for configuration in configurations:
        pipeline = SmartMirrorPipeline(configuration)
        report = pipeline.run(frames=FRAMES)
        reports.append(report)
        print(
            f"{configuration.name:<24s} {report.fps:6.1f} {report.power_w:9.1f} "
            f"{report.energy_per_frame_j:8.2f} {report.tracking.mota:6.2f} "
            f"{report.tracking.recall:7.2f} {report.tracking.identity_switches:12d}"
        )

    workstation, _, edge = reports
    print(
        f"\nThe optimised edge composition is "
        f"{edge.fps_per_watt / workstation.fps_per_watt:.1f}x more power-efficient "
        f"(FPS per watt) than the workstation prototype, while keeping tracking quality."
    )
    print("\nPer-device utilisation on the low-power edge target:")
    for node, utilisation in edge.device_utilisation.items():
        print(f"  {node:<35s} {100 * utilisation:5.1f} % busy")


if __name__ == "__main__":
    main()
