"""Telemetry unit tests: instruments, registry, exporters."""

from __future__ import annotations

import pytest

from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    InMemoryExporter,
    MetricsRegistry,
    RingBuffer,
    TextExporter,
    export_text,
    render_text,
)


class TestRingBuffer:
    def test_partial_fill_keeps_insertion_order(self):
        ring = RingBuffer(4)
        for value in (1.0, 2.0, 3.0):
            ring.record(value)
        assert ring.values() == [1.0, 2.0, 3.0]
        assert len(ring) == 3

    def test_overwrites_oldest_when_full(self):
        ring = RingBuffer(3)
        for value in range(6):
            ring.record(float(value))
        assert ring.values() == [3.0, 4.0, 5.0]
        assert len(ring) == 3

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            RingBuffer(0)


class TestCounterGauge:
    def test_counter_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1.0)

    def test_gauge_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(4.0)
        gauge.add(-1.5)
        assert gauge.value == pytest.approx(2.5)


class TestHistogram:
    def test_lifetime_count_survives_window_eviction(self):
        histogram = Histogram("h", window=4)
        for value in range(10):
            histogram.record(float(value))
        assert histogram.count == 10
        assert histogram.total == pytest.approx(sum(range(10)))
        assert histogram.window_values() == [6.0, 7.0, 8.0, 9.0]

    def test_quantile_interpolates(self):
        histogram = Histogram("h", window=8)
        for value in (0.0, 10.0):
            histogram.record(value)
        assert histogram.quantile(0.5) == pytest.approx(5.0)
        assert histogram.quantile(0.0) == 0.0
        assert histogram.quantile(1.0) == 10.0

    def test_empty_rollups_are_zero(self):
        histogram = Histogram("h")
        assert histogram.quantile(0.99) == 0.0
        assert histogram.ewma() == 0.0
        assert histogram.window_mean() == 0.0

    def test_ewma_weighs_recent_samples(self):
        histogram = Histogram("h", window=16)
        for _ in range(8):
            histogram.record(0.0)
        for _ in range(8):
            histogram.record(10.0)
        assert histogram.ewma(alpha=0.5) > 9.0

    def test_validation(self):
        histogram = Histogram("h")
        with pytest.raises(ValueError):
            histogram.quantile(1.5)
        with pytest.raises(ValueError):
            histogram.ewma(alpha=0.0)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_name_collision_across_kinds_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_snapshot_is_decoupled_from_live_instruments(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests")
        counter.inc(3)
        snapshot = registry.snapshot()
        counter.inc(5)
        assert snapshot.counter("requests") == 3.0
        assert registry.snapshot().counter("requests") == 8.0
        assert snapshot.counter("missing", default=-1.0) == -1.0

    def test_snapshot_rolls_up_histograms(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency", window=8)
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.record(value)
        rolled = registry.snapshot().histograms["latency"]
        assert rolled.count == 4
        assert rolled.window_mean == pytest.approx(2.5)
        assert rolled.p50 == pytest.approx(2.5)

    def test_names_sorted_across_kinds(self):
        registry = MetricsRegistry()
        registry.histogram("b")
        registry.counter("c")
        registry.gauge("a")
        assert registry.names() == ["a", "b", "c"]


class TestExporters:
    def test_in_memory_exporter_keeps_history(self):
        registry = MetricsRegistry()
        exporter = InMemoryExporter()
        registry.counter("n").inc()
        exporter.export(registry.snapshot())
        registry.counter("n").inc()
        exporter.export(registry.snapshot())
        assert len(exporter.snapshots) == 2
        assert exporter.latest.counter("n") == 2.0

    def test_in_memory_exporter_empty_latest_raises(self):
        with pytest.raises(LookupError):
            InMemoryExporter().latest

    def test_text_exporter_renders_all_kinds(self):
        registry = MetricsRegistry()
        registry.counter("gateway.offered").inc(7)
        registry.gauge("queue.depth").set(3.0)
        registry.histogram("delay", window=4).record(1.5)
        text = export_text(registry)
        assert "gateway.offered" in text
        assert "counter" in text and "gauge" in text and "histogram" in text
        exporter = TextExporter()
        exporter.export(registry.snapshot())
        assert exporter.text == text

    def test_render_empty_snapshot(self):
        assert render_text(MetricsRegistry().snapshot()) == "(no metrics)"


class TestCounterValues:
    def test_counter_values_reads_totals_without_rollups(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.counter("b").inc(3)
        registry.histogram("h").record(1.0)
        assert registry.counter_values() == {"a": 2.0, "b": 3.0}
