"""Unit tests for the request-scoped tracing primitives."""

from __future__ import annotations

import pytest

from repro.telemetry import Span, StageStats, Tracer, TraceSummary, summarize_trace
from repro.telemetry.trace import NULL_SPAN, REQUEST_STAGES, TASK_STAGES


class TestSpan:
    def test_annotate_chains_and_end_closes(self):
        span = Span("request", 0, "r1", 1.0)
        assert not span.ended
        assert span.duration_s == 0.0
        span.annotate("tenant", "acme").annotate("node", "n0")
        span.end(3.5, verdict="completed")
        assert span.ended
        assert span.duration_s == pytest.approx(2.5)
        assert span.annotations == {
            "tenant": "acme",
            "node": "n0",
            "verdict": "completed",
        }

    def test_end_before_start_rejected(self):
        span = Span("task", 0, "t1", 5.0)
        with pytest.raises(ValueError, match="before it started"):
            span.end(4.0)
        assert not span.ended

    def test_double_end_rejected(self):
        span = Span("task", 0, "t1", 5.0)
        span.end(6.0)
        with pytest.raises(ValueError, match="ended twice"):
            span.end(7.0)

    def test_to_dict_round_trip(self):
        span = Span("request.gateway", 3, "r9", 1.0, parent_id=2)
        span.end(2.0, node="n3")
        rendered = span.to_dict()
        assert rendered == {
            "name": "request.gateway",
            "span_id": 3,
            "trace_id": "r9",
            "parent_id": 2,
            "start_s": 1.0,
            "end_s": 2.0,
            "annotations": {"node": "n3"},
        }


class TestTracer:
    def test_enabled_tracer_records_and_drains(self):
        tracer = Tracer()
        root = tracer.start_span("request", 0.0, "r1", tenant="acme")
        child = tracer.start_span("request.gateway", 0.0, "r1", parent=root)
        child.end(1.0)
        root.end(2.0)
        assert tracer.span_count == 2
        spans = tracer.drain()
        assert [span.name for span in spans] == ["request", "request.gateway"]
        assert spans[1].parent_id == spans[0].span_id
        assert tracer.span_count == 0
        assert tracer.drain() == []

    def test_span_ids_unique_and_monotone(self):
        tracer = Tracer()
        ids = [tracer.start_span("task", 0.0, f"t{i}").span_id for i in range(5)]
        assert ids == sorted(set(ids))

    def test_event_is_zero_length(self):
        tracer = Tracer()
        span = tracer.event("autoscale.add_shard", 7.0, trace_id="autoscale", target=2)
        assert span.ended
        assert span.duration_s == 0.0
        assert span.annotations["target"] == 2

    def test_disabled_tracer_is_a_no_op(self):
        tracer = Tracer.disabled()
        span = tracer.start_span("request", 0.0, "r1")
        assert span is NULL_SPAN
        assert span.annotate("k", "v") is NULL_SPAN
        assert span.end(5.0) is NULL_SPAN
        assert not span.ended
        assert tracer.event("autoscale.grow_node", 1.0) is NULL_SPAN
        assert tracer.span_count == 0
        assert tracer.drain() == []


def _completed_request(tracer, request_id, task_id, arrival, flush, finish):
    root = tracer.start_span("request", arrival, request_id)
    gateway = tracer.start_span("request.gateway", arrival, request_id, parent=root)
    gateway.end(arrival)
    wait = tracer.start_span("request.batch_wait", arrival, request_id, parent=root)
    wait.end(flush)
    troot = tracer.start_span("task", flush, task_id)
    pending = tracer.start_span("task.pending", flush, task_id, parent=troot)
    pending.end(flush)
    execute = tracer.start_span("task.execute", flush, task_id, parent=troot)
    execute.end(finish)
    troot.end(finish, verdict="completed")
    root.annotate("terminal", True)
    root.end(finish, verdict="completed", task_id=task_id)


class TestSummarizeTrace:
    def test_empty_trace(self):
        summary = summarize_trace([])
        assert summary.span_count == 0
        assert summary.stages == {}
        assert summary.critical_path == {}
        assert summary.verdicts == {}
        assert summary.stage("task.execute") is None
        assert summary.open_spans == 0
        assert summary.format() == "(no spans)"
        # The all-zeros summary must also serialise cleanly.
        assert summary.to_dict() == {
            "stages": {},
            "critical_path": {},
            "verdicts": {},
            "span_count": 0,
            "open_spans": 0,
        }

    def test_traced_run_with_zero_completed_requests_is_well_formed(self):
        # Regression: a traced serving run that completes nothing must
        # yield a usable summary without callers guarding for emptiness.
        from dataclasses import replace

        from repro.api.deployment import Deployment
        from repro.api.spec import DeploymentSpec
        from repro.serving import Tenant
        from repro.serving.loop import ServingWorkload

        spec = DeploymentSpec.preset("single")
        spec = replace(
            spec, telemetry=replace(spec.telemetry, enabled=True, tracing=True)
        )
        deployment = Deployment.from_spec(spec)
        workload = ServingWorkload(
            tenants=(Tenant(name="t", rate_limit_rps=10.0, burst=5),),
            requests=(),
        )
        report = deployment.serve(workload)
        summary = report.trace_summary()
        assert summary is not None
        assert summary.span_count == 0
        assert summary.critical_path == {}
        assert summary.verdicts.get("completed", 0) == 0
        assert summary.format() == "(no spans)"
        deployment.close()

    def test_critical_path_fractions_sum_to_one(self):
        tracer = Tracer()
        _completed_request(tracer, "r1", "t1", 0.0, 2.0, 10.0)
        _completed_request(tracer, "r2", "t2", 1.0, 2.0, 7.0)
        summary = summarize_trace(tracer.drain())
        assert summary.open_spans == 0
        assert summary.verdicts == {"completed": 2}
        assert sum(summary.critical_path.values()) == pytest.approx(1.0)
        # All latency is batch wait + execute in this synthetic trace.
        assert set(summary.critical_path) == {"request.batch_wait", "task.execute"}
        wait = summary.stage("request.batch_wait")
        assert isinstance(wait, StageStats)
        assert wait.count == 2
        assert wait.total_s == pytest.approx(3.0)

    def test_rejected_and_open_spans_counted(self):
        tracer = Tracer()
        root = tracer.start_span("request", 0.0, "r1")
        root.annotate("terminal", True)
        root.end(0.0, verdict="rejected_rate_limit")
        tracer.start_span("task", 1.0, "t-open")  # never closed
        summary = summarize_trace(tracer.drain())
        assert summary.verdicts == {"rejected_rate_limit": 1}
        assert summary.open_spans == 1
        assert summary.span_count == 2
        # A rejected request contributes no critical-path latency.
        assert summary.critical_path == {}

    def test_format_and_to_dict_render_all_stages(self):
        tracer = Tracer()
        _completed_request(tracer, "r1", "t1", 0.0, 1.0, 4.0)
        summary = summarize_trace(tracer.drain())
        text = summary.format()
        for name in ("request", "request.batch_wait", "task.execute"):
            assert name in text
        assert "critical path:" in text and "verdicts:" in text
        rendered = summary.to_dict()
        assert rendered["span_count"] == summary.span_count
        assert set(rendered["stages"]) == set(summary.stages)
        assert isinstance(TraceSummary(**{
            "stages": summary.stages,
            "critical_path": summary.critical_path,
            "verdicts": summary.verdicts,
            "span_count": summary.span_count,
            "open_spans": summary.open_spans,
        }), TraceSummary)

    def test_stage_name_schema_is_stable(self):
        assert REQUEST_STAGES == ("request.gateway", "request.batch_wait")
        assert TASK_STAGES == ("task.pending", "task.execute", "task.migrate")
