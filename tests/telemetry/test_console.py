"""Console frame model and renderers over synthetic ticks and spans."""

from __future__ import annotations

import json

import pytest

from repro.api.deployment import ServingTick
from repro.telemetry.console import (
    CLUSTER_TILE,
    ConsoleFrame,
    LiveConsole,
    build_frames,
    render_ansi,
    render_html,
)
from repro.telemetry.export import JsonlExporter
from repro.telemetry.trace import Tracer


def _ticks():
    return [
        ServingTick(index=0, start_s=0.0, end_s=5.0, arrivals=4, completed=1,
                    cumulative_completed=1, p50_latency_s=1.0, p95_latency_s=2.0,
                    stage_spans={"task.execute": 1}),
        ServingTick(index=1, start_s=5.0, end_s=10.0, arrivals=0, completed=2,
                    cumulative_completed=3, p50_latency_s=1.5, p95_latency_s=3.0,
                    stage_spans={"task.execute": 2}),
    ]


def _topology():
    return {
        "backend": "federated",
        "total_nodes": 4,
        "shards": [
            {"name": "s1", "nodes": 2, "region": "eu-north",
             "energy_price_per_kwh": 0.08, "seed": 1},
            {"name": "s2", "nodes": 2, "region": "us-east",
             "energy_price_per_kwh": 0.12, "seed": 2},
        ],
    }


def _spans():
    """Three tasks: two complete on s1/s2 in different windows, one queued."""
    tracer = Tracer(enabled=True)
    # Task a: pending 0-1, executes on s1, completes at 3.0 (window 0).
    root_a = tracer.start_span("task", 0.0, "a")
    tracer.start_span("task.pending", 0.0, "a", parent=root_a).end(1.0)
    tracer.start_span("task.execute", 1.0, "a", parent=root_a, shard="s1").end(3.0)
    root_a.end(3.0, verdict="completed", terminal=True)
    # Task b: migrates s1 -> s2, completes at 7.0 (window 1, counted on s2).
    root_b = tracer.start_span("task", 0.5, "b")
    tracer.start_span("task.pending", 0.5, "b", parent=root_b).end(1.0)
    tracer.start_span("task.execute", 1.0, "b", parent=root_b, shard="s1").end(4.0)
    tracer.start_span("task.execute", 4.5, "b", parent=root_b, shard="s2").end(7.0)
    root_b.end(7.0, verdict="completed", terminal=True)
    # Task c: still pending at the horizon (open span -> queue depth).
    root_c = tracer.start_span("task", 8.0, "c")
    tracer.start_span("task.pending", 8.0, "c", parent=root_c)
    # Requests with deadlines: two met, one missed, all ending in window 1.
    for rid, met, t in (("r1", True, 6.0), ("r2", True, 6.5), ("r3", False, 7.0)):
        root = tracer.start_span("request", 0.0, rid)
        root.end(t, verdict="completed", deadline_met=met, terminal=True)
    # One autoscale action in window 1 targeting s2.
    tracer.event("autoscale.add_node", 6.0, trace_id="autoscale",
                 target="s2", reason="saturation")
    return tracer.drain()


class TestBuildFrames:
    def test_untraced_frames_mirror_ticks_and_degrade_live_fields(self):
        frames = build_frames(_ticks(), topology=_topology(), spans=None)
        assert [f.completed for f in frames] == [1, 2]
        assert [f.arrivals for f in frames] == [4, 0]
        for frame in frames:
            assert frame.queue_depth is None
            assert frame.sla_hit_rate is None
            assert len(frame.tiles) == 2
            for tile in frame.tiles:
                assert tile.running is None
                assert tile.load is None
                assert tile.completed_tasks is None
        # Static identity still present.
        assert frames[0].tiles[0].region == "eu-north"
        assert frames[0].tiles[1].energy_price_per_kwh == 0.12

    def test_completions_bucket_per_window_and_shard(self):
        frames = build_frames(_ticks(), topology=_topology(), spans=_spans())
        by_name0 = {tile.shard: tile for tile in frames[0].tiles}
        by_name1 = {tile.shard: tile for tile in frames[1].tiles}
        assert by_name0["s1"].completed_tasks == 1  # task a at 3.0
        assert by_name0["s2"].completed_tasks == 0
        assert by_name1["s1"].completed_tasks == 0
        # Task b migrated s1 -> s2; its completion counts on the final shard.
        assert by_name1["s2"].completed_tasks == 1

    def test_queue_depth_counts_open_pending_spans(self):
        frames = build_frames(_ticks(), topology=_topology(), spans=_spans())
        assert frames[0].queue_depth == 0  # a and b placed by 1.0
        assert frames[1].queue_depth == 1  # task c never placed

    def test_sla_hit_rate_from_deadline_annotations(self):
        frames = build_frames(_ticks(), topology=_topology(), spans=_spans())
        assert frames[0].sla_total == 0
        assert frames[0].sla_hit_rate is None
        assert frames[1].sla_total == 3
        assert frames[1].sla_hits == 2
        assert frames[1].sla_hit_rate == pytest.approx(2 / 3)

    def test_autoscale_actions_land_on_frame_and_target_tile(self):
        frames = build_frames(_ticks(), topology=_topology(), spans=_spans())
        assert frames[0].actions == ()
        assert len(frames[1].actions) == 1
        action = frames[1].actions[0]
        assert action["action"] == "add_node" and action["target"] == "s2"
        by_name = {tile.shard: tile for tile in frames[1].tiles}
        assert by_name["s2"].actions == ("add_node",)
        assert by_name["s1"].actions == ()

    def test_running_tasks_at_window_end(self):
        frames = build_frames(_ticks(), topology=_topology(), spans=_spans())
        by_name0 = {tile.shard: tile for tile in frames[0].tiles}
        # At t=5.0: task a done, task b executing on s2 (4.5 -> 7.0).
        assert by_name0["s1"].running == 0
        assert by_name0["s2"].running == 1
        assert by_name0["s2"].load == pytest.approx(0.5)  # 1 task / 2 nodes

    def test_untopologied_traced_run_degrades_to_cluster_tile(self):
        frames = build_frames(_ticks(), topology=None, spans=_spans())
        assert [tile.shard for tile in frames[0].tiles] == [CLUSTER_TILE]
        # All completions collapse onto the one tile.
        assert frames[0].tiles[0].completed_tasks == 1
        assert frames[1].tiles[0].completed_tasks == 1

    def test_frame_dict_is_json_serialisable(self):
        frames = build_frames(_ticks(), topology=_topology(), spans=_spans())
        for frame in frames:
            record = json.loads(json.dumps(frame.to_dict()))
            assert record["type"] == "console.frame"
            assert len(record["tiles"]) == 2


class TestRenderers:
    def test_ansi_plain_mode_has_no_escape_codes(self):
        frames = build_frames(_ticks(), topology=_topology(), spans=_spans())
        text = render_ansi(frames[1], color=False)
        assert "\x1b[" not in text
        assert "s1" in text and "s2" in text
        assert "SLA" in text and "queue" in text
        assert "add_node" in text

    def test_ansi_color_mode_emits_codes(self):
        frames = build_frames(_ticks(), topology=_topology(), spans=_spans())
        assert "\x1b[" in render_ansi(frames[1], color=True)

    def test_html_is_self_contained(self):
        frames = build_frames(_ticks(), topology=_topology(), spans=_spans())
        html = render_html(frames, title="t <demo>")
        assert html.startswith("<!DOCTYPE html>")
        assert "http://" not in html and "https://" not in html
        assert "FRAMES" in html and "<script>" in html
        assert "t &lt;demo&gt;" in html  # title escaped
        # The embedded JSON cannot terminate the script block early.
        payload_start = html.index("const FRAMES")
        assert "</script>" not in html[payload_start : html.index(";", payload_start)]

    def test_html_embeds_every_frame(self):
        frames = build_frames(_ticks(), topology=_topology(), spans=_spans())
        html = render_html(frames)
        start = html.index("const FRAMES = ") + len("const FRAMES = ")
        end = html.index(";\n", start)
        embedded = json.loads(html[start:end].replace("<\\/", "</"))
        assert len(embedded) == 2
        assert embedded[1]["sla_hits"] == 2


class TestLiveConsole:
    def test_tick_s_validation(self):
        with pytest.raises(ValueError, match="tick_s"):
            LiveConsole(object(), tick_s=0.0)

    def test_run_builds_frames_and_feeds_exporter(self):
        from dataclasses import replace

        from repro.api.deployment import Deployment
        from repro.api.spec import DeploymentSpec
        from repro.serving import Tenant
        from repro.serving.loop import ServingWorkload

        tenants = [Tenant(name="t", rate_limit_rps=100.0, burst=50,
                          latency_slo_s=120.0)]
        workload = ServingWorkload.synthetic(
            tenants, {"t": {"ml_inference": 1.0}},
            offered_rps=10.0, duration_s=10.0, seed=5,
        )
        spec = DeploymentSpec.preset("single")
        spec = replace(
            spec, telemetry=replace(spec.telemetry, enabled=True, tracing=True)
        )
        deployment = Deployment.from_spec(spec)
        feed = JsonlExporter()
        console = LiveConsole(deployment, tick_s=5.0, exporter=feed)
        frames = console.run(workload)
        report = deployment.last_report
        assert sum(f.completed for f in frames) == report.completed
        assert len(feed.lines) == len(frames)
        assert json.loads(feed.lines[0])["type"] == "console.frame"
        html = console.html(frames)
        assert "<!DOCTYPE html>" in html
        deployment.close()
