"""PhaseProfiler: nesting, no-op mode, reporting, coverage arithmetic."""

from __future__ import annotations

import time

import pytest

from repro.telemetry.profile import NULL_PHASE, PhaseProfiler


class TestRecording:
    def test_phase_records_count_and_total(self):
        profiler = PhaseProfiler(enabled=True)
        for _ in range(3):
            with profiler.phase("ingest"):
                pass
        report = profiler.report()
        assert report["phases"]["ingest"]["calls"] == 3
        assert report["phases"]["ingest"]["total_s"] >= 0.0

    def test_nested_phases_use_slash_paths(self):
        profiler = PhaseProfiler(enabled=True)
        with profiler.phase("simulate"):
            with profiler.phase("placement"):
                with profiler.phase("routing"):
                    pass
            with profiler.phase("advance"):
                pass
        paths = set(profiler.report()["phases"])
        assert paths == {
            "simulate",
            "simulate/placement",
            "simulate/placement/routing",
            "simulate/advance",
        }

    def test_sibling_phases_restore_prefix(self):
        profiler = PhaseProfiler(enabled=True)
        with profiler.phase("a"):
            pass
        with profiler.phase("b"):
            pass
        assert set(profiler.report()["phases"]) == {"a", "b"}

    def test_phase_name_rejects_separator(self):
        profiler = PhaseProfiler(enabled=True)
        with pytest.raises(ValueError, match="/"):
            profiler.phase("a/b")

    def test_add_records_premeasured_seconds_under_prefix(self):
        profiler = PhaseProfiler(enabled=True)
        with profiler.phase("simulate"):
            profiler.add("placement", 0.25)
            profiler.add("placement", 0.25)
        phases = profiler.report()["phases"]
        assert phases["simulate/placement"]["calls"] == 2
        assert phases["simulate/placement"]["total_s"] == pytest.approx(0.5)

    def test_reset_clears_stats(self):
        profiler = PhaseProfiler(enabled=True)
        with profiler.phase("x"):
            pass
        profiler.reset()
        assert profiler.report()["phases"] == {}


class TestDisabled:
    def test_disabled_phase_is_shared_null_context(self):
        profiler = PhaseProfiler.disabled()
        assert not profiler.enabled
        assert profiler.phase("anything") is NULL_PHASE
        with profiler.phase("anything"):
            pass
        assert profiler.report()["phases"] == {}

    def test_disabled_add_is_noop(self):
        profiler = PhaseProfiler.disabled()
        profiler.add("x", 1.0)
        assert profiler.report()["phases"] == {}


class TestReport:
    def test_self_seconds_subtract_direct_children(self):
        profiler = PhaseProfiler(enabled=True)
        with profiler.phase("outer"):
            profiler.add("inner", 0.0)
            time.sleep(0.01)
        phases = profiler.report()["phases"]
        outer = phases["outer"]
        assert outer["self_s"] == pytest.approx(
            outer["total_s"] - phases["outer/inner"]["total_s"], abs=1e-9
        )
        assert outer["self_s"] >= 0.0

    def test_top_level_seconds_sum_depth_zero_only(self):
        profiler = PhaseProfiler(enabled=True)
        with profiler.phase("a"):
            profiler.add("child", 100.0)  # nested time must not double-count
        with profiler.phase("b"):
            pass
        report = profiler.report()
        expected = (
            report["phases"]["a"]["total_s"] + report["phases"]["b"]["total_s"]
        )
        assert profiler.top_level_seconds() == pytest.approx(expected)
        assert report["top_level_s"] == pytest.approx(expected)

    def test_coverage_against_wall_clock(self):
        profiler = PhaseProfiler(enabled=True)
        with profiler.phase("work"):
            time.sleep(0.02)
        wall = profiler.top_level_seconds() / 0.5
        assert profiler.coverage(wall) == pytest.approx(0.5)
        assert profiler.coverage(0.0) == 0.0

    def test_format_renders_indented_table(self):
        profiler = PhaseProfiler(enabled=True)
        with profiler.phase("outer"):
            with profiler.phase("inner"):
                pass
        text = profiler.format()
        assert "outer" in text and "inner" in text
        assert "(no phases recorded)" in PhaseProfiler.disabled().format()


class TestDeploymentIntegration:
    def test_profiled_serve_reports_phase_breakdown(self):
        from dataclasses import replace

        from repro.api.deployment import Deployment
        from repro.api.spec import DeploymentSpec
        from repro.serving import Tenant
        from repro.serving.loop import ServingWorkload

        tenants = [Tenant(name="t", rate_limit_rps=100.0, burst=50)]
        workload = ServingWorkload.synthetic(
            tenants, {"t": {"ml_inference": 1.0}},
            offered_rps=10.0, duration_s=10.0, seed=3,
        )
        spec = DeploymentSpec.preset("single")
        spec = replace(
            spec,
            telemetry=replace(spec.telemetry, enabled=True, profiling=True),
        )
        deployment = Deployment.from_spec(spec)
        start = time.perf_counter()
        deployment.serve(workload)
        wall = time.perf_counter() - start
        profile = deployment.metrics()["profile"]
        assert set(profile["phases"]) >= {"ingest", "simulate", "rollup"}
        assert any(path.startswith("simulate/") for path in profile["phases"])
        # Loose floor here (the >= 90% acceptance bar is checked by the
        # core_speed benchmark under full load): the phases must account
        # for at least half the measured wall-clock even on a tiny run.
        assert deployment.profiler.coverage(wall) >= 0.5
        deployment.close()

    def test_unprofiled_deployment_reports_no_profile(self):
        from repro.api.deployment import Deployment
        from repro.api.spec import DeploymentSpec

        deployment = Deployment.from_spec(DeploymentSpec.preset("single"))
        assert deployment.metrics()["profile"] is None
        assert not deployment.profiler.enabled
        deployment.close()
