"""Exporter sinks: JSONL rendering, bounded buffers, determinism."""

from __future__ import annotations

import json

import pytest

from repro.telemetry.export import JsonlExporter
from repro.telemetry.registry import MetricsRegistry


def _snapshot():
    registry = MetricsRegistry()
    registry.counter("served").inc(3)
    registry.gauge("load").set(0.5)
    registry.histogram("latency_s").record(1.0)
    return registry.snapshot()


class TestJsonlExporter:
    def test_export_is_one_json_object_per_line(self):
        exporter = JsonlExporter()
        exporter.export(_snapshot())
        exporter.export(_snapshot())
        assert len(exporter.lines) == 2
        for line in exporter.lines:
            assert "\n" not in line
            record = json.loads(line)
            assert record["counters"]["served"] == 3.0
            assert record["gauges"]["load"] == 0.5
            assert record["histograms"]["latency_s"]["count"] == 1

    def test_field_order_is_deterministic(self):
        exporter = JsonlExporter()
        exporter.write({"b": 1, "a": {"z": 1, "y": 2}})
        exporter.write({"a": {"y": 2, "z": 1}, "b": 1})
        assert exporter.lines[0] == exporter.lines[1]
        assert exporter.lines[0].index('"a"') < exporter.lines[0].index('"b"')

    def test_profile_section_round_trips(self):
        registry = MetricsRegistry()
        snapshot = registry.snapshot(
            profile={"phases": {"ingest": {"calls": 1}}, "top_level_s": 0.5}
        )
        exporter = JsonlExporter()
        exporter.export(snapshot)
        record = json.loads(exporter.lines[0])
        assert record["profile"]["top_level_s"] == 0.5

    def test_snapshot_without_profile_omits_the_key(self):
        exporter = JsonlExporter()
        exporter.export(_snapshot())
        assert "profile" not in json.loads(exporter.lines[0])

    def test_capacity_bounds_the_buffer(self):
        exporter = JsonlExporter(capacity=2)
        for i in range(5):
            exporter.write({"i": i})
        assert [json.loads(line)["i"] for line in exporter.lines] == [3, 4]

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            JsonlExporter(capacity=0)
        unbounded = JsonlExporter(capacity=None)
        for i in range(600):
            unbounded.write({"i": i})
        assert len(unbounded.lines) == 600

    def test_text_property_is_a_jsonl_document(self):
        exporter = JsonlExporter()
        exporter.write({"a": 1})
        exporter.write({"b": 2})
        parsed = [json.loads(line) for line in exporter.text.splitlines()]
        assert parsed == [{"a": 1}, {"b": 2}]

    def test_non_serialisable_values_fall_back_to_str(self):
        class Odd:
            def __str__(self):
                return "odd!"

        exporter = JsonlExporter()
        exporter.write({"value": Odd()})
        assert json.loads(exporter.lines[0])["value"] == "odd!"
