"""Property tests (hypothesis): windowed rollups match brute force.

The histogram's rollups are served from a ring buffer updated in O(1) per
record; these properties pin the ring/rollup machinery to an independent
brute-force recompute over the raw record sequence for arbitrary inputs:
the window must be exactly the last ``window`` samples in order, EWMA and
quantiles over it must match recomputation from scratch, and counters must
be monotone under arbitrary increment sequences.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import Counter, Histogram

samples = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=200,
)
windows = st.integers(min_value=1, max_value=64)


def brute_force_window(values, window):
    """The samples a ``window``-sized ring must retain, oldest first."""
    return list(values[-window:])


def brute_force_ewma(values, alpha):
    level = values[0]
    for value in values[1:]:
        level = alpha * value + (1.0 - alpha) * level
    return level


@given(samples, windows)
@settings(max_examples=150, deadline=None)
def test_window_is_exactly_the_last_n_records(values, window):
    histogram = Histogram("h", window=window)
    for value in values:
        histogram.record(value)
    assert histogram.window_values() == brute_force_window(values, window)
    assert histogram.count == len(values)
    assert histogram.total == pytest.approx(sum(values), rel=1e-9, abs=1e-6)


@given(samples, windows, st.floats(min_value=0.01, max_value=1.0))
@settings(max_examples=150, deadline=None)
def test_ewma_matches_brute_force_recompute(values, window, alpha):
    histogram = Histogram("h", window=window)
    for value in values:
        histogram.record(value)
    expected_window = brute_force_window(values, window)
    if not expected_window:
        assert histogram.ewma(alpha) == 0.0
    else:
        assert histogram.ewma(alpha) == pytest.approx(
            brute_force_ewma(expected_window, alpha), rel=1e-9, abs=1e-9
        )


@given(samples, windows, st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=150, deadline=None)
def test_quantile_matches_numpy_linear_interpolation(values, window, q):
    histogram = Histogram("h", window=window)
    for value in values:
        histogram.record(value)
    expected_window = brute_force_window(values, window)
    if not expected_window:
        assert histogram.quantile(q) == 0.0
    else:
        expected = float(np.percentile(np.asarray(expected_window), q * 100.0))
        assert histogram.quantile(q) == pytest.approx(expected, rel=1e-9, abs=1e-9)


@given(samples, windows)
@settings(max_examples=100, deadline=None)
def test_window_mean_matches_brute_force(values, window):
    histogram = Histogram("h", window=window)
    for value in values:
        histogram.record(value)
    expected_window = brute_force_window(values, window)
    if not expected_window:
        assert histogram.window_mean() == 0.0
    else:
        assert histogram.window_mean() == pytest.approx(
            sum(expected_window) / len(expected_window), rel=1e-9, abs=1e-9
        )


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1e9, allow_nan=False), min_size=0, max_size=100
    )
)
@settings(max_examples=100, deadline=None)
def test_counter_is_monotone_and_exact(increments):
    counter = Counter("c")
    running = 0.0
    previous = counter.value
    for amount in increments:
        counter.inc(amount)
        running += amount
        assert counter.value >= previous  # monotone under any sequence
        previous = counter.value
    assert counter.value == pytest.approx(running, rel=1e-12, abs=0.0)
