"""Property tests (hypothesis): trace well-formedness on real serving runs.

Rather than testing the tracer on synthetic span sequences, these
properties drive the actual serving pipeline (gateway -> batcher ->
discrete-event simulator) under arbitrary workloads and pin the
invariants the observability layer promises:

* every offered request yields exactly one terminal root span, with a
  verdict consistent with the serving report's accounting;
* no span ends before it starts, every span is closed by run end, and
  child spans nest inside their parents' intervals;
* the span-name multiset is conserved across replays -- the array-native
  hot path must be deterministic in the trace, not just in the report.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.microserver import WorkloadKind
from repro.scheduler.cluster import Cluster
from repro.scheduler.heats import HeatsScheduler
from repro.scheduler.modeling import ProfilingCampaign
from repro.serving import BatchPolicy, RequestGateway, ServingLoop, Tenant
from repro.serving.gateway import ServingRequest
from repro.telemetry import Tracer

#: learned models fitted once; every example replays on a fresh cluster.
MODELS = ProfilingCampaign(Cluster.heats_testbed(scale=1), seed=7).run().fit()

BATCH_POLICY = BatchPolicy(max_batch_size=4, max_delay_s=1.0)

#: tight limits so hypothesis finds workloads with real rejections.
TENANTS = [
    Tenant(name="alpha", rate_limit_rps=3.0, burst=4, energy_weight=0.3),
    Tenant(name="beta", rate_limit_rps=3.0, burst=4, energy_weight=0.7),
]

KINDS = (WorkloadKind.MEMORY_BOUND, WorkloadKind.SCALAR, WorkloadKind.STREAMING)

workload_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),  # seed
    st.integers(min_value=1, max_value=28),  # request count
    st.floats(min_value=2.0, max_value=12.0),  # arrival window seconds
)


def _requests(seed: int, count: int, duration_s: float):
    rng = np.random.default_rng(seed)
    arrivals = np.sort(rng.uniform(0.0, duration_s, count))
    return [
        ServingRequest(
            request_id=f"r{index:04d}",
            tenant=TENANTS[index % len(TENANTS)].name,
            use_case=f"uc{index % 3}",
            arrival_s=float(arrival),
            workload=KINDS[index % 3],
            gops=float(rng.uniform(5.0, 40.0)),
            cores=int(rng.choice([1, 2])),
            memory_gib=float(rng.choice([1.0, 2.0, 4.0])),
        )
        for index, arrival in enumerate(arrivals)
    ]


def _traced_run(requests):
    tracer = Tracer(enabled=True)
    loop = ServingLoop(
        Cluster.heats_testbed(scale=1),
        HeatsScheduler(MODELS),
        RequestGateway(TENANTS),
        batch_policy=BATCH_POLICY,
        tracer=tracer,
    )
    report = loop.run(requests)
    assert tracer.span_count == 0, "loop must drain its tracer into the report"
    return report


@given(workload_params)
@settings(max_examples=25, deadline=None)
def test_every_offered_request_has_exactly_one_terminal_root(params):
    seed, count, duration_s = params
    requests = _requests(seed, count, duration_s)
    report = _traced_run(requests)
    roots = [span for span in report.trace_spans if span.name == "request"]

    # Exactly one root per offered request, keyed by request id.
    assert sorted(span.trace_id for span in roots) == sorted(
        request.request_id for request in requests
    )
    verdicts = Counter()
    for root in roots:
        assert root.ended
        assert root.annotations.get("terminal") is True
        verdicts[root.annotations["verdict"]] += 1

    # Verdict counts reconcile exactly with the report's accounting.
    assert verdicts.get("completed", 0) == report.completed
    assert verdicts.get("dropped", 0) == report.dropped
    rejected = sum(
        count for verdict, count in verdicts.items() if verdict.startswith("rejected")
    )
    assert rejected == report.rejected
    assert sum(verdicts.values()) == report.offered


@given(workload_params)
@settings(max_examples=25, deadline=None)
def test_spans_are_closed_ordered_and_nested(params):
    seed, count, duration_s = params
    requests = _requests(seed, count, duration_s)
    report = _traced_run(requests)
    spans = report.trace_spans
    by_id = {span.span_id: span for span in spans}
    assert len(by_id) == len(spans), "span ids must be unique"

    for span in spans:
        # A finished run leaves nothing open, and time never runs backwards.
        assert span.ended, f"span {span!r} left open at run end"
        assert span.end_s >= span.start_s
        if span.parent_id is not None:
            parent = by_id[span.parent_id]
            assert span.trace_id == parent.trace_id
            assert span.start_s >= parent.start_s - 1e-9
            assert span.end_s <= parent.end_s + 1e-9


@given(workload_params)
@settings(max_examples=10, deadline=None)
def test_span_counts_conserved_across_replays(params):
    """Two fresh runs of the same stream must trace identically -- the
    determinism soak that retired the legacy ``fast_path=False`` A/B
    comparison when the scan paths were deleted."""
    seed, count, duration_s = params
    requests = _requests(seed, count, duration_s)
    first = _traced_run(requests)
    second = _traced_run(requests)

    first_names = Counter(span.name for span in first.trace_spans)
    second_names = Counter(span.name for span in second.trace_spans)
    assert first_names == second_names

    def terminal_verdicts(report):
        return sorted(
            (span.trace_id, span.annotations["verdict"])
            for span in report.trace_spans
            if span.name in ("request", "task") and span.annotations.get("verdict")
        )

    assert terminal_verdicts(first) == terminal_verdicts(second)
