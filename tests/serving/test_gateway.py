"""Gateway unit tests: token bucket, admission control, fair drain."""

from __future__ import annotations

import pytest

from repro.hardware.microserver import WorkloadKind
from repro.serving.gateway import (
    AdmissionDecision,
    RequestGateway,
    ServingRequest,
    Tenant,
    TokenBucket,
)


def make_request(request_id: str, tenant: str, arrival_s: float = 0.0) -> ServingRequest:
    return ServingRequest(
        request_id=request_id,
        tenant=tenant,
        use_case="ml_inference",
        arrival_s=arrival_s,
        workload=WorkloadKind.DNN_INFERENCE,
        gops=3.0,
        cores=2,
        memory_gib=0.5,
    )


class TestTokenBucket:
    def test_burst_then_exhaustion(self):
        bucket = TokenBucket(rate_per_s=1.0, burst=3)
        assert all(bucket.try_consume(0.0) for _ in range(3))
        assert not bucket.try_consume(0.0)

    def test_refill_at_rate(self):
        bucket = TokenBucket(rate_per_s=2.0, burst=4)
        for _ in range(4):
            assert bucket.try_consume(0.0)
        assert not bucket.try_consume(0.4)  # only 0.8 tokens refilled
        assert bucket.try_consume(0.5)  # 1.0 token available now

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate_per_s=100.0, burst=5)
        assert bucket.available(1000.0) == pytest.approx(5.0)

    def test_time_must_be_monotonic(self):
        bucket = TokenBucket(rate_per_s=1.0, burst=1)
        bucket.try_consume(5.0)
        with pytest.raises(ValueError):
            bucket.try_consume(4.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=1.0, burst=0)


class TestAdmission:
    def test_unknown_tenant_rejected(self):
        gateway = RequestGateway([Tenant(name="acme")])
        decision = gateway.offer(make_request("r0", "nobody"))
        assert decision is AdmissionDecision.REJECTED_UNKNOWN_TENANT
        assert not decision.admitted

    def test_rate_limit_rejection_counted(self):
        gateway = RequestGateway([Tenant(name="acme", rate_limit_rps=1.0, burst=2)])
        decisions = [gateway.offer(make_request(f"r{i}", "acme")) for i in range(4)]
        assert decisions[:2] == [AdmissionDecision.ADMITTED] * 2
        assert decisions[2:] == [AdmissionDecision.REJECTED_RATE_LIMIT] * 2
        stats = gateway.stats("acme")
        assert (stats.offered, stats.admitted, stats.rejected_rate_limit) == (4, 2, 2)
        assert stats.rejection_rate == pytest.approx(0.5)

    def test_bounded_queue_rejects_when_full(self):
        gateway = RequestGateway(
            [Tenant(name="acme", rate_limit_rps=100.0, burst=100, max_queue_depth=3)]
        )
        decisions = [gateway.offer(make_request(f"r{i}", "acme")) for i in range(5)]
        assert decisions.count(AdmissionDecision.ADMITTED) == 3
        assert decisions.count(AdmissionDecision.REJECTED_QUEUE_FULL) == 2
        assert gateway.queue_depth("acme") == 3

    def test_tokens_refill_over_arrival_time(self):
        gateway = RequestGateway([Tenant(name="acme", rate_limit_rps=1.0, burst=1)])
        assert gateway.offer(make_request("r0", "acme", arrival_s=0.0)).admitted
        assert not gateway.offer(make_request("r1", "acme", arrival_s=0.1)).admitted
        assert gateway.offer(make_request("r2", "acme", arrival_s=1.2)).admitted

    def test_queue_full_rejection_does_not_burn_tokens(self):
        gateway = RequestGateway(
            [Tenant(name="acme", rate_limit_rps=0.001, burst=2, max_queue_depth=1)]
        )
        assert gateway.offer(make_request("r0", "acme")).admitted
        # Queue now full: this rejection must not consume the second token.
        assert (
            gateway.offer(make_request("r1", "acme"))
            is AdmissionDecision.REJECTED_QUEUE_FULL
        )
        gateway.drain()
        # The spared token still admits the next request.
        assert gateway.offer(make_request("r2", "acme")).admitted

    def test_duplicate_tenant_registration_fails(self):
        gateway = RequestGateway([Tenant(name="acme")])
        with pytest.raises(ValueError):
            gateway.register(Tenant(name="acme"))


class TestDrain:
    def test_round_robin_across_tenants(self):
        gateway = RequestGateway(
            [Tenant(name="a", rate_limit_rps=100, burst=100),
             Tenant(name="b", rate_limit_rps=100, burst=100)]
        )
        for i in range(3):
            gateway.offer(make_request(f"a{i}", "a"))
        gateway.offer(make_request("b0", "b"))
        drained = gateway.drain()
        # Tenant b's single request is not stuck behind all of tenant a's.
        assert [r.request_id for r in drained] == ["a0", "b0", "a1", "a2"]
        assert gateway.queue_depth("a") == 0

    def test_drain_limit(self):
        gateway = RequestGateway([Tenant(name="a", rate_limit_rps=100, burst=100)])
        for i in range(5):
            gateway.offer(make_request(f"a{i}", "a"))
        assert len(gateway.drain(limit=2)) == 2
        assert gateway.queue_depth("a") == 3


class TestValidation:
    def test_tenant_validation(self):
        with pytest.raises(ValueError):
            Tenant(name="")
        with pytest.raises(ValueError):
            Tenant(name="x", rate_limit_rps=-1)
        with pytest.raises(ValueError):
            Tenant(name="x", energy_weight=1.5)
        with pytest.raises(ValueError):
            Tenant(name="x", latency_slo_s=0.0)

    def test_request_validation(self):
        with pytest.raises(ValueError):
            make_request("r", "t", arrival_s=-1.0)
        with pytest.raises(ValueError):
            ServingRequest(
                request_id="r",
                tenant="t",
                use_case="u",
                arrival_s=5.0,
                workload=WorkloadKind.SCALAR,
                gops=1.0,
                cores=1,
                memory_gib=1.0,
                deadline_s=4.0,
            )


class TestTokenBucketLargeTimeJump:
    """Regression: a huge simulated-time gap must not over-credit a tenant."""

    def test_large_tick_jump_refills_exactly_to_burst(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=5)
        assert all(bucket.try_consume(0.0) for _ in range(5))  # drained
        # A pathological horizon jump: the refill product would overflow
        # without the elapsed clamp; the bucket must hold exactly `burst`.
        assert bucket.available(1e308) == pytest.approx(5.0)
        assert all(bucket.try_consume(1e308) for _ in range(5))
        assert not bucket.try_consume(1e308)

    def test_rate_resumes_normally_after_a_jump(self):
        bucket = TokenBucket(rate_per_s=2.0, burst=4)
        for _ in range(4):
            assert bucket.try_consume(0.0)
        assert bucket.available(1e6) == pytest.approx(4.0)
        for _ in range(4):
            assert bucket.try_consume(1e6)
        # Post-jump refill proceeds at the configured rate, not more.
        assert not bucket.try_consume(1e6 + 0.4)  # only 0.8 tokens back
        assert bucket.try_consume(1e6 + 0.5)  # 1.0 token back

    def test_gateway_admission_after_idle_gap_is_bounded_by_burst(self):
        gateway = RequestGateway([Tenant(name="acme", rate_limit_rps=1.0, burst=3)])
        for i in range(3):
            assert gateway.offer(make_request(f"warm{i}", "acme", arrival_s=0.0)).admitted
        gateway.drain()
        # After a week of simulated idleness the tenant gets its burst
        # back -- and not one request more.
        idle_end = 7 * 24 * 3600.0
        decisions = [
            gateway.offer(make_request(f"cold{i}", "acme", arrival_s=idle_end))
            for i in range(5)
        ]
        assert decisions.count(AdmissionDecision.ADMITTED) == 3
        assert decisions.count(AdmissionDecision.REJECTED_RATE_LIMIT) == 2


class TestGatewayMetrics:
    def test_admission_hot_path_records_into_the_bus(self):
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        gateway = RequestGateway(
            [Tenant(name="acme", rate_limit_rps=1.0, burst=2, max_queue_depth=8)],
            metrics=registry,
        )
        for i in range(4):
            gateway.offer(make_request(f"r{i}", "acme", arrival_s=0.0))
        snapshot = registry.snapshot()
        assert snapshot.counter("gateway.offered") == 4.0
        assert snapshot.counter("gateway.admitted") == 2.0
        assert snapshot.counter("gateway.rejected") == 2.0
        assert snapshot.gauges["gateway.queue_depth"] == 2.0
        gateway.drain()
        assert registry.snapshot().gauges["gateway.queue_depth"] == 0.0
