"""Monotone-clock regressions for the serving ingest path.

The batching timeline must never run backwards: a batch may not flush at
an instant earlier than any of its members was added, even when arrivals
land mid-tick (between two grid points of the flush cadence) and the
end-of-stream drain stamps them at the raw arrival instant rather than a
grid tick.  The batcher enforces the invariant structurally, and the
event-driven ingest must walk exactly the same grid as an exhaustive
tick-by-tick scan -- pinned here against a reference scan implemented in
the test (the production scan path was retired with the array-native
core).
"""

from __future__ import annotations

from typing import List, Tuple

import pytest

from repro.hardware.microserver import WorkloadKind
from repro.scheduler.cluster import Cluster
from repro.serving.batching import Batch, Batcher, BatchPolicy
from repro.serving.gateway import RequestGateway, ServingRequest, Tenant
from repro.serving.loop import ServingLoop


class NullScheduler:
    name = "null"
    supports_rescheduling = False

    def place(self, request, cluster, time_s):
        return None

    def reschedule(self, running, cluster, time_s):
        return []


class RecordingBatcher(Batcher):
    """Batcher that logs every clock instant it observes."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.observed: List[Tuple[str, float]] = []

    def add(self, request, now_s):
        self.observed.append(("add", now_s))
        return super().add(request, now_s)

    def flush_ready(self, now_s):
        self.observed.append(("flush_ready", now_s))
        return super().flush_ready(now_s)

    def flush_all(self, now_s):
        self.observed.append(("flush_all", now_s))
        return super().flush_all(now_s)


def make_request(request_id: str, arrival_s: float, deadline_s=None, tenant="t"):
    return ServingRequest(
        request_id=request_id,
        tenant=tenant,
        use_case="unit",
        arrival_s=arrival_s,
        workload=WorkloadKind.SCALAR,
        gops=1.0,
        cores=1,
        memory_gib=0.5,
        deadline_s=deadline_s,
    )


def build_loop(flush_tick_s: float = 0.5, policy=None):
    gateway = RequestGateway([Tenant(name="t", rate_limit_rps=100.0, burst=64)])
    loop = ServingLoop(
        Cluster.from_models({"apalis-arm-soc": 1}),
        NullScheduler(),
        gateway,
        batch_policy=policy,
        flush_tick_s=flush_tick_s,
    )
    recording = RecordingBatcher(loop.batcher.policy)
    loop.batcher = recording
    return loop, recording


def reference_tick_scan(loop: ServingLoop, requests) -> List[Batch]:
    """The retired pre-overhaul scan: every tick on the grid is visited.

    Re-implemented here (against the loop's own gateway/batcher/tracker)
    as the oracle the event-driven walk is checked against; the clock is
    the same integer tick index (``index * tick``), so both agree on the
    grid bit-for-bit.
    """
    ordered = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
    flushed: List[Batch] = []
    tick = loop.flush_tick_s
    index = 0

    def advance_to(time_s: float) -> None:
        nonlocal index
        while (index + 1) * tick <= time_s:
            index += 1
            now = index * tick
            for admitted in loop.gateway.drain():
                flushed.extend(loop.batcher.add(admitted, now))
            flushed.extend(loop.batcher.flush_ready(now))

    for request in ordered:
        advance_to(request.arrival_s)
        decision = loop.gateway.offer(request)
        loop.tracker.record_offered(request.tenant, decision.admitted)
    end = ordered[-1].arrival_s if ordered else 0.0
    advance_to(end)
    for admitted in loop.gateway.drain():
        flushed.extend(loop.batcher.add(admitted, end))
    advance_to(end + loop.batcher.policy.max_delay_s + tick)
    flushed.extend(loop.batcher.flush_all(max(index * tick, end)))
    return flushed


MID_TICK_ARRIVALS = [0.2, 0.74, 0.74, 1.9, 2.26, 2.26, 5.13]


class TestMonotoneIngest:
    def test_mid_tick_arrivals_keep_the_batcher_clock_monotone(self):
        loop, recording = build_loop()
        requests = [
            make_request(f"r{index}", arrival)
            for index, arrival in enumerate(MID_TICK_ARRIVALS)
        ]
        batches = loop._ingest(requests)
        times = [instant for _, instant in recording.observed]
        assert times == sorted(times)
        # Every member was admitted and flushed, none behind its add time.
        assert sum(batch.size for batch in batches) == len(requests)
        for batch in batches:
            for member in batch.requests:
                assert batch.flushed_s >= member.arrival_s

    def test_deadline_flushes_stay_monotone_with_mid_tick_arrivals(self):
        loop, recording = build_loop(
            policy=BatchPolicy(max_batch_size=16, max_delay_s=4.0,
                               deadline_margin_s=0.5),
        )
        requests = [
            make_request("a", 0.3, deadline_s=2.1),
            make_request("b", 0.85, deadline_s=6.0),
            make_request("c", 3.33),
        ]
        batches = loop._ingest(requests)
        times = [instant for _, instant in recording.observed]
        assert times == sorted(times)
        assert sum(batch.size for batch in batches) == len(requests)
        for batch in batches:
            for member in batch.requests:
                assert batch.flushed_s >= member.arrival_s


def test_event_driven_ingest_matches_the_reference_tick_scan_exactly():
    """Skipping quiet ticks must not move any flush: same batches, same
    membership, same flush instants as the exhaustive reference scan."""
    requests = [
        make_request(f"r{index}", arrival)
        for index, arrival in enumerate(MID_TICK_ARRIVALS)
    ] + [make_request("late", 14.05, deadline_s=17.0)]
    fast_loop, _ = build_loop()
    slow_loop, _ = build_loop()
    fast = fast_loop._ingest(requests)
    slow = reference_tick_scan(slow_loop, requests)
    assert [
        (batch.flushed_s, [member.request_id for member in batch.requests])
        for batch in fast
    ] == [
        (batch.flushed_s, [member.request_id for member in batch.requests])
        for batch in slow
    ]


def test_batcher_rejects_a_backwards_clock():
    batcher = Batcher(BatchPolicy())
    batcher.add(make_request("r0", 1.0), now_s=2.0)
    with pytest.raises(ValueError, match="backwards"):
        batcher.flush_ready(1.5)
    with pytest.raises(ValueError, match="backwards"):
        batcher.add(make_request("r1", 1.0), now_s=0.5)
