"""Batcher unit tests: coalescing, size/delay/deadline flushing."""

from __future__ import annotations

import pytest

from repro.hardware.microserver import WorkloadKind
from repro.serving.batching import Batcher, BatchPolicy
from repro.serving.gateway import ServingRequest


def make_request(
    request_id: str,
    tenant: str = "acme",
    use_case: str = "ml_inference",
    arrival_s: float = 0.0,
    gops: float = 3.0,
    cores: int = 2,
    memory_gib: float = 0.5,
    deadline_s=None,
    workload: WorkloadKind = WorkloadKind.DNN_INFERENCE,
) -> ServingRequest:
    return ServingRequest(
        request_id=request_id,
        tenant=tenant,
        use_case=use_case,
        arrival_s=arrival_s,
        workload=workload,
        gops=gops,
        cores=cores,
        memory_gib=memory_gib,
        deadline_s=deadline_s,
    )


def test_compatible_requests_share_a_batch():
    batcher = Batcher(BatchPolicy(max_batch_size=8))
    for i in range(3):
        assert batcher.add(make_request(f"r{i}"), now_s=0.0) == []
    assert len(batcher.open_batches) == 1
    assert batcher.open_batches[0].size == 3


def test_incompatible_requests_get_separate_batches():
    batcher = Batcher(BatchPolicy(max_batch_size=8))
    batcher.add(make_request("r0"), now_s=0.0)
    batcher.add(make_request("r1", tenant="beta"), now_s=0.0)
    batcher.add(make_request("r2", use_case="smartmirror"), now_s=0.0)
    batcher.add(make_request("r3", cores=4), now_s=0.0)
    batcher.add(make_request("r4", memory_gib=3.0), now_s=0.0)
    batcher.add(make_request("r5", workload=WorkloadKind.CRYPTO), now_s=0.0)
    assert len(batcher.open_batches) == 6


def test_size_cap_flushes_immediately():
    batcher = Batcher(BatchPolicy(max_batch_size=2))
    assert batcher.add(make_request("r0"), now_s=0.0) == []
    flushed = batcher.add(make_request("r1"), now_s=0.5)
    assert len(flushed) == 1
    assert flushed[0].size == 2
    assert flushed[0].flushed_s == 0.5
    assert batcher.open_batches == []


def test_stale_batch_flushes_after_max_delay():
    batcher = Batcher(BatchPolicy(max_batch_size=8, max_delay_s=2.0))
    batcher.add(make_request("r0"), now_s=1.0)
    assert batcher.flush_ready(2.5) == []
    flushed = batcher.flush_ready(3.0)
    assert len(flushed) == 1


def test_deadline_forces_early_flush():
    policy = BatchPolicy(max_batch_size=8, max_delay_s=100.0, deadline_margin_s=0.5)
    batcher = Batcher(policy)
    batcher.add(make_request("r0", arrival_s=0.0, deadline_s=5.0), now_s=0.0)
    assert batcher.flush_ready(4.0) == []
    flushed = batcher.flush_ready(4.6)  # within margin of the 5s deadline
    assert len(flushed) == 1


def test_flush_all_drains_everything():
    batcher = Batcher()
    batcher.add(make_request("r0"), now_s=0.0)
    batcher.add(make_request("r1", tenant="beta"), now_s=0.0)
    flushed = batcher.flush_all(9.0)
    assert len(flushed) == 2
    assert all(b.flushed_s == 9.0 for b in flushed)
    assert batcher.open_batches == []


def test_to_task_request_aggregates_members():
    batcher = Batcher(BatchPolicy(max_batch_size=3, memory_bucket_gib=1.0))
    batcher.add(make_request("r0", gops=2.0, memory_gib=0.4, deadline_s=50.0), 0.0)
    batcher.add(make_request("r1", gops=3.0, memory_gib=0.6, deadline_s=20.0), 0.0)
    [batch] = batcher.add(make_request("r2", gops=5.0, memory_gib=0.5), 1.0)
    task = batch.to_task_request(flush_s=1.0, energy_weight=0.8)
    assert task.task_id == batch.batch_id
    assert task.arrival_s == 1.0
    assert task.gops == pytest.approx(10.0)
    assert task.cores == 2
    assert task.memory_gib == pytest.approx(0.6)  # max over members
    assert task.energy_weight == 0.8
    assert task.deadline_s == 20.0  # earliest member deadline


def test_expired_deadline_is_dropped_from_task_not_crashing():
    batcher = Batcher(BatchPolicy(max_batch_size=2))
    batcher.add(make_request("r0", arrival_s=0.0, deadline_s=1.0), 0.0)
    [batch] = batcher.flush_all(5.0)  # flushed after the member deadline passed
    task = batch.to_task_request(flush_s=5.0, energy_weight=0.5)
    assert task.deadline_s is None  # expired deadline cannot precede arrival
    live = batch.to_task_request(flush_s=0.5, energy_weight=0.5)
    assert live.deadline_s == 1.0  # still carried while it is ahead


def test_policy_validation():
    with pytest.raises(ValueError):
        BatchPolicy(max_batch_size=0)
    with pytest.raises(ValueError):
        BatchPolicy(max_delay_s=-1.0)
    with pytest.raises(ValueError):
        BatchPolicy(memory_bucket_gib=0.0)
