"""SLA tracker unit tests plus the full serving round trip."""

from __future__ import annotations

import pytest

from repro import LegatoSystem, ServingWorkload
from repro.scheduler.cluster import Cluster
from repro.scheduler.heats import HeatsScheduler
from repro.scheduler.modeling import ProfilingCampaign
from repro.serving import (
    BatchPolicy,
    RequestGateway,
    ServingLoop,
    SlaTracker,
    Tenant,
    endpoint,
    synthesize_traffic,
)


class TestSlaTracker:
    def test_percentiles_and_throughput(self):
        tracker = SlaTracker()
        for latency in range(1, 101):  # 1..100 seconds
            tracker.record_completion("acme", float(latency), energy_j=2.0)
        report = tracker.report("acme", horizon_s=50.0)
        assert report.completed == 100
        assert report.p50_latency_s == pytest.approx(50.5)
        assert report.p99_latency_s == pytest.approx(99.01)
        assert report.throughput_rps == pytest.approx(2.0)
        assert report.energy_per_request_j == pytest.approx(2.0)

    def test_rejection_and_deadline_accounting(self):
        tracker = SlaTracker()
        tracker.record_offered("acme", admitted=True)
        tracker.record_offered("acme", admitted=True)
        tracker.record_offered("acme", admitted=False)
        tracker.record_completion("acme", 1.0, 1.0, deadline_met=True)
        tracker.record_completion("acme", 9.0, 1.0, deadline_met=False)
        report = tracker.report("acme", horizon_s=10.0)
        assert report.rejection_rate == pytest.approx(1 / 3)
        assert report.deadline_hit_rate == pytest.approx(0.5)

    def test_slo_verdict(self):
        tracker = SlaTracker()
        tracker.set_latency_slo("acme", 5.0)
        tracker.record_completion("acme", 4.0, 1.0)
        assert tracker.report("acme", 10.0).slo_met
        tracker.record_completion("acme", 60.0, 1.0)
        assert not tracker.report("acme", 10.0).slo_met

    def test_slo_not_vacuously_met_when_all_traffic_dropped(self):
        tracker = SlaTracker()
        tracker.set_latency_slo("acme", 5.0)
        tracker.record_offered("acme", admitted=True)
        tracker.record_dropped("acme")
        report = tracker.report("acme", 10.0)
        assert report.completed == 0 and report.dropped == 1
        assert not report.slo_met

    def test_empty_tenant_report(self):
        report = SlaTracker().report("ghost", horizon_s=10.0)
        assert report.completed == 0
        assert report.p99_latency_s == 0.0
        assert report.deadline_hit_rate == 1.0

    def test_registered_tenant_with_zero_traffic_still_reported(self):
        tracker = SlaTracker()
        tracker.set_latency_slo("quiet", 5.0)
        reports = tracker.reports(horizon_s=10.0)
        assert "quiet" in reports
        assert reports["quiet"].offered == 0
        assert reports["quiet"].slo_met


class TestEndpoints:
    def test_known_endpoints(self):
        for name in ("ml_inference", "smartmirror", "iot_gateway"):
            assert endpoint(name).name == name
        with pytest.raises(KeyError):
            endpoint("nope")

    def test_traffic_is_sorted_and_reproducible(self):
        tenants = [Tenant(name="a"), Tenant(name="b")]
        mix = {"a": {"ml_inference": 1.0}, "b": {"iot_gateway": 1.0}}
        one = synthesize_traffic(tenants, mix, offered_rps=10.0, duration_s=20.0, seed=4)
        two = synthesize_traffic(tenants, mix, offered_rps=10.0, duration_s=20.0, seed=4)
        assert [r.request_id for r in one] == [r.request_id for r in two]
        arrivals = [r.arrival_s for r in one]
        assert arrivals == sorted(arrivals)
        assert {r.tenant for r in one} == {"a", "b"}

    def test_missing_mix_rejected(self):
        with pytest.raises(ValueError):
            synthesize_traffic([Tenant(name="a")], {}, offered_rps=1.0, duration_s=1.0)


def _two_tenant_workload(offered_rps=20.0, duration_s=30.0, seed=9) -> ServingWorkload:
    tenants = [
        Tenant(name="perf-tenant", rate_limit_rps=40, burst=40, energy_weight=0.1,
               latency_slo_s=120.0),
        Tenant(name="eco-tenant", rate_limit_rps=8, burst=8, energy_weight=0.9),
    ]
    mix = {
        "perf-tenant": {"ml_inference": 0.6, "smartmirror": 0.4},
        "eco-tenant": {"iot_gateway": 0.7, "ml_inference": 0.3},
    }
    return ServingWorkload.synthetic(
        tenants, mix, offered_rps=offered_rps, duration_s=duration_s, seed=seed
    )


class TestServingLoop:
    def test_round_trip_conservation(self, heterogeneous_cluster):
        workload = _two_tenant_workload()
        models = ProfilingCampaign(heterogeneous_cluster, seed=3).run().fit()
        loop = ServingLoop(
            heterogeneous_cluster,
            HeatsScheduler(models),
            RequestGateway(workload.tenants),
            batch_policy=BatchPolicy(max_batch_size=8, max_delay_s=1.0),
        )
        report = loop.run(workload.requests)
        # Every offered request is accounted for exactly once.
        assert report.offered == len(workload.requests)
        assert report.admitted == report.completed + report.dropped
        assert report.rejected == report.offered - report.admitted
        assert len(report.latencies_s) == report.completed
        per_tenant = report.tenant_reports
        assert set(per_tenant) == {"perf-tenant", "eco-tenant"}
        assert sum(r.offered for r in per_tenant.values()) == report.offered
        assert sum(r.completed for r in per_tenant.values()) == report.completed
        # The tight rate limit on the eco tenant actually rejects traffic.
        assert per_tenant["eco-tenant"].rejected > 0
        assert report.ops_per_sec > 0
        assert report.p99_latency_s >= report.p50_latency_s > 0

    def test_facade_serve_round_trip(self):
        workload = _two_tenant_workload(offered_rps=12.0, duration_s=20.0)
        report = LegatoSystem().serve(workload, cluster_scale=2)
        assert report.completed > 0
        assert report.cache_stats is not None
        assert report.cache_stats.lookups > 0
        summary = report.summary()
        assert set(summary["tenants"]) == {"perf-tenant", "eco-tenant"}

    def test_cache_off_matches_cache_on_outcome(self):
        workload = _two_tenant_workload(offered_rps=12.0, duration_s=20.0)
        on = LegatoSystem().serve(workload, cluster_scale=2, use_score_cache=True)
        off = LegatoSystem().serve(workload, cluster_scale=2, use_score_cache=False)
        assert on.offered == off.offered
        assert on.completed == off.completed
        assert off.cache_stats is None

    def test_deadline_expiring_at_end_of_stream_does_not_crash(self, heterogeneous_cluster):
        # The lone request's deadline passes before the end-of-stream flush
        # (arrival + max_delay); the run must complete and score the miss.
        from repro.serving.endpoints import endpoint
        from repro.serving.gateway import ServingRequest

        shape = endpoint("ml_inference")
        tenant = Tenant(name="a")
        request = ServingRequest(
            request_id="r0",
            tenant="a",
            use_case=shape.name,
            arrival_s=10.0,
            workload=shape.workload,
            gops=shape.gops_per_request,
            cores=shape.cores,
            memory_gib=shape.memory_gib,
            deadline_s=10.5,
        )
        models = ProfilingCampaign(heterogeneous_cluster, seed=3).run().fit()
        loop = ServingLoop(
            heterogeneous_cluster,
            HeatsScheduler(models),
            RequestGateway([tenant]),
            batch_policy=BatchPolicy(max_batch_size=16, max_delay_s=2.0),
        )
        report = loop.run([request])
        assert report.completed == 1
        assert report.tenant_reports["a"].deadline_misses == 1

    def test_tail_batch_flushes_deadline_aware_not_at_max_delay(self, heterogeneous_cluster):
        # A tail request with slack (deadline at end+1.0 s, margin 0.5 s)
        # must flush via the deadline-aware path and meet its deadline, not
        # be held until end + max_delay (2.0 s) past the deadline.
        from repro.serving.endpoints import endpoint
        from repro.serving.gateway import ServingRequest

        shape = endpoint("iot_gateway")
        tenant = Tenant(name="a")
        request = ServingRequest(
            request_id="tail",
            tenant="a",
            use_case=shape.name,
            arrival_s=10.0,
            workload=shape.workload,
            gops=0.1,  # near-instant execution: latency is flush-dominated
            cores=shape.cores,
            memory_gib=shape.memory_gib,
            deadline_s=11.0,
        )
        models = ProfilingCampaign(heterogeneous_cluster, seed=3).run().fit()
        loop = ServingLoop(
            heterogeneous_cluster,
            HeatsScheduler(models),
            RequestGateway([tenant]),
            batch_policy=BatchPolicy(
                max_batch_size=16, max_delay_s=2.0, deadline_margin_s=0.5
            ),
        )
        report = loop.run([request])
        assert report.completed == 1
        assert report.tenant_reports["a"].deadline_hits == 1

    def test_bounded_queue_backpressure_fires_under_burst(self, heterogeneous_cluster):
        # 60 requests inside one flush tick against a depth-5 queue: the
        # token bucket admits them but the bounded queue must shed most.
        from repro.serving.endpoints import endpoint
        from repro.serving.gateway import ServingRequest

        shape = endpoint("ml_inference")
        tenant = Tenant(name="a", rate_limit_rps=1000.0, burst=100, max_queue_depth=5)
        requests = [
            ServingRequest(
                request_id=f"r{i}",
                tenant="a",
                use_case=shape.name,
                arrival_s=i * 0.001,
                workload=shape.workload,
                gops=shape.gops_per_request,
                cores=shape.cores,
                memory_gib=shape.memory_gib,
            )
            for i in range(60)
        ]
        models = ProfilingCampaign(heterogeneous_cluster, seed=3).run().fit()
        gateway = RequestGateway([tenant])
        loop = ServingLoop(
            heterogeneous_cluster, HeatsScheduler(models), gateway, flush_tick_s=0.5
        )
        report = loop.run(requests)
        assert gateway.stats("a").rejected_queue_full > 0
        assert report.admitted == 5
        assert report.admitted == report.completed + report.dropped

    def test_scheduler_rescheduling_interval_is_honoured(self, heterogeneous_cluster):
        intervals: dict = {}

        class RecordingScheduler:
            name = "recording"
            supports_rescheduling = True

            def __init__(self, interval):
                from repro.scheduler.heats import HeatsConfig

                self.config = HeatsConfig(rescheduling_interval_s=interval)

            def place(self, request, cluster, time_s):
                for node in cluster:
                    if node.can_host(request.cores, request.memory_gib):
                        return node.name
                return None

            def reschedule(self, running, cluster, time_s):
                intervals.setdefault("ticks", []).append(time_s)
                return []

        workload = _two_tenant_workload(offered_rps=6.0, duration_s=10.0)
        loop = ServingLoop(
            heterogeneous_cluster, RecordingScheduler(7.0), RequestGateway(workload.tenants)
        )
        loop.run(workload.requests)
        ticks = intervals.get("ticks", [])
        assert ticks, "rescheduling should have run"
        assert ticks[0] == pytest.approx(7.0)

    def test_unknown_tenant_request_keeps_totals_consistent(self, heterogeneous_cluster):
        # ServingLoop.run accepts raw requests; an unregistered tenant's
        # request is rejected but must still show up in the totals so
        # overall and per-tenant numbers agree.
        from repro.serving.endpoints import endpoint
        from repro.serving.gateway import ServingRequest

        shape = endpoint("ml_inference")
        stray = ServingRequest(
            request_id="s0",
            tenant="stranger",
            use_case=shape.name,
            arrival_s=0.0,
            workload=shape.workload,
            gops=shape.gops_per_request,
            cores=shape.cores,
            memory_gib=shape.memory_gib,
        )
        models = ProfilingCampaign(heterogeneous_cluster, seed=3).run().fit()
        loop = ServingLoop(
            heterogeneous_cluster, HeatsScheduler(models), RequestGateway([Tenant(name="a")])
        )
        report = loop.run([stray])
        assert report.offered == 1
        assert report.admitted == 0
        assert report.rejection_rate == 1.0
        assert report.tenant_reports["stranger"].rejected == 1

    def test_loop_refuses_reuse(self, heterogeneous_cluster):
        workload = _two_tenant_workload(offered_rps=4.0, duration_s=5.0)
        models = ProfilingCampaign(heterogeneous_cluster, seed=3).run().fit()
        loop = ServingLoop(
            heterogeneous_cluster, HeatsScheduler(models), RequestGateway(workload.tenants)
        )
        loop.run(workload.requests)
        with pytest.raises(RuntimeError, match="only run once"):
            loop.run(workload.requests)

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            ServingWorkload(tenants=(), requests=())
        tenant = Tenant(name="a")
        with pytest.raises(ValueError):
            ServingWorkload(tenants=(tenant, tenant), requests=())
        stray = synthesize_traffic(
            [Tenant(name="b")], {"b": {"ml_inference": 1.0}}, offered_rps=5.0, duration_s=5.0
        )
        with pytest.raises(ValueError):
            ServingWorkload(tenants=(tenant,), requests=tuple(stray))
