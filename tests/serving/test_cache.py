"""Prediction-score cache unit tests: LRU mechanics and scheduler hook."""

from __future__ import annotations

import pytest

from repro.hardware.microserver import WorkloadKind
from repro.scheduler.cluster import Cluster
from repro.scheduler.heats import HeatsScheduler
from repro.scheduler.modeling import ProfilingCampaign
from repro.scheduler.workload import TaskRequest
from repro.serving.cache import PredictionScoreCache


def make_request(task_id="t0", gops=100.0, cores=2, weight=0.5) -> TaskRequest:
    return TaskRequest(
        task_id=task_id,
        arrival_s=0.0,
        workload=WorkloadKind.DNN_INFERENCE,
        gops=gops,
        cores=cores,
        memory_gib=1.0,
        energy_weight=weight,
    )


class TestLruMechanics:
    def test_hit_miss_stats(self):
        cache = PredictionScoreCache(capacity=4)
        key = cache.key_for(make_request(), ["a", "b"], 0.5)
        assert cache.get(key) is None
        cache.put(key, ("score",))
        assert cache.get(key) == ("score",)
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_capacity_evicts_least_recently_used(self):
        cache = PredictionScoreCache(capacity=2)
        k1 = cache.key_for(make_request(gops=10.0), ["a"], 0.5)
        k2 = cache.key_for(make_request(gops=1000.0), ["a"], 0.5)
        k3 = cache.key_for(make_request(gops=100000.0), ["a"], 0.5)
        cache.put(k1, (1,))
        cache.put(k2, (2,))
        cache.get(k1)  # refresh k1 so k2 is LRU
        cache.put(k3, (3,))
        assert k1 in cache and k3 in cache and k2 not in cache
        assert cache.stats.evictions == 1

    def test_clear(self):
        cache = PredictionScoreCache(capacity=2)
        cache.put(cache.key_for(make_request(), ["a"], 0.5), (1,))
        cache.clear()
        assert len(cache) == 0


class TestKeying:
    def test_nearby_gops_share_a_bucket(self):
        cache = PredictionScoreCache(gops_bucket_ratio=1.25)
        base = cache.key_for(make_request(gops=100.0), ["a", "b"], 0.5)
        near = cache.key_for(make_request(gops=102.0), ["a", "b"], 0.5)
        far = cache.key_for(make_request(gops=200.0), ["a", "b"], 0.5)
        assert base == near
        assert base != far

    def test_key_distinguishes_shape_weight_and_candidates(self):
        cache = PredictionScoreCache()
        base = cache.key_for(make_request(), ["a", "b"], 0.5)
        assert base != cache.key_for(make_request(cores=4), ["a", "b"], 0.5)
        assert base != cache.key_for(make_request(), ["a", "b"], 0.9)
        assert base != cache.key_for(make_request(), ["a"], 0.5)

    def test_buckets_are_uniformly_geometric_below_one(self):
        cache = PredictionScoreCache(gops_bucket_ratio=1.25)
        # 0.81 and 1.24 are ~1.53x apart: more than one ratio, so they must
        # not share a bucket (int() truncation used to merge them).
        assert cache.gops_bucket(0.81) != cache.gops_bucket(1.24)
        assert cache.gops_bucket(1.0) == cache.gops_bucket(1.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            PredictionScoreCache(capacity=0)
        with pytest.raises(ValueError):
            PredictionScoreCache(gops_bucket_ratio=1.0)


class TestSchedulerHook:
    @pytest.fixture
    def scored_pair(self, heterogeneous_cluster):
        models = ProfilingCampaign(heterogeneous_cluster, seed=3).run().fit()
        cache = PredictionScoreCache()
        cached = HeatsScheduler(models, score_cache=cache)
        plain = HeatsScheduler(models)
        return heterogeneous_cluster, cached, plain, cache

    def test_cached_ranking_matches_uncached(self, scored_pair):
        cluster, cached, plain, cache = scored_pair
        request = make_request()
        candidates = cluster.feasible_nodes(request.cores, request.memory_gib)
        expected = plain.score_candidates(request, candidates)
        first = cached.score_candidates(request, candidates)
        second = cached.score_candidates(request, candidates)
        assert first == expected
        assert second == expected
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_place_uses_cache_across_requests(self, scored_pair):
        cluster, cached, plain, cache = scored_pair
        # Same shape, slightly different work: second placement is a hit.
        first = make_request(task_id="t0", gops=100.0)
        second = make_request(task_id="t1", gops=101.0)
        assert cached.place(first, cluster, 0.0) == plain.place(first, cluster, 0.0)
        assert cached.place(second, cluster, 0.0) == plain.place(second, cluster, 0.0)
        assert cache.stats.hits >= 1

    def test_cache_key_tracks_cluster_load(self, scored_pair):
        cluster, cached, _, cache = scored_pair
        request = make_request()
        cached.place(request, cluster, 0.0)
        misses = cache.stats.misses
        # Occupy a node: the feasible set changes, so the key must change.
        busy = cluster.nodes[0]
        busy.reserve("occupier", busy.total.cores, 0.1)
        cached.place(make_request(task_id="t1"), cluster, 1.0)
        assert cache.stats.misses == misses + 1
