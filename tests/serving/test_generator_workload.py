"""ServingWorkload accepts any iterable and normalises it exactly once."""

from __future__ import annotations

from repro.scheduler.cluster import Cluster
from repro.scheduler.heats import HeatsScheduler
from repro.serving.batching import BatchPolicy
from repro.serving.endpoints import synthesize_traffic
from repro.serving.gateway import RequestGateway, Tenant
from repro.serving.loop import ServingLoop, ServingWorkload
from repro.serving.sla import SlaTracker


def _tenants():
    return (
        Tenant(name="alpha", rate_limit_rps=40.0, burst=20),
        Tenant(name="beta", rate_limit_rps=40.0, burst=20),
    )


def _requests():
    return synthesize_traffic(
        _tenants(),
        {"alpha": {"ml_inference": 1.0}, "beta": {"iot_gateway": 1.0}},
        offered_rps=10.0,
        duration_s=30.0,
        seed=4242,
    )


def _serve(workload: ServingWorkload):
    cluster = Cluster.heats_testbed(scale=1)
    scheduler = HeatsScheduler.with_learned_models(cluster, seed=7)
    gateway = RequestGateway(workload.tenants)
    loop = ServingLoop(
        cluster=cluster,
        scheduler=scheduler,
        gateway=gateway,
        batch_policy=BatchPolicy(),
        tracker=SlaTracker(),
    )
    return loop.run(workload.requests)


def test_generator_backed_workload_normalises_to_tuple() -> None:
    requests = _requests()
    workload = ServingWorkload(
        tenants=(t for t in _tenants()),
        requests=(r for r in requests),
    )
    assert isinstance(workload.tenants, tuple)
    assert isinstance(workload.requests, tuple)
    assert workload.requests == tuple(requests)
    # The stream is re-iterable after normalisation (generators are not).
    assert list(workload.requests) == list(workload.requests)


def test_generator_workload_serves_identically_to_list_form() -> None:
    requests = _requests()
    from_list = ServingWorkload(tenants=_tenants(), requests=tuple(requests))
    from_generator = ServingWorkload(
        tenants=_tenants(), requests=(r for r in requests)
    )
    assert from_list == from_generator
    report_list = _serve(from_list)
    report_generator = _serve(from_generator)
    assert report_list.offered == report_generator.offered
    assert report_list.completed == report_generator.completed
    assert report_list.dropped == report_generator.dropped
    assert report_list.latencies_s == report_generator.latencies_s


def test_validation_still_fires_after_normalisation() -> None:
    import pytest

    with pytest.raises(ValueError):
        ServingWorkload(tenants=iter(()), requests=iter(()))
