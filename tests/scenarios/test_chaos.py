"""Unit coverage for the chaos engine, scheduler proxy, and fault model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime.fault_tolerance import FaultInjector, FaultModel
from repro.scenarios import (
    ChaosEngine,
    ChaosEventSpec,
    ChaosSchedule,
    ChaosScheduler,
    ClusterActuator,
)
from repro.scheduler.cluster import Cluster
from repro.telemetry.trace import Tracer


class StubScheduler:
    """Minimal scheduler: first-fit placement, no own rescheduling."""

    name = "stub"
    supports_rescheduling = False

    def place(self, request, cluster, time_s):
        for node in cluster.feasible_nodes(request.cores, request.memory_gib):
            return node.name
        return None


def _engine(events, cluster, seed: int = 3, tracer=None) -> ChaosEngine:
    return ChaosEngine(
        ChaosSchedule(events=tuple(events)),
        ClusterActuator(cluster),
        np.random.default_rng(seed),
        tracer=tracer,
    )


def test_fault_model_and_injector_share_one_stream() -> None:
    """Satellite regression: FaultInjector is FaultModel + owned RNG."""
    injector = FaultInjector(fault_probability=0.4, systematic_fraction=0.5, seed=99)
    model = FaultModel(fault_probability=0.4, systematic_fraction=0.5)
    rng = np.random.default_rng(99)
    draws = [injector.draw_fault() for _ in range(200)]
    assert draws == [model.draw(rng) for _ in range(200)]
    assert injector.fault_probability == 0.4
    assert injector.systematic_fraction == 0.5


def test_fault_model_validates() -> None:
    with pytest.raises(ValueError):
        FaultModel(fault_probability=1.5)
    with pytest.raises(ValueError):
        FaultModel(systematic_fraction=-0.1)


def test_node_failure_blocks_evacuates_and_removes() -> None:
    cluster = Cluster.heats_testbed(scale=1)
    victim = cluster.nodes[0].name
    engine = _engine([ChaosEventSpec(kind="node_failure", at_s=10.0, target=victim)],
                     cluster)
    assert not engine.is_blocked(victim)
    decisions = engine.step([], cluster, 10.0)
    # Idle victim: blocked, no evacuations needed, removed immediately.
    assert decisions == []
    assert all(node.name != victim for node in cluster)
    report = engine.report()
    assert report.dead_nodes == ((victim, 10.0),)
    statuses = [(r.status, r.target) for r in report.records]
    assert ("applied", victim) in statuses and ("removed", victim) in statuses


def test_probability_zero_is_suppressed() -> None:
    cluster = Cluster.heats_testbed(scale=1)
    engine = _engine(
        [ChaosEventSpec(kind="node_failure", at_s=5.0, probability=0.0)], cluster
    )
    engine.step([], cluster, 5.0)
    record = engine.report().records[0]
    assert record.status == "suppressed"
    assert len(cluster) == len(Cluster.heats_testbed(scale=1))


def test_throttle_window_blocks_then_heals() -> None:
    cluster = Cluster.heats_testbed(scale=1)
    victim = cluster.nodes[0].name
    tracer = Tracer(enabled=True)
    engine = _engine(
        [ChaosEventSpec(kind="thermal_throttle", at_s=5.0, duration_s=10.0,
                        target=victim)],
        cluster,
        tracer=tracer,
    )
    engine.step([], cluster, 5.0)
    assert engine.is_blocked(victim)
    engine.step([], cluster, 20.0)
    assert not engine.is_blocked(victim)
    names = [span.name for span in tracer.drain()]
    assert "chaos.thermal_throttle" in names
    assert "chaos.thermal_throttle.healed" in names


def test_shard_events_skip_on_single_cluster() -> None:
    cluster = Cluster.heats_testbed(scale=1)
    engine = _engine(
        [
            ChaosEventSpec(kind="price_spike", at_s=1.0, duration_s=5.0),
            ChaosEventSpec(kind="partition", at_s=1.0, duration_s=5.0),
        ],
        cluster,
    )
    engine.step([], cluster, 1.0)
    assert [r.status for r in engine.report().records] == ["skipped", "skipped"]


def test_finish_heals_open_windows() -> None:
    cluster = Cluster.heats_testbed(scale=1)
    victim = cluster.nodes[0].name
    engine = _engine(
        [ChaosEventSpec(kind="thermal_throttle", at_s=1.0, duration_s=500.0,
                        target=victim)],
        cluster,
    )
    engine.step([], cluster, 1.0)
    assert engine.is_blocked(victim)
    engine.finish(60.0)
    assert not engine.is_blocked(victim)
    assert any(r.status == "healed" for r in engine.report().records)


def test_proxy_delegates_and_vetoes_blocked_nodes() -> None:
    cluster = Cluster.heats_testbed(scale=1)
    inner = StubScheduler()
    engine = _engine([], cluster)
    proxy = ChaosScheduler(inner, engine)
    assert proxy.supports_rescheduling is True  # heartbeat is the chaos clock
    assert proxy.name == "chaos+stub"
    # __setattr__/__getattr__ forward to the wrapped scheduler (the seam
    # the autoscaler attachment and federation-stats reset rely on).
    proxy.autoscaler = "sentinel"
    assert inner.autoscaler == "sentinel"
    assert proxy.inner is inner

    from repro.scheduler.workload import TaskRequest
    from repro.hardware.microserver import WorkloadKind

    request = TaskRequest(
        task_id="t1", arrival_s=0.0, workload=WorkloadKind.DNN_INFERENCE,
        gops=1.0, cores=1, memory_gib=0.5,
    )
    chosen = proxy.place(request, cluster, 0.0)
    assert chosen == inner.place(request, cluster, 0.0)
    engine._blocked[chosen] = "thermal_throttle"
    assert proxy.place(request, cluster, 0.0) is None


def test_seeded_victim_pick_is_reproducible() -> None:
    picks = []
    for _ in range(2):
        cluster = Cluster.heats_testbed(scale=1)
        engine = _engine([ChaosEventSpec(kind="node_failure", at_s=0.0)], cluster,
                         seed=17)
        engine.step([], cluster, 0.0)
        picks.append(engine.report().dead_nodes)
    assert picks[0] == picks[1]
