"""Scenario invariants on all three deployment backends.

The acceptance gate for the subsystem: a node failure injected into a
flash crowd must leave every backend's accounting conserved (offered =
completed + rejected + dropped), attribute no completion to a dead node,
keep SLA bookkeeping internally consistent, and replay bit-identically
at equal seeds.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.api import Deployment, DeploymentSpec
from repro.scenarios import (
    ArrivalSpec,
    ChaosEventSpec,
    ChaosSchedule,
    ParetoSpec,
    ScenarioSpec,
    TenantTrafficSpec,
    conservation_violations,
)

BACKENDS = ("single", "federated", "autoscaled")


def _scenario(seed_base: int = 7, probability: float = 1.0) -> ScenarioSpec:
    from repro.core.seeding import SeedPolicy

    return ScenarioSpec(
        name="failure-under-flash-crowd",
        duration_s=90.0,
        traffic=(
            TenantTrafficSpec(
                name="burst",
                arrival=ArrivalSpec(kind="flash_crowd", rate_rps=2.0, spike_rps=15.0,
                                    spike_start_s=20.0, spike_duration_s=15.0),
                endpoint_mix=(("ml_inference", 0.6), ("iot_gateway", 0.4)),
            ),
            TenantTrafficSpec(
                name="steady",
                arrival=ArrivalSpec(kind="poisson", rate_rps=2.0),
                join_s=10.0,
                leave_s=70.0,
            ),
        ),
        chaos=ChaosSchedule(events=(
            ChaosEventSpec(kind="node_failure", at_s=30.0, probability=probability),
            ChaosEventSpec(kind="thermal_throttle", at_s=15.0, duration_s=20.0),
        )),
        sizes=ParetoSpec(alpha=1.6, lower=0.5, upper=3.0),
        deadlines=ParetoSpec(alpha=2.0, lower=0.8, upper=2.5),
        seed=SeedPolicy(base=seed_base),
    )


def _deployment(preset: str) -> Deployment:
    spec = DeploymentSpec.preset(preset)
    spec = replace(
        spec,
        telemetry=replace(spec.telemetry, enabled=True, tracing=True),
        scheduler=replace(spec.scheduler, rescheduling_interval_s=10.0),
    )
    return Deployment.from_spec(spec)


@pytest.mark.parametrize("preset", BACKENDS)
def test_conservation_and_dead_node_invariants(preset: str) -> None:
    deployment = _deployment(preset)
    try:
        outcome = deployment.run_scenario(_scenario())
        assert conservation_violations(outcome) == []
        assert outcome.report.offered == len(outcome.workload.requests)
        # The injected failure actually fired and the victim came out.
        assert outcome.chaos.applied("node_failure")
        assert outcome.chaos.dead_nodes
        removed_at = dict(outcome.chaos.dead_nodes)
        for task in outcome.report.simulation.completed:
            final = task.nodes[-1]
            if final in removed_at:
                assert task.finish_s <= removed_at[final]
        # Chaos is visible in the trace stream.
        chaos_spans = [
            s for s in outcome.report.trace_spans if s.name.startswith("chaos.")
        ]
        assert chaos_spans
    finally:
        deployment.close()


@pytest.mark.parametrize("preset", BACKENDS)
def test_replay_is_bit_identical_at_equal_seeds(preset: str) -> None:
    outcomes = []
    for _ in range(2):
        deployment = _deployment(preset)
        try:
            outcomes.append(deployment.run_scenario(_scenario()))
        finally:
            deployment.close()
    first, second = outcomes
    assert first.workload == second.workload
    assert first.chaos == second.chaos
    assert first.report.offered == second.report.offered
    assert first.report.completed == second.report.completed
    assert first.report.rejected == second.report.rejected
    assert first.report.dropped == second.report.dropped
    assert first.report.latencies_s == second.report.latencies_s
    assert first.report.simulation.makespan_s == second.report.simulation.makespan_s


def test_different_seeds_diverge() -> None:
    deployment = _deployment("single")
    try:
        a = deployment.run_scenario(_scenario(seed_base=7))
        b = deployment.run_scenario(_scenario(seed_base=1234))
        assert a.workload != b.workload
    finally:
        deployment.close()


def test_partition_and_price_spike_on_federation() -> None:
    from repro.core.seeding import SeedPolicy

    spec = ScenarioSpec(
        name="regional-trouble",
        duration_s=80.0,
        traffic=(
            TenantTrafficSpec(
                name="t",
                arrival=ArrivalSpec(kind="poisson", rate_rps=4.0),
            ),
        ),
        chaos=ChaosSchedule(events=(
            ChaosEventSpec(kind="partition", at_s=20.0, duration_s=25.0),
            ChaosEventSpec(kind="price_spike", at_s=15.0, duration_s=30.0,
                           magnitude=5.0),
        )),
        seed=SeedPolicy(base=21),
    )
    deployment = _deployment("federated")
    try:
        federation = deployment.backend.federation
        prices_before = {
            s.name: s.profile.energy_price_per_kwh for s in federation.shards
        }
        outcome = deployment.run_scenario(spec)
        assert conservation_violations(outcome) == []
        assert outcome.chaos.applied("partition")
        assert outcome.chaos.applied("price_spike")
        # Windows are closed (in-run or by finish): prices restored, no
        # shard left draining, scheduler restored for the next run.
        assert {
            s.name: s.profile.energy_price_per_kwh for s in federation.shards
        } == prices_before
        assert federation.scheduler.draining_shards == []
        assert conservation_violations(deployment.run_scenario(spec)) == []
    finally:
        deployment.close()


@pytest.mark.parametrize("probability", [0.0, 1.0])
def test_suppressed_events_leave_topology_alone(probability: float) -> None:
    deployment = _deployment("single")
    try:
        nodes_before = len(deployment.backend.cluster)
        outcome = deployment.run_scenario(_scenario(probability=probability))
        assert conservation_violations(outcome) == []
        if probability == 0.0:
            assert not outcome.chaos.dead_nodes
            assert len(deployment.backend.cluster) == nodes_before
        else:
            assert outcome.chaos.dead_nodes
    finally:
        deployment.close()
