"""Property suites for arrival processes and heavy-tailed samplers.

The invariants the scenario subsystem is guarded by, at the generator
level:

* arrival streams are monotone non-decreasing and confined to their
  window, for every process shape;
* equal seeds produce bit-identical streams (the replay primitive);
* realised rates conserve the shape's expected count within statistical
  tolerance;
* a recorded trace round-trips through JSON exactly and replays the
  recorded stream bit-for-bit;
* bounded-Pareto samples respect their bounds and consume exactly one
  uniform per draw (stable draw counts keep replays aligned).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import (
    BoundedPareto,
    DiurnalArrivals,
    FlashCrowdArrivals,
    PoissonArrivals,
    RecordedTrace,
    bounded_pareto,
)


def _process(kind: str, rate: float):
    if kind == "poisson":
        return PoissonArrivals(rate)
    if kind == "diurnal":
        return DiurnalArrivals(rate, amplitude=0.6, period_s=40.0)
    return FlashCrowdArrivals(rate, rate * 8.0, 10.0, 10.0)


@settings(max_examples=40, deadline=None)
@given(
    kind=st.sampled_from(["poisson", "diurnal", "flash_crowd"]),
    rate=st.floats(min_value=0.5, max_value=30.0),
    duration=st.floats(min_value=5.0, max_value=120.0),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_streams_are_monotone_in_window_and_seed_stable(kind, rate, duration, seed):
    process = _process(kind, rate)
    first = process.generate(duration, np.random.default_rng(seed))
    again = process.generate(duration, np.random.default_rng(seed))
    assert first == again  # bit-identical at equal seeds
    assert all(0.0 <= t < duration for t in first)
    assert all(b >= a for a, b in zip(first, first[1:]))


@settings(max_examples=15, deadline=None)
@given(
    kind=st.sampled_from(["poisson", "diurnal", "flash_crowd"]),
    rate=st.floats(min_value=5.0, max_value=25.0),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_rate_conservation_within_tolerance(kind, rate, seed):
    """Realised arrivals track the integrated rate (CLT-sized tolerance)."""
    duration = 200.0
    process = _process(kind, rate)
    expected = process.expected_count(duration)
    realised = len(process.generate(duration, np.random.default_rng(seed)))
    # A Poisson count deviates by ~sqrt(mean); 6 sigma plus slack keeps
    # the property sharp without flaking across hypothesis seeds.
    tolerance = 6.0 * math.sqrt(expected) + 10.0
    assert abs(realised - expected) <= tolerance


def test_flash_crowd_concentrates_arrivals_in_spike() -> None:
    process = FlashCrowdArrivals(1.0, 50.0, 30.0, 10.0)
    stream = process.generate(60.0, np.random.default_rng(7))
    inside = [t for t in stream if 30.0 <= t < 40.0]
    assert len(inside) > len(stream) / 2


@settings(max_examples=25, deadline=None)
@given(
    rate=st.floats(min_value=1.0, max_value=20.0),
    duration=st.floats(min_value=5.0, max_value=60.0),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_recorded_trace_round_trip_is_exact(rate, duration, seed):
    trace = RecordedTrace.record(DiurnalArrivals(rate, period_s=30.0), duration, seed)
    rebuilt = RecordedTrace.from_json(trace.to_json())
    assert rebuilt.arrivals == trace.arrivals  # bit-for-bit through JSON
    # Replay consumes no randomness: any generator yields the recording.
    assert rebuilt.generate(duration, np.random.default_rng(0)) == list(trace.arrivals)
    assert rebuilt.expected_count(duration) == float(len(trace.arrivals))


def test_recorded_trace_rejects_disorder() -> None:
    with pytest.raises(ValueError):
        RecordedTrace([3.0, 1.0])
    with pytest.raises(ValueError):
        RecordedTrace([-1.0, 1.0])
    with pytest.raises(ValueError):
        RecordedTrace.from_json('{"kind": "other", "arrivals": []}')


@settings(max_examples=40, deadline=None)
@given(
    alpha=st.floats(min_value=0.3, max_value=4.0),
    lower=st.floats(min_value=0.1, max_value=5.0),
    spread=st.floats(min_value=0.0, max_value=20.0),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_bounded_pareto_respects_bounds_and_draw_count(alpha, lower, spread, seed):
    upper = lower + spread
    dist = BoundedPareto(alpha=alpha, lower=lower, upper=upper)
    rng = np.random.default_rng(seed)
    samples = [dist.sample(rng) for _ in range(200)]
    assert all(lower <= s <= upper + 1e-9 for s in samples)
    # Exactly one uniform per draw: a fresh generator advanced 200 draws
    # lands on the same next value.
    shadow = np.random.default_rng(seed)
    for _ in range(200):
        shadow.random()
    assert rng.random() == shadow.random()


def test_bounded_pareto_mean_matches_samples() -> None:
    dist = BoundedPareto(alpha=1.8, lower=1.0, upper=10.0)
    rng = np.random.default_rng(11)
    empirical = float(np.mean([dist.sample(rng) for _ in range(20000)]))
    assert empirical == pytest.approx(dist.mean, rel=0.05)


def test_bounded_pareto_validation() -> None:
    with pytest.raises(ValueError):
        BoundedPareto(alpha=0.0)
    with pytest.raises(ValueError):
        BoundedPareto(lower=2.0, upper=1.0)
    with pytest.raises(ValueError):
        bounded_pareto(np.random.default_rng(0), 1.0, 0.0, 1.0)
    assert bounded_pareto(np.random.default_rng(0), 1.0, 2.0, 2.0) == 2.0
