"""ScenarioSpec validation, serialisation, and workload materialisation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.spec import SpecValidationError
from repro.scenarios import (
    ArrivalSpec,
    ChaosEventSpec,
    ChaosSchedule,
    ParetoSpec,
    ScenarioSpec,
    TenantTrafficSpec,
    build_workload,
)


def _two_tenant_spec(**overrides) -> ScenarioSpec:
    base = dict(
        name="unit",
        duration_s=60.0,
        traffic=(
            TenantTrafficSpec(
                name="alpha",
                arrival=ArrivalSpec(kind="flash_crowd", rate_rps=3.0, spike_rps=20.0,
                                    spike_start_s=10.0, spike_duration_s=10.0),
                endpoint_mix=(("ml_inference", 0.7), ("iot_gateway", 0.3)),
            ),
            TenantTrafficSpec(
                name="beta",
                arrival=ArrivalSpec(kind="diurnal", rate_rps=2.0, amplitude=0.5,
                                    period_s=30.0),
                join_s=15.0,
                leave_s=45.0,
            ),
        ),
        chaos=ChaosSchedule(events=(
            ChaosEventSpec(kind="node_failure", at_s=20.0),
            ChaosEventSpec(kind="partition", at_s=25.0, duration_s=15.0),
        )),
        sizes=ParetoSpec(alpha=1.5, lower=0.5, upper=4.0),
        deadlines=ParetoSpec(alpha=2.0, lower=0.8, upper=3.0),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def test_valid_spec_checks_clean() -> None:
    spec = _two_tenant_spec()
    assert spec.validate() == []
    assert spec.check() is spec


def test_validation_reports_every_issue_at_once() -> None:
    spec = ScenarioSpec(
        name="",
        duration_s=-5.0,
        traffic=(
            TenantTrafficSpec(
                name="dup",
                arrival=ArrivalSpec(kind="warp", rate_rps=-1.0),
                endpoint_mix=(("no_such_endpoint", -2.0),),
                join_s=100.0,
            ),
            TenantTrafficSpec(name="dup", energy_weight=3.0),
        ),
        chaos=ChaosSchedule(events=(
            ChaosEventSpec(kind="meteor", at_s=-1.0, probability=2.0),
            ChaosEventSpec(kind="partition", at_s=5.0, duration_s=0.0),
        )),
        sizes=ParetoSpec(alpha=-1.0, lower=2.0, upper=1.0),
    )
    issues = spec.validate()
    paths = {issue.path for issue in issues}
    # One pass surfaces problems across every layer of the tree.
    assert "scenario.name" in paths
    assert "scenario.duration_s" in paths
    assert "scenario.traffic" in paths  # duplicate tenant names
    assert "scenario.traffic[0].arrival.kind" in paths
    assert "scenario.traffic[0].endpoint_mix" in paths
    assert "scenario.traffic[0].join_s" in paths
    assert "scenario.traffic[1].energy_weight" in paths
    assert "scenario.chaos.events[0].kind" in paths
    assert "scenario.chaos.events[0].probability" in paths
    assert "scenario.chaos.events[1].duration_s" in paths
    assert "scenario.sizes.alpha" in paths
    with pytest.raises(SpecValidationError) as excinfo:
        spec.check()
    assert len(excinfo.value.issues) == len(issues)


def test_json_round_trip_is_lossless() -> None:
    spec = _two_tenant_spec()
    assert ScenarioSpec.from_json(spec.to_json()) == spec


@settings(max_examples=25, deadline=None)
@given(
    kind=st.sampled_from(["poisson", "diurnal", "flash_crowd"]),
    rate=st.floats(min_value=0.5, max_value=20.0),
    duration=st.floats(min_value=10.0, max_value=120.0),
    at=st.floats(min_value=0.0, max_value=100.0),
    probability=st.floats(min_value=0.0, max_value=1.0),
)
def test_json_round_trip_property(kind, rate, duration, at, probability):
    spec = ScenarioSpec(
        name="prop",
        duration_s=duration,
        traffic=(
            TenantTrafficSpec(name="t", arrival=ArrivalSpec(kind=kind, rate_rps=rate)),
        ),
        chaos=ChaosSchedule(events=(
            ChaosEventSpec(kind="thermal_throttle", at_s=at, duration_s=5.0,
                           probability=probability),
        )),
    )
    assert ScenarioSpec.from_json(spec.to_json()) == spec


def test_trace_arrival_round_trips_through_spec_json() -> None:
    spec = ScenarioSpec(
        name="trace",
        traffic=(
            TenantTrafficSpec(
                name="t",
                arrival=ArrivalSpec(kind="trace", trace=(0.5, 1.25, 7.75)),
            ),
        ),
    )
    rebuilt = ScenarioSpec.from_json(spec.to_json())
    assert rebuilt == spec
    assert rebuilt.traffic[0].arrival.trace == (0.5, 1.25, 7.75)


def test_from_dict_collects_shape_problems() -> None:
    with pytest.raises(SpecValidationError) as excinfo:
        ScenarioSpec.from_dict(
            {
                "mystery": 1,
                "traffic": [{"name": "t", "arrival": {"kind": "poisson", "warp": 9}}],
                "sizes": {"alpha": 1.0, "beta": 2.0},
            }
        )
    paths = {issue.path for issue in excinfo.value.issues}
    assert "scenario.mystery" in paths
    assert "scenario.traffic[0].arrival.warp" in paths
    assert "scenario.sizes.beta" in paths


def test_build_workload_is_deterministic_and_respects_churn() -> None:
    spec = _two_tenant_spec()
    first = build_workload(spec)
    second = build_workload(spec)
    assert first == second  # bit-identical at equal seeds
    arrivals = [r.arrival_s for r in first.requests]
    assert arrivals == sorted(arrivals)
    beta = [r for r in first.requests if r.tenant == "beta"]
    assert beta, "churned tenant still offers traffic inside its window"
    assert all(15.0 <= r.arrival_s < 45.0 for r in beta)


def test_build_workload_applies_heavy_tails() -> None:
    from repro.serving.endpoints import endpoint

    plain = _two_tenant_spec(sizes=None, deadlines=None)
    tailed = _two_tenant_spec()
    plain_arrivals = [(r.request_id, r.arrival_s) for r in build_workload(plain).requests]
    scaled = build_workload(tailed).requests
    # Arrival streams are independent of attribute sampling: same ids at
    # the same instants, whatever the request bodies look like.
    assert [(r.request_id, r.arrival_s) for r in scaled] == plain_arrivals
    for request in scaled:
        base = endpoint(request.use_case)
        size_ratio = request.gops / base.gops_per_request
        assert 0.5 - 1e-9 <= size_ratio <= 4.0 + 1e-9
        margin_ratio = (request.deadline_s - request.arrival_s) / base.default_deadline_s
        assert 0.8 - 1e-9 <= margin_ratio <= 3.0 + 1e-9
    assert any(
        r.gops != endpoint(r.use_case).gops_per_request for r in scaled
    )


def test_different_seed_policies_diverge() -> None:
    from repro.core.seeding import SeedPolicy

    a = build_workload(_two_tenant_spec())
    b = build_workload(_two_tenant_spec(seed=SeedPolicy(base=999)))
    assert a != b
