"""Drain-hook tests: scale-down never loses or double-places a request.

PR 2 could migrate *saturated* shards but had no path for retiring one:
dropping a shard with work on it would have stranded its placements.  The
drain hook closes that hole; these tests pin the conservation invariants
across a full scale-down under arbitrary workloads (hypothesis): every
placed task stays placed on exactly one node, queued work routes around
the draining shard, and removal is refused until the shard is empty.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federation import Federation, FederationConfig
from repro.hardware.microserver import WorkloadKind
from repro.scheduler.placement import PlacementEngine
from repro.scheduler.workload import TaskRequest

task_shapes = st.lists(
    st.tuples(
        st.sampled_from(list(WorkloadKind)),
        st.floats(min_value=5.0, max_value=500.0),  # gops
        st.integers(min_value=1, max_value=4),  # cores
        st.floats(min_value=0.25, max_value=2.0),  # memory GiB
        st.floats(min_value=0.0, max_value=1.0),  # energy weight
    ),
    min_size=1,
    max_size=24,
)


def build_federation(num_shards=3):
    return Federation.build(
        num_shards=num_shards,
        shard_scale=1,
        federation_config=FederationConfig(drain_migrations_per_cycle=64),
        seed=13,
    )


def place_all(federation, engine, shapes):
    """Place one task per shape through the federated scheduler."""
    placed = []
    for index, (workload, gops, cores, memory, weight) in enumerate(shapes):
        request = TaskRequest(
            task_id=f"task-{index}",
            arrival_s=0.0,
            workload=workload,
            gops=gops,
            cores=cores,
            memory_gib=memory,
            energy_weight=weight,
            tenant=f"tenant-{index % 3}",
        )
        node = federation.scheduler.place(request, federation.cluster, 0.0)
        if node is not None:
            engine.instantiate(request, node, 0.0)
            placed.append(request.task_id)
    return placed


def hosting_nodes(federation, task_id):
    """Every node across the federation currently hosting a task id."""
    return [node.name for node in federation.cluster if task_id in node.running]


def apply_decisions(engine, decisions, time_s):
    """Apply migration decisions the way the simulator does (skip full)."""
    applied = 0
    for task_id, target in decisions:
        try:
            engine.migrate(task_id, target, time_s)
            applied += 1
        except (ValueError, KeyError):
            continue
    return applied


@given(task_shapes)
@settings(max_examples=40, deadline=None)
def test_scale_down_conserves_every_placed_task(shapes):
    federation = build_federation()
    engine = PlacementEngine(federation.cluster)
    placed = place_all(federation, engine, shapes)

    # Drain the shard carrying the most work (the hardest case).
    by_shard = {}
    for task_id in placed:
        shard = federation.cluster.shard_of(hosting_nodes(federation, task_id)[0])
        by_shard.setdefault(shard, []).append(task_id)
    victim = max(federation.shards, key=lambda s: len(by_shard.get(s.name, []))).name
    federation.begin_drain(victim)

    # Run rescheduling passes until the drain stops making progress.
    time_s, stalled = 10.0, 0
    while stalled < 3:
        decisions = federation.scheduler.reschedule(
            engine.running, federation.cluster, time_s
        )
        # No task is decided twice within one pass (no double placement).
        decided = [task_id for task_id, _ in decisions]
        assert len(decided) == len(set(decided))
        if apply_decisions(engine, decisions, time_s) == 0:
            stalled += 1
        time_s += 10.0
        if not federation.scheduler.shard(victim).has_running_tasks():
            break

    # Conservation: every placed task is still placed, on exactly one node.
    for task_id in placed:
        hosts = hosting_nodes(federation, task_id)
        assert len(hosts) == 1, f"{task_id} hosted by {hosts}"
    assert sorted(p.request.task_id for p in engine.running) == sorted(placed)

    if not federation.scheduler.shard(victim).has_running_tasks():
        # Fully drained: removal succeeds and nothing was lost with it.
        removed = federation.finalize_drain(victim)
        assert removed is not None
        assert len(federation.shards) == 2
        for task_id in placed:
            assert len(hosting_nodes(federation, task_id)) == 1
    else:
        # Receivers are full: the drain hook must refuse the removal
        # rather than drop the stragglers.
        assert federation.finalize_drain(victim) is None
        with pytest.raises(ValueError, match="drain"):
            federation.scheduler.remove_shard(victim)


@given(task_shapes)
@settings(max_examples=25, deadline=None)
def test_queued_work_routes_around_a_draining_shard(shapes):
    federation = build_federation(num_shards=2)
    victim = federation.shards[0].name
    federation.begin_drain(victim)
    engine = PlacementEngine(federation.cluster)
    placed = place_all(federation, engine, shapes)
    for task_id in placed:
        host_shard = federation.cluster.shard_of(hosting_nodes(federation, task_id)[0])
        assert host_shard != victim


def test_drain_rebalances_pinned_tenants_before_retirement():
    federation = build_federation(num_shards=2)
    engine = PlacementEngine(federation.cluster)
    request = TaskRequest(
        task_id="pin", arrival_s=0.0, workload=WorkloadKind.SCALAR,
        gops=50.0, cores=1, memory_gib=0.5, tenant="sticky",
    )
    node = federation.scheduler.place(request, federation.cluster, 0.0)
    engine.instantiate(request, node, 0.0)
    pinned = federation.scheduler.affinity_shard("sticky")
    assert pinned is not None
    federation.begin_drain(pinned)
    # The pin moved to a surviving shard, and the move was counted.
    assert federation.scheduler.affinity_shard("sticky") != pinned
    assert federation.stats.affinity_rebalanced >= 1


def test_cannot_drain_the_last_active_shard():
    federation = build_federation(num_shards=2)
    federation.begin_drain(federation.shards[0].name)
    with pytest.raises(ValueError, match="last active shard"):
        federation.begin_drain(federation.shards[1].name)
