"""Cross-cluster migration and affinity invariants (property tests).

The two invariants the ISSUE pins down:

* **No double placement** -- however traffic is routed, re-routed, and
  migrated, a task is never running on two nodes, and every submitted
  task is accounted for exactly once (completed or unplaced).
* **Migration conserves tasks** -- a rescheduling pass (including
  cross-shard drains of a saturated shard) moves tasks, it never creates
  or destroys them.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federation import Federation, FederationConfig
from repro.hardware.microserver import WorkloadKind
from repro.scheduler.placement import PlacementEngine
from repro.scheduler.simulation import ClusterSimulator
from repro.scheduler.workload import TaskRequest


def _request(task_id, arrival_s=0.0, cores=1, memory=0.5, gops=50.0, tenant=None):
    return TaskRequest(
        task_id=task_id,
        arrival_s=arrival_s,
        workload=WorkloadKind.SCALAR,
        gops=gops,
        cores=cores,
        memory_gib=memory,
        energy_weight=0.5,
        tenant=tenant,
    )


def _running_census(cluster):
    """task_id -> list of hosting nodes, straight from node state."""
    census = {}
    for node in cluster:
        for task_id in node.running:
            census.setdefault(task_id, []).append(node.name)
    return census


request_streams = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=120.0),  # arrival
        st.integers(min_value=1, max_value=6),  # cores
        st.floats(min_value=0.1, max_value=8.0),  # memory GiB
        st.floats(min_value=10.0, max_value=800.0),  # gops
        st.sampled_from(["acme", "globex", None]),  # tenant
    ),
    min_size=1,
    max_size=40,
)


class TestNoDoublePlacement:
    @settings(max_examples=25, deadline=None)
    @given(stream=request_streams)
    def test_every_task_accounted_exactly_once(self, stream):
        federation = Federation.build(num_shards=2, shard_scale=1, seed=13)
        requests = [
            _request(f"task-{i}", arrival_s=a, cores=c, memory=round(m, 2), gops=g, tenant=t)
            for i, (a, c, m, g, t) in enumerate(stream)
        ]
        simulator = ClusterSimulator(federation.cluster, federation.scheduler)
        result = simulator.run(requests)

        completed_ids = [task.task_id for task in result.completed]
        assert len(completed_ids) == len(set(completed_ids)), "task completed twice"
        assert len(result.completed) + len(result.unplaced) == len(requests)
        # Nothing may still be holding resources anywhere in the federation.
        assert _running_census(federation.cluster) == {}
        for shard in federation.shards:
            assert _running_census(shard.cluster) == {}

    @settings(max_examples=25, deadline=None)
    @given(stream=request_streams)
    def test_shard_view_and_union_view_agree_mid_run(self, stream):
        # Place (without completing) through the scheduler + engine and
        # check a task is hosted by exactly one node of exactly one shard.
        federation = Federation.build(num_shards=2, shard_scale=1, seed=17)
        engine = PlacementEngine(federation.cluster)
        placed = 0
        for index, (a, c, m, g, t) in enumerate(stream):
            request = _request(
                f"task-{index}", cores=c, memory=round(m, 2), gops=g, tenant=t
            )
            node = federation.scheduler.place(request, federation.cluster, 0.0)
            if node is None:
                continue
            engine.instantiate(request, node, 0.0)
            placed += 1
        census = _running_census(federation.cluster)
        assert len(census) == placed
        assert all(len(hosts) == 1 for hosts in census.values())
        shard_census = {}
        for shard in federation.shards:
            for task_id, hosts in _running_census(shard.cluster).items():
                assert task_id not in shard_census, "task visible in two shards"
                shard_census[task_id] = hosts
        assert shard_census == census


class TestMigrationConservation:
    @staticmethod
    def _saturated_federation():
        """Shard 0 nearly full of real placements, shard 1 idle."""
        federation = Federation.build(
            num_shards=2,
            shard_scale=1,
            seed=19,
            federation_config=FederationConfig(
                saturation_free_core_fraction=0.5,
                migration_headroom_fraction=0.5,
                max_migrations_per_cycle=8,
            ),
        )
        engine = PlacementEngine(federation.cluster)
        hot = federation.shards[0]
        # One whole-node task per host: drops the shard's free-core
        # fraction to 0 (saturated) while each task still fits its idle
        # twin node in the other shard.
        for index, node in enumerate(hot.cluster):
            request = _request(
                f"hot-{index}", cores=node.available.cores, memory=0.25, gops=400.0
            )
            engine.instantiate(request, node.name, 0.0)
        return federation, engine

    def test_cross_shard_drain_conserves_running_tasks(self):
        federation, engine = self._saturated_federation()
        before = _running_census(federation.cluster)
        total_before = len(before)
        assert total_before > 0

        decisions = federation.scheduler.reschedule(
            engine.running, federation.cluster, time_s=10.0
        )
        assert decisions, "saturated shard should propose migrations"
        applied = 0
        for task_id, target in decisions:
            try:
                engine.migrate(task_id, target, time_s=10.0)
            except (ValueError, KeyError):
                continue  # target filled up; simulator skips these too
            applied += 1

        after = _running_census(federation.cluster)
        assert len(after) == total_before, "migration created or destroyed a task"
        assert all(len(hosts) == 1 for hosts in after.values())
        assert applied > 0

    def test_drain_targets_the_other_shard_and_is_counted(self):
        federation, engine = self._saturated_federation()
        hot, cold = federation.shards
        cold_nodes = {node.name for node in cold.cluster}
        decisions = federation.scheduler.reschedule(
            engine.running, federation.cluster, time_s=10.0
        )
        cross = [target for _, target in decisions if target in cold_nodes]
        assert cross, "expected cross-shard migration targets"
        assert federation.scheduler.federation_stats.cross_shard_migrations == len(cross)

    def test_migration_budget_is_respected(self):
        federation, engine = self._saturated_federation()
        cold_nodes = {node.name for node in federation.shards[1].cluster}
        decisions = federation.scheduler.reschedule(
            engine.running, federation.cluster, time_s=10.0
        )
        cross = [target for _, target in decisions if target in cold_nodes]
        assert len(cross) <= federation.scheduler.config.max_migrations_per_cycle
