"""Unit tests for the federated multi-cluster scheduling layer."""

from __future__ import annotations

import pytest

from repro import LegatoSystem, ServingWorkload
from repro.federation import (
    ClusterShard,
    Federation,
    FederatedCluster,
    FederatedScheduler,
    FederationConfig,
    ShardProfile,
    score_shards,
)
from repro.hardware.microserver import WorkloadKind
from repro.scheduler.workload import TaskRequest
from repro.serving import Tenant


def _request(task_id, cores=1, memory=0.5, weight=0.5, tenant=None, gops=50.0):
    return TaskRequest(
        task_id=task_id,
        arrival_s=0.0,
        workload=WorkloadKind.SCALAR,
        gops=gops,
        cores=cores,
        memory_gib=memory,
        energy_weight=weight,
        tenant=tenant,
    )


def _saturate(shard):
    """Reserve every core of every node of a shard."""
    for index, node in enumerate(shard.cluster):
        node.reserve(f"fill-{shard.name}-{index}", node.available.cores, 0.1)


@pytest.fixture
def federation():
    return Federation.build(num_shards=2, shard_scale=1, seed=11)


class TestFederationBuild:
    def test_shards_have_disjoint_nodes_and_distinct_seeds(self, federation):
        names_by_shard = [
            {node.name for node in shard.cluster} for shard in federation.shards
        ]
        assert not (names_by_shard[0] & names_by_shard[1])
        seeds = {shard.seed for shard in federation.shards}
        assert len(seeds) == len(federation.shards)

    def test_shards_never_share_config_or_cache_objects(self, federation):
        configs = [shard.scheduler.config for shard in federation.shards]
        caches = [shard.scheduler.score_cache for shard in federation.shards]
        assert configs[0] is not configs[1]
        assert caches[0] is not None and caches[0] is not caches[1]

    def test_shard_models_learned_independently(self, federation):
        # Different profiling seeds -> different measurement noise -> the
        # learned coefficients must differ between equally-built shards.
        first, second = federation.shards
        node_a = first.cluster.nodes[0].name
        node_b = second.cluster.nodes[0].name
        model_a = first.scheduler.models.model(node_a)
        model_b = second.scheduler.models.model(node_b)
        assert (
            model_a.time_seconds_per_gop[WorkloadKind.SCALAR]
            != model_b.time_seconds_per_gop[WorkloadKind.SCALAR]
        )

    def test_union_cluster_knows_every_shard(self, federation):
        union = federation.cluster
        assert len(union) == sum(len(shard.cluster) for shard in federation.shards)
        for shard in federation.shards:
            for node in shard.cluster:
                assert union.shard_of(node.name) == shard.name

    def test_duplicate_node_names_rejected(self):
        shard = ClusterShard.build(0, ShardProfile("eu-north", 0.08))
        with pytest.raises(ValueError):
            FederatedScheduler([shard, shard])

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            Federation.build(num_shards=0)
        with pytest.raises(ValueError):
            Federation.build(num_shards=1, shard_scale=0)


class TestShardScoring:
    def test_empty_is_empty(self):
        assert score_shards([], 0.5) == []

    def test_loaded_shard_scores_worse_than_idle_twin(self, federation):
        idle, other = federation.shards
        _saturate(other)
        ranked = score_shards(federation.shards, 0.0)
        assert ranked[0].shard == idle.name
        assert ranked[0].score < ranked[-1].score

    def test_energy_weight_prefers_cheap_region(self):
        profiles = [ShardProfile("pricey", 0.30), ShardProfile("cheap", 0.06)]
        federation = Federation.build(num_shards=2, shard_scale=1, profiles=profiles)
        ranked = score_shards(federation.shards, energy_weight=1.0)
        assert federation.scheduler.shard(ranked[0].shard).profile.region == "cheap"


class TestFederatedPlacement:
    def test_placed_node_belongs_to_reported_shard(self, federation):
        scheduler = federation.scheduler
        node = scheduler.place(_request("t0"), federation.cluster, 0.0)
        assert node is not None
        shard = scheduler.shard(scheduler.shard_of_node(node))
        assert node in {n.name for n in shard.cluster}

    def test_tenant_affinity_pins_and_sticks(self, federation):
        scheduler = federation.scheduler
        first = scheduler.place(_request("t0", tenant="acme"), federation.cluster, 0.0)
        pinned = scheduler.shard_of_node(first)
        assert scheduler.affinity_shard("acme") == pinned
        for index in range(1, 5):
            node = scheduler.place(
                _request(f"t{index}", tenant="acme"), federation.cluster, 0.0
            )
            assert scheduler.shard_of_node(node) == pinned
        assert scheduler.federation_stats.affinity_hits == 4
        assert scheduler.federation_stats.affinity_misses == 0

    def test_region_seeds_initial_affinity(self, federation):
        scheduler = federation.scheduler
        target = federation.shards[-1]
        scheduler.register_tenant_region("eco", target.profile.region)
        node = scheduler.place(_request("t0", tenant="eco"), federation.cluster, 0.0)
        assert scheduler.shard_of_node(node) == target.name
        assert scheduler.federation_stats.region_seeded == 1

    def test_saturated_pin_fails_over_and_repins(self, federation):
        scheduler = federation.scheduler
        first = scheduler.place(_request("t0", tenant="acme"), federation.cluster, 0.0)
        pinned = scheduler.shard_of_node(first)
        _saturate(scheduler.shard(pinned))
        node = scheduler.place(_request("t1", tenant="acme"), federation.cluster, 0.0)
        assert node is not None
        moved_to = scheduler.shard_of_node(node)
        assert moved_to != pinned
        assert scheduler.federation_stats.affinity_misses == 1
        assert scheduler.affinity_shard("acme") == moved_to

    def test_unplaceable_request_counts(self, federation):
        for shard in federation.shards:
            _saturate(shard)
        assert federation.scheduler.place(_request("big"), federation.cluster, 0.0) is None
        assert federation.scheduler.federation_stats.unplaced_requests == 1


class TestFederatedServing:
    @staticmethod
    def _workload(seed=5):
        tenants = [
            Tenant(name="perf", rate_limit_rps=100.0, burst=50, energy_weight=0.1),
            Tenant(
                name="eco",
                rate_limit_rps=100.0,
                burst=50,
                energy_weight=0.9,
                region="eu-north",
            ),
        ]
        mix = {
            "perf": {"ml_inference": 1.0},
            "eco": {"iot_gateway": 1.0},
        }
        return ServingWorkload.synthetic(
            tenants, mix, offered_rps=12.0, duration_s=15.0, seed=seed
        )

    def test_serve_populates_federation_stats(self, federation):
        report = federation.serve(self._workload())
        assert report.federation_stats is not None
        assert report.federation_stats.placements > 0
        assert "federation" in report.summary()
        assert report.admitted == report.completed + report.dropped

    def test_federation_serves_once(self, federation):
        federation.serve(self._workload())
        with pytest.raises(RuntimeError):
            federation.serve(self._workload())

    def test_system_serve_with_shards(self):
        report = LegatoSystem().serve(self._workload(), cluster_scale=2, num_shards=2)
        assert report.federation_stats is not None
        assert report.completed > 0

    def test_system_serve_rejects_undivisible_scale(self):
        with pytest.raises(ValueError):
            LegatoSystem().serve(self._workload(), cluster_scale=3, num_shards=2)

    def test_single_cluster_serve_has_no_federation_stats(self):
        report = LegatoSystem().serve(self._workload(), cluster_scale=1)
        assert report.federation_stats is None
