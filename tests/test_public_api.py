"""Public-API audit: what examples use must be importable from package roots.

Every name an example script imports from a ``repro.*`` module must also be
re-exported by the corresponding subpackage root (``repro.checkpoint``,
``repro.scheduler``, ...), so users can rely on the package-root namespaces
without knowing the internal module layout.
"""

from __future__ import annotations

import ast
import importlib
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

SUBPACKAGES = [
    "repro",
    "repro.api",
    "repro.autoscale",
    "repro.checkpoint",
    "repro.compiler",
    "repro.core",
    "repro.federation",
    "repro.hardware",
    "repro.middleware",
    "repro.runtime",
    "repro.scenarios",
    "repro.scheduler",
    "repro.security",
    "repro.serving",
    "repro.telemetry",
    "repro.telemetry.console",
    "repro.telemetry.profile",
    "repro.telemetry.trace",
    "repro.undervolting",
    "repro.usecases",
]


def example_imports():
    """(example, package root, imported name) triples from every example."""
    triples = []
    for path in sorted(EXAMPLES_DIR.glob("*.py")):
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if not (isinstance(node, ast.ImportFrom) and node.module):
                continue
            if not node.module.startswith("repro"):
                continue
            parts = node.module.split(".")
            root = ".".join(parts[:2]) if len(parts) >= 2 else parts[0]
            for alias in node.names:
                triples.append((path.name, root, alias.name))
    return triples


def test_examples_exist():
    assert EXAMPLES_DIR.is_dir()
    assert example_imports(), "examples should import from repro"


@pytest.mark.parametrize(
    "example, package_root, name",
    example_imports(),
    ids=lambda value: str(value),
)
def test_example_name_importable_from_package_root(example, package_root, name):
    module = importlib.import_module(package_root)
    assert hasattr(module, name), (
        f"{example} imports {name!r}; re-export it from {package_root}/__init__.py"
    )


@pytest.mark.parametrize("package", SUBPACKAGES)
def test_all_names_resolve(package):
    """Every name in a subpackage's __all__ actually exists."""
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", [])
    assert exported, f"{package} should declare __all__"
    for name in exported:
        assert hasattr(module, name), f"{package}.__all__ lists missing name {name!r}"


def test_benchmark_harness_all_names_resolve():
    """The benchmark harness is public tooling: audit its __all__ too.

    ``benchmarks/`` is not a package, so the module is loaded from its
    file path the same way the gate unit tests do.
    """
    import importlib.util

    path = Path(__file__).parent.parent / "benchmarks" / "harness.py"
    spec = importlib.util.spec_from_file_location("bench_harness_api", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    exported = getattr(module, "__all__", [])
    assert exported, "benchmarks/harness.py should declare __all__"
    for name in exported:
        assert hasattr(module, name), f"harness.__all__ lists missing name {name!r}"
