"""Tests for the configuration, goal metrics and the ecosystem facade."""

from __future__ import annotations

import pytest

from repro.core.config import LegatoConfig, OptimisationFlags
from repro.core.ecosystem import LegatoSystem
from repro.core.goals import PROJECT_TARGETS, GoalReport, make_assessment
from repro.hardware.microserver import DeviceKind, WorkloadKind
from repro.runtime.fault_tolerance import ReplicationPolicy
from repro.runtime.graph import TaskGraph
from repro.runtime.ompss import SchedulingPolicy
from repro.runtime.task import make_task


class TestOptimisationFlags:
    def test_baseline_disables_everything(self):
        assert OptimisationFlags.baseline().enabled_count() == 0
        assert OptimisationFlags.all_enabled().enabled_count() == 6


class TestLegatoConfig:
    def test_default_config_enables_energy_policy(self):
        config = LegatoConfig.default()
        assert config.effective_scheduling_policy is SchedulingPolicy.ENERGY
        assert config.effective_replication_policy is ReplicationPolicy.SELECTIVE

    def test_baseline_variant_downgrades_policies(self):
        baseline = LegatoConfig.default().as_baseline()
        assert baseline.effective_scheduling_policy is SchedulingPolicy.PERFORMANCE
        assert baseline.effective_replication_policy is ReplicationPolicy.NONE
        assert baseline.optimisations.enabled_count() == 0

    def test_device_models_restricted_without_offload(self):
        config = LegatoConfig.default().with_optimisations(heterogeneous_offload=False)
        models = config.device_models()
        assert all(model.startswith(("xeon", "arm64", "apalis")) for model in models)
        full = LegatoConfig.default().device_models()
        assert any("gpu" in model or "fpga" in model for model in full)

    def test_with_optimisations_overrides_single_flag(self):
        config = LegatoConfig.default().with_optimisations(fpga_undervolting=False)
        assert not config.optimisations.fpga_undervolting
        assert config.optimisations.enclave_security

    def test_validation(self):
        with pytest.raises(ValueError):
            LegatoConfig(name="")
        with pytest.raises(ValueError):
            LegatoConfig(undervolt_max_accuracy_drop=2.0)


class TestGoalMetrics:
    def test_targets_match_paper(self):
        assert PROJECT_TARGETS == {
            "energy": 10.0,
            "security": 10.0,
            "reliability": 5.0,
            "productivity": 5.0,
        }

    def test_cost_metric_improvement_ratio(self):
        assessment = make_assessment("energy", baseline_value=100.0, optimised_value=10.0, metric="J")
        assert assessment.achieved_factor == pytest.approx(10.0)
        assert assessment.met

    def test_benefit_metric_improvement_ratio(self):
        assessment = make_assessment(
            "reliability", baseline_value=1.0, optimised_value=7.0, metric="x", higher_is_better=True
        )
        assert assessment.achieved_factor == pytest.approx(7.0)
        assert assessment.met

    def test_unknown_dimension_rejected(self):
        with pytest.raises(KeyError):
            make_assessment("speed", 1.0, 1.0, metric="x")

    def test_non_positive_values_rejected(self):
        with pytest.raises(ValueError):
            make_assessment("energy", 0.0, 1.0, metric="J")

    def test_report_lookup_and_rows(self):
        report = GoalReport(workload="w")
        report.assessments.append(make_assessment("energy", 10.0, 2.0, metric="J"))
        assert report.assessment("energy").achieved_factor == pytest.approx(5.0)
        assert report.dimensions == ["energy"]
        assert report.as_rows()[0]["dimension"] == "energy"
        with pytest.raises(KeyError):
            report.assessment("security")

    def test_progress_fraction_capped(self):
        assessment = make_assessment("productivity", 100.0, 1.0, metric="loc")
        assert assessment.progress_fraction == 1.0


class TestLegatoSystem:
    @pytest.fixture(scope="class")
    def system(self) -> LegatoSystem:
        return LegatoSystem()

    def test_describe_reports_population_and_policies(self, system):
        description = system.describe()
        assert description["scheduling_policy"] == "energy"
        assert description["microservers"]["fpga"] >= 1
        assert description["peak_power_w"] > 0

    def test_run_program_end_to_end(self, system):
        source = """
#pragma legato task out(data) workload(scalar) gops(10)
kernel load
#pragma legato task in(data) out(model) workload(dnn_inference) gops(300)
kernel train
"""
        trace = system.run_program(source)
        assert len(trace.executions) == 2
        assert trace.total_energy_j > 0

    def test_undervolting_reduces_fpga_task_energy(self):
        optimised = LegatoSystem(LegatoConfig.default())
        no_undervolt = LegatoSystem(
            LegatoConfig.default().with_optimisations(fpga_undervolting=False)
        )
        tasks = lambda: [
            make_task(
                "dnn",
                workload=WorkloadKind.DNN_INFERENCE,
                gops=500,
                allowed_devices=[DeviceKind.FPGA],
            )
        ]
        energy_with = optimised.run_tasks(tasks()).total_energy_j
        energy_without = no_undervolt.run_tasks(tasks()).total_energy_j
        assert energy_with < energy_without

    def test_undervolting_operating_point_cached_and_safe(self, system):
        point = system.undervolting_operating_point()
        again = system.undervolting_operating_point()
        assert point is again
        assert point.voltage_v < 1.0

    def test_run_resilient_uses_configured_policy(self, system):
        graph = TaskGraph()
        graph.add_task(make_task("critical", outputs=["x"], reliability_critical=True))
        graph.add_task(make_task("normal", inputs=["x"], outputs=["y"]))
        report = system.run_resilient(graph, fault_probability=0.0)
        by_name = {o.task.name: o.replicas for o in report.outcomes}
        assert by_name["critical"] == 2
        assert by_name["normal"] == 1

    def test_run_secure_requires_flag(self):
        system = LegatoSystem(LegatoConfig.default().with_optimisations(enclave_security=False))
        graph = TaskGraph()
        graph.add_task(make_task("sec", outputs=["x"], secure=True))
        with pytest.raises(RuntimeError):
            system.run_secure(graph)

    def test_run_secure_protects_secure_tasks(self, system):
        graph = TaskGraph()
        graph.add_task(make_task("sec", outputs=["x"], secure=True, workload=WorkloadKind.CRYPTO))
        report = system.run_secure(graph)
        assert report.outcomes[0].secure

    def test_goal_evaluation_produces_all_dimensions(self, system):
        report = system.evaluate_goals(num_batches=2)
        assert set(report.dimensions) == set(PROJECT_TARGETS)
        energy = report.assessment("energy")
        assert energy.achieved_factor > 2.0  # LEGaTO clearly beats the baseline
        reliability = report.assessment("reliability")
        assert reliability.achieved_factor > 3.0
        productivity = report.assessment("productivity")
        assert productivity.met
