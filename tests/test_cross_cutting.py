"""Cross-cutting edge-case tests spanning several subsystems.

These tests cover interactions and corner cases that the per-module suites
do not: optimisation-flag combinations on the ecosystem facade, scheduler
behaviour under unusual workload mixes, compiler/runtime round trips with
every clause, and platform boundary conditions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler.toolchain import Toolchain
from repro.core.config import LegatoConfig, OptimisationFlags
from repro.core.ecosystem import LegatoSystem
from repro.hardware.carrier import CarrierKind
from repro.hardware.microserver import MICROSERVER_CATALOG, DeviceKind, WorkloadKind
from repro.hardware.recsbox import RecsBox, RecsBoxConfig
from repro.runtime.devices import build_devices
from repro.runtime.ompss import OmpSsRuntime, SchedulingPolicy
from repro.runtime.task import make_task
from repro.runtime.xitao import ElasticTask, XitaoRuntime, partitions_from_spec
from repro.scheduler.cluster import Cluster
from repro.scheduler.heats import HeatsScheduler
from repro.scheduler.simulation import ClusterSimulator
from repro.scheduler.workload import WorkloadGenerator, WorkloadMix
from repro.undervolting.experiment import sweep_platform
from repro.usecases.ml_inference import InferenceService


class TestOptimisationFlagCombinations:
    """Each LEGaTO optimisation can be toggled independently on the facade."""

    def _energy_for(self, **flags) -> float:
        config = LegatoConfig.default().with_optimisations(**flags)
        system = LegatoSystem(config)
        service = InferenceService()
        tasks = service.build_tasks(service.make_batches(2, seed=9))
        return system.run_tasks(tasks).total_energy_j

    def test_offload_is_the_dominant_energy_lever(self):
        with_offload = self._energy_for()
        without_offload = self._energy_for(heterogeneous_offload=False)
        assert with_offload < without_offload

    def test_undervolting_adds_on_top_of_offload(self):
        with_uv = self._energy_for()
        without_uv = self._energy_for(fpga_undervolting=False)
        assert with_uv <= without_uv

    def test_undervolting_alone_changes_nothing_without_fpga_offload(self):
        only_uv = self._energy_for(heterogeneous_offload=False, fpga_undervolting=True)
        neither = self._energy_for(heterogeneous_offload=False, fpga_undervolting=False)
        assert only_uv == pytest.approx(neither)

    def test_every_flag_combination_still_executes(self):
        # A smoke sweep over a representative subset of the 2^6 combinations.
        for flags in (
            {"energy_aware_scheduling": False},
            {"selective_replication": False, "task_checkpointing": False},
            {"enclave_security": False, "fpga_undervolting": False},
            {"heterogeneous_offload": False, "energy_aware_scheduling": False},
        ):
            assert self._energy_for(**flags) > 0


class TestWorkloadMixBehaviour:
    def test_ml_heavy_mix_prefers_accelerator_rich_nodes(self):
        cluster = Cluster.heats_testbed(scale=2)
        scheduler = HeatsScheduler.with_learned_models(cluster, seed=3)
        requests = WorkloadGenerator(
            mix=WorkloadMix.ml_heavy(), seed=3, mean_interarrival_s=20.0, energy_weight=1.0
        ).generate(20)
        result = ClusterSimulator(cluster, scheduler).run(requests)
        used_models = {
            node.split("-", 2)[-1] for task in result.completed for node in task.nodes
        }
        assert any("jetson" in model for model in used_models)

    def test_single_kind_mix_generates_only_that_kind(self):
        mix = WorkloadMix({WorkloadKind.CRYPTO: 2.0})
        requests = WorkloadGenerator(mix=mix, seed=4).generate(15)
        assert {r.workload for r in requests} == {WorkloadKind.CRYPTO}


class TestCompilerRuntimeRoundTrip:
    FULL_FEATURE_PROGRAM = """
#pragma legato task out(a) workload(memory_bound) gops(20) memory(4.0) size(1048576)
kernel producer
#pragma legato task in(a) out(b) workload(data_parallel) gops(150) width(2:8)
kernel transform
#pragma legato task in(a) out(c) workload(crypto) gops(3) secure critical
kernel protect
#pragma legato task in(b, c) inout(state) workload(scalar) gops(1)
kernel merge
"""

    def test_every_clause_survives_to_the_runtime_task(self):
        toolchain = Toolchain(fpga_platform="VC707")
        result = toolchain.compile(self.FULL_FEATURE_PROGRAM)
        tasks = {t.name.split("#")[0]: t for t in result.lowered.tasks}
        assert tasks["producer"].requirements.memory_gib == 4.0
        assert tasks["producer"].footprint_bytes == 1048576
        assert tasks["transform"].requirements.max_width == 8
        assert tasks["protect"].requirements.secure
        assert tasks["protect"].requirements.reliability_critical
        assert tasks["merge"].reads == {"b", "c", "state"}
        assert tasks["merge"].writes == {"state"}

    def test_round_trip_executes_under_every_policy(self):
        for policy in SchedulingPolicy:
            toolchain = Toolchain(fpga_platform="VC707")
            trace = toolchain.compile_and_run(self.FULL_FEATURE_PROGRAM, policy=policy)
            assert len(trace.executions) == 4

    def test_elastic_width_kernels_can_feed_xitao(self):
        toolchain = Toolchain(fpga_platform=None)
        result = toolchain.compile(self.FULL_FEATURE_PROGRAM)
        wide = next(k for k in result.kernels if k.name == "transform")
        elastic = ElasticTask(
            name=wide.name,
            work_gops=wide.gops,
            min_width=wide.min_width,
            max_width=wide.max_width,
        )
        runtime = XitaoRuntime(partitions_from_spec(MICROSERVER_CATALOG["xeon-d-x86"], groups=2))
        trace = runtime.schedule([elastic])
        assert trace.placements[0].width >= wide.min_width


class TestPlatformBoundaries:
    def test_sweep_with_floor_above_vcrash_never_crashes(self):
        result = sweep_platform("VC707", step_v=0.02)
        operational = [p for p in result.points if p.voltage_v >= 0.55]
        assert all(p.is_operational for p in operational)

    def test_recsbox_rejects_overpopulation(self):
        box = RecsBox("tiny")
        carrier = box.add_carrier(CarrierKind.LOW_POWER)
        from repro.hardware.microserver import make_microserver

        for _ in range(16):
            box.install(carrier, make_microserver("apalis-arm-soc"))
        with pytest.raises(ValueError):
            box.install(carrier, make_microserver("apalis-arm-soc"))

    def test_runtime_handles_single_device_cluster(self):
        runtime = OmpSsRuntime(
            devices=build_devices(["apalis-arm-soc"]), policy=SchedulingPolicy.ENERGY
        )
        tasks = [make_task(f"t{i}", gops=5, outputs=[f"o{i}"]) for i in range(4)]
        trace = runtime.run(tasks)
        assert len({e.device_name for e in trace.executions}) == 1

    def test_deterministic_repeatability_of_ecosystem_goals(self):
        a = LegatoSystem(LegatoConfig.default()).evaluate_goals(num_batches=2)
        b = LegatoSystem(LegatoConfig.default()).evaluate_goals(num_batches=2)
        for dim in a.dimensions:
            assert a.assessment(dim).achieved_factor == pytest.approx(
                b.assessment(dim).achieved_factor, rel=1e-6
            )
