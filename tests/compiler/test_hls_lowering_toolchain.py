"""Tests for HLS estimation, lowering and the end-to-end toolchain."""

from __future__ import annotations

import pytest

from repro.compiler.frontend import ParsedKernel, parse_program
from repro.compiler.hls import HlsEstimator
from repro.compiler.ir import DataflowGraph
from repro.compiler.lowering import lower_to_tasks
from repro.compiler.toolchain import Toolchain
from repro.hardware.fpga import FpgaFabricRegion
from repro.hardware.microserver import DeviceKind, WorkloadKind
from repro.undervolting.platforms import get_platform


def kernel(name="k", workload=WorkloadKind.DNN_INFERENCE, gops=100.0, **kwargs) -> ParsedKernel:
    return ParsedKernel(name=name, workload=workload, gops=gops, outputs=("out",), **kwargs)


def kc705_fabric() -> FpgaFabricRegion:
    calibration = get_platform("KC705-A")
    return FpgaFabricRegion(
        luts=calibration.luts,
        flip_flops=calibration.flip_flops,
        dsp_slices=calibration.dsp_slices,
        bram_blocks=calibration.bram_blocks,
    )


class TestHlsEstimator:
    def test_resources_grow_with_unroll(self):
        estimator = HlsEstimator(kc705_fabric())
        small = estimator.estimate_resources(kernel(), unroll=1)
        large = estimator.estimate_resources(kernel(), unroll=8)
        assert large.luts > small.luts
        assert large.dsp_slices > small.dsp_slices

    def test_small_kernel_fits_large_device(self):
        estimator = HlsEstimator(kc705_fabric())
        estimate = estimator.synthesise(kernel(gops=10.0), unroll=1)
        assert estimate.fits
        assert estimate.clock_mhz > 0
        assert estimate.throughput_gops > 0

    def test_huge_kernel_does_not_fit_small_device(self):
        tiny = FpgaFabricRegion(luts=5_000, flip_flops=8_000, dsp_slices=20, bram_blocks=40)
        estimator = HlsEstimator(tiny)
        estimate = estimator.best_unroll(kernel(gops=10_000.0))
        assert not estimate.fits

    def test_best_unroll_prefers_larger_fitting_factor(self):
        estimator = HlsEstimator(kc705_fabric())
        best = estimator.best_unroll(kernel(gops=50.0), max_unroll=32)
        assert best.fits
        assert best.unroll >= 4
        assert best.throughput_gops >= estimator.synthesise(kernel(gops=50.0), 1).throughput_gops

    def test_clock_derates_with_congestion(self):
        estimator = HlsEstimator(kc705_fabric())
        low = estimator.synthesise(kernel(gops=20.0), unroll=1)
        # Find a heavily utilised configuration by pushing unroll high.
        high = estimator.synthesise(kernel(gops=5000.0), unroll=32)
        if high.fits:
            assert high.clock_mhz <= low.clock_mhz

    def test_kernel_time_finite_when_fits(self):
        estimator = HlsEstimator(kc705_fabric())
        estimate = estimator.synthesise(kernel(gops=10.0), unroll=4)
        assert estimate.kernel_time_s > 0

    def test_invalid_arguments(self):
        estimator = HlsEstimator(kc705_fabric())
        with pytest.raises(ValueError):
            estimator.synthesise(kernel(), unroll=0)
        with pytest.raises(ValueError):
            estimator.best_unroll(kernel(), max_unroll=0)
        with pytest.raises(ValueError):
            HlsEstimator(kc705_fabric(), base_clock_mhz=0)


PROGRAM = """
#pragma legato task out(a) workload(scalar) gops(5)
kernel produce
#pragma legato task in(a) out(b) workload(dnn_inference) gops(200) memory(1.0)
kernel infer
#pragma legato task in(b) out(c) workload(crypto) gops(2) secure
kernel sign
"""


class TestLowering:
    def test_lowered_tasks_carry_dependences(self):
        graph = DataflowGraph(parse_program(PROGRAM))
        program = lower_to_tasks(graph, fabric=kc705_fabric())
        tasks = program.tasks
        assert len(tasks) == 3
        infer_task = program.kernel("infer").task
        assert "a" in infer_task.reads and "b" in infer_task.writes

    def test_secure_kernel_restricted_to_cpus(self):
        graph = DataflowGraph(parse_program(PROGRAM))
        program = lower_to_tasks(graph, fabric=kc705_fabric())
        sign = program.kernel("sign")
        assert sign.task.requirements.secure
        assert all(kind.is_cpu for kind in sign.allowed_devices)

    def test_fpga_capable_kernels_have_hls_estimates(self):
        graph = DataflowGraph(parse_program(PROGRAM))
        program = lower_to_tasks(graph, fabric=kc705_fabric())
        infer = program.kernel("infer")
        assert infer.hls is not None and infer.hls.fits
        assert infer in program.fpga_kernels()

    def test_without_fabric_no_fpga_targets(self):
        graph = DataflowGraph(parse_program(PROGRAM))
        program = lower_to_tasks(graph, fabric=None)
        infer = program.kernel("infer")
        assert not any(kind.is_fpga for kind in infer.allowed_devices)

    def test_unknown_kernel_lookup_raises(self):
        graph = DataflowGraph(parse_program(PROGRAM))
        program = lower_to_tasks(graph)
        with pytest.raises(KeyError):
            program.kernel("missing")


class TestToolchain:
    def test_compile_produces_report(self):
        toolchain = Toolchain(fpga_platform="KC705-A")
        result = toolchain.compile(PROGRAM)
        report = result.report()
        assert report["kernels"] == 3
        assert "infer" in report["fpga_capable_kernels"]
        assert report["secure_kernels"] == ["sign"]

    def test_compile_and_run_executes_all_tasks(self):
        toolchain = Toolchain(fpga_platform="KC705-A")
        trace = toolchain.compile_and_run(PROGRAM)
        assert len(trace.executions) == 3
        assert trace.makespan_s > 0

    def test_secure_task_lands_on_cpu_device(self):
        toolchain = Toolchain(fpga_platform="KC705-A")
        trace = toolchain.compile_and_run(PROGRAM)
        sign = next(e for e in trace.executions if e.task.name.startswith("sign"))
        assert DeviceKind(sign.device_kind).is_cpu

    def test_toolchain_without_fpga(self):
        toolchain = Toolchain(fpga_platform=None)
        result = toolchain.compile(PROGRAM)
        assert result.lowered.fpga_kernels() == []
