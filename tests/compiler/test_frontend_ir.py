"""Tests for the pragma front end and the dataflow IR."""

from __future__ import annotations

import pytest

from repro.compiler.frontend import ParseError, parse_program
from repro.compiler.ir import DataflowGraph
from repro.hardware.microserver import DeviceKind, WorkloadKind

PIPELINE_SOURCE = """
// A three-stage pipeline with a side branch.
#pragma legato task out(frames) workload(scalar) gops(5) size(1000000)
kernel capture

#pragma legato task in(frames) out(detections) workload(dnn_inference) gops(400) \\
        device(gpu, fpga) memory(2.0)
kernel detect

#pragma legato task in(frames) out(audio) workload(streaming) gops(50)
kernel listen

#pragma legato task in(detections, audio) out(overlay) workload(scalar) gops(2) critical
kernel render

#pragma legato task in(overlay) out(log) workload(crypto) gops(1) secure
kernel audit
"""


class TestFrontend:
    def test_parses_all_kernels_in_order(self):
        kernels = parse_program(PIPELINE_SOURCE)
        assert [k.name for k in kernels] == ["capture", "detect", "listen", "render", "audit"]

    def test_clauses_parsed(self):
        kernels = {k.name: k for k in parse_program(PIPELINE_SOURCE)}
        detect = kernels["detect"]
        assert detect.workload is WorkloadKind.DNN_INFERENCE
        assert detect.gops == 400.0
        assert detect.memory_gib == 2.0
        assert detect.devices == frozenset({DeviceKind.GPU, DeviceKind.FPGA})
        assert kernels["render"].critical
        assert kernels["audit"].secure
        assert kernels["capture"].region_size_bytes == 1_000_000

    def test_line_continuation_joined(self):
        kernels = {k.name: k for k in parse_program(PIPELINE_SOURCE)}
        assert kernels["detect"].devices is not None

    def test_kernel_without_pragma_gets_defaults(self):
        kernels = parse_program("kernel plain")
        assert kernels[0].workload is WorkloadKind.SCALAR
        assert kernels[0].gops == 1.0

    def test_width_clause(self):
        kernels = parse_program(
            "#pragma legato task out(x) width(2:8)\nkernel elastic"
        )
        assert kernels[0].min_width == 2
        assert kernels[0].max_width == 8

    @pytest.mark.parametrize(
        "source",
        [
            "#pragma legato task out(x)\n#pragma legato task out(y)\nkernel k",  # orphan pragma
            "#pragma legato task workload(quantum)\nkernel k",  # unknown workload
            "#pragma legato task gops(-1)\nkernel k",  # non-positive gops
            "#pragma legato task device(tpu)\nkernel k",  # unknown device
            "#pragma legato task width(4)\nkernel k",  # malformed width
            "#pragma legato task frobnicate(1)\nkernel k",  # unknown clause
            "kernel a\nkernel a",  # duplicate names
            "kernel too many words",  # malformed declaration
            "something else",  # unknown statement
            "",  # empty program
            "#pragma legato task out(x)\n",  # pragma at EOF
        ],
    )
    def test_malformed_programs_rejected(self, source):
        with pytest.raises(ParseError):
            parse_program(source)

    def test_parse_error_carries_line_number(self):
        try:
            parse_program("kernel ok\nbroken statement")
        except ParseError as error:
            assert error.line_number == 2
        else:  # pragma: no cover - the parse must fail
            pytest.fail("expected a ParseError")


class TestDataflowGraph:
    @pytest.fixture(scope="class")
    def graph(self):
        return DataflowGraph(parse_program(PIPELINE_SOURCE))

    def test_edges_follow_producer_consumer(self, graph):
        names = {(e.producer.name, e.consumer.name, e.region) for e in graph.edges}
        assert ("capture", "detect", "frames") in names
        assert ("detect", "render", "detections") in names
        assert ("listen", "render", "audio") in names
        assert ("render", "audit", "overlay") in names

    def test_sources_and_sinks(self, graph):
        assert [n.name for n in graph.sources()] == ["capture"]
        assert [n.name for n in graph.sinks()] == ["audit"]

    def test_stage_levels(self, graph):
        levels = {node.name: level for node, level in graph.stage_levels().items()}
        assert levels["capture"] == 0
        assert levels["detect"] == 1
        assert levels["render"] == 2
        assert levels["audit"] == 3

    def test_critical_path_and_total_work(self, graph):
        assert graph.total_gops() == pytest.approx(5 + 400 + 50 + 2 + 1)
        assert graph.critical_path_gops() == pytest.approx(5 + 400 + 2 + 1)

    def test_external_outputs(self, graph):
        assert "log" in graph.external_outputs()

    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            DataflowGraph([])

    def test_topological_order_respects_edges(self, graph):
        order = [n.name for n in graph.topological_order()]
        assert order.index("capture") < order.index("detect") < order.index("render")
