"""Docstring audit: the public API must document itself.

Two tiers, mirroring how users meet the API:

* Everything exported from the top-level ``repro`` package (the facade a
  user starts from) must carry a docstring, and so must every public
  method and property those classes expose -- including an ``Args:``
  section whenever a method takes arguments and a ``Returns:`` section
  whenever it returns a value.
* Every name in every subpackage's ``__all__`` must at least carry a
  docstring.
"""

from __future__ import annotations

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro",
    "repro.api",
    "repro.autoscale",
    "repro.checkpoint",
    "repro.compiler",
    "repro.core",
    "repro.federation",
    "repro.hardware",
    "repro.middleware",
    "repro.runtime",
    "repro.scenarios",
    "repro.scheduler",
    "repro.security",
    "repro.serving",
    "repro.telemetry",
    "repro.telemetry.console",
    "repro.telemetry.profile",
    "repro.telemetry.trace",
    "repro.undervolting",
    "repro.usecases",
]


def _top_level_exports():
    for name in repro.__all__:
        obj = getattr(repro, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


def _public_members(cls):
    """(name, member) pairs for methods/properties defined in repro code."""
    for name, member in inspect.getmembers(cls):
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            func = member.fget
        elif inspect.isfunction(member) or inspect.ismethod(member):
            func = member
        else:
            continue
        if func is None or "repro" not in (getattr(func, "__module__", "") or ""):
            continue
        yield name, member, func


def _subpackage_exports():
    for package in SUBPACKAGES:
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            if name.startswith("__"):
                continue
            yield package, name, getattr(module, name)


@pytest.mark.parametrize("name, obj", list(_top_level_exports()), ids=lambda v: str(v))
def test_top_level_export_is_documented(name, obj):
    assert inspect.getdoc(obj), f"repro.{name} has no docstring"


@pytest.mark.parametrize("name, obj", list(_top_level_exports()), ids=lambda v: str(v))
def test_top_level_export_members_are_documented(name, obj):
    if not inspect.isclass(obj):
        return
    for member_name, member, func in _public_members(obj):
        doc = inspect.getdoc(member if isinstance(member, property) else func)
        assert doc, f"repro.{name}.{member_name} has no docstring"
        if isinstance(member, property):
            continue
        signature = inspect.signature(func)
        takes_args = any(
            parameter.name not in ("self", "cls")
            for parameter in signature.parameters.values()
        )
        returns = signature.return_annotation not in (inspect.Signature.empty, None, "None")
        if takes_args:
            assert "Args:" in doc, (
                f"repro.{name}.{member_name} takes arguments but its "
                "docstring has no Args: section"
            )
        if returns:
            assert "Returns:" in doc, (
                f"repro.{name}.{member_name} returns a value but its "
                "docstring has no Returns: section"
            )


@pytest.mark.parametrize(
    "package, name, obj",
    list(_subpackage_exports()),
    ids=lambda v: str(v),
)
def test_subpackage_export_is_documented(package, name, obj):
    if not (inspect.isclass(obj) or inspect.isfunction(obj) or inspect.ismodule(obj)):
        return  # constants (catalogues, tuples) document themselves in context
    assert inspect.getdoc(obj), f"{package}.{name} has no docstring"


def _harness_exports():
    import importlib.util
    from pathlib import Path

    path = Path(__file__).parent.parent / "benchmarks" / "harness.py"
    spec = importlib.util.spec_from_file_location("bench_harness_docs", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return [
        (name, getattr(module, name))
        for name in getattr(module, "__all__", [])
    ]


@pytest.mark.parametrize("name, obj", _harness_exports(), ids=lambda v: str(v))
def test_benchmark_harness_export_is_documented(name, obj):
    """The harness is user-facing tooling: its API documents itself too."""
    if not (inspect.isclass(obj) or inspect.isfunction(obj)):
        return
    doc = inspect.getdoc(obj)
    assert doc, f"benchmarks/harness.py:{name} has no docstring"
    if inspect.isclass(obj):
        for member_name, member, func in _public_members_of_module(obj, "bench_harness"):
            assert inspect.getdoc(member if isinstance(member, property) else func), (
                f"harness.{name}.{member_name} has no docstring"
            )


def _public_members_of_module(cls, module_prefix):
    """Like :func:`_public_members` but for a file-loaded module's classes."""
    for name, member in inspect.getmembers(cls):
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            func = member.fget
        elif inspect.isfunction(member) or inspect.ismethod(member):
            func = member
        else:
            continue
        if func is None or module_prefix not in (getattr(func, "__module__", "") or ""):
            continue
        yield name, member, func
