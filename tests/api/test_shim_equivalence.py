"""Golden shim tests: old kwargs == new spec API, bit-identical reports.

The deprecated ``LegatoSystem.serve/federate/autoscaler`` kwarg surface
is now a shim translating into the spec API.  These tests pin the
contract the migration relies on: for the same seed, the old call and
the equivalent ``deploy(spec).serve(...)`` produce *identical* serving
reports across all three backend shapes -- and the shims warn.
"""

from __future__ import annotations

import warnings

import pytest

from repro import Autoscaler, DeploymentSpec, Federation, LegatoSystem, ServingWorkload
from repro.api import (
    AutoscaleSpec,
    SchedulerSpec,
    ServingSpec,
    TelemetrySpec,
    TopologySpec,
)
from repro.core.seeding import SeedPolicy
from repro.scheduler.heats import HeatsConfig
from repro.serving import BatchPolicy, Tenant


def _tenants():
    return [
        Tenant(name="video", rate_limit_rps=30.0, burst=30, energy_weight=0.1,
               latency_slo_s=120.0),
        Tenant(name="sensors", rate_limit_rps=12.0, burst=12, energy_weight=0.9,
               region="eu-north"),
    ]


def _workload(seed: int = 21) -> ServingWorkload:
    return ServingWorkload.synthetic(
        _tenants(),
        {
            "video": {"smartmirror": 0.5, "ml_inference": 0.5},
            "sensors": {"iot_gateway": 0.7, "ml_inference": 0.3},
        },
        offered_rps=14.0,
        duration_s=15.0,
        seed=seed,
    )


def _identical(old, new):
    """Bit-identical serving outcomes, checked at every level we report."""
    assert old.summary() == new.summary()
    assert old.latencies_s == new.latencies_s
    assert old.completions_s == new.completions_s
    assert old.simulation.summary() == new.simulation.summary()
    assert sorted(task.task_id for task in old.simulation.completed) == sorted(
        task.task_id for task in new.simulation.completed
    )


class TestServeShim:
    def test_single_cluster_golden(self):
        workload = _workload()
        with pytest.warns(DeprecationWarning, match="deploy"):
            old = LegatoSystem().serve(
                workload,
                cluster_scale=2,
                seed=11,
                batch_policy=BatchPolicy(max_batch_size=8, max_delay_s=1.5),
            )
        spec = DeploymentSpec(
            name="legato",
            topology=TopologySpec(cluster_scale=2, seed=SeedPolicy(base=11)),
            serving=ServingSpec.from_batch_policy(
                BatchPolicy(max_batch_size=8, max_delay_s=1.5)
            ),
        )
        new = LegatoSystem().deploy(spec).serve(workload)
        _identical(old, new)

    def test_federated_golden(self):
        workload = _workload(seed=22)
        with pytest.warns(DeprecationWarning):
            old = LegatoSystem().serve(
                workload, cluster_scale=4, num_shards=2, seed=13,
                heats_config=HeatsConfig(migration_improvement_threshold=0.1),
            )
        spec = DeploymentSpec(
            topology=TopologySpec(cluster_scale=4, shards=2, seed=SeedPolicy(base=13)),
            scheduler=SchedulerSpec.from_heats_config(
                HeatsConfig(migration_improvement_threshold=0.1)
            ),
        )
        new = LegatoSystem().deploy(spec).serve(workload)
        _identical(old, new)
        assert new.federation_stats is not None
        assert old.federation_stats.summary() == new.federation_stats.summary()

    def test_autoscaled_golden(self):
        workload = _workload(seed=23)
        with pytest.warns(DeprecationWarning):
            old = LegatoSystem().serve(
                workload, cluster_scale=1, autoscale=True, seed=17
            )
        spec = DeploymentSpec(
            topology=TopologySpec(cluster_scale=1, seed=SeedPolicy(base=17)),
            autoscale=AutoscaleSpec(enabled=True),
            telemetry=TelemetrySpec(enabled=True),
        )
        new = LegatoSystem().deploy(spec).serve(workload)
        _identical(old, new)
        assert old.autoscale_report.summary() == new.autoscale_report.summary()

    def test_shim_rejects_what_the_spec_rejects(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="divisible"):
                LegatoSystem().serve(_workload(), cluster_scale=3, num_shards=2)

    def test_no_cache_flag_translates(self):
        workload = _workload(seed=24)
        with pytest.warns(DeprecationWarning):
            old = LegatoSystem().serve(workload, use_score_cache=False)
        spec = DeploymentSpec(scheduler=SchedulerSpec(score_cache=False))
        new = LegatoSystem().deploy(spec).serve(workload)
        _identical(old, new)
        assert new.cache_stats is None


class TestFastPathDeprecationShim:
    """Old specs carrying the retired ``fast_path`` flag keep working.

    The array-native core deleted the legacy scan paths; the flag is a
    warn-and-ignore shim now, and a spec that set it must still load,
    round-trip losslessly, and serve a bit-identical report.
    """

    def test_old_fast_path_spec_warns_and_serves_identically(self):
        workload = _workload(seed=27)
        seed = SeedPolicy(base=19)
        baseline = (
            LegatoSystem()
            .deploy(DeploymentSpec(topology=TopologySpec(cluster_scale=2, seed=seed)))
            .serve(workload)
        )
        with pytest.warns(DeprecationWarning, match="fast_path"):
            legacy_serving = ServingSpec(fast_path=False)
        legacy = (
            LegatoSystem()
            .deploy(
                DeploymentSpec(
                    topology=TopologySpec(cluster_scale=2, seed=seed),
                    serving=legacy_serving,
                )
            )
            .serve(workload)
        )
        _identical(baseline, legacy)

    def test_fast_path_round_trips_losslessly(self):
        with pytest.warns(DeprecationWarning, match="fast_path"):
            spec = DeploymentSpec(serving=ServingSpec(fast_path=False))
        with pytest.warns(DeprecationWarning, match="fast_path"):
            from_json = DeploymentSpec.from_json(spec.to_json())
        assert from_json.serving.fast_path is False
        assert from_json.to_dict() == spec.to_dict()
        with pytest.warns(DeprecationWarning, match="fast_path"):
            from_toml = DeploymentSpec.from_toml(spec.to_toml())
        assert from_toml.serving.fast_path is False
        assert from_toml.to_dict() == spec.to_dict()

    def test_default_spec_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            spec = ServingSpec()
        assert spec.fast_path is True
        assert spec.validate() == []


class TestFederateShim:
    def test_warns_and_builds_equivalent_federation(self):
        with pytest.warns(DeprecationWarning, match="federate"):
            federation = LegatoSystem().federate(num_shards=3, seed=31)
        assert isinstance(federation, Federation)
        assert len(federation.shards) == 3
        # Seed derivation went through the centralised SeedPolicy.
        policy = SeedPolicy(base=31)
        assert [shard.seed for shard in federation.shards] == [
            policy.shard_seed(index) for index in range(3)
        ]
        report = federation.serve(_workload(seed=25))
        assert report.completed > 0
        assert report.federation_stats.placements > 0


class TestAutoscalerShim:
    def test_warns_and_returns_attached_controller(self):
        with pytest.warns(DeprecationWarning, match="autoscale"):
            scaler = LegatoSystem().autoscaler(num_shards=2)
        assert isinstance(scaler, Autoscaler)
        assert scaler.federation.scheduler.autoscaler is scaler
        assert len(scaler.federation.shards) == 2
        report = scaler.federation.serve(_workload(seed=26))
        assert report.autoscale_report is not None


class TestSeedPolicyCentralisation:
    def test_shard_seeds_match_the_historic_rule(self):
        policy = SeedPolicy()
        # The documented, centralised rules reproduce the magic numbers
        # they replaced: base 7, shard stride 101, probe stride 1009.
        assert [policy.shard_seed(index) for index in range(4)] == [7, 108, 209, 310]
        assert policy.probe_seed(policy.shard_seed(1), 0) == 108 + 1009

    def test_grow_node_probes_with_the_policy_seed(self):
        deployment = LegatoSystem().deploy(DeploymentSpec.preset("federated"))
        federation = deployment.backend.federation
        shard = federation.shards[0]
        node = shard.grow_node("xeon-d-x86")
        assert node.name.endswith("auto0-xeon-d-x86")
        assert shard.grown_nodes == 1
