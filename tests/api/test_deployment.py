"""Deployment sessions: warm reuse, lifecycle, tick streams, snapshots."""

from __future__ import annotations

import pytest

from repro import Deployment, DeploymentSpec, LegatoSystem, ServingWorkload
from repro.api import (
    AutoscaledBackend,
    AutoscaleSpec,
    FederatedBackend,
    SingleClusterBackend,
    TelemetrySpec,
    TopologySpec,
)
from repro.api.deployment import PROFILING_METRIC, SERVE_RUNS_METRIC
from repro.serving import Tenant


def _tenants():
    return [
        Tenant(name="perf", rate_limit_rps=25.0, burst=25, energy_weight=0.2,
               latency_slo_s=120.0),
        Tenant(name="eco", rate_limit_rps=15.0, burst=15, energy_weight=0.8,
               region="eu-north"),
    ]


def _workload(seed: int = 5, rps: float = 12.0) -> ServingWorkload:
    return ServingWorkload.synthetic(
        _tenants(),
        {
            "perf": {"ml_inference": 0.7, "smartmirror": 0.3},
            "eco": {"iot_gateway": 0.8, "ml_inference": 0.2},
        },
        offered_rps=rps,
        duration_s=12.0,
        seed=seed,
    )


class TestBackendSelection:
    def test_single_shape(self):
        deployment = Deployment.from_spec(DeploymentSpec.preset("single"))
        assert isinstance(deployment.backend, SingleClusterBackend)
        assert deployment.snapshot()["topology"]["backend"] == "single"

    def test_federated_shape(self):
        deployment = Deployment.from_spec(DeploymentSpec.preset("federated"))
        assert isinstance(deployment.backend, FederatedBackend)
        topology = deployment.backend.topology()
        assert topology["total_nodes"] == 16
        assert len(topology["shards"]) == 4

    def test_autoscaled_shape(self):
        deployment = Deployment.from_spec(DeploymentSpec.preset("autoscaled"))
        assert isinstance(deployment.backend, AutoscaledBackend)
        assert deployment.backend.topology()["bounds"]["max_shards"] == 4

    def test_invalid_spec_is_rejected_on_deploy(self):
        with pytest.raises(ValueError):
            Deployment.from_spec(
                DeploymentSpec(topology=TopologySpec(cluster_scale=3, shards=2))
            )


class TestWarmReuse:
    @pytest.mark.parametrize("preset", ["single", "federated"])
    def test_two_serves_without_reprofiling(self, preset):
        deployment = Deployment.from_spec(DeploymentSpec.preset(preset))
        built = deployment.metrics().counter(PROFILING_METRIC)
        assert built >= 1  # the cold start profiled the topology

        first = deployment.serve(_workload(seed=5))
        second = deployment.serve(_workload(seed=6))
        assert first.completed > 0 and second.completed > 0
        metrics = deployment.metrics()
        # Warm reuse, asserted via the session counters: two serves, and
        # not a single additional profiling campaign after the build.
        assert metrics.counter(SERVE_RUNS_METRIC) == 2.0
        assert metrics.counter(PROFILING_METRIC) == built
        assert deployment.serve_runs == 2

    def test_warm_state_is_deterministic_per_workload(self):
        deployment = Deployment.from_spec(DeploymentSpec.preset("single"))
        first = deployment.serve(_workload(seed=9))
        second = deployment.serve(_workload(seed=9))
        # Same models, same cluster, same workload -> identical outcome
        # (the warm score cache changes cost, never placement results).
        assert first.summary() == second.summary()
        assert first.latencies_s == second.latencies_s

    def test_federated_stats_are_per_run(self):
        deployment = Deployment.from_spec(DeploymentSpec.preset("federated"))
        first = deployment.serve(_workload(seed=5))
        second = deployment.serve(_workload(seed=5))
        # Routing telemetry must describe one run, not the session total.
        assert second.federation_stats.placements == first.federation_stats.placements
        assert second.completed == first.completed

    def test_autoscaled_serves_twice_with_fresh_controller(self):
        deployment = Deployment.from_spec(DeploymentSpec.preset("autoscaled"))
        first = deployment.serve(_workload(seed=5, rps=30.0))
        first_controller = deployment.backend.autoscaler
        second = deployment.serve(_workload(seed=5, rps=30.0))
        second_controller = deployment.backend.autoscaler
        assert first.autoscale_report is not None
        assert second.autoscale_report is not None
        assert second_controller is not first_controller
        # Per-run accounting: were the controller state cumulative across
        # the session, the identical workload's second report would carry
        # roughly double the ticks and a node-second integral exceeding
        # one run's own envelope (peak nodes x this run's horizon).
        auto = second.autoscale_report
        assert auto.control_ticks <= first.autoscale_report.control_ticks * 1.5 + 2
        # One control interval of slack: the last reschedule tick may land
        # just past the completion horizon.
        control_interval = deployment.spec.autoscale.control_interval_s
        assert auto.node_seconds <= auto.peak_nodes * (
            second.horizon_s + control_interval
        )
        assert deployment.serve_runs == 2


class TestLifecycle:
    def test_context_manager_closes(self):
        with Deployment.from_spec(DeploymentSpec.preset("single")) as deployment:
            deployment.serve(_workload())
        assert deployment.closed
        with pytest.raises(RuntimeError, match="closed"):
            deployment.serve(_workload())

    def test_closed_deployment_is_still_auditable(self):
        deployment = Deployment.from_spec(DeploymentSpec.preset("single"))
        deployment.serve(_workload())
        deployment.close()
        assert deployment.metrics().counter(SERVE_RUNS_METRIC) == 1.0
        assert deployment.snapshot()["closed"] is True

    def test_reentering_closed_session_raises(self):
        deployment = Deployment.from_spec(DeploymentSpec.preset("single"))
        deployment.close()
        with pytest.raises(RuntimeError):
            deployment.__enter__()


class TestServeIter:
    def test_tick_stream_covers_the_run(self):
        deployment = Deployment.from_spec(DeploymentSpec.preset("single"))
        workload = _workload()
        ticks = list(deployment.serve_iter(workload, tick_s=4.0))
        report = deployment.last_report
        assert report is not None
        assert ticks, "a served workload must produce at least one tick"
        assert ticks[0].start_s == 0.0
        # Windows tile the timeline without gaps.
        for earlier, later in zip(ticks, ticks[1:]):
            assert later.start_s == pytest.approx(earlier.end_s)
        # Conservation: the tick stream accounts for every arrival and
        # every completion the final report knows about.
        assert sum(tick.arrivals for tick in ticks) == len(workload.requests)
        assert sum(tick.completed for tick in ticks) == report.completed
        assert ticks[-1].cumulative_completed == report.completed
        assert ticks[-1].end_s >= report.horizon_s
        summary = ticks[0].summary()
        assert summary["tick"] == 0

    def test_tick_width_must_be_positive(self):
        deployment = Deployment.from_spec(DeploymentSpec.preset("single"))
        with pytest.raises(ValueError):
            deployment.serve_iter(_workload(), tick_s=0.0)

    def test_boundary_events_are_not_dropped(self):
        # A tick width dividing the horizon exactly puts the last
        # completion on a window edge; the closed final window keeps it.
        deployment = Deployment.from_spec(DeploymentSpec.preset("single"))
        workload = _workload()
        ticks = list(deployment.serve_iter(workload, tick_s=1.0))
        report = deployment.last_report
        horizon_aligned = list(
            Deployment.from_spec(DeploymentSpec.preset("single")).serve_iter(
                workload, tick_s=report.horizon_s
            )
        )
        assert sum(t.completed for t in ticks) == report.completed
        assert sum(t.completed for t in horizon_aligned) == report.completed
        assert sum(t.arrivals for t in horizon_aligned) == len(workload.requests)

    def test_serve_iter_counts_as_a_serve(self):
        deployment = Deployment.from_spec(DeploymentSpec.preset("single"))
        list(deployment.serve_iter(_workload(), tick_s=10.0))
        assert deployment.serve_runs == 1


class TestSnapshot:
    def test_snapshot_reports_topology_and_spec_diff(self):
        spec = DeploymentSpec(
            name="edge-fleet",
            topology=TopologySpec(cluster_scale=2, shards=2),
        )
        deployment = Deployment.from_spec(spec)
        snapshot = deployment.snapshot()
        assert snapshot["name"] == "edge-fleet"
        assert snapshot["topology"]["total_nodes"] == 8
        assert snapshot["spec_overrides"]["topology.shards"]["value"] == 2
        assert snapshot["spec"]["topology"]["cluster_scale"] == 2
        assert "system" not in snapshot  # not deployed through a facade

    def test_deploy_through_system_embeds_describe(self):
        deployment = LegatoSystem().deploy()
        snapshot = deployment.snapshot()
        # The satellite contract: Deployment.snapshot() reuses
        # LegatoSystem.describe(), which now carries version + sections.
        system_view = snapshot["system"]
        from repro import __version__

        assert system_view["version"] == __version__
        assert "serving" in system_view
        assert "federation" in system_view
        assert system_view["autoscale"]["enabled"] is False

    def test_autoscaled_snapshot_tracks_elastic_topology(self):
        deployment = Deployment.from_spec(
            DeploymentSpec(
                name="elastic",
                autoscale=AutoscaleSpec(enabled=True),
                telemetry=TelemetrySpec(enabled=True),
            )
        )
        before = deployment.snapshot()["topology"]["total_nodes"]
        deployment.serve(_workload(rps=60.0))
        after = deployment.snapshot()["topology"]["total_nodes"]
        # The snapshot reads the *current* topology; an elastic run may
        # have grown (or drained back), but the view must follow reality.
        assert after == deployment.backend.federation.total_nodes
        assert before == 4
