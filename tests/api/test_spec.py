"""DeploymentSpec: validation, presets, and lossless round-trips."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    PRESETS,
    AutoscaleSpec,
    DeploymentSpec,
    SchedulerSpec,
    ServingSpec,
    SpecValidationError,
    TelemetrySpec,
    TopologySpec,
)
from repro.api.serialization import tomllib
from repro.core.seeding import SeedPolicy


class TestValidation:
    def test_default_spec_is_valid(self):
        assert DeploymentSpec().validate() == []
        assert DeploymentSpec().check() is not None

    @pytest.mark.parametrize("name, _", PRESETS)
    def test_presets_are_valid(self, name, _):
        spec = DeploymentSpec.preset(name)
        assert spec.validate() == []
        assert spec.name == name

    def test_unknown_preset(self):
        with pytest.raises(KeyError, match="unknown preset"):
            DeploymentSpec.preset("planetary")

    def test_shard_divisibility_is_cross_checked(self):
        spec = DeploymentSpec(topology=TopologySpec(cluster_scale=3, shards=2))
        issues = spec.validate()
        assert [issue.path for issue in issues] == ["topology.cluster_scale"]
        assert "divisible" in issues[0].message

    def test_all_errors_reported_at_once_with_paths(self):
        spec = DeploymentSpec(
            name="",
            topology=TopologySpec(cluster_scale=0, shards=0),
            scheduler=SchedulerSpec(rescheduling_interval_s=-1.0, default_energy_weight=2.0),
            serving=ServingSpec(max_batch_size=0, flush_tick_s=0.0),
            autoscale=AutoscaleSpec(enabled=True, scale_up_utilisation=1.5),
            telemetry=TelemetrySpec(enabled=False),
        )
        with pytest.raises(SpecValidationError) as excinfo:
            spec.check()
        paths = {issue.path for issue in excinfo.value.issues}
        # One raise carries every layer's problems, path-tagged.
        assert {
            "name",
            "topology.cluster_scale",
            "topology.shards",
            "scheduler.rescheduling_interval_s",
            "scheduler.default_energy_weight",
            "serving.max_batch_size",
            "serving.flush_tick_s",
            "autoscale.scale_up_utilisation",
            "telemetry.enabled",
        } <= paths

    def test_spec_validation_error_is_a_value_error(self):
        # Callers that guarded the kwarg facade with ValueError keep working.
        with pytest.raises(ValueError):
            DeploymentSpec(topology=TopologySpec(cluster_scale=-1)).check()

    def test_autoscale_requires_telemetry(self):
        spec = DeploymentSpec(autoscale=AutoscaleSpec(enabled=True))
        paths = [issue.path for issue in spec.validate()]
        assert "telemetry.enabled" in paths
        # The same sections with telemetry on are fine.
        assert DeploymentSpec.preset("autoscaled").validate() == []

    def test_cooldown_shorter_than_control_interval_is_rejected(self):
        spec = DeploymentSpec(
            autoscale=AutoscaleSpec(
                enabled=True, control_interval_s=5.0, scale_up_cooldown_s=1.0
            ),
            telemetry=TelemetrySpec(enabled=True),
        )
        paths = [issue.path for issue in spec.validate()]
        assert "autoscale.scale_up_cooldown_s" in paths
        # Disabled autoscaling does not enforce the cross-section rule.
        relaxed = DeploymentSpec(
            autoscale=AutoscaleSpec(
                enabled=False, control_interval_s=5.0, scale_up_cooldown_s=1.0
            )
        )
        assert relaxed.validate() == []

    def test_unknown_grow_model_is_rejected(self):
        spec = DeploymentSpec(
            autoscale=AutoscaleSpec(
                enabled=True, grow_node_models=("xeon-d-x86", "quantum-box")
            ),
            telemetry=TelemetrySpec(enabled=True),
        )
        messages = [str(issue) for issue in spec.validate()]
        assert any("quantum-box" in message for message in messages)

    def test_seed_policy_validates_at_construction(self):
        with pytest.raises(ValueError):
            SeedPolicy(shard_stride=0)
        with pytest.raises(ValueError):
            SeedPolicy(probe_stride=-5)


class TestSectionConversions:
    def test_scheduler_spec_heats_config_round_trip(self):
        config = SchedulerSpec(
            rescheduling_interval_s=30.0, migration_improvement_threshold=0.2
        ).to_heats_config()
        assert config.rescheduling_interval_s == 30.0
        spec = SchedulerSpec.from_heats_config(config, score_cache=False)
        assert spec.rescheduling_interval_s == 30.0
        assert not spec.score_cache

    def test_serving_spec_batch_policy_round_trip(self):
        policy = ServingSpec(max_batch_size=4, max_delay_s=1.0).to_batch_policy()
        assert policy.max_batch_size == 4
        assert ServingSpec.from_batch_policy(policy).max_delay_s == 1.0

    def test_autoscale_spec_config_round_trip(self):
        spec = AutoscaleSpec(enabled=True, max_shards=6)
        config = spec.to_config()
        assert config.max_shards == 6
        assert AutoscaleSpec.from_config(config, enabled=True) == spec


class TestDictRoundTrip:
    def test_to_dict_from_dict_identity(self):
        spec = DeploymentSpec.preset("federated")
        assert DeploymentSpec.from_dict(spec.to_dict()) == spec

    def test_missing_sections_default(self):
        spec = DeploymentSpec.from_dict({"name": "partial"})
        assert spec == DeploymentSpec(name="partial")

    def test_unknown_section_and_field_report_paths(self):
        with pytest.raises(SpecValidationError) as excinfo:
            DeploymentSpec.from_dict(
                {
                    "warp_drive": {},
                    "topology": {"cluster_scale": 2, "warp_factor": 9},
                    "scheduler": {"score_cache": "yes"},
                }
            )
        paths = {issue.path for issue in excinfo.value.issues}
        assert paths == {"warp_drive", "topology.warp_factor", "scheduler.score_cache"}

    def test_type_errors_are_path_tagged(self):
        with pytest.raises(SpecValidationError) as excinfo:
            DeploymentSpec.from_dict(
                {
                    "name": 7,
                    "serving": {"max_batch_size": 2.5},
                    "autoscale": {"grow_node_models": [1, 2]},
                    "telemetry": {"enabled": 1},
                }
            )
        paths = {issue.path for issue in excinfo.value.issues}
        assert paths == {
            "name",
            "serving.max_batch_size",
            "autoscale.grow_node_models",
            "telemetry.enabled",
        }

    def test_integers_coerce_to_float_fields(self):
        # TOML/JSON authors write `max_delay_s = 2`; that must not fail.
        spec = DeploymentSpec.from_dict({"serving": {"max_delay_s": 2}})
        assert spec.serving.max_delay_s == 2.0
        assert isinstance(spec.serving.max_delay_s, float)

    def test_bad_seed_policy_reported_with_path(self):
        with pytest.raises(SpecValidationError) as excinfo:
            DeploymentSpec.from_dict(
                {"topology": {"seed": {"shard_stride": 0}}}
            )
        assert any("topology" in issue.path for issue in excinfo.value.issues)


# Strategy: structurally valid specs with varied values, built through the
# constructors so equality after a round trip is exact.
_seed_policies = st.builds(
    SeedPolicy,
    base=st.integers(min_value=-(10**6), max_value=10**6),
    shard_stride=st.integers(min_value=1, max_value=10**4),
    probe_stride=st.integers(min_value=1, max_value=10**4),
)
_topologies = st.builds(
    TopologySpec,
    cluster_scale=st.integers(min_value=1, max_value=64),
    shards=st.integers(min_value=1, max_value=8),
    seed=_seed_policies,
)
_schedulers = st.builds(
    SchedulerSpec,
    rescheduling_interval_s=st.floats(min_value=0.5, max_value=600.0),
    migration_improvement_threshold=st.floats(min_value=0.0, max_value=0.99),
    default_energy_weight=st.floats(min_value=0.0, max_value=1.0),
    score_cache=st.booleans(),
    score_cache_capacity=st.integers(min_value=1, max_value=1 << 20),
)
_servings = st.builds(
    ServingSpec,
    max_batch_size=st.integers(min_value=1, max_value=256),
    max_delay_s=st.floats(min_value=0.0, max_value=60.0),
    memory_bucket_gib=st.floats(min_value=0.125, max_value=8.0),
    flush_tick_s=st.floats(min_value=0.05, max_value=5.0),
)
_autoscales = st.builds(
    AutoscaleSpec,
    enabled=st.booleans(),
    control_interval_s=st.floats(min_value=0.5, max_value=30.0),
    min_shards=st.integers(min_value=1, max_value=3),
    max_shards=st.integers(min_value=3, max_value=12),
    grow_node_models=st.sampled_from(
        [("xeon-d-x86",), ("arm64-server", "xeon-d-x86")]
    ),
)
_telemetries = st.builds(
    TelemetrySpec, enabled=st.booleans(), histogram_window=st.integers(2, 4096)
)
_specs = st.builds(
    DeploymentSpec,
    name=st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
        min_size=1,
        max_size=12,
    ),
    topology=_topologies,
    scheduler=_schedulers,
    serving=_servings,
    autoscale=_autoscales,
    telemetry=_telemetries,
)


class TestSerializedRoundTrips:
    @settings(max_examples=60, deadline=None)
    @given(spec=_specs)
    def test_dict_round_trip_property(self, spec):
        assert DeploymentSpec.from_dict(spec.to_dict()) == spec

    @settings(max_examples=60, deadline=None)
    @given(spec=_specs)
    def test_json_round_trip_property(self, spec):
        assert DeploymentSpec.from_json(spec.to_json()) == spec

    @settings(max_examples=60, deadline=None)
    @given(spec=_specs)
    def test_toml_round_trip_property(self, spec):
        if tomllib is None:
            pytest.skip("tomllib needs Python >= 3.11")
        assert DeploymentSpec.from_toml(spec.to_toml()) == spec

    def test_toml_document_parses_as_plain_toml(self):
        if tomllib is None:
            pytest.skip("tomllib needs Python >= 3.11")
        document = DeploymentSpec.preset("autoscaled").to_toml()
        parsed = tomllib.loads(document)
        assert parsed["autoscale"]["enabled"] is True
        assert parsed["topology"]["seed"]["base"] == 7


class TestDiff:
    def test_default_spec_has_empty_diff(self):
        assert DeploymentSpec().diff() == {}

    def test_diff_reports_only_overridden_leaves(self):
        spec = DeploymentSpec(
            name="edge",
            topology=TopologySpec(cluster_scale=8, shards=4, seed=SeedPolicy(base=11)),
        )
        diff = spec.diff()
        assert diff["name"] == {"value": "edge", "baseline": "deployment"}
        assert diff["topology.cluster_scale"]["value"] == 8
        assert diff["topology.seed.base"] == {"value": 11, "baseline": 7}
        assert "scheduler.rescheduling_interval_s" not in diff
