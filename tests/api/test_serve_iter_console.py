"""serve_iter tick streams agree with the final report on every backend.

One parametrised battery over the three spec presets (single cluster,
federated, autoscaled): the dashboard tick stream, the report's
completion instants, the per-window ``stage_spans``, and the console
tile model built from the same run must all tell one consistent story.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.api.deployment import Deployment
from repro.api.spec import DeploymentSpec
from repro.serving import Tenant
from repro.serving.loop import ServingWorkload
from repro.telemetry.console import build_frames

PRESETS = ("single", "federated", "autoscaled")


def _workload():
    tenants = [
        Tenant(name="acme", rate_limit_rps=150.0, burst=75, latency_slo_s=180.0),
        Tenant(name="globex", rate_limit_rps=150.0, burst=75, region="eu-north"),
    ]
    mix = {
        "acme": {"ml_inference": 0.7, "smartmirror": 0.3},
        "globex": {"iot_gateway": 0.8, "ml_inference": 0.2},
    }
    return ServingWorkload.synthetic(
        tenants, mix, offered_rps=25.0, duration_s=20.0, seed=13
    )


@pytest.fixture(params=PRESETS)
def traced_run(request):
    spec = DeploymentSpec.preset(request.param)
    spec = replace(
        spec, telemetry=replace(spec.telemetry, enabled=True, tracing=True)
    )
    deployment = Deployment.from_spec(spec)
    ticks = list(deployment.serve_iter(_workload(), tick_s=5.0))
    report = deployment.last_report
    yield deployment, ticks, report
    deployment.close()


class TestTickStream:
    def test_tick_completions_sum_to_report(self, traced_run):
        _, ticks, report = traced_run
        assert sum(tick.completed for tick in ticks) == report.completed
        assert ticks[-1].cumulative_completed == report.completed

    def test_cumulative_is_a_running_total(self, traced_run):
        _, ticks, _ = traced_run
        running = 0
        for tick in ticks:
            running += tick.completed
            assert tick.cumulative_completed == running

    def test_windows_tile_the_horizon(self, traced_run):
        _, ticks, report = traced_run
        assert ticks[0].start_s == 0.0
        for left, right in zip(ticks, ticks[1:]):
            assert right.start_s == pytest.approx(left.end_s)
        assert ticks[-1].end_s >= report.horizon_s

    def test_completions_s_bucket_into_the_same_windows(self, traced_run):
        _, ticks, report = traced_run
        for tick in ticks:
            last = tick is ticks[-1]
            in_window = sum(
                1
                for t in report.completions_s
                if tick.start_s <= t and (t < tick.end_s or (last and t <= tick.end_s))
            )
            assert tick.completed == in_window

    def test_stage_spans_sum_to_ended_spans_per_stage(self, traced_run):
        _, ticks, report = traced_run
        totals = {}
        for tick in ticks:
            assert tick.stage_spans is not None
            for name, count in tick.stage_spans.items():
                totals[name] = totals.get(name, 0) + count
        expected = {}
        for span in report.trace_spans:
            if span.end_s is not None:
                expected[span.name] = expected.get(span.name, 0) + 1
        assert totals == expected


class TestConsoleModelAgreement:
    def test_tile_completions_sum_to_completed_tasks(self, traced_run):
        deployment, ticks, report = traced_run
        frames = build_frames(
            ticks,
            topology=deployment.backend.topology(),
            spans=report.trace_spans,
        )
        tile_done = sum(
            tile.completed_tasks or 0 for frame in frames for tile in frame.tiles
        )
        completed_tasks = sum(
            1
            for span in report.trace_spans
            if span.name == "task" and span.annotations.get("verdict") == "completed"
        )
        assert tile_done == completed_tasks
        assert completed_tasks > 0

    def test_frame_counters_mirror_ticks(self, traced_run):
        deployment, ticks, report = traced_run
        frames = build_frames(
            ticks,
            topology=deployment.backend.topology(),
            spans=report.trace_spans,
        )
        assert len(frames) == len(ticks)
        for frame, tick in zip(frames, ticks):
            assert frame.completed == tick.completed
            assert frame.arrivals == tick.arrivals
            assert frame.stage_spans == tick.stage_spans
        assert sum(frame.completed for frame in frames) == report.completed

    def test_final_frame_has_empty_queue(self, traced_run):
        deployment, ticks, report = traced_run
        frames = build_frames(
            ticks,
            topology=deployment.backend.topology(),
            spans=report.trace_spans,
        )
        # At the horizon every placed task has finished and nothing is
        # left queued (this workload drops/rejects nothing).
        assert frames[-1].queue_depth == 0
        assert all(tile.running == 0 for tile in frames[-1].tiles)
