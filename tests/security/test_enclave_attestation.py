"""Tests for the enclave model and attestation service."""

from __future__ import annotations

import pytest

from repro.security.attestation import AttestationError, AttestationService
from repro.security.enclave import (
    PROFILES,
    SGX_PROFILE,
    TRUSTZONE_PROFILE,
    Enclave,
    EnclaveKind,
)


class TestEnclaveProfiles:
    def test_both_technologies_available(self):
        assert set(PROFILES) == {EnclaveKind.SGX, EnclaveKind.TRUSTZONE}

    def test_sgx_transitions_more_expensive_than_trustzone(self):
        assert SGX_PROFILE.transition_s > TRUSTZONE_PROFILE.transition_s

    def test_trustzone_has_smaller_protected_memory(self):
        assert TRUSTZONE_PROFILE.protected_memory_mib < SGX_PROFILE.protected_memory_mib


class TestEnclave:
    def test_measurement_deterministic_per_identity(self):
        a = Enclave("code-v1", SGX_PROFILE)
        b = Enclave("code-v1", SGX_PROFILE)
        c = Enclave("code-v2", SGX_PROFILE)
        assert a.measurement == b.measurement
        assert a.measurement != c.measurement
        assert a.enclave_id != b.enclave_id

    def test_overhead_components(self):
        enclave = Enclave("code", SGX_PROFILE)
        base = enclave.execution_overhead_s(plain_time_s=1.0, working_set_mib=10.0)
        paged = enclave.execution_overhead_s(plain_time_s=1.0, working_set_mib=1024.0)
        assert paged > base  # EPC paging kicks in above the protected size
        longer = enclave.execution_overhead_s(plain_time_s=10.0, working_set_mib=10.0)
        assert longer > base  # bandwidth penalty scales with run time

    def test_energy_overhead_fraction(self):
        enclave = Enclave("code", SGX_PROFILE)
        assert enclave.energy_overhead_j(100.0) == pytest.approx(
            100.0 * SGX_PROFILE.energy_overhead_fraction
        )

    def test_overhead_rejects_negative_inputs(self):
        enclave = Enclave("code", SGX_PROFILE)
        with pytest.raises(ValueError):
            enclave.execution_overhead_s(-1.0, 1.0)
        with pytest.raises(ValueError):
            enclave.energy_overhead_j(-1.0)

    def test_sealed_storage_roundtrip(self):
        enclave = Enclave("code", TRUSTZONE_PROFILE)
        enclave.seal("state", b"secret bytes")
        assert enclave.unseal("state") == b"secret bytes"
        with pytest.raises(KeyError):
            enclave.unseal("missing")

    def test_empty_identity_rejected(self):
        with pytest.raises(ValueError):
            Enclave("", SGX_PROFILE)


class TestAttestation:
    def test_full_attestation_roundtrip(self):
        service = AttestationService()
        enclave = Enclave("trusted-code", SGX_PROFILE)
        service.trust_enclave(enclave)
        assert service.attest(enclave)

    def test_untrusted_measurement_rejected(self):
        service = AttestationService()
        enclave = Enclave("unknown-code", SGX_PROFILE)
        nonce = service.challenge()
        quote = service.quote(enclave, nonce)
        with pytest.raises(AttestationError):
            service.verify(quote)

    def test_replayed_nonce_rejected(self):
        service = AttestationService()
        enclave = Enclave("code", SGX_PROFILE)
        service.trust_enclave(enclave)
        nonce = service.challenge()
        quote = service.quote(enclave, nonce)
        assert service.verify(quote)
        with pytest.raises(AttestationError):
            service.verify(quote)

    def test_foreign_nonce_rejected(self):
        service = AttestationService()
        enclave = Enclave("code", SGX_PROFILE)
        with pytest.raises(AttestationError):
            service.quote(enclave, "not-issued")

    def test_tampered_quote_rejected(self):
        service = AttestationService()
        enclave = Enclave("code", SGX_PROFILE)
        service.trust_enclave(enclave)
        nonce = service.challenge()
        quote = service.quote(enclave, nonce)
        forged = type(quote)(
            enclave_id=quote.enclave_id,
            measurement=quote.measurement,
            nonce=quote.nonce,
            mac="0" * 64,
        )
        with pytest.raises(AttestationError):
            service.verify(forged)

    def test_revocation(self):
        service = AttestationService()
        enclave = Enclave("code", SGX_PROFILE)
        service.trust_enclave(enclave)
        service.revoke(enclave.measurement)
        assert not service.is_trusted(enclave.measurement)
        with pytest.raises(AttestationError):
            service.attest(enclave)
