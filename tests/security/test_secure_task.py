"""Tests for enclave-backed task execution."""

from __future__ import annotations

import pytest

from repro.hardware.microserver import DeviceKind, WorkloadKind
from repro.runtime.devices import build_devices
from repro.runtime.graph import TaskGraph
from repro.runtime.task import make_task
from repro.security.secure_task import SecureTaskExecutor


def secure_graph() -> TaskGraph:
    graph = TaskGraph()
    graph.add_task(make_task("ingest", outputs=["raw"], gops=10, region_size_bytes=1e6))
    graph.add_task(
        make_task("decrypt", inputs=["raw"], outputs=["plain"], gops=20, secure=True,
                  workload=WorkloadKind.CRYPTO, region_size_bytes=1e6)
    )
    graph.add_task(
        make_task("analyse", inputs=["plain"], outputs=["result"], gops=200,
                  workload=WorkloadKind.DNN_INFERENCE, region_size_bytes=1e6)
    )
    graph.add_task(
        make_task("sign", inputs=["result"], outputs=["sealed"], gops=5, secure=True,
                  workload=WorkloadKind.CRYPTO, region_size_bytes=1e5)
    )
    return graph


class TestSecureTaskExecutor:
    def test_requires_enclave_capable_device(self):
        gpu_only = build_devices(["gtx1080-gpu"])
        with pytest.raises(ValueError):
            SecureTaskExecutor(gpu_only)

    def test_secure_tasks_run_on_cpu_with_overhead(self, small_devices):
        executor = SecureTaskExecutor(small_devices)
        report = executor.execute(secure_graph())
        by_name = {o.task_name: o for o in report.outcomes}
        for name in ("decrypt", "sign"):
            outcome = by_name[name]
            assert outcome.secure
            assert outcome.enclave_kind in ("sgx", "trustzone")
            assert outcome.overhead_time_s > 0
            assert outcome.overhead_energy_j > 0

    def test_non_secure_tasks_pay_no_overhead(self, small_devices):
        executor = SecureTaskExecutor(small_devices)
        report = executor.execute(secure_graph())
        analyse = next(o for o in report.outcomes if o.task_name == "analyse")
        assert not analyse.secure
        assert analyse.overhead_time_s == 0.0

    def test_enclave_attested_once_per_device(self, small_devices):
        executor = SecureTaskExecutor(small_devices)
        report = executor.execute(secure_graph())
        # Both secure tasks land on the same (x86) device, so one attestation.
        assert report.attestations >= 1
        assert report.attestations <= 2

    def test_report_overhead_fractions_bounded(self, small_devices):
        executor = SecureTaskExecutor(small_devices)
        report = executor.execute(secure_graph())
        assert 0.0 <= report.security_time_overhead_fraction < 1.0
        assert 0.0 <= report.security_energy_overhead_fraction < 1.0
        assert 0.0 < report.secured_task_fraction < 1.0

    def test_arm_devices_use_trustzone(self):
        devices = build_devices(["arm64-server", "jetson-gpu-soc"])
        executor = SecureTaskExecutor(devices)
        report = executor.execute(secure_graph())
        secure_outcomes = [o for o in report.outcomes if o.secure]
        assert all(o.enclave_kind == "trustzone" for o in secure_outcomes)

    def test_totals_accumulate(self, small_devices):
        executor = SecureTaskExecutor(small_devices)
        report = executor.execute(secure_graph())
        assert report.total_time_s > 0
        assert report.total_energy_j > 0
