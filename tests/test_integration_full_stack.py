"""Integration tests exercising several subsystems together."""

from __future__ import annotations

import numpy as np
import pytest

from repro.checkpoint.fti import CheckpointStrategy
from repro.checkpoint.heat2d import Heat2dConfig, Heat2dSimulation
from repro.compiler.toolchain import Toolchain
from repro.core.config import LegatoConfig
from repro.core.ecosystem import LegatoSystem
from repro.hardware.edge_server import EdgeServer, EdgeServerConfig
from repro.hardware.recsbox import RecsBox, RecsBoxConfig
from repro.runtime.devices import build_devices_from_microservers
from repro.runtime.fault_tolerance import FaultInjector, ReplicationPolicy, ResilientExecutor
from repro.runtime.ompss import OmpSsRuntime, SchedulingPolicy
from repro.scheduler.cluster import Cluster, ClusterNode
from repro.scheduler.heats import HeatsScheduler
from repro.scheduler.simulation import ClusterSimulator
from repro.scheduler.workload import WorkloadGenerator
from repro.usecases.iot_gateway import SecureIotGateway
from repro.usecases.smarthome import SmartHomeWorkload


class TestCompilerToRuntimeOnRecsBox:
    """Compile an annotated program and run it on a populated RECS|BOX."""

    SOURCE = """
#pragma legato task out(frames) workload(scalar) gops(8)
kernel capture
#pragma legato task in(frames) out(objects) workload(dnn_inference) gops(600) memory(2.0)
kernel detect
#pragma legato task in(frames) out(speech) workload(streaming) gops(120)
kernel transcribe
#pragma legato task in(objects, speech) out(actions) workload(scalar) gops(4) critical
kernel decide
#pragma legato task in(actions) out(audit) workload(crypto) gops(2) secure
kernel log_actions
"""

    def test_program_runs_on_recsbox_devices(self):
        box = RecsBox.from_config(RecsBoxConfig.balanced_demo())
        devices = build_devices_from_microservers(box.microservers)
        toolchain = Toolchain(fpga_platform="KC705-A")
        result = toolchain.compile(self.SOURCE)
        runtime = OmpSsRuntime(devices=devices, policy=SchedulingPolicy.ENERGY)
        trace = runtime.run(result.lowered.tasks)
        assert len(trace.executions) == 5
        # The heavy inference lands on an accelerator under the energy policy.
        detect = next(e for e in trace.executions if e.task.name.startswith("detect"))
        assert detect.device_kind in ("gpu", "gpu_soc", "fpga", "fpga_soc", "dfe")
        # The hardware's energy accounts were charged by the runtime.
        assert box.total_energy_j() > 0

    def test_resilient_execution_of_compiled_program(self):
        box = RecsBox.from_config(RecsBoxConfig.balanced_demo())
        devices = build_devices_from_microservers(box.microservers)
        toolchain = Toolchain(fpga_platform="KC705-A")
        result = toolchain.compile(self.SOURCE)
        executor = ResilientExecutor(
            devices,
            policy=ReplicationPolicy.SELECTIVE,
            injector=FaultInjector(fault_probability=0.0),
        )
        from repro.runtime.graph import TaskGraph

        graph = TaskGraph()
        graph.add_tasks(result.lowered.tasks)
        report = executor.execute(graph)
        critical = [o for o in report.outcomes if o.task.requirements.reliability_critical]
        assert all(o.replicas == 2 for o in critical)


class TestSchedulerOnRecsBoxNodes:
    def test_heats_on_cluster_built_from_recsbox(self):
        box = RecsBox.from_config(RecsBoxConfig.full_rack(replication=1))
        nodes = [ClusterNode(name=m.node_id, spec=m.spec) for m in box.microservers]
        cluster = Cluster(nodes)
        scheduler = HeatsScheduler.with_learned_models(cluster, seed=5)
        requests = WorkloadGenerator(seed=5, mean_interarrival_s=15.0).generate(25)
        result = ClusterSimulator(cluster, scheduler).run(requests)
        assert len(result.completed) == 25
        assert result.total_energy_j > 0


class TestCheckpointedWorkload:
    def test_heat2d_with_failure_recovers_and_matches_clean_run(self):
        def run(inject):
            config = Heat2dConfig(
                ranks=2,
                rows_per_rank=12,
                cols=12,
                iterations=30,
                snapshot_interval_iters=5,
                strategy=CheckpointStrategy.ASYNC,
            )
            simulation = Heat2dSimulation(config)
            simulation.run(inject_failure_at=inject)
            return simulation

        clean = run(None)
        recovered = run(18)
        # Recovery rolls back to the iteration-15 checkpoint and the counter
        # content proves the restore actually happened.
        assert recovered.fti.recovery_records()
        for rank in range(2):
            assert recovered.grid(rank).shape == clean.grid(rank).shape


class TestEdgeAndGatewayIntegration:
    def test_edge_server_hosts_smart_home_control_loop(self):
        edge = EdgeServer(EdgeServerConfig.smart_mirror_cpu_gpu_fpga())
        devices = build_devices_from_microservers(list(edge.microservers))
        workload = SmartHomeWorkload(rooms=3, sensors_per_room=2)
        runtime = OmpSsRuntime(devices=devices, policy=SchedulingPolicy.ENERGY)
        trace = runtime.run(workload.build_tasks())
        assert len(trace.executions) == workload.expected_task_count()
        assert edge.total_energy_j() > 0

    def test_gateway_runs_under_full_system(self):
        system = LegatoSystem(LegatoConfig.default())
        gateway = SecureIotGateway(messages_per_window=200)
        graph = gateway.build_graph(windows=1)
        report = system.run_secure(graph)
        assert report.secured_task_fraction > 0
