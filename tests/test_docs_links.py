"""Docs integrity: every internal markdown link must resolve.

Walks ``README.md`` and everything under ``docs/``, extracts markdown
links, and asserts that relative targets (files in this repo) exist.
External links (with a URL scheme) and pure in-page anchors are skipped.
CI's docs job runs this before the smoke benchmarks, so a renamed or
deleted doc breaks the build instead of silently 404ing readers.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).parent.parent
DOCS_DIR = REPO_ROOT / "docs"

_LINK = re.compile(r"\[[^\]]*\]\(([^)]+)\)")

REQUIRED_DOCS = [
    "architecture.md",
    "api.md",
    "serving.md",
    "federation.md",
    "scheduler.md",
    "autoscaling.md",
    "observability.md",
    "scenarios.md",
]


def _doc_files():
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted(DOCS_DIR.glob("*.md")))
    return files


def _links():
    triples = []
    for path in _doc_files():
        for target in _LINK.findall(path.read_text()):
            target = target.strip()
            if "://" in target or target.startswith(("mailto:", "#")):
                continue
            triples.append((path, target))
    return triples


def test_docs_tree_is_complete():
    assert DOCS_DIR.is_dir()
    for name in REQUIRED_DOCS:
        assert (DOCS_DIR / name).is_file(), f"docs/{name} is missing"


def test_readme_links_into_docs():
    readme = (REPO_ROOT / "README.md").read_text()
    assert "docs/architecture.md" in readme, "README must link the docs tree"


@pytest.mark.parametrize(
    "source, target",
    _links(),
    ids=lambda value: str(value.name) if isinstance(value, Path) else str(value),
)
def test_internal_link_resolves(source, target):
    # Strip an in-page anchor: docs/foo.md#section -> docs/foo.md
    path_part = target.split("#", 1)[0]
    if not path_part:
        return
    resolved = (source.parent / path_part).resolve()
    assert resolved.exists(), f"{source.name}: broken link -> {target}"
    assert REPO_ROOT.resolve() in resolved.parents or resolved == REPO_ROOT.resolve(), (
        f"{source.name}: link escapes the repository -> {target}"
    )
