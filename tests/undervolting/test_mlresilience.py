"""Tests for the undervolted-DNN resilience study (Section III.C)."""

from __future__ import annotations

import pytest

from repro.undervolting.mlresilience import UndervoltedInferenceStudy
from repro.undervolting.voltage import VoltageRegion


@pytest.fixture(scope="module")
def study() -> UndervoltedInferenceStudy:
    return UndervoltedInferenceStudy(platform="VC707", n_samples=1200, seed=3)


class TestBaselineModel:
    def test_baseline_accuracy_is_high(self, study):
        assert study.baseline_accuracy > 0.85

    def test_guardband_operation_preserves_accuracy(self, study):
        point = study.evaluate_voltage(0.8)
        assert point.region is VoltageRegion.GUARDBAND
        assert point.injected_bit_flips == 0
        assert point.accuracy == pytest.approx(
            study.model.accuracy(study.test_x, study.test_y), abs=0.02
        )


class TestUndervoltedAccuracy:
    def test_crash_point_reports_zero_accuracy(self, study):
        point = study.evaluate_voltage(0.50)
        assert point.region is VoltageRegion.CRASH
        assert point.accuracy == 0.0
        assert point.power_saving_fraction == 1.0

    def test_power_saving_grows_as_voltage_drops(self, study):
        high = study.evaluate_voltage(0.9)
        low = study.evaluate_voltage(0.6)
        assert low.power_saving_fraction > high.power_saving_fraction

    def test_critical_region_injects_faults(self, study):
        point = study.evaluate_voltage(0.56)
        assert point.region is VoltageRegion.CRITICAL
        assert point.injected_bit_flips >= 0
        assert point.faults_per_mbit > 0

    def test_sweep_is_ordered_and_complete(self, study):
        points = study.sweep(step_v=0.04)
        voltages = [p.voltage_v for p in points]
        assert voltages == sorted(voltages, reverse=True)
        assert points[0].voltage_v == pytest.approx(1.0)

    def test_mitigation_never_reduces_accuracy_substantially(self, study):
        """Weight clipping should help (or at least not hurt) at low voltage."""
        raw = study.evaluate_voltage(0.55, mitigate=False)
        mitigated = study.evaluate_voltage(0.55, mitigate=True)
        assert mitigated.accuracy >= raw.accuracy - 0.05


class TestOperatingPointSelection:
    def test_recommended_point_is_below_nominal(self, study):
        point = study.recommended_operating_point(max_accuracy_drop=0.02)
        assert point.voltage_v < 1.0
        assert point.accuracy >= study.baseline_accuracy - 0.02

    def test_recommended_point_saves_power(self, study):
        point = study.recommended_operating_point(max_accuracy_drop=0.02)
        assert point.power_saving_fraction > 0.3

    def test_tighter_budget_gives_higher_voltage(self, study):
        tight = study.recommended_operating_point(max_accuracy_drop=0.001)
        loose = study.recommended_operating_point(max_accuracy_drop=0.05)
        assert tight.voltage_v >= loose.voltage_v
