"""Tests for platform calibration and the voltage-region model."""

from __future__ import annotations

import pytest

from repro.undervolting.platforms import PLATFORMS, get_platform, make_platform_device
from repro.undervolting.voltage import VoltageRegion, VoltageRegionModel, classify_voltage


class TestPlatformCalibration:
    def test_all_four_paper_platforms_present(self):
        assert set(PLATFORMS) == {"VC707", "KC705-A", "KC705-B", "ZC702"}

    def test_fault_rate_corners_match_paper(self):
        assert PLATFORMS["VC707"].faults_per_mbit_at_vcrash == 652.0
        assert PLATFORMS["KC705-A"].faults_per_mbit_at_vcrash == 254.0
        assert PLATFORMS["KC705-B"].faults_per_mbit_at_vcrash == 60.0
        assert PLATFORMS["ZC702"].faults_per_mbit_at_vcrash == 153.0

    def test_voltage_ordering_vcrash_vmin_vnom(self):
        for calibration in PLATFORMS.values():
            assert calibration.vcrash < calibration.vmin < calibration.vnom == 1.0

    def test_kc705_samples_differ_slightly(self):
        a, b = PLATFORMS["KC705-A"], PLATFORMS["KC705-B"]
        assert a.vmin != b.vmin or a.vcrash != b.vcrash
        assert abs(a.vmin - b.vmin) < 0.05

    def test_guardband_and_critical_widths_positive(self):
        for calibration in PLATFORMS.values():
            assert calibration.guardband_width_v > 0
            assert calibration.critical_width_v > 0

    def test_lookup_case_insensitive(self):
        assert get_platform("vc707").name == "VC707"

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            get_platform("VC709")

    def test_device_factory_matches_calibration(self):
        device = make_platform_device("ZC702")
        assert device.bram.num_blocks == PLATFORMS["ZC702"].bram_blocks
        assert device.fabric.dsp_slices == PLATFORMS["ZC702"].dsp_slices


class TestVoltageRegions:
    def setup_method(self):
        self.calibration = get_platform("VC707")
        self.model = VoltageRegionModel(self.calibration)

    def test_nominal_region(self):
        assert classify_voltage(1.0, self.calibration) is VoltageRegion.NOMINAL
        assert classify_voltage(1.05, self.calibration) is VoltageRegion.NOMINAL

    def test_guardband_region(self):
        assert classify_voltage(0.8, self.calibration) is VoltageRegion.GUARDBAND
        assert classify_voltage(self.calibration.vmin, self.calibration) is VoltageRegion.GUARDBAND

    def test_critical_region(self):
        mid = (self.calibration.vmin + self.calibration.vcrash) / 2
        assert classify_voltage(mid, self.calibration) is VoltageRegion.CRITICAL

    def test_crash_region(self):
        assert classify_voltage(0.50, self.calibration) is VoltageRegion.CRASH

    def test_zero_voltage_rejected(self):
        with pytest.raises(ValueError):
            classify_voltage(0.0, self.calibration)

    def test_safe_and_operational_predicates(self):
        assert self.model.is_safe(0.95)
        assert not self.model.is_safe(0.58)
        assert self.model.is_operational(0.58)
        assert not self.model.is_operational(0.50)

    def test_sweep_points_descending_with_step(self):
        points = self.model.sweep_points(step_v=0.05, floor_v=0.6)
        assert points[0] == pytest.approx(1.0)
        assert all(points[i] > points[i + 1] for i in range(len(points) - 1))
        assert min(points) >= 0.6 - 1e-9

    def test_sweep_points_validation(self):
        with pytest.raises(ValueError):
            self.model.sweep_points(step_v=0.0)
        with pytest.raises(ValueError):
            self.model.sweep_points(floor_v=1.5)

    def test_guardband_saving_is_substantial(self):
        # Eliminating the guardband alone already saves a large fraction of
        # the BRAM power (the "free" part of Fig. 5's message).
        assert 0.3 < self.model.guardband_saving_fraction() < 1.0

    def test_region_boundaries_cover_guardband_and_critical(self):
        boundaries = self.model.region_boundaries()
        regions = [b[0] for b in boundaries]
        assert regions == [VoltageRegion.GUARDBAND, VoltageRegion.CRITICAL]
