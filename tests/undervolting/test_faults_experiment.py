"""Tests for the fault-rate model, injector and Fig. 5 experiment."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.undervolting.experiment import (
    UndervoltingExperiment,
    sweep_all_platforms,
    sweep_platform,
)
from repro.undervolting.faults import FaultRateModel, UndervoltFaultInjector
from repro.undervolting.platforms import PLATFORMS, get_platform, make_platform_device
from repro.undervolting.voltage import VoltageRegion


class TestFaultRateModel:
    def setup_method(self):
        self.calibration = get_platform("VC707")
        self.model = FaultRateModel(self.calibration)

    def test_zero_faults_in_guardband(self):
        assert self.model.faults_per_mbit(0.95) == 0.0
        assert self.model.faults_per_mbit(self.calibration.vmin) == 0.0

    def test_corner_value_at_vcrash(self):
        rate = self.model.faults_per_mbit(self.calibration.vcrash)
        assert rate == pytest.approx(652.0, rel=1e-6)

    def test_exponential_growth_in_critical_region(self):
        v_hi = self.calibration.vmin - 0.01
        v_mid = (self.calibration.vmin + self.calibration.vcrash) / 2
        v_lo = self.calibration.vcrash
        r_hi, r_mid, r_lo = (
            self.model.faults_per_mbit(v_hi),
            self.model.faults_per_mbit(v_mid),
            self.model.faults_per_mbit(v_lo),
        )
        assert r_hi < r_mid < r_lo
        # Exponential: log-rate is linear in voltage.
        k = self.model.growth_constant
        assert math.log(r_lo / r_mid) == pytest.approx(k * (v_mid - v_lo), rel=1e-6)

    def test_crash_region_raises(self):
        with pytest.raises(ValueError):
            self.model.faults_per_mbit(0.50)

    def test_expected_faults_scale_with_memory(self):
        v = self.calibration.vcrash
        assert self.model.expected_faults(v, 2.0) == pytest.approx(
            2 * self.model.expected_faults(v, 1.0)
        )

    def test_invalid_onset_rejected(self):
        with pytest.raises(ValueError):
            FaultRateModel(self.calibration, onset_faults_per_mbit=0.0)
        with pytest.raises(ValueError):
            FaultRateModel(self.calibration, onset_faults_per_mbit=1e6)

    def test_platform_ordering_at_vcrash(self):
        """VC707 > KC705-A > ZC702 > KC705-B, as in the paper's text."""
        rates = {
            name: FaultRateModel(cal).faults_per_mbit(cal.vcrash)
            for name, cal in PLATFORMS.items()
        }
        assert rates["VC707"] > rates["KC705-A"] > rates["ZC702"] > rates["KC705-B"]


class TestFaultInjector:
    def test_deterministic_mode_matches_expectation(self):
        calibration = get_platform("ZC702")
        model = FaultRateModel(calibration)
        injector = UndervoltFaultInjector(model, deterministic=True)
        count = injector.sample_fault_count(calibration.vcrash, 1.0)
        assert count == round(model.faults_per_mbit(calibration.vcrash))

    def test_poisson_mode_is_reproducible_with_seed(self):
        calibration = get_platform("ZC702")
        model = FaultRateModel(calibration)
        a = UndervoltFaultInjector(model, rng=np.random.default_rng(3))
        b = UndervoltFaultInjector(model, rng=np.random.default_rng(3))
        v = calibration.vcrash + 0.01
        assert a.sample_fault_count(v, 4.0) == b.sample_fault_count(v, 4.0)

    def test_inject_crash_marks_device_unresponsive(self):
        calibration = get_platform("ZC702")
        device = make_platform_device("ZC702")
        injector = UndervoltFaultInjector(FaultRateModel(calibration), deterministic=True)
        result = injector.inject(device, 0.50)
        assert result == -1
        assert not device.responsive

    def test_inject_guardband_leaves_memory_clean(self):
        device = make_platform_device("KC705-B")
        calibration = get_platform("KC705-B")
        injector = UndervoltFaultInjector(FaultRateModel(calibration), deterministic=True)
        device.bram.write_pattern(0x55)
        count = injector.inject(device, 0.8)
        assert count == 0
        assert device.bram.count_mismatches(0x55) == 0


class TestFig5Experiment:
    def test_vc707_sweep_reproduces_corners(self):
        result = sweep_platform("VC707", step_v=0.01)
        assert result.vmin == pytest.approx(0.60, abs=0.011)
        assert result.vcrash == pytest.approx(0.54, abs=0.011)
        assert result.max_faults_per_mbit == pytest.approx(652.0, rel=0.05)
        assert result.max_power_saving_fraction > 0.90

    def test_regions_appear_in_order(self):
        result = sweep_platform("KC705-A", step_v=0.01)
        regions = [p.region for p in result.points]
        # Nominal first, then guardband, then critical, then crash.
        order = [VoltageRegion.NOMINAL, VoltageRegion.GUARDBAND, VoltageRegion.CRITICAL, VoltageRegion.CRASH]
        indices = [regions.index(region) for region in order if region in regions]
        assert indices == sorted(indices)

    def test_guardband_points_have_no_faults(self):
        result = sweep_platform("KC705-B", step_v=0.01)
        assert all(p.faults_per_mbit == 0 for p in result.guardband_points())

    def test_fault_rate_monotone_in_critical_region(self):
        result = sweep_platform("VC707", step_v=0.01)
        rates = [p.faults_per_mbit for p in result.critical_points()]
        assert all(rates[i] <= rates[i + 1] + 1e-9 for i in range(len(rates) - 1))

    def test_power_saving_monotone_while_operational(self):
        result = sweep_platform("VC707", step_v=0.01)
        savings = [p.power_saving_fraction for p in result.points if p.is_operational]
        assert all(savings[i] <= savings[i + 1] + 1e-12 for i in range(len(savings) - 1))

    def test_all_platforms_sweep(self):
        results = sweep_all_platforms(step_v=0.02)
        assert set(results) == set(PLATFORMS)
        for name, result in results.items():
            # With a 20 mV step the lowest operational point may sit slightly
            # above Vcrash, so the observed maximum is bounded by the paper's
            # corner value but must still be well inside the critical region.
            corner = PLATFORMS[name].faults_per_mbit_at_vcrash
            assert 0 < result.max_faults_per_mbit <= corner * 1.1
            assert result.max_faults_per_mbit > corner * 0.05

    def test_rows_exportable(self):
        result = sweep_platform("ZC702", step_v=0.05)
        rows = result.as_rows()
        assert rows and {"voltage_v", "region", "faults_per_mbit", "power_saving_pct"} <= set(rows[0])

    def test_experiment_accepts_calibration_object(self):
        experiment = UndervoltingExperiment(get_platform("ZC702"), step_v=0.05)
        result = experiment.run()
        assert result.platform.name == "ZC702"
