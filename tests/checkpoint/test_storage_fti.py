"""Tests for the storage hierarchy and the FTI-style checkpoint API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.checkpoint.fti import CheckpointStrategy, FtiConfig, FtiContext
from repro.checkpoint.memory import MemoryKind, ProtectedBuffer
from repro.checkpoint.mpi import MpiWorld
from repro.checkpoint.storage import (
    CheckpointLevel,
    FailureScope,
    LocalNvme,
    ParallelFileSystem,
    PartnerCopy,
    ReedSolomonEncoded,
    StorageHierarchy,
    StoredCheckpoint,
)


class TestStorageLevels:
    def test_nvme_write_read_costs_scale_with_sharers(self):
        nvme = LocalNvme("nvme", write_gbps=8.0)
        assert nvme.write_time_s(8e9, sharers=4) == pytest.approx(4 * nvme.write_time_s(8e9, sharers=1))

    def test_partner_copy_cost_dominated_by_network(self):
        partner = PartnerCopy("p", network_gbps=5.0)
        assert partner.write_time_s(5e9) == pytest.approx(1.0)

    def test_rs_encoding_overhead(self):
        rs = ReedSolomonEncoded("rs", group_size=4, parity=2)
        assert rs.storage_overhead == pytest.approx(1.0)
        with pytest.raises(ValueError):
            ReedSolomonEncoded("bad", group_size=2, parity=2)

    def test_pfs_shares_aggregate_bandwidth(self):
        pfs = ParallelFileSystem("pfs", aggregate_write_gbps=40.0)
        assert pfs.write_time_s(1e9, sharers=40) == pytest.approx(1.0)

    def test_put_get_roundtrip_and_stats(self):
        nvme = LocalNvme("nvme")
        record = StoredCheckpoint(rank=0, checkpoint_id=1, nbytes=100.0, payload={})
        nvme.put(record)
        assert nvme.has(0, 1)
        assert nvme.get(0, 1) is record
        assert nvme.bytes_written == 100.0
        assert nvme.bytes_read == 100.0
        with pytest.raises(KeyError):
            nvme.get(1, 1)

    def test_drop_rank_simulates_node_loss(self):
        nvme = LocalNvme("nvme")
        nvme.put(StoredCheckpoint(rank=0, checkpoint_id=1, nbytes=10.0))
        nvme.put(StoredCheckpoint(rank=0, checkpoint_id=2, nbytes=10.0))
        nvme.put(StoredCheckpoint(rank=1, checkpoint_id=1, nbytes=10.0))
        assert nvme.drop_rank(0) == 2
        assert not nvme.has(0, 2)
        assert nvme.has(1, 1)

    def test_latest_id(self):
        nvme = LocalNvme("nvme")
        assert nvme.latest_id(0) is None
        nvme.put(StoredCheckpoint(rank=0, checkpoint_id=3, nbytes=1.0))
        nvme.put(StoredCheckpoint(rank=0, checkpoint_id=7, nbytes=1.0))
        assert nvme.latest_id(0) == 7


class TestStorageHierarchy:
    def test_recovery_level_mapping(self):
        hierarchy = StorageHierarchy()
        assert hierarchy.recovery_level_for(FailureScope.PROCESS).level is CheckpointLevel.L1_LOCAL
        assert hierarchy.recovery_level_for(FailureScope.SINGLE_NODE).level is CheckpointLevel.L2_PARTNER
        assert hierarchy.recovery_level_for(FailureScope.FULL_SYSTEM).level is CheckpointLevel.L4_PFS

    def test_can_recover_depends_on_scope_and_level(self):
        hierarchy = StorageHierarchy()
        hierarchy.store(CheckpointLevel.L1_LOCAL, StoredCheckpoint(rank=0, checkpoint_id=1, nbytes=1.0))
        assert hierarchy.can_recover(0, 1, FailureScope.PROCESS)
        # L1-only checkpoint cannot survive losing the node.
        assert not hierarchy.can_recover(0, 1, FailureScope.SINGLE_NODE)
        hierarchy.store(CheckpointLevel.L2_PARTNER, StoredCheckpoint(rank=0, checkpoint_id=1, nbytes=1.0))
        assert hierarchy.can_recover(0, 1, FailureScope.SINGLE_NODE)


def _make_context(strategy: CheckpointStrategy, ranks: int = 4) -> FtiContext:
    world = MpiWorld(num_ranks=ranks, ranks_per_node=4)
    context = FtiContext(world, config=FtiConfig(strategy=strategy, snapshot_interval_iters=2))
    context.init()
    return context


class TestFtiLifecycle:
    def test_requires_init(self):
        world = MpiWorld(num_ranks=1)
        context = FtiContext(world)
        with pytest.raises(RuntimeError):
            context.checkpoint(0)

    def test_double_init_rejected(self):
        context = _make_context(CheckpointStrategy.ASYNC, ranks=1)
        with pytest.raises(RuntimeError):
            context.init()

    def test_finalize_waits_for_background_writes(self):
        context = _make_context(CheckpointStrategy.ASYNC, ranks=1)
        data = np.zeros(1024, dtype=np.float64)
        context.protect_array(0, 1, data, MemoryKind.UVM)
        context.checkpoint(0)
        clock_before = context.world.clock(0).time_s
        context.finalize()
        assert context.finalised
        assert context.world.clock(0).time_s >= clock_before


class TestProtectAndCheckpoint:
    def test_protect_mixed_kinds_accounted(self):
        context = _make_context(CheckpointStrategy.ASYNC, ranks=1)
        context.protect_array(0, 0, np.zeros(4, dtype=np.int32), MemoryKind.HOST)
        context.protect(0, ProtectedBuffer.synthetic_region(1, MemoryKind.UVM, nbytes=1 << 20))
        context.protect(0, ProtectedBuffer.synthetic_region(2, MemoryKind.DEVICE, nbytes=1 << 20))
        totals = context.protected_bytes(0)
        assert totals[MemoryKind.HOST] == 16
        assert totals[MemoryKind.UVM] == pytest.approx(1 << 20, rel=0.01)
        assert totals[MemoryKind.DEVICE] == pytest.approx(1 << 20, rel=0.01)

    def test_reprotect_same_id_updates_registration(self):
        context = _make_context(CheckpointStrategy.ASYNC, ranks=1)
        context.protect_array(0, 0, np.zeros(4), MemoryKind.HOST)
        context.protect_array(0, 0, np.zeros(8), MemoryKind.HOST)
        assert context.protected_bytes(0)[MemoryKind.HOST] == 64

    def test_snapshot_checkpoints_on_interval(self):
        context = _make_context(CheckpointStrategy.ASYNC, ranks=1)
        context.protect_array(0, 0, np.zeros(16), MemoryKind.HOST)
        performed = [context.snapshot(0) for _ in range(6)]
        # Interval is 2 iterations: checkpoints at iterations 2, 4, 6.
        assert performed == [False, True, False, True, False, True]
        assert len(context.checkpoint_records(0)) == 3

    def test_checkpoint_record_fields(self):
        context = _make_context(CheckpointStrategy.INITIAL, ranks=1)
        context.protect(0, ProtectedBuffer.synthetic_region(1, MemoryKind.DEVICE, nbytes=1 << 30))
        record = context.checkpoint(0)
        assert record.strategy is CheckpointStrategy.INITIAL
        assert record.device_bytes == pytest.approx(1 << 30, rel=0.01)
        assert record.blocking_overhead_s > 0
        assert record.total_completion_s >= record.blocking_overhead_s or pytest.approx(
            record.total_completion_s
        ) == record.blocking_overhead_s


class TestRecovery:
    def test_content_roundtrip_after_failure(self):
        context = _make_context(CheckpointStrategy.ASYNC, ranks=1)
        data = np.arange(64, dtype=np.float64)
        context.protect_array(0, 1, data, MemoryKind.UVM)
        context.checkpoint(0)
        data[:] = -1.0  # corruption after the checkpoint
        context.mark_failed(0)
        assert context.snapshot(0)  # snapshot performs the recovery
        assert np.array_equal(data, np.arange(64, dtype=np.float64))

    def test_recover_without_checkpoint_raises(self):
        context = _make_context(CheckpointStrategy.ASYNC, ranks=1)
        context.protect_array(0, 1, np.zeros(4), MemoryKind.HOST)
        with pytest.raises(RuntimeError):
            context.recover(0)

    def test_recovery_restores_latest_checkpoint(self):
        context = _make_context(CheckpointStrategy.INITIAL, ranks=1)
        data = np.zeros(8, dtype=np.float64)
        context.protect_array(0, 1, data, MemoryKind.HOST)
        context.checkpoint(0)
        data[:] = 5.0
        context.checkpoint(0)
        data[:] = 9.0
        context.recover(0)
        assert np.all(data == 5.0)

    def test_async_strategy_has_lower_blocking_overhead(self):
        results = {}
        for strategy in (CheckpointStrategy.INITIAL, CheckpointStrategy.ASYNC):
            context = _make_context(strategy, ranks=4)
            for rank in range(4):
                context.protect(
                    rank, ProtectedBuffer.synthetic_region(1, MemoryKind.UVM, nbytes=4 << 30)
                )
                context.checkpoint(rank)
            results[strategy] = context.max_checkpoint_overhead_s()
        assert results[CheckpointStrategy.ASYNC] < results[CheckpointStrategy.INITIAL] / 5

    def test_async_recovery_faster_than_initial(self):
        times = {}
        for strategy in (CheckpointStrategy.INITIAL, CheckpointStrategy.ASYNC):
            context = _make_context(strategy, ranks=4)
            for rank in range(4):
                context.protect(
                    rank, ProtectedBuffer.synthetic_region(1, MemoryKind.UVM, nbytes=4 << 30)
                )
                context.checkpoint(rank)
                context.recover(rank)
            times[strategy] = context.max_recovery_time_s()
        assert times[CheckpointStrategy.ASYNC] < times[CheckpointStrategy.INITIAL]
