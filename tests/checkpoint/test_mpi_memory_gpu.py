"""Tests for the simulated MPI world, protected buffers and GPU model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.checkpoint.gpu import CudaStream, SimulatedGpu, TransferModel
from repro.checkpoint.memory import FtiDataType, MemoryKind, ProtectedBuffer
from repro.checkpoint.mpi import MpiWorld


class TestMpiWorld:
    def test_topology_four_ranks_per_node(self):
        world = MpiWorld(num_ranks=16, ranks_per_node=4)
        assert world.num_nodes == 4
        assert world.node_of(0) == 0
        assert world.node_of(7) == 1
        assert world.same_node(4, 7)
        assert not world.same_node(3, 4)

    def test_partner_rank_on_next_node(self):
        world = MpiWorld(num_ranks=8, ranks_per_node=4)
        assert world.node_of(world.partner_rank(0)) == 1
        assert world.node_of(world.partner_rank(5)) == 0

    def test_clock_advancement_categories(self):
        world = MpiWorld(num_ranks=2)
        clock = world.clock(0)
        clock.advance(1.0, "compute")
        clock.advance(0.5, "io")
        clock.advance(0.25, "comm")
        assert clock.time_s == pytest.approx(1.75)
        assert clock.compute_s == pytest.approx(1.0)
        assert clock.io_s == pytest.approx(0.5)
        with pytest.raises(ValueError):
            clock.advance(1.0, "weird")
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_barrier_synchronises_clocks(self):
        world = MpiWorld(num_ranks=4)
        world.clock(2).advance(5.0)
        latest = world.comm_world.barrier()
        assert latest == pytest.approx(5.0)
        assert all(world.clock(r).time_s == pytest.approx(5.0) for r in range(4))

    def test_allreduce_ops(self):
        world = MpiWorld(num_ranks=3)
        values = {0: 1.0, 1: 2.0, 2: 3.0}
        assert world.comm_world.allreduce(values, "sum") == pytest.approx(6.0)
        assert world.comm_world.allreduce(values, "max") == pytest.approx(3.0)
        assert world.comm_world.allreduce(values, "min") == pytest.approx(1.0)
        with pytest.raises(ValueError):
            world.comm_world.allreduce(values, "prod")

    def test_allreduce_missing_rank_raises(self):
        world = MpiWorld(num_ranks=2)
        with pytest.raises(KeyError):
            world.comm_world.allreduce({0: 1.0})

    def test_exchange_charges_both_ranks(self):
        world = MpiWorld(num_ranks=2)
        duration = world.comm_world.exchange(0, 1, 1e6)
        assert duration > 0
        assert world.clock(0).comm_s == pytest.approx(duration)
        assert world.clock(1).comm_s == pytest.approx(duration)

    def test_split_communicator_translation(self):
        world = MpiWorld(num_ranks=8)
        comm = world.split([2, 4, 6], name="sub")
        assert comm.size == 3
        assert comm.translate(4) == 1
        with pytest.raises(KeyError):
            comm.translate(3)

    def test_invalid_world_sizes(self):
        with pytest.raises(ValueError):
            MpiWorld(num_ranks=0)
        with pytest.raises(IndexError):
            MpiWorld(num_ranks=2).clock(5)


class TestProtectedBuffer:
    def test_from_array_roundtrip(self):
        data = np.arange(16, dtype=np.float64)
        buffer = ProtectedBuffer.from_array(1, data, MemoryKind.HOST)
        snapshot = buffer.snapshot_content()
        buffer.data[:] = 0.0
        buffer.restore_content(snapshot)
        assert np.array_equal(buffer.data, np.arange(16, dtype=np.float64))

    def test_nbytes_from_dtype(self):
        data = np.zeros(10, dtype=np.int32)
        buffer = ProtectedBuffer.from_array(0, data, MemoryKind.HOST)
        assert buffer.dtype is FtiDataType.FTI_INTG
        assert buffer.nbytes == 40

    def test_synthetic_region_reports_logical_size(self):
        buffer = ProtectedBuffer.synthetic_region(2, MemoryKind.UVM, nbytes=1 << 30)
        assert buffer.nbytes == pytest.approx(1 << 30, rel=0.01)
        assert buffer.witness_nbytes < buffer.nbytes
        assert buffer.synthetic

    def test_mismatched_count_rejected_for_real_buffers(self):
        with pytest.raises(ValueError):
            ProtectedBuffer(
                protect_id=0,
                kind=MemoryKind.HOST,
                dtype=FtiDataType.FTI_DBLE,
                count=100,
                data=np.zeros(10),
            )

    def test_restore_shape_mismatch_rejected(self):
        buffer = ProtectedBuffer.from_array(0, np.zeros(4), MemoryKind.HOST)
        with pytest.raises(ValueError):
            buffer.restore_content(np.zeros(8))

    def test_digest_changes_with_content(self):
        buffer = ProtectedBuffer.from_array(0, np.zeros(4), MemoryKind.HOST)
        before = buffer.content_digest()
        buffer.data[0] = 1.0
        assert buffer.content_digest() != before

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(TypeError):
            ProtectedBuffer.from_array(0, np.zeros(4, dtype=np.complex128), MemoryKind.HOST)


class TestTransferModel:
    def test_async_faster_than_sync(self):
        model = TransferModel()
        size = 8 * 1024**3
        assert model.async_copy_time_s(size) < model.sync_copy_time_s(size)

    def test_chunk_count(self):
        model = TransferModel(chunk_bytes=1024)
        assert model.num_chunks(4096) == 4
        assert model.num_chunks(1) == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TransferModel(pcie_gbps=0)
        with pytest.raises(ValueError):
            TransferModel(chunk_bytes=0)


class TestSimulatedGpu:
    def test_allocation_kinds(self):
        gpu = SimulatedGpu(memory_gib=1.0)
        device_handle = gpu.malloc(1024)
        uvm_handle = gpu.malloc_managed(2048)
        assert gpu.kind_of(device_handle) is MemoryKind.DEVICE
        assert gpu.kind_of(uvm_handle) is MemoryKind.UVM
        assert gpu.allocated_bytes() == 3072
        gpu.free(device_handle)
        assert gpu.allocated_bytes() == 2048

    def test_out_of_memory(self):
        gpu = SimulatedGpu(memory_gib=1.0)
        with pytest.raises(MemoryError):
            gpu.malloc(2 * 1024**3)

    def test_uvm_does_not_count_against_device_memory(self):
        gpu = SimulatedGpu(memory_gib=1.0)
        gpu.malloc_managed(4 * 1024**3)  # UVM can oversubscribe
        assert gpu.allocated_bytes(device_only=True) == 0

    def test_unknown_handle_errors(self):
        gpu = SimulatedGpu()
        with pytest.raises(KeyError):
            gpu.free(99)
        with pytest.raises(KeyError):
            gpu.kind_of(99)

    def test_stream_serialises_copies(self):
        gpu = SimulatedGpu()
        stream = gpu.create_stream()
        _, finish1 = stream.memcpy_async(1 << 30, start_s=0.0)
        start2, finish2 = stream.memcpy_async(1 << 30, start_s=0.0)
        assert start2 == pytest.approx(finish1)
        assert finish2 > finish1
        assert stream.synchronize(0.0) == pytest.approx(finish2)

    def test_copy_accounting(self):
        gpu = SimulatedGpu()
        gpu.memcpy_sync(1000)
        stream = gpu.create_stream()
        stream.memcpy_async(2000, start_s=0.0)
        assert gpu.bytes_copied() == pytest.approx(3000)
        assert gpu.bytes_copied(asynchronous=True) == pytest.approx(2000)
        assert gpu.bytes_copied(asynchronous=False) == pytest.approx(1000)
