"""Tests for Heat2D, the Fig. 6 experiment driver, and the MTBF model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.checkpoint.fti import CheckpointStrategy
from repro.checkpoint.heat2d import (
    Heat2dConfig,
    Heat2dSimulation,
    run_fig6_experiment,
    run_fig6_point,
)
from repro.checkpoint.mtbf import (
    CheckpointEfficiencyModel,
    optimal_interval_young,
    sustainable_mtbf_ratio,
)


class TestHeat2dNumerics:
    def test_stencil_diffuses_heat_inwards(self):
        config = Heat2dConfig(ranks=2, rows_per_rank=16, cols=16, iterations=30)
        simulation = Heat2dSimulation(config)
        interior_before = simulation.grid(0)[4:-4, 4:-4].mean()
        simulation.run()
        interior_after = simulation.grid(0)[4:-4, 4:-4].mean()
        assert interior_after > interior_before

    def test_boundary_conditions_preserved(self):
        config = Heat2dConfig(ranks=2, rows_per_rank=8, cols=12, iterations=10)
        simulation = Heat2dSimulation(config)
        simulation.run()
        assert np.all(simulation.grid(0)[:, 0] == 100.0)

    def test_residual_decreases_towards_steady_state(self):
        config = Heat2dConfig(ranks=1, rows_per_rank=12, cols=12, iterations=5)
        short = Heat2dSimulation(config).run()
        config_long = Heat2dConfig(ranks=1, rows_per_rank=12, cols=12, iterations=200)
        long = Heat2dSimulation(config_long).run()
        assert long.final_residual < short.final_residual

    def test_invalid_configurations_rejected(self):
        with pytest.raises(ValueError):
            Heat2dConfig(ranks=0)
        with pytest.raises(ValueError):
            Heat2dConfig(rows_per_rank=1)
        with pytest.raises(ValueError):
            Heat2dConfig(alpha=0.5)

    def test_synthetic_mode_does_not_materialise_grid(self):
        config = Heat2dConfig(ranks=1, iterations=2, synthetic_bytes_per_rank=1 << 30)
        simulation = Heat2dSimulation(config)
        with pytest.raises(RuntimeError):
            simulation.grid(0)


class TestHeat2dCheckpointing:
    def test_checkpoints_taken_on_interval(self):
        config = Heat2dConfig(ranks=2, rows_per_rank=8, cols=8, iterations=20, snapshot_interval_iters=5)
        result = Heat2dSimulation(config).run()
        # 4 checkpoint rounds x 2 ranks.
        assert result.checkpoints_taken == 8
        assert result.recoveries_performed == 0

    def test_failure_injection_triggers_recovery(self):
        config = Heat2dConfig(ranks=2, rows_per_rank=8, cols=8, iterations=20, snapshot_interval_iters=5)
        result = Heat2dSimulation(config).run(inject_failure_at=12)
        assert result.recoveries_performed == 2
        assert result.max_recovery_time_s > 0

    def test_elapsed_time_accumulates(self):
        config = Heat2dConfig(ranks=2, rows_per_rank=8, cols=8, iterations=10)
        result = Heat2dSimulation(config).run()
        assert result.elapsed_s > 0


class TestFig6Experiment:
    def test_async_roughly_order_of_magnitude_cheaper(self):
        initial = run_fig6_point(1, 16.0, CheckpointStrategy.INITIAL)
        asynchronous = run_fig6_point(1, 16.0, CheckpointStrategy.ASYNC)
        ratio = initial.checkpoint_time_s / asynchronous.checkpoint_time_s
        assert 8.0 < ratio < 20.0  # paper: 12.05x

    def test_recover_speedup_around_five_x(self):
        initial = run_fig6_point(1, 16.0, CheckpointStrategy.INITIAL)
        asynchronous = run_fig6_point(1, 16.0, CheckpointStrategy.ASYNC)
        ratio = initial.recover_time_s / asynchronous.recover_time_s
        assert 3.0 < ratio < 8.0  # paper: 5.13x

    def test_weak_scaling_keeps_checkpoint_cost_flat(self):
        """Fig. 6's key message: cost does not grow with the node count."""
        small = run_fig6_point(1, 16.0, CheckpointStrategy.ASYNC)
        large = run_fig6_point(8, 16.0, CheckpointStrategy.ASYNC)
        assert large.checkpoint_time_s == pytest.approx(small.checkpoint_time_s, rel=0.05)

    def test_doubling_problem_size_doubles_cost(self):
        small = run_fig6_point(1, 16.0, CheckpointStrategy.INITIAL)
        large = run_fig6_point(1, 32.0, CheckpointStrategy.INITIAL)
        assert large.checkpoint_time_s == pytest.approx(2 * small.checkpoint_time_s, rel=0.1)

    def test_total_checkpointed_data_matches_paper_totals(self):
        point = run_fig6_point(16, 16.0, CheckpointStrategy.ASYNC)
        # 16 nodes x 4 ranks x 16 GiB = 1 TiB.
        assert point.total_checkpointed_tib == pytest.approx(1.0, rel=0.01)
        point32 = run_fig6_point(16, 32.0, CheckpointStrategy.ASYNC)
        assert point32.total_checkpointed_tib == pytest.approx(2.0, rel=0.01)

    def test_full_experiment_covers_all_bars(self):
        points = run_fig6_experiment(node_counts=(1, 4), gib_per_rank_options=(16.0,))
        assert len(points) == 4  # 2 node counts x 2 strategies
        strategies = {p.strategy for p in points}
        assert strategies == {CheckpointStrategy.INITIAL, CheckpointStrategy.ASYNC}

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            run_fig6_point(0, 16.0, CheckpointStrategy.ASYNC)
        with pytest.raises(ValueError):
            run_fig6_point(1, -1.0, CheckpointStrategy.ASYNC)


class TestMtbfModel:
    def test_young_interval_formula(self):
        assert optimal_interval_young(10.0, 1000.0) == pytest.approx((2 * 10 * 1000) ** 0.5)
        with pytest.raises(ValueError):
            optimal_interval_young(0.0, 100.0)

    def test_overhead_decreases_with_mtbf(self):
        model = CheckpointEfficiencyModel(checkpoint_cost_s=10.0, recovery_cost_s=20.0)
        assert model.overhead_fraction(1e5) < model.overhead_fraction(1e4)

    def test_efficiency_complement(self):
        model = CheckpointEfficiencyModel(checkpoint_cost_s=5.0, recovery_cost_s=5.0)
        mtbf = 1e5
        assert model.efficiency(mtbf) == pytest.approx(1.0 - model.overhead_fraction(mtbf))

    def test_sustainable_mtbf_monotone_in_budget(self):
        model = CheckpointEfficiencyModel(checkpoint_cost_s=10.0, recovery_cost_s=20.0)
        strict = model.sustainable_mtbf_s(overhead_budget=0.02)
        relaxed = model.sustainable_mtbf_s(overhead_budget=0.10)
        assert strict > relaxed

    def test_budget_validation(self):
        model = CheckpointEfficiencyModel(checkpoint_cost_s=10.0, recovery_cost_s=0.0)
        with pytest.raises(ValueError):
            model.sustainable_mtbf_s(overhead_budget=0.0)
        with pytest.raises(ValueError):
            model.sustainable_mtbf_s(overhead_budget=1.5)

    def test_mtbf_ratio_in_paper_ballpark(self):
        """The paper estimates the async path sustains ~7x smaller MTBF."""
        initial = run_fig6_point(1, 16.0, CheckpointStrategy.INITIAL)
        asynchronous = run_fig6_point(1, 16.0, CheckpointStrategy.ASYNC)
        ratio = sustainable_mtbf_ratio(
            CheckpointEfficiencyModel(initial.checkpoint_time_s, initial.recover_time_s),
            CheckpointEfficiencyModel(asynchronous.checkpoint_time_s, asynchronous.recover_time_s),
            overhead_budget=0.05,
        )
        assert 4.0 < ratio < 20.0
