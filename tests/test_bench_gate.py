"""The benchmark perf-regression gate must trip on degraded metrics.

Loads ``benchmarks/harness.py`` directly (the benchmarks directory is not
a package) and exercises the full JSON round trip against temp
directories: emit -> pin -> degrade -> gate failure.  This is the unit
proof behind CI's ``python benchmarks/harness.py check`` step.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

HARNESS_PATH = Path(__file__).parent.parent / "benchmarks" / "harness.py"
spec = importlib.util.spec_from_file_location("bench_harness", HARNESS_PATH)
harness = importlib.util.module_from_spec(spec)
spec.loader.exec_module(harness)


@pytest.fixture
def dirs(tmp_path):
    bench_dir = tmp_path / "bench"
    baselines_dir = tmp_path / "baselines"
    results_dir = tmp_path / "results"
    bench_dir.mkdir()
    baselines_dir.mkdir()
    return bench_dir, baselines_dir, results_dir


def _emit(bench_dir, results_dir, tier="smoke", **overrides):
    run = harness.BenchRun("demo", tier=tier)
    run.metric("ops_per_sec", overrides.get("ops_per_sec", 100.0),
               direction="higher", tolerance=0.05)
    run.metric("p99_latency_s", overrides.get("p99_latency_s", 2.0),
               direction="lower", tolerance=0.05)
    run.metric("sla_violation_rate", overrides.get("sla_violation_rate", 0.0),
               direction="lower", abs_tolerance=0.02)
    run.metric("wall_clock_s", overrides.get("wall_clock_s", 1.0),
               direction="lower", gate=False)
    run.table("demo", "Demo table", ["a", "b"], [[1, 2]])
    return run.finish(bench_dir=bench_dir, quiet=True, results_dir=results_dir)


class TestGate:
    def test_round_trip_within_tolerance_passes(self, dirs):
        bench_dir, baselines_dir, results_dir = dirs
        _emit(bench_dir, results_dir)
        assert harness.pin(bench_dir=bench_dir, baselines_dir=baselines_dir) == ["demo"]
        # Re-emit with values inside every margin.
        _emit(bench_dir, results_dir, ops_per_sec=97.0, p99_latency_s=2.05,
              sla_violation_rate=0.01)
        compared, failures = harness.check(
            bench_dir=bench_dir, baselines_dir=baselines_dir, tier="smoke"
        )
        assert compared == 3
        assert failures == []

    def test_gate_trips_on_degraded_higher_is_better_metric(self, dirs):
        bench_dir, baselines_dir, results_dir = dirs
        _emit(bench_dir, results_dir)
        harness.pin(bench_dir=bench_dir, baselines_dir=baselines_dir)
        _emit(bench_dir, results_dir, ops_per_sec=80.0)  # -20% > 5% tolerance
        _, failures = harness.check(bench_dir=bench_dir, baselines_dir=baselines_dir)
        assert len(failures) == 1
        assert "ops_per_sec" in failures[0] and "regressed" in failures[0]

    def test_gate_trips_on_degraded_lower_is_better_metric(self, dirs):
        bench_dir, baselines_dir, results_dir = dirs
        _emit(bench_dir, results_dir)
        harness.pin(bench_dir=bench_dir, baselines_dir=baselines_dir)
        _emit(bench_dir, results_dir, p99_latency_s=2.5)
        _, failures = harness.check(bench_dir=bench_dir, baselines_dir=baselines_dir)
        assert len(failures) == 1
        assert "p99_latency_s" in failures[0]

    def test_abs_tolerance_floors_near_zero_baselines(self, dirs):
        bench_dir, baselines_dir, results_dir = dirs
        _emit(bench_dir, results_dir)  # sla_violation_rate pinned at 0.0
        harness.pin(bench_dir=bench_dir, baselines_dir=baselines_dir)
        # Within the 0.02 absolute floor: no failure despite a 0.0 pin.
        _emit(bench_dir, results_dir, sla_violation_rate=0.015)
        _, failures = harness.check(bench_dir=bench_dir, baselines_dir=baselines_dir)
        assert failures == []
        _emit(bench_dir, results_dir, sla_violation_rate=0.05)
        _, failures = harness.check(bench_dir=bench_dir, baselines_dir=baselines_dir)
        assert len(failures) == 1 and "sla_violation_rate" in failures[0]

    def test_ungated_metrics_never_trip(self, dirs):
        bench_dir, baselines_dir, results_dir = dirs
        _emit(bench_dir, results_dir)
        harness.pin(bench_dir=bench_dir, baselines_dir=baselines_dir)
        _emit(bench_dir, results_dir, wall_clock_s=100.0)
        _, failures = harness.check(bench_dir=bench_dir, baselines_dir=baselines_dir)
        assert failures == []

    def test_tier_mismatch_is_skipped_not_compared(self, dirs):
        bench_dir, baselines_dir, results_dir = dirs
        _emit(bench_dir, results_dir, tier="full")
        harness.pin(bench_dir=bench_dir, baselines_dir=baselines_dir)
        compared, failures = harness.check(
            bench_dir=bench_dir, baselines_dir=baselines_dir, tier="smoke"
        )
        assert compared == 0 and failures == []

    def test_gated_metric_missing_from_baseline_is_hard_failure(self, dirs):
        bench_dir, baselines_dir, results_dir = dirs
        _emit(bench_dir, results_dir)
        harness.pin(bench_dir=bench_dir, baselines_dir=baselines_dir)
        # A new gated metric appears after the pin: it must not slip
        # through the gate silently, and the failure names the fix.
        run = harness.BenchRun("demo", tier="smoke")
        run.metric("ops_per_sec", 100.0, direction="higher", tolerance=0.05)
        run.metric("p99_latency_s", 2.0, direction="lower", tolerance=0.05)
        run.metric("sla_violation_rate", 0.0, direction="lower", abs_tolerance=0.02)
        run.metric("brand_new_metric", 1.0, direction="higher", tolerance=0.05)
        run.finish(bench_dir=bench_dir, quiet=True, results_dir=results_dir)
        _, failures = harness.check(bench_dir=bench_dir, baselines_dir=baselines_dir)
        assert len(failures) == 1
        assert "brand_new_metric" in failures[0]
        assert "missing from the pinned baseline" in failures[0]
        assert "harness.py pin demo" in failures[0]

    def test_ungated_metric_missing_from_baseline_is_fine(self, dirs):
        bench_dir, baselines_dir, results_dir = dirs
        _emit(bench_dir, results_dir)
        harness.pin(bench_dir=bench_dir, baselines_dir=baselines_dir)
        run = harness.BenchRun("demo", tier="smoke")
        run.metric("ops_per_sec", 100.0, direction="higher", tolerance=0.05)
        run.metric("p99_latency_s", 2.0, direction="lower", tolerance=0.05)
        run.metric("sla_violation_rate", 0.0, direction="lower", abs_tolerance=0.02)
        run.metric("informational_only", 7.0, gate=False)
        run.finish(bench_dir=bench_dir, quiet=True, results_dir=results_dir)
        _, failures = harness.check(bench_dir=bench_dir, baselines_dir=baselines_dir)
        assert failures == []

    def test_pin_preserves_other_tiers(self, dirs):
        bench_dir, baselines_dir, results_dir = dirs
        _emit(bench_dir, results_dir, tier="smoke")
        harness.pin(bench_dir=bench_dir, baselines_dir=baselines_dir)
        _emit(bench_dir, results_dir, tier="full", ops_per_sec=500.0)
        harness.pin(bench_dir=bench_dir, baselines_dir=baselines_dir)
        baseline = harness.load_baseline("demo", baselines_dir=baselines_dir)
        assert set(baseline) == {"smoke", "full"}
        assert baseline["smoke"]["metrics"]["ops_per_sec"]["value"] == 100.0
        assert baseline["full"]["metrics"]["ops_per_sec"]["value"] == 500.0


class TestArtefacts:
    def test_payload_schema_and_speedup_vs_baseline(self, dirs):
        bench_dir, baselines_dir, results_dir = dirs
        _emit(bench_dir, results_dir)
        harness.pin(bench_dir=bench_dir, baselines_dir=baselines_dir)

        run = harness.BenchRun("demo", tier="smoke")
        run.metric("ops_per_sec", 120.0, direction="higher", tolerance=0.05)
        run.metric("p99_latency_s", 1.0, direction="lower", tolerance=0.05)
        run.attach_counters({"b": 2.0, "a": 1.0})
        run.attach_trace({"stages": {}, "critical_path": {}})
        # finish() consults the repo-default baselines dir, so compute the
        # baseline comparison explicitly against the temp pin.
        payload = run.finish(bench_dir=bench_dir, quiet=True, results_dir=results_dir)
        assert payload["schema"] == harness.SCHEMA_VERSION
        assert payload["name"] == "demo" and payload["tier"] == "smoke"
        assert payload["counters"] == {"a": 1.0, "b": 2.0}
        assert payload["trace"]["stages"] == {}
        on_disk = json.loads((bench_dir / "BENCH_demo.json").read_text())
        assert on_disk["metrics"]["ops_per_sec"]["value"] == 120.0

        baseline = harness.load_baseline("demo", baselines_dir=baselines_dir)
        ratios = harness.speedups_vs_baseline(
            payload["metrics"], baseline["smoke"]["metrics"]
        )
        assert ratios["ops_per_sec"] == pytest.approx(1.2)  # 120 / 100
        assert ratios["p99_latency_s"] == pytest.approx(2.0)  # 2.0 / 1.0

    def test_results_txt_rendered_from_json(self, dirs):
        bench_dir, baselines_dir, results_dir = dirs
        payload = _emit(bench_dir, results_dir)
        text = (results_dir / "demo.txt").read_text()
        assert text.startswith("Demo table\n")
        assert "a" in text and "1" in text
        # Mutate the JSON and re-render: the txt follows the JSON.
        payload["tables"][0]["title"] = "Renamed"
        harness.render_tables(payload, results_dir=results_dir)
        assert (results_dir / "demo.txt").read_text().startswith("Renamed\n")

    def test_attach_profile_lands_in_payload(self, dirs):
        bench_dir, baselines_dir, results_dir = dirs
        run = harness.BenchRun("demo", tier="smoke")
        run.metric("ops_per_sec", 1.0, tolerance=0.05)
        report = {
            "phases": {"ingest": {"calls": 1, "total_s": 0.5, "self_s": 0.5}},
            "top_level_s": 0.5,
        }
        run.attach_profile(report)
        payload = run.finish(bench_dir=bench_dir, quiet=True, results_dir=results_dir)
        assert payload["profile"]["top_level_s"] == 0.5
        on_disk = json.loads((bench_dir / "BENCH_demo.json").read_text())
        assert on_disk["profile"]["phases"]["ingest"]["calls"] == 1

    def test_attach_profile_accepts_profiler_and_none(self, dirs):
        bench_dir, baselines_dir, results_dir = dirs

        class FakeProfiler:
            def report(self):
                return {"phases": {}, "top_level_s": 0.0}

        run = harness.BenchRun("demo", tier="smoke")
        run.metric("ops_per_sec", 1.0, tolerance=0.05)
        run.attach_profile(FakeProfiler())
        assert run.profile == {"phases": {}, "top_level_s": 0.0}
        run.attach_profile(None)  # ignored, keeps the previous attachment
        assert run.profile is not None

    def test_metric_rejects_unknown_direction(self):
        run = harness.BenchRun("demo")
        with pytest.raises(ValueError, match="direction"):
            run.metric("x", 1.0, direction="sideways")
