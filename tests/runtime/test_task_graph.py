"""Tests for the task model and dependency-graph construction."""

from __future__ import annotations

import pytest

from repro.hardware.microserver import DeviceKind, WorkloadKind
from repro.runtime.graph import TaskGraph
from repro.runtime.task import (
    AccessMode,
    DataAccess,
    Task,
    TaskRequirements,
    make_task,
)


class TestAccessModes:
    def test_reads_and_writes_flags(self):
        assert AccessMode.IN.reads and not AccessMode.IN.writes
        assert AccessMode.OUT.writes and not AccessMode.OUT.reads
        assert AccessMode.INOUT.reads and AccessMode.INOUT.writes

    def test_data_access_validation(self):
        with pytest.raises(ValueError):
            DataAccess("", AccessMode.IN)
        with pytest.raises(ValueError):
            DataAccess("x", AccessMode.IN, size_bytes=-1)


class TestTaskRequirements:
    def test_validation(self):
        with pytest.raises(ValueError):
            TaskRequirements(gops=0)
        with pytest.raises(ValueError):
            TaskRequirements(min_width=3, max_width=2)
        with pytest.raises(ValueError):
            TaskRequirements(memory_gib=-1)

    def test_device_allow_list(self):
        requirements = TaskRequirements(allowed_devices=frozenset({DeviceKind.GPU}))
        assert requirements.allows(DeviceKind.GPU)
        assert not requirements.allows(DeviceKind.CPU_X86)
        unrestricted = TaskRequirements()
        assert unrestricted.allows(DeviceKind.FPGA)


class TestTaskConstruction:
    def test_make_task_builds_accesses(self):
        task = make_task("t", inputs=["a"], outputs=["b"], inouts=["c"], region_size_bytes=10)
        assert task.reads == {"a", "c"}
        assert task.writes == {"b", "c"}
        assert task.footprint_bytes == 30
        assert task.checkpoint_payload() == {"b", "c"}

    def test_duplicate_regions_rejected(self):
        with pytest.raises(ValueError):
            make_task("t", inputs=["a"], outputs=["a"])

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Task(name="")

    def test_unique_ids_and_function_execution(self):
        results = []
        task = make_task("f", function=lambda: results.append(1) or "done")
        other = make_task("g")
        assert task.task_id != other.task_id
        assert task.run() == "done"
        assert other.run() is None
        assert results == [1]


class TestDependencyDerivation:
    def test_raw_dependence(self):
        graph = TaskGraph()
        producer = graph.add_task(make_task("produce", outputs=["x"]))
        consumer = graph.add_task(make_task("consume", inputs=["x"]))
        assert consumer in graph.successors(producer)
        assert graph.edge_region(producer, consumer) == "x"

    def test_waw_and_war_dependences(self):
        graph = TaskGraph()
        w1 = graph.add_task(make_task("w1", outputs=["x"]))
        reader = graph.add_task(make_task("r", inputs=["x"]))
        w2 = graph.add_task(make_task("w2", outputs=["x"]))
        assert w2 in graph.successors(w1)      # WAW
        assert w2 in graph.successors(reader)  # WAR

    def test_independent_tasks_have_no_edges(self):
        graph = TaskGraph()
        graph.add_task(make_task("a", outputs=["x"]))
        graph.add_task(make_task("b", outputs=["y"]))
        assert graph.num_edges == 0

    def test_duplicate_submission_rejected(self):
        graph = TaskGraph()
        task = make_task("a", outputs=["x"])
        graph.add_task(task)
        with pytest.raises(ValueError):
            graph.add_task(task)

    def test_roots_and_leaves(self):
        graph = TaskGraph()
        a = graph.add_task(make_task("a", outputs=["x"]))
        b = graph.add_task(make_task("b", inputs=["x"], outputs=["y"]))
        c = graph.add_task(make_task("c", inputs=["y"]))
        assert graph.roots() == [a]
        assert graph.leaves() == [c]
        assert graph.ancestors(c) == {a, b}
        assert graph.descendants(a) == {b, c}


class TestGraphAnalyses:
    def build_diamond(self):
        graph = TaskGraph()
        a = graph.add_task(make_task("a", outputs=["x"], gops=1))
        b = graph.add_task(make_task("b", inputs=["x"], outputs=["y"], gops=2))
        c = graph.add_task(make_task("c", inputs=["x"], outputs=["z"], gops=3))
        d = graph.add_task(make_task("d", inputs=["y", "z"], outputs=["w"], gops=1))
        return graph, (a, b, c, d)

    def test_topological_order_respects_dependences(self):
        graph, (a, b, c, d) = self.build_diamond()
        order = graph.topological_order()
        assert order.index(a) < order.index(b) < order.index(d)
        assert order.index(a) < order.index(c) < order.index(d)

    def test_waves_group_independent_tasks(self):
        graph, (a, b, c, d) = self.build_diamond()
        waves = graph.waves()
        assert waves[0] == [a]
        assert set(waves[1]) == {b, c}
        assert waves[2] == [d]
        assert graph.parallelism_profile() == [1, 2, 1]

    def test_critical_path_follows_heaviest_chain(self):
        graph, (a, b, c, d) = self.build_diamond()
        path, length = graph.critical_path()
        assert path == [a, c, d]
        assert length == pytest.approx(5.0)

    def test_empty_graph_critical_path(self):
        graph = TaskGraph()
        path, length = graph.critical_path()
        assert path == [] and length == 0.0

    def test_to_networkx_is_a_copy(self):
        graph, (a, *_rest) = self.build_diamond()
        copy = graph.to_networkx()
        copy.remove_node(a)
        assert graph.num_tasks == 4
