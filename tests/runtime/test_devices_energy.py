"""Tests for execution devices and the energy-aware selection policies."""

from __future__ import annotations

import pytest

from repro.hardware.microserver import DeviceKind, WorkloadKind
from repro.runtime.devices import (
    ExecutionDevice,
    TargetKind,
    build_devices,
    build_devices_from_microservers,
)
from repro.runtime.energy import EnergyPolicy, diverse_devices, pick_device, rank_devices
from repro.runtime.task import make_task
from repro.hardware.microserver import make_microserver


class TestTargetMapping:
    def test_target_kind_per_device_class(self):
        assert TargetKind.for_device(DeviceKind.CPU_X86) is TargetKind.SMP
        assert TargetKind.for_device(DeviceKind.GPU) is TargetKind.CUDA
        assert TargetKind.for_device(DeviceKind.GPU_SOC) is TargetKind.OPENCL
        assert TargetKind.for_device(DeviceKind.FPGA) is TargetKind.FPGA

    def test_build_devices_from_microservers(self):
        devices = build_devices_from_microservers([make_microserver("xeon-d-x86")])
        assert devices[0].target is TargetKind.SMP


class TestDeviceCostModel:
    def test_supports_checks_allow_list_and_memory(self):
        devices = build_devices(["xeon-d-x86", "gtx1080-gpu"])
        gpu_only = make_task("g", allowed_devices=[DeviceKind.GPU], workload=WorkloadKind.DNN_INFERENCE)
        big = make_task("big", memory_gib=512)
        assert not devices[0].supports(gpu_only)
        assert devices[1].supports(gpu_only)
        assert not devices[1].supports(big)

    def test_staging_cost_only_for_accelerators(self):
        cpu, gpu = build_devices(["xeon-d-x86", "gtx1080-gpu"])
        task = make_task("t", inputs=["x"], region_size_bytes=1e9)
        assert cpu.staging_time_s(task) == 0.0
        assert gpu.staging_time_s(task) > 0.0

    def test_fpga_reconfiguration_charged_on_kernel_switch(self):
        (fpga,) = build_devices(["kintex-fpga"])
        task_a = make_task("a", workload=WorkloadKind.STREAMING)
        task_b = make_task("b", workload=WorkloadKind.STREAMING)
        fpga.execute(task_a)
        assert fpga.reconfiguration_time_s(task_a) == 0.0  # already loaded
        assert fpga.reconfiguration_time_s(task_b) > 0.0

    def test_execute_serialises_and_charges_energy(self):
        (cpu,) = build_devices(["xeon-d-x86"])
        task = make_task("t", gops=120.0)
        start1, finish1, energy1 = cpu.execute(task)
        task2 = make_task("t2", gops=120.0)
        start2, _, _ = cpu.execute(task2)
        assert start2 == pytest.approx(finish1)
        assert cpu.consumed_energy_j == pytest.approx(energy1 * 2, rel=0.01)
        assert cpu.executed_tasks == ("t", "t2")

    def test_execute_unsupported_task_raises(self):
        (cpu,) = build_devices(["xeon-d-x86"])
        gpu_task = make_task("g", allowed_devices=[DeviceKind.GPU])
        with pytest.raises(ValueError):
            cpu.execute(gpu_task)


class TestEnergyPolicies:
    def test_energy_policy_prefers_fpga_for_inference(self, small_devices):
        task = make_task("dnn", workload=WorkloadKind.DNN_INFERENCE, gops=500)
        chosen = pick_device(task, small_devices, policy=EnergyPolicy.ENERGY)
        assert chosen.kind.is_fpga

    def test_performance_policy_prefers_gpu_for_inference(self, small_devices):
        task = make_task("dnn", workload=WorkloadKind.DNN_INFERENCE, gops=500)
        chosen = pick_device(task, small_devices, policy=EnergyPolicy.PERFORMANCE)
        assert chosen.kind is DeviceKind.GPU

    def test_scalar_work_stays_on_cpu_for_performance(self, small_devices):
        task = make_task("ctrl", workload=WorkloadKind.SCALAR, gops=50)
        chosen = pick_device(task, small_devices, policy=EnergyPolicy.PERFORMANCE)
        assert chosen.kind.is_cpu

    def test_no_supporting_device_raises(self, small_devices):
        task = make_task("huge", memory_gib=1e6)
        with pytest.raises(ValueError):
            pick_device(task, small_devices)

    def test_rank_devices_sorted_best_first(self, small_devices):
        task = make_task("dnn", workload=WorkloadKind.DNN_INFERENCE, gops=500)
        ranking = rank_devices(task, small_devices, policy=EnergyPolicy.ENERGY)
        scores = [score for _, score in ranking]
        assert scores == sorted(scores)

    def test_edp_policy_balances(self, small_devices):
        task = make_task("dnn", workload=WorkloadKind.DNN_INFERENCE, gops=500)
        chosen = pick_device(task, small_devices, policy=EnergyPolicy.EDP)
        assert chosen.kind in (DeviceKind.GPU, DeviceKind.FPGA)

    def test_diverse_devices_picks_distinct_kinds(self, small_devices):
        task = make_task("crit", workload=WorkloadKind.DATA_PARALLEL, gops=100)
        picked = diverse_devices(task, small_devices, 3)
        kinds = [device.kind for device in picked]
        assert len(set(kinds)) == 3

    def test_diverse_devices_falls_back_to_same_kind(self):
        devices = build_devices(["xeon-d-x86", "xeon-d-x86"])
        task = make_task("t", gops=10)
        picked = diverse_devices(task, devices, 2)
        assert len(picked) == 2

    def test_diverse_devices_rejects_zero_count(self, small_devices):
        with pytest.raises(ValueError):
            diverse_devices(make_task("t"), small_devices, 0)
