"""Tests for selective replication, fault detection and error propagation."""

from __future__ import annotations

import pytest

from repro.hardware.microserver import WorkloadKind
from repro.runtime.devices import build_devices
from repro.runtime.fault_tolerance import (
    FaultInjector,
    ReplicationPolicy,
    ResilientExecutor,
    failure_root_candidates,
    propagate_errors,
)
from repro.runtime.graph import TaskGraph
from repro.runtime.task import make_task


def mixed_graph() -> TaskGraph:
    graph = TaskGraph()
    graph.add_task(make_task("load", outputs=["raw"], gops=10))
    graph.add_task(
        make_task("critical-transform", inputs=["raw"], outputs=["clean"], gops=50, reliability_critical=True)
    )
    graph.add_task(make_task("analyse", inputs=["clean"], outputs=["result"], gops=100))
    graph.add_task(make_task("report", inputs=["result"], outputs=["summary"], gops=5))
    return graph


class TestReplicationPolicy:
    def test_replica_counts(self):
        critical = make_task("c", reliability_critical=True)
        normal = make_task("n")
        assert ReplicationPolicy.NONE.replicas_for(critical) == 1
        assert ReplicationPolicy.FULL.replicas_for(normal) == 2
        assert ReplicationPolicy.SELECTIVE.replicas_for(critical) == 2
        assert ReplicationPolicy.SELECTIVE.replicas_for(normal) == 1
        assert ReplicationPolicy.TRIPLE_CRITICAL.replicas_for(critical) == 3


class TestFaultInjector:
    def test_probability_bounds_validated(self):
        with pytest.raises(ValueError):
            FaultInjector(fault_probability=1.5)
        with pytest.raises(ValueError):
            FaultInjector(systematic_fraction=-0.1)

    def test_zero_probability_never_faults(self):
        injector = FaultInjector(fault_probability=0.0)
        assert all(not injector.draw_fault()[0] for _ in range(100))

    def test_full_probability_always_faults(self):
        injector = FaultInjector(fault_probability=1.0, systematic_fraction=0.0)
        faults = [injector.draw_fault() for _ in range(50)]
        assert all(faulty for faulty, _ in faults)
        assert all(not systematic for _, systematic in faults)


class TestResilientExecutor:
    def test_selective_replication_only_replicates_critical(self, small_devices):
        executor = ResilientExecutor(
            small_devices, policy=ReplicationPolicy.SELECTIVE, injector=FaultInjector(0.0)
        )
        report = executor.execute(mixed_graph())
        by_name = {o.task.name: o for o in report.outcomes}
        assert by_name["critical-transform"].replicas == 2
        assert by_name["analyse"].replicas == 1

    def test_replicas_run_on_diverse_device_kinds(self, small_devices):
        executor = ResilientExecutor(
            small_devices, policy=ReplicationPolicy.FULL, injector=FaultInjector(0.0)
        )
        report = executor.execute(mixed_graph())
        for outcome in report.outcomes:
            assert len(set(outcome.device_kinds)) == len(outcome.device_kinds)

    def test_no_replication_detects_nothing(self, small_devices):
        executor = ResilientExecutor(
            small_devices,
            policy=ReplicationPolicy.NONE,
            injector=FaultInjector(fault_probability=0.5, seed=1),
        )
        report = executor.execute(mixed_graph())
        assert report.injected_faults > 0
        assert report.detected_faults == 0
        assert report.detection_coverage == 0.0

    def test_full_replication_detects_most_faults(self, small_devices):
        injector = FaultInjector(fault_probability=0.6, systematic_fraction=0.0, seed=7)
        executor = ResilientExecutor(small_devices, policy=ReplicationPolicy.FULL, injector=injector)
        # Larger graph for statistics.
        graph = TaskGraph()
        for i in range(40):
            graph.add_task(make_task(f"t{i}", outputs=[f"o{i}"], gops=10, reliability_critical=True))
        report = executor.execute(graph)
        assert report.injected_faults > 0
        assert report.detection_coverage > 0.9

    def test_replication_costs_more_energy(self, small_devices):
        graph_a, graph_b = mixed_graph(), mixed_graph()
        none_report = ResilientExecutor(
            small_devices, ReplicationPolicy.NONE, FaultInjector(0.0)
        ).execute(graph_a)
        full_report = ResilientExecutor(
            build_devices(["xeon-d-x86", "gtx1080-gpu", "kintex-fpga"]),
            ReplicationPolicy.FULL,
            FaultInjector(0.0),
        ).execute(graph_b)
        assert full_report.total_energy_j > none_report.total_energy_j

    def test_selective_cheaper_than_full(self, small_devices):
        full = ResilientExecutor(
            build_devices(["xeon-d-x86", "gtx1080-gpu", "kintex-fpga"]),
            ReplicationPolicy.FULL,
            FaultInjector(0.0),
        ).execute(mixed_graph())
        selective = ResilientExecutor(
            build_devices(["xeon-d-x86", "gtx1080-gpu", "kintex-fpga"]),
            ReplicationPolicy.SELECTIVE,
            FaultInjector(0.0),
        ).execute(mixed_graph())
        assert selective.total_energy_j < full.total_energy_j

    def test_executor_needs_devices(self):
        with pytest.raises(ValueError):
            ResilientExecutor([], ReplicationPolicy.NONE)

    def test_critical_coverage_metric(self, small_devices):
        injector = FaultInjector(fault_probability=1.0, systematic_fraction=0.0, seed=3)
        executor = ResilientExecutor(small_devices, ReplicationPolicy.SELECTIVE, injector)
        report = executor.execute(mixed_graph())
        assert 0.0 <= report.critical_coverage() <= 1.0


class TestErrorPropagation:
    def test_propagation_follows_dataflow(self):
        graph = mixed_graph()
        tasks = {t.name: t for t in graph.tasks}
        result = propagate_errors(graph, tasks["critical-transform"])
        assert result["task_names"] == {"analyse", "report"}
        assert "clean" in result["regions"]

    def test_leaf_corruption_propagates_nowhere(self):
        graph = mixed_graph()
        tasks = {t.name: t for t in graph.tasks}
        result = propagate_errors(graph, tasks["report"])
        assert result["task_names"] == set()

    def test_unknown_task_rejected(self):
        graph = mixed_graph()
        with pytest.raises(KeyError):
            propagate_errors(graph, make_task("stranger"))

    def test_root_cause_candidates_ordered(self):
        graph = mixed_graph()
        tasks = {t.name: t for t in graph.tasks}
        candidates = failure_root_candidates(graph, tasks["report"])
        names = [t.name for t in candidates]
        assert names == ["load", "critical-transform", "analyse"]
