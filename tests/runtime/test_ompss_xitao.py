"""Tests for the OmpSs-like dataflow runtime and the XiTAO elastic runtime."""

from __future__ import annotations

import pytest

from repro.hardware.microserver import MICROSERVER_CATALOG, DeviceKind, WorkloadKind
from repro.runtime.devices import build_devices
from repro.runtime.ompss import (
    ExecutionTrace,
    OmpSsRuntime,
    SchedulingPolicy,
    compare_policies,
)
from repro.runtime.task import make_task
from repro.runtime.xitao import (
    ElasticTask,
    ResourcePartition,
    XitaoRuntime,
    partitions_from_spec,
)


def chain_tasks(n: int = 4, gops: float = 100.0):
    tasks = []
    for i in range(n):
        inputs = [f"d{i - 1}"] if i > 0 else []
        tasks.append(
            make_task(
                f"stage{i}",
                workload=WorkloadKind.DATA_PARALLEL,
                gops=gops,
                inputs=inputs,
                outputs=[f"d{i}"],
            )
        )
    return tasks


class TestOmpSsRuntime:
    def test_dependences_respected_in_trace(self, small_devices):
        runtime = OmpSsRuntime(devices=small_devices)
        trace = runtime.run(chain_tasks(4))
        finishes = {}
        for execution in trace.executions:
            for predecessor in runtime.graph.predecessors(execution.task):
                assert execution.start_s >= finishes[predecessor.name] - 1e-9
            finishes[execution.task.name] = execution.finish_s

    def test_all_tasks_executed_once(self, small_devices):
        runtime = OmpSsRuntime(devices=small_devices)
        tasks = chain_tasks(6)
        trace = runtime.run(tasks)
        assert len(trace.executions) == 6
        assert {e.task.name for e in trace.executions} == {t.name for t in tasks}

    def test_incremental_submission_and_taskwait(self, small_devices):
        runtime = OmpSsRuntime(devices=small_devices)
        first = make_task("first", outputs=["x"], gops=10)
        runtime.submit(first)
        runtime.taskwait()
        second = make_task("second", inputs=["x"], gops=10)
        runtime.submit(second)
        trace = runtime.taskwait()
        assert len(trace.executions) == 2

    def test_energy_policy_consumes_less_energy_than_performance(self):
        def factory():
            return [
                make_task(f"dnn{i}", workload=WorkloadKind.DNN_INFERENCE, gops=400, outputs=[f"r{i}"])
                for i in range(6)
            ]

        results = compare_policies(
            factory,
            ["xeon-d-x86", "gtx1080-gpu", "kintex-fpga"],
            [SchedulingPolicy.PERFORMANCE, SchedulingPolicy.ENERGY],
        )
        assert (
            results[SchedulingPolicy.ENERGY].total_energy_j
            <= results[SchedulingPolicy.PERFORMANCE].total_energy_j
        )

    def test_performance_policy_has_lower_or_equal_makespan(self):
        def factory():
            return [
                make_task(f"dnn{i}", workload=WorkloadKind.DNN_INFERENCE, gops=400, outputs=[f"r{i}"])
                for i in range(6)
            ]

        results = compare_policies(
            factory,
            ["xeon-d-x86", "gtx1080-gpu", "kintex-fpga"],
            [SchedulingPolicy.PERFORMANCE, SchedulingPolicy.ENERGY],
        )
        assert (
            results[SchedulingPolicy.PERFORMANCE].makespan_s
            <= results[SchedulingPolicy.ENERGY].makespan_s + 1e-9
        )

    def test_trace_reports(self, small_devices):
        runtime = OmpSsRuntime(devices=small_devices)
        trace = runtime.run(chain_tasks(3))
        assert trace.makespan_s > 0
        assert trace.total_energy_j > 0
        assert trace.energy_delay_product > 0
        assert trace.average_power_w() > 0
        assert sum(trace.tasks_per_device_kind().values()) == 3
        assert sum(trace.device_utilisation().values()) > 0
        with pytest.raises(KeyError):
            trace.execution_of("missing")

    def test_runtime_requires_devices(self):
        with pytest.raises(ValueError):
            OmpSsRuntime(devices=[])


class TestElasticTask:
    def test_amdahl_speedup(self):
        task = ElasticTask("t", work_gops=100, parallel_fraction=0.5)
        assert task.speedup(1) == pytest.approx(1.0)
        assert task.speedup(1000) < 2.0  # limited by the serial half
        assert task.efficiency(4) < 1.0

    def test_execution_time_decreases_with_width(self):
        task = ElasticTask("t", work_gops=100, parallel_fraction=0.95)
        assert task.execution_time_s(8, core_gops=10) < task.execution_time_s(1, core_gops=10)

    def test_validation(self):
        with pytest.raises(ValueError):
            ElasticTask("t", work_gops=0)
        with pytest.raises(ValueError):
            ElasticTask("t", work_gops=1, parallel_fraction=1.5)
        with pytest.raises(ValueError):
            ElasticTask("t", work_gops=1, min_width=4, max_width=2)


class TestXitaoRuntime:
    def test_partitions_from_spec(self):
        partitions = partitions_from_spec(MICROSERVER_CATALOG["xeon-d-x86"], groups=4)
        assert len(partitions) == 4
        assert all(p.cores == 4 for p in partitions)

    def test_schedule_distributes_across_partitions(self):
        runtime = XitaoRuntime()
        tasks = [ElasticTask(f"t{i}", work_gops=50, max_width=4) for i in range(8)]
        trace = runtime.schedule(tasks)
        partitions_used = {p.partition for p in trace.placements}
        assert len(partitions_used) > 1
        assert trace.makespan_s > 0
        assert trace.total_energy_j > 0

    def test_dependencies_enforce_ordering(self):
        runtime = XitaoRuntime()
        tasks = [ElasticTask("a", work_gops=50), ElasticTask("b", work_gops=50)]
        trace = runtime.schedule(tasks, dependencies={"b": ["a"]})
        a = next(p for p in trace.placements if p.task.name == "a")
        b = next(p for p in trace.placements if p.task.name == "b")
        assert b.start_s >= a.finish_s - 1e-9

    def test_unscheduled_dependency_raises(self):
        runtime = XitaoRuntime()
        tasks = [ElasticTask("b", work_gops=10)]
        with pytest.raises(ValueError):
            runtime.schedule(tasks, dependencies={"b": ["a"]})

    def test_wide_task_uses_more_than_one_core(self):
        runtime = XitaoRuntime()
        task = ElasticTask("wide", work_gops=200, parallel_fraction=0.99, max_width=8)
        trace = runtime.schedule([task])
        assert trace.placements[0].width > 1
        assert trace.width_histogram()[trace.placements[0].width] == 1

    def test_energy_objective_prefers_narrower_widths(self):
        time_runtime = XitaoRuntime(objective="time")
        energy_runtime = XitaoRuntime(objective="energy")
        task = ElasticTask("t", work_gops=200, parallel_fraction=0.7, max_width=4)
        wide = time_runtime.schedule([ElasticTask("t", work_gops=200, parallel_fraction=0.7, max_width=4)])
        narrow = energy_runtime.schedule([task])
        assert narrow.placements[0].width <= wide.placements[0].width

    def test_invalid_objective(self):
        with pytest.raises(ValueError):
            XitaoRuntime(objective="speed")

    def test_partition_validation(self):
        with pytest.raises(ValueError):
            ResourcePartition(name="p", cores=0, core_gops=1.0, core_power_w=1.0)
