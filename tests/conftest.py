"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.microserver import make_microserver
from repro.runtime.devices import build_devices
from repro.scheduler.cluster import Cluster


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for test data."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_devices():
    """A CPU + GPU + FPGA device trio used across runtime tests."""
    return build_devices(["xeon-d-x86", "gtx1080-gpu", "kintex-fpga"])


@pytest.fixture
def heterogeneous_cluster() -> Cluster:
    """A small heterogeneous cluster for scheduler tests."""
    return Cluster.from_models(
        {"xeon-d-x86": 2, "arm64-server": 2, "jetson-gpu-soc": 2, "apalis-arm-soc": 2}
    )


@pytest.fixture
def xeon():
    return make_microserver("xeon-d-x86")


@pytest.fixture
def jetson():
    return make_microserver("jetson-gpu-soc")
