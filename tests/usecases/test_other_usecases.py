"""Tests for the Smart Home, ML inference, infection research and IoT gateway use cases."""

from __future__ import annotations

import pytest

from repro.hardware.microserver import DeviceKind
from repro.runtime.ompss import SchedulingPolicy
from repro.usecases.infection import InfectionClusteringStudy
from repro.usecases.iot_gateway import SecureIotGateway
from repro.usecases.ml_inference import InferenceService
from repro.usecases.smarthome import SmartHomeWorkload


class TestSmartHome:
    def test_task_count_matches_expectation(self):
        workload = SmartHomeWorkload(rooms=3, sensors_per_room=2, periods=2)
        tasks = workload.build_tasks()
        assert len(tasks) == workload.expected_task_count()

    def test_graph_is_connected_per_period(self):
        workload = SmartHomeWorkload(rooms=2, sensors_per_room=2, periods=1)
        graph = workload.build_graph()
        # occupancy inference depends on every fused room state.
        inference = next(t for t in graph.tasks if "occupancy" in t.name)
        assert len(graph.ancestors(inference)) == 2 * 2 + 2  # reads + fuses

    def test_critical_tasks_marked(self):
        workload = SmartHomeWorkload(rooms=2, sensors_per_room=2)
        tasks = workload.build_tasks()
        critical = [t for t in tasks if t.requirements.reliability_critical]
        assert {t.name.split("-", 1)[1] for t in critical} == {"anomaly-detection", "actuate"}

    def test_runs_on_runtime(self):
        workload = SmartHomeWorkload(rooms=2, sensors_per_room=2)
        trace = workload.run()
        assert len(trace.executions) == workload.expected_task_count()
        assert trace.total_energy_j > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SmartHomeWorkload(rooms=0)


class TestInferenceService:
    def test_serving_produces_throughput_and_energy(self):
        service = InferenceService()
        report = service.serve(num_batches=3, requests_per_batch=32)
        assert report.batches == 3
        assert report.requests > 0
        assert report.throughput_requests_per_s > 0
        assert report.energy_per_request_j > 0
        assert report.requests_per_joule > 0

    def test_energy_policy_uses_accelerators(self):
        service = InferenceService(policy=SchedulingPolicy.ENERGY)
        report = service.serve(num_batches=3)
        kinds = report.trace.tasks_per_device_kind()
        accelerated = sum(
            count for kind, count in kinds.items() if DeviceKind(kind).is_fpga or DeviceKind(kind).is_gpu
        )
        assert accelerated > 0

    def test_energy_policy_cheaper_than_performance(self):
        energy_report = InferenceService(policy=SchedulingPolicy.ENERGY).serve(num_batches=3)
        perf_report = InferenceService(policy=SchedulingPolicy.PERFORMANCE).serve(num_batches=3)
        assert energy_report.trace.total_energy_j <= perf_report.trace.total_energy_j

    def test_undervolted_accuracy_energy_curve(self):
        points = InferenceService.undervolted_accuracy_energy(platform="KC705-B")
        voltages = [p[0] for p in points]
        assert voltages == sorted(voltages, reverse=True)
        assert all(0.0 <= accuracy <= 1.0 for _, accuracy, _ in points)

    def test_batch_validation(self):
        with pytest.raises(ValueError):
            InferenceService().make_batches(0)


class TestInfectionResearch:
    def test_planted_outbreaks_recovered(self):
        study = InfectionClusteringStudy(num_samples=80, planted_outbreaks=3, outbreak_size=6, seed=2)
        assert study.recovered_outbreak_fraction() == pytest.approx(1.0)

    def test_distance_matrix_properties(self):
        study = InfectionClusteringStudy(num_samples=30, seed=3)
        distances = study.distance_matrix()
        assert distances.shape == (30, 30)
        assert (distances.diagonal() == 0).all()
        assert (distances == distances.T).all()

    def test_threshold_controls_cluster_granularity(self):
        study = InfectionClusteringStudy(num_samples=60, seed=4)
        strict = study.cluster(threshold=1.0)
        loose = study.cluster(threshold=study.num_markers)
        assert strict.num_clusters >= loose.num_clusters

    def test_task_graph_runs_on_runtime(self):
        study = InfectionClusteringStudy(num_samples=50, seed=5)
        trace = study.run_on_runtime()
        assert any("clustering" in e.task.name for e in trace.executions)

    def test_validation(self):
        with pytest.raises(ValueError):
            InfectionClusteringStudy(num_samples=5, planted_outbreaks=2, outbreak_size=4)


class TestSecureIotGateway:
    def test_processing_reports_throughput_and_overhead(self):
        gateway = SecureIotGateway(messages_per_window=500)
        report = gateway.process(windows=2)
        assert report.messages == 1000
        assert report.throughput_messages_per_s > 0
        assert report.messages_per_joule > 0
        # Enclave protection costs real time (EPC paging dominates for the
        # larger windows) but must stay within a small single-digit factor.
        assert 0.0 < report.security_overhead_fraction < 5.0

    def test_crypto_stages_marked_secure(self):
        gateway = SecureIotGateway()
        graph = gateway.build_graph(windows=1)
        secure_names = {t.name for t in graph.tasks if t.requirements.secure}
        assert secure_names == {"decrypt-0", "validate-0", "sign-and-forward-0"}

    def test_window_dependencies_chain(self):
        gateway = SecureIotGateway()
        graph = gateway.build_graph(windows=1)
        tasks = {t.name: t for t in graph.tasks}
        assert tasks["aggregate-0"] in graph.successors(tasks["validate-0"])

    def test_validation(self):
        with pytest.raises(ValueError):
            SecureIotGateway(messages_per_window=0)
        with pytest.raises(ValueError):
            SecureIotGateway().build_tasks(0)
