"""Tests for the Kalman filter and the from-scratch Hungarian solver."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.optimize import linear_sum_assignment

from repro.usecases.smartmirror.hungarian import HungarianSolver
from repro.usecases.smartmirror.kalman import KalmanTrack


class TestKalmanTrack:
    def test_initial_state_matches_detection(self):
        track = KalmanTrack(track_id=1, initial_position=(100.0, 200.0))
        assert np.allclose(track.position, [100.0, 200.0])
        assert np.allclose(track.velocity, [0.0, 0.0])

    def test_predict_moves_with_velocity(self):
        track = KalmanTrack(track_id=1, initial_position=(0.0, 0.0), initial_velocity=(5.0, -2.0))
        track.predict()
        assert np.allclose(track.position, [5.0, -2.0])

    def test_predict_grows_uncertainty_update_shrinks_it(self):
        track = KalmanTrack(track_id=1, initial_position=(0.0, 0.0))
        initial = track.position_uncertainty()
        track.predict()
        grown = track.position_uncertainty()
        assert grown > initial
        track.update(np.array([1.0, 1.0]))
        assert track.position_uncertainty() < grown

    def test_update_pulls_state_towards_measurement(self):
        track = KalmanTrack(track_id=1, initial_position=(0.0, 0.0))
        track.predict()
        track.update(np.array([10.0, 10.0]))
        assert 0.0 < track.position[0] <= 10.0

    def test_filter_converges_on_constant_velocity_target(self):
        rng = np.random.default_rng(0)
        track = KalmanTrack(
            track_id=1, initial_position=(0.0, 0.0), measurement_noise=4.0, process_noise=0.05
        )
        errors = []
        for step in range(1, 60):
            truth = np.array([3.0 * step, 1.5 * step])
            track.predict()
            track.update(truth + rng.normal(0, 4.0, size=2))
            errors.append(np.linalg.norm(track.position - truth))
        assert np.mean(errors[-10:]) < np.mean(errors[:10])
        # The filter should also have learned the velocity.
        assert track.velocity[0] == pytest.approx(3.0, abs=1.0)

    def test_gating_distance_smaller_for_closer_measurements(self):
        track = KalmanTrack(track_id=1, initial_position=(0.0, 0.0))
        near = track.gating_distance(np.array([1.0, 1.0]))
        far = track.gating_distance(np.array([50.0, 50.0]))
        assert near < far

    def test_miss_bookkeeping(self):
        track = KalmanTrack(track_id=1, initial_position=(0.0, 0.0))
        track.predict()
        track.mark_missed()
        assert track.time_since_update == 1
        assert track.misses == 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            KalmanTrack(track_id=1, initial_position=(0, 0), dt=0)
        with pytest.raises(ValueError):
            KalmanTrack(track_id=1, initial_position=(0, 0), process_noise=0)


def brute_force_cost(matrix: np.ndarray) -> float:
    from itertools import permutations

    rows, cols = matrix.shape
    best = np.inf
    for perm in permutations(range(cols), rows):
        best = min(best, sum(matrix[i, j] for i, j in enumerate(perm)))
    return best


class TestHungarianSolver:
    def setup_method(self):
        self.solver = HungarianSolver()

    def test_identity_preference(self):
        cost = np.array([[1.0, 10.0], [10.0, 1.0]])
        pairs = self.solver.solve(cost)
        assert pairs == [(0, 0), (1, 1)]

    def test_anti_diagonal_preference(self):
        cost = np.array([[10.0, 1.0], [1.0, 10.0]])
        assert self.solver.solve(cost) == [(0, 1), (1, 0)]

    def test_matches_scipy_on_random_square_matrices(self):
        rng = np.random.default_rng(2)
        for _ in range(20):
            matrix = rng.random((6, 6)) * 100
            ours = self.solver.assignment_cost(matrix, self.solver.solve(matrix))
            rows, cols = linear_sum_assignment(matrix)
            assert ours == pytest.approx(matrix[rows, cols].sum(), rel=1e-9)

    def test_matches_scipy_on_rectangular_matrices(self):
        rng = np.random.default_rng(3)
        for shape in [(3, 7), (7, 3), (1, 5), (5, 1)]:
            matrix = rng.random(shape) * 10
            pairs = self.solver.solve(matrix)
            assert len(pairs) == min(shape)
            ours = self.solver.assignment_cost(matrix, pairs)
            rows, cols = linear_sum_assignment(matrix)
            assert ours == pytest.approx(matrix[rows, cols].sum(), rel=1e-9)

    def test_matches_brute_force_on_small_instances(self):
        rng = np.random.default_rng(4)
        for _ in range(10):
            matrix = rng.integers(0, 20, size=(4, 5)).astype(float)
            pairs = self.solver.solve(matrix)
            assert self.solver.assignment_cost(matrix, pairs) == pytest.approx(
                brute_force_cost(matrix)
            )

    def test_rows_and_columns_assigned_at_most_once(self):
        rng = np.random.default_rng(5)
        matrix = rng.random((8, 8))
        pairs = self.solver.solve(matrix)
        rows = [r for r, _ in pairs]
        cols = [c for _, c in pairs]
        assert len(set(rows)) == len(rows)
        assert len(set(cols)) == len(cols)

    def test_empty_matrix(self):
        assert self.solver.solve(np.zeros((0, 0))) == []

    def test_invalid_matrices_rejected(self):
        with pytest.raises(ValueError):
            self.solver.solve(np.zeros(3))
        with pytest.raises(ValueError):
            self.solver.solve(np.array([[np.inf, 1.0], [1.0, 2.0]]))

    def test_threshold_rejects_expensive_pairs(self):
        cost = np.array([[1.0, 100.0], [100.0, 100.0]])
        accepted, unmatched_rows, unmatched_cols = self.solver.solve_with_threshold(cost, 50.0)
        assert accepted == [(0, 0)]
        assert unmatched_rows == [1]
        assert unmatched_cols == [1]

    def test_threshold_with_empty_matrix(self):
        accepted, rows, cols = self.solver.solve_with_threshold(np.zeros((0, 3)), 1.0)
        assert accepted == [] and rows == [] and cols == [0, 1, 2]
