"""Tests for the multi-object tracker, scene/detector models and pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.usecases.smartmirror.detector import Detection, DetectionModel
from repro.usecases.smartmirror.pipeline import (
    CAMERA_FPS_CAP,
    PipelineConfiguration,
    SmartMirrorPipeline,
    compare_configurations,
)
from repro.usecases.smartmirror.scenes import SceneSimulator
from repro.usecases.smartmirror.tracker import MultiObjectTracker


class TestSceneSimulator:
    def test_population_roughly_matches_mean(self):
        scene = SceneSimulator(mean_objects=4, seed=1)
        counts = [len(frame) for frame in scene.run(50)]
        assert 2 <= np.mean(counts) <= 7

    def test_objects_move_between_frames(self):
        scene = SceneSimulator(mean_objects=2, seed=2)
        first = {o.object_id: o.center for o in scene.step()}
        second = {o.object_id: o.center for o in scene.step()}
        moved = [
            np.linalg.norm(np.array(second[i]) - np.array(first[i]))
            for i in first
            if i in second
        ]
        assert moved and all(d > 0 for d in moved)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SceneSimulator(mean_objects=0)
        with pytest.raises(ValueError):
            SceneSimulator().run(0)


class TestDetectionModel:
    def test_detections_follow_ground_truth(self):
        scene = SceneSimulator(mean_objects=3, seed=3)
        detector = DetectionModel(recall=1.0, false_positives_per_frame=0.0, seed=3)
        truths = scene.step()
        detections = detector.detect(truths)
        assert len(detections) == len(truths)
        assert all(d.true_object_id is not None for d in detections)

    def test_recall_controls_misses(self):
        scene = SceneSimulator(mean_objects=5, seed=4)
        truths = scene.step()
        detector = DetectionModel(recall=0.01, false_positives_per_frame=0.0, seed=4)
        total = sum(len(detector.detect(truths)) for _ in range(50))
        assert total < 50 * len(truths) * 0.2

    def test_false_positive_rate(self):
        detector = DetectionModel(recall=1.0, false_positives_per_frame=2.0, seed=5)
        detections = detector.detect([])
        assert all(d.true_object_id is None for d in detections)

    def test_cost_scales_with_optimisation_factor(self):
        full = DetectionModel(optimisation_factor=1.0)
        optimised = DetectionModel(optimisation_factor=0.25)
        assert optimised.gops_per_frame == pytest.approx(full.gops_per_frame * 0.25)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DetectionModel(recall=0.0)
        with pytest.raises(ValueError):
            DetectionModel(optimisation_factor=0.0)


class TestMultiObjectTracker:
    def run_tracking(self, frames=60, recall=0.95):
        scene = SceneSimulator(mean_objects=3, seed=6)
        detector = DetectionModel(recall=recall, false_positives_per_frame=0.2, seed=6)
        tracker = MultiObjectTracker()
        for _ in range(frames):
            truths = scene.step()
            tracker.step(detector.detect(truths), ground_truth=truths)
        return tracker

    def test_tracker_achieves_reasonable_mota(self):
        tracker = self.run_tracking()
        assert tracker.metrics.mota > 0.6
        assert tracker.metrics.recall > 0.7

    def test_tracks_survive_single_missed_detections(self):
        tracker = MultiObjectTracker(max_misses=3)
        detection = Detection(x=100, y=100, width=50, height=50, category="person", confidence=0.9, true_object_id=1)
        tracker.step([detection])
        tracker.step([Detection(x=105, y=102, width=50, height=50, category="person", confidence=0.9, true_object_id=1)])
        assert len(tracker.confirmed_tracks()) == 1
        tracker.step([])  # missed frame
        assert len(tracker.tracks) == 1
        moved = Detection(x=115, y=106, width=50, height=50, category="person", confidence=0.9, true_object_id=1)
        tracker.step([moved])
        assert len(tracker.confirmed_tracks()) == 1

    def test_stale_tracks_deleted(self):
        tracker = MultiObjectTracker(max_misses=2)
        tracker.step([Detection(x=10, y=10, width=5, height=5, category="hand", confidence=0.8, true_object_id=2)])
        for _ in range(4):
            tracker.step([])
        assert len(tracker.tracks) == 0

    def test_distant_detection_starts_new_track(self):
        tracker = MultiObjectTracker(gating_distance_px=50)
        tracker.step([Detection(x=0, y=0, width=5, height=5, category="hand", confidence=0.9, true_object_id=1)])
        tracker.step([Detection(x=1000, y=1000, width=5, height=5, category="hand", confidence=0.9, true_object_id=3)])
        assert len(tracker.tracks) == 2

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MultiObjectTracker(gating_distance_px=0)
        with pytest.raises(ValueError):
            MultiObjectTracker(max_misses=0)

    def test_tracking_cost_is_negligible(self):
        tracker = MultiObjectTracker()
        assert tracker.gops_per_frame(10) < 0.01


class TestSmartMirrorPipeline:
    def test_workstation_reproduces_paper_prototype_corner(self):
        report = SmartMirrorPipeline(PipelineConfiguration.workstation_prototype()).run(frames=40)
        assert report.fps == pytest.approx(21.0, rel=0.15)
        assert report.power_w == pytest.approx(400.0, rel=0.15)

    def test_optimised_edge_reaches_project_target(self):
        report = SmartMirrorPipeline(PipelineConfiguration.edge_low_power()).run(frames=40)
        assert report.fps >= 9.0
        assert report.power_w < 50.0

    def test_edge_is_far_more_efficient_than_workstation(self):
        workstation = SmartMirrorPipeline(PipelineConfiguration.workstation_prototype()).run(frames=30)
        edge = SmartMirrorPipeline(PipelineConfiguration.edge_low_power()).run(frames=30)
        assert edge.fps_per_watt > 4 * workstation.fps_per_watt

    def test_fps_capped_by_camera(self):
        config = PipelineConfiguration(
            name="overkill",
            cpu_model="xeon-d-x86",
            accelerator_models=("gtx1080-gpu", "gtx1080-gpu", "gtx1080-gpu", "gtx1080-gpu"),
            optimisation_factor=0.25,
        )
        report = SmartMirrorPipeline(config).run(frames=10)
        assert report.fps <= CAMERA_FPS_CAP + 1e-6

    def test_tracking_quality_maintained_on_edge(self):
        report = SmartMirrorPipeline(PipelineConfiguration.edge_low_power()).run(frames=80)
        assert report.tracking.mota > 0.5

    def test_device_utilisation_bounded(self):
        report = SmartMirrorPipeline(PipelineConfiguration.edge_cpu_2gpu()).run(frames=10)
        assert all(0.0 <= u <= 1.0 for u in report.device_utilisation.values())

    def test_compare_configurations_returns_one_report_each(self):
        reports = compare_configurations(
            [PipelineConfiguration.workstation_prototype(), PipelineConfiguration.edge_low_power()],
            frames=10,
        )
        assert len(reports) == 2

    def test_configuration_validation(self):
        with pytest.raises(KeyError):
            PipelineConfiguration(name="x", cpu_model="missing", accelerator_models=("gtx1080-gpu",))
        with pytest.raises(ValueError):
            PipelineConfiguration(name="x", cpu_model="xeon-d-x86", accelerator_models=())
        with pytest.raises(ValueError):
            SmartMirrorPipeline(PipelineConfiguration.edge_low_power()).run(frames=0)
