"""Tests for the embedded management firmware model."""

from __future__ import annotations

import pytest

from repro.hardware.recsbox import RecsBox, RecsBoxConfig
from repro.middleware.firmware import (
    MISSED_HEARTBEAT_LIMIT,
    OVERHEAT_THRESHOLD_C,
    BoardSensors,
    ManagementController,
    NodePowerState,
)
from repro.hardware.microserver import make_microserver


@pytest.fixture
def controller() -> ManagementController:
    box = RecsBox.from_config(RecsBoxConfig.balanced_demo())
    return ManagementController(box)


class TestPowerSequencing:
    def test_nodes_start_off(self, controller):
        assert all(
            controller.power_state(m.node_id) is NodePowerState.OFF
            for m in controller.box.microservers
        )

    def test_power_on_off_cycle(self, controller):
        node = controller.box.microservers[0].node_id
        controller.power_on(node)
        assert controller.power_state(node) is NodePowerState.ON
        controller.standby(node)
        assert controller.power_state(node) is NodePowerState.STANDBY
        controller.power_off(node)
        assert controller.power_state(node) is NodePowerState.OFF
        assert controller.events_for(node) == ["power-on", "standby", "power-off"]

    def test_power_on_all(self, controller):
        controller.power_on_all()
        assert len(controller.nodes_in_state(NodePowerState.ON)) == controller.box.microserver_count

    def test_unknown_node_rejected(self, controller):
        with pytest.raises(KeyError):
            controller.power_on("ghost")

    def test_faulted_node_needs_clearing(self, controller):
        node = controller.box.microservers[0].node_id
        controller.power_on(node)
        controller.heartbeat(0.0, responding=[])
        controller.heartbeat(1.0, responding=[])
        controller.heartbeat(2.0, responding=[])
        assert controller.power_state(node) is NodePowerState.FAULT
        with pytest.raises(RuntimeError):
            controller.power_on(node)
        controller.clear_fault(node)
        controller.power_on(node)
        assert controller.power_state(node) is NodePowerState.ON


class TestSensors:
    def test_reading_scales_with_utilisation(self):
        sensors = BoardSensors(make_microserver("xeon-d-x86"))
        idle = sensors.read(0.0, 0.0)
        busy = sensors.read(1.0, 1.0)
        assert busy.power_w > idle.power_w
        assert busy.temperature_c > idle.temperature_c
        assert busy.fan_rpm > idle.fan_rpm

    def test_invalid_utilisation_rejected(self):
        sensors = BoardSensors(make_microserver("xeon-d-x86"))
        with pytest.raises(ValueError):
            sensors.read(0.0, 1.5)

    def test_poll_only_covers_powered_nodes(self, controller):
        first = controller.box.microservers[0].node_id
        controller.power_on(first)
        readings = controller.poll_sensors(0.0)
        assert [r.node_id for r in readings] == [first]
        assert controller.last_reading(first) is not None

    def test_poll_charges_management_network(self, controller):
        controller.power_on_all()
        before = controller.management_net.stats.messages
        controller.poll_sensors(0.0)
        assert controller.management_net.stats.messages == before + controller.box.microserver_count

    def test_overheat_flags_fault(self, controller):
        node = controller.box.microservers[0].node_id
        controller.power_on(node)
        # Force an extreme ambient temperature so the rise crosses the limit.
        record = controller._nodes[node]
        record.sensors.ambient_c = OVERHEAT_THRESHOLD_C
        controller.poll_sensors(0.0, utilisations={node: 1.0})
        assert controller.power_state(node) is NodePowerState.FAULT
        assert "overheat-shutdown" in controller.events_for(node)


class TestHeartbeatAndConsole:
    def test_heartbeat_failure_after_limit(self, controller):
        node = controller.box.microservers[0].node_id
        controller.power_on(node)
        failed = []
        for round_index in range(MISSED_HEARTBEAT_LIMIT):
            failed = controller.heartbeat(float(round_index), responding=[])
        assert failed == [node]

    def test_responding_node_resets_counter(self, controller):
        node = controller.box.microservers[0].node_id
        controller.power_on(node)
        controller.heartbeat(0.0, responding=[])
        controller.heartbeat(1.0, responding=[node])
        controller.heartbeat(2.0, responding=[])
        controller.heartbeat(3.0, responding=[])
        assert controller.power_state(node) is NodePowerState.ON

    def test_console_requires_power(self, controller):
        node = controller.box.microservers[0].node_id
        with pytest.raises(RuntimeError):
            controller.attach_console(node)
        controller.power_on(node)
        controller.attach_console(node)
        assert controller.console_attached(node)
        controller.detach_console(node)
        assert not controller.console_attached(node)
