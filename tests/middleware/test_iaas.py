"""Tests for the OpenStack-like IaaS layer."""

from __future__ import annotations

import pytest

from repro.hardware.microserver import DeviceKind
from repro.hardware.recsbox import RecsBox, RecsBoxConfig
from repro.middleware.firmware import ManagementController
from repro.middleware.iaas import Flavor, IaasManager, Quota, QuotaExceededError


@pytest.fixture
def iaas() -> IaasManager:
    box = RecsBox.from_config(RecsBoxConfig.balanced_demo())
    firmware = ManagementController(box)
    firmware.power_on_all()
    manager = IaasManager(box, firmware=firmware)
    manager.create_project("tenant-a")
    return manager


class TestProjectsAndQuotas:
    def test_duplicate_project_rejected(self, iaas):
        with pytest.raises(ValueError):
            iaas.create_project("tenant-a")

    def test_unknown_project_rejected(self, iaas):
        with pytest.raises(KeyError):
            iaas.project("ghost")

    def test_quota_enforced_on_instances(self, iaas):
        iaas.create_project("small", quota=Quota(vcpus=2, memory_gib=4.0, instances=1))
        iaas.spawn("small", "m1.small")
        with pytest.raises(QuotaExceededError):
            iaas.spawn("small", "m1.tiny")

    def test_quota_released_on_delete(self, iaas):
        iaas.create_project("small", quota=Quota(vcpus=2, memory_gib=4.0, instances=1))
        instance = iaas.spawn("small", "m1.small")
        iaas.delete(instance.instance_id)
        assert iaas.project("small").used_vcpus == 0
        iaas.spawn("small", "m1.small")

    def test_invalid_quota_rejected(self):
        with pytest.raises(ValueError):
            Quota(vcpus=0)


class TestScheduling:
    def test_spawn_places_on_powered_host(self, iaas):
        instance = iaas.spawn("tenant-a", "m1.small")
        assert instance.node_id in iaas.host_utilisation()
        assert iaas.instance_of(instance.instance_id) is instance

    def test_accelerator_flavor_filters_hosts(self, iaas):
        instance = iaas.spawn("tenant-a", "f1.fpga")
        host = iaas.box.find(instance.node_id)
        assert host.spec.kind is DeviceKind.FPGA

    def test_gpu_soc_flavor(self, iaas):
        instance = iaas.spawn("tenant-a", "g1.gpu")
        assert iaas.box.find(instance.node_id).spec.kind is DeviceKind.GPU_SOC

    def test_unknown_flavor_rejected(self, iaas):
        with pytest.raises(KeyError):
            iaas.spawn("tenant-a", "xl.monster")

    def test_powered_off_hosts_excluded(self):
        box = RecsBox.from_config(RecsBoxConfig.balanced_demo())
        firmware = ManagementController(box)  # nothing powered on
        manager = IaasManager(box, firmware=firmware)
        manager.create_project("t")
        with pytest.raises(RuntimeError):
            manager.spawn("t", "m1.tiny")

    def test_capacity_exhaustion(self, iaas):
        iaas.create_project("big", quota=Quota(vcpus=10_000, memory_gib=10_000, instances=10_000))
        spawned = 0
        with pytest.raises(RuntimeError):
            for _ in range(10_000):
                iaas.spawn("big", "m1.large")
                spawned += 1
        assert spawned > 0

    def test_packing_objective_fills_hosts(self, iaas):
        a = iaas.spawn("tenant-a", "m1.tiny")
        b = iaas.spawn("tenant-a", "m1.tiny")
        assert a.node_id == b.node_id

    def test_efficiency_objective_prefers_efficient_hosts(self):
        box = RecsBox.from_config(RecsBoxConfig.balanced_demo())
        firmware = ManagementController(box)
        firmware.power_on_all()
        manager = IaasManager(box, firmware=firmware, placement_objective="efficiency")
        manager.create_project("t")
        instance = manager.spawn("t", "m1.tiny")
        chosen = box.find(instance.node_id).spec
        # The chosen host is at least as efficient as every other CPU host.
        assert chosen.efficiency_gops_per_w is not None

    def test_invalid_objective_rejected(self, iaas):
        with pytest.raises(ValueError):
            IaasManager(iaas.box, placement_objective="random")

    def test_delete_unknown_instance(self, iaas):
        with pytest.raises(KeyError):
            iaas.delete("inst-999")

    def test_instances_filtered_by_project(self, iaas):
        iaas.create_project("tenant-b")
        iaas.spawn("tenant-a", "m1.tiny")
        iaas.spawn("tenant-b", "m1.tiny")
        assert len(iaas.instances("tenant-a")) == 1
        assert len(iaas.instances()) == 2

    def test_host_utilisation_increases_after_spawn(self, iaas):
        before = sum(iaas.host_utilisation().values())
        iaas.spawn("tenant-a", "m1.large")
        assert sum(iaas.host_utilisation().values()) > before
