"""Trend analytics: series building, sparklines, drift warnings, reports.

Loads ``benchmarks/trend.py`` directly (the benchmarks directory is not a
package) and exercises the ingest -> series -> drift -> render pipeline
against temp directories, including the acceptance scenario: a synthetic
payload drifting toward its gate margin must raise a warning *before*
``harness.py check`` would fail.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

TREND_PATH = Path(__file__).parent.parent / "benchmarks" / "trend.py"
spec = importlib.util.spec_from_file_location("bench_trend", TREND_PATH)
trend = importlib.util.module_from_spec(spec)
# Registered before exec: the @dataclass decorator resolves string
# annotations through sys.modules[module].__dict__.
sys.modules["bench_trend"] = trend
spec.loader.exec_module(trend)


def _payload(name="demo", tier="smoke", ops=100.0, wall=1.0, gated=True):
    return {
        "schema": 1,
        "name": name,
        "tier": tier,
        "harness_wall_clock_s": wall,
        "metrics": {
            "ops_per_sec": {
                "value": ops,
                "direction": "higher",
                "tolerance": 0.10,
                "abs_tolerance": 0.0,
                "gate": gated,
            }
        },
    }


def _write(directory: Path, payload) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"BENCH_{payload['name']}.json").write_text(json.dumps(payload))


def _pin(baselines_dir: Path, payload) -> None:
    baselines_dir.mkdir(parents=True, exist_ok=True)
    (baselines_dir / f"{payload['name']}.json").write_text(
        json.dumps({payload["tier"]: {"metrics": payload["metrics"]}})
    )


class TestSparkline:
    def test_monotone_series_ramps(self):
        line = trend.sparkline([1.0, 2.0, 3.0, 4.0])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_constant_series_is_flat(self):
        assert trend.sparkline([5.0, 5.0, 5.0]) == "▄▄▄"

    def test_empty_series(self):
        assert trend.sparkline([]) == ""


class TestBuildSeries:
    def test_history_then_current_ordering(self):
        sources = [
            ("week1", {"demo": _payload(ops=100.0)}),
            ("week2", {"demo": _payload(ops=95.0)}),
            ("current", {"demo": _payload(ops=90.0)}),
        ]
        series = trend.build_series(sources)
        entry = series[("demo", "smoke", "ops_per_sec")]
        assert entry.values == [100.0, 95.0, 90.0]
        assert entry.labels == ["week1", "week2", "current"]
        assert entry.change == pytest.approx(-0.10)

    def test_metrics_free_payload_still_contributes_wall_clock(self):
        payload = {"name": "figonly", "tier": "full", "harness_wall_clock_s": 2.5}
        series = trend.build_series([("current", {"figonly": payload})])
        entry = series[("figonly", "full", "harness_wall_clock_s")]
        assert entry.values == [2.5]
        assert not entry.gate

    def test_names_filter(self):
        sources = [("current", {"a": _payload(name="a"), "b": _payload(name="b")})]
        series = trend.build_series(sources, names=["a"])
        assert {key[0] for key in series} == {"a"}


class TestDriftWarnings:
    def test_drifting_payload_fires_warning_before_gate_trips(self, tmp_path):
        baselines = tmp_path / "baselines"
        pinned = _payload(ops=100.0)
        _pin(baselines, pinned)
        # 8% down: inside the 10% gate margin (check would pass) but past
        # the 50% warn fraction -- exactly the early-warning case.
        current = {"demo": _payload(ops=92.0)}
        series = trend.build_series([("current", current)])
        warnings = trend.drift_warnings(series, current, baselines_dir=baselines)
        assert len(warnings) == 1
        assert "demo:ops_per_sec" in warnings[0]
        assert "drifting toward gate" in warnings[0]
        assert "WOULD TRIP" not in warnings[0]

    def test_breached_margin_reports_would_trip(self, tmp_path):
        baselines = tmp_path / "baselines"
        _pin(baselines, _payload(ops=100.0))
        current = {"demo": _payload(ops=85.0)}  # past the 10% margin
        series = trend.build_series([("current", current)])
        warnings = trend.drift_warnings(series, current, baselines_dir=baselines)
        assert len(warnings) == 1 and "WOULD TRIP GATE" in warnings[0]

    def test_healthy_metric_stays_quiet(self, tmp_path):
        baselines = tmp_path / "baselines"
        _pin(baselines, _payload(ops=100.0))
        current = {"demo": _payload(ops=99.0)}  # 10% of the margin used
        series = trend.build_series([("current", current)])
        assert trend.drift_warnings(series, current, baselines_dir=baselines) == []

    def test_improvement_never_warns(self, tmp_path):
        baselines = tmp_path / "baselines"
        _pin(baselines, _payload(ops=100.0))
        current = {"demo": _payload(ops=150.0)}
        series = trend.build_series([("current", current)])
        assert trend.drift_warnings(series, current, baselines_dir=baselines) == []

    def test_ungated_metric_never_warns(self, tmp_path):
        baselines = tmp_path / "baselines"
        _pin(baselines, _payload(ops=100.0, gated=False))
        current = {"demo": _payload(ops=10.0, gated=False)}
        series = trend.build_series([("current", current)])
        assert trend.drift_warnings(series, current, baselines_dir=baselines) == []

    def test_unpinned_metric_is_skipped(self, tmp_path):
        current = {"demo": _payload(ops=10.0)}
        series = trend.build_series([("current", current)])
        assert (
            trend.drift_warnings(series, current, baselines_dir=tmp_path / "none")
            == []
        )


class TestRendering:
    def _series(self):
        sources = [
            ("week1", {"demo": _payload(ops=100.0)}),
            ("current", {"demo": _payload(ops=92.0)}),
        ]
        return trend.build_series(sources)

    def test_text_report_lists_every_series_and_warnings(self):
        series = self._series()
        text = trend.render_trends_text(series, ["demo:ops_per_sec drifting"])
        assert "ops_per_sec" in text
        assert "harness_wall_clock_s" in text
        assert "drift warnings (1):" in text
        assert "! demo:ops_per_sec drifting" in text
        clean = trend.render_trends_text(series, [])
        assert "drift warnings: none" in clean

    def test_html_report_is_self_contained(self):
        html = trend.render_trends_html(self._series(), [])
        assert html.startswith("<!DOCTYPE html>")
        assert "http://" not in html and "https://" not in html
        assert "<svg" in html and "<script>" in html


class TestMain:
    def test_cli_covers_every_payload_and_writes_both_reports(self, tmp_path, capsys):
        bench_dir = tmp_path / "bench"
        out_dir = tmp_path / "out"
        hist_dir = tmp_path / "hist"
        baselines = tmp_path / "baselines"
        for name in ("alpha", "beta"):
            payload = _payload(name=name, ops=100.0)
            _write(hist_dir, payload)
            _pin(baselines, payload)
            _write(bench_dir, _payload(name=name, ops=92.0))
        code = trend.main(
            [
                "--history", str(hist_dir),
                "--bench-dir", str(bench_dir),
                "--baselines-dir", str(baselines),
                "--out-dir", str(out_dir),
            ]
        )
        assert code == 0
        text = (out_dir / "trends.txt").read_text()
        assert "alpha" in text and "beta" in text
        assert (out_dir / "trend.html").read_text().startswith("<!DOCTYPE html>")
        captured = capsys.readouterr().out
        assert "WARNING" in captured and "drifting toward gate" in captured

    def test_cli_exits_nonzero_with_no_payloads(self, tmp_path):
        assert (
            trend.main(
                ["--bench-dir", str(tmp_path), "--out-dir", str(tmp_path / "out")]
            )
            == 1
        )
