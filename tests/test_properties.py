"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from scipy.optimize import linear_sum_assignment

from repro.checkpoint.mtbf import CheckpointEfficiencyModel, optimal_interval_young
from repro.hardware.microserver import MICROSERVER_CATALOG, WorkloadKind
from repro.hardware.power import EnergyAccount, PowerBudget
from repro.runtime.graph import TaskGraph
from repro.runtime.task import make_task
from repro.undervolting.faults import FaultRateModel
from repro.undervolting.platforms import PLATFORMS, get_platform
from repro.undervolting.voltage import VoltageRegion, classify_voltage
from repro.usecases.smartmirror.hungarian import HungarianSolver
from repro.usecases.smartmirror.kalman import KalmanTrack

# --------------------------------------------------------------------------- #
# Hungarian assignment
# --------------------------------------------------------------------------- #
cost_matrices = st.integers(min_value=1, max_value=6).flatmap(
    lambda rows: st.integers(min_value=1, max_value=6).flatmap(
        lambda cols: st.lists(
            st.lists(st.floats(min_value=0.0, max_value=1000.0, allow_nan=False), min_size=cols, max_size=cols),
            min_size=rows,
            max_size=rows,
        )
    )
)


@given(cost_matrices)
@settings(max_examples=80, deadline=None)
def test_hungarian_matches_scipy_optimum(matrix_list):
    matrix = np.array(matrix_list, dtype=float)
    solver = HungarianSolver()
    pairs = solver.solve(matrix)
    # Structural invariants: one assignment per row/column, min(n, m) pairs.
    rows = [r for r, _ in pairs]
    cols = [c for _, c in pairs]
    assert len(pairs) == min(matrix.shape)
    assert len(set(rows)) == len(rows)
    assert len(set(cols)) == len(cols)
    # Optimality: total cost equals scipy's optimum.
    ours = solver.assignment_cost(matrix, pairs)
    ref_rows, ref_cols = linear_sum_assignment(matrix)
    assert ours == pytest.approx(matrix[ref_rows, ref_cols].sum(), rel=1e-9, abs=1e-9)


@given(cost_matrices, st.floats(min_value=0.0, max_value=1000.0))
@settings(max_examples=50, deadline=None)
def test_hungarian_threshold_partition_is_complete(matrix_list, threshold):
    matrix = np.array(matrix_list, dtype=float)
    solver = HungarianSolver()
    accepted, unmatched_rows, unmatched_cols = solver.solve_with_threshold(matrix, threshold)
    assert all(matrix[r, c] <= threshold for r, c in accepted)
    covered_rows = {r for r, _ in accepted} | set(unmatched_rows)
    covered_cols = {c for _, c in accepted} | set(unmatched_cols)
    assert covered_rows == set(range(matrix.shape[0]))
    assert covered_cols == set(range(matrix.shape[1]))


# --------------------------------------------------------------------------- #
# Task dependency graph
# --------------------------------------------------------------------------- #
@st.composite
def task_specs(draw):
    """A random list of tasks over a small region namespace."""
    num_tasks = draw(st.integers(min_value=1, max_value=12))
    regions = [f"r{i}" for i in range(6)]
    specs = []
    for index in range(num_tasks):
        reads = draw(st.sets(st.sampled_from(regions), max_size=3))
        writes = draw(st.sets(st.sampled_from(regions), min_size=1, max_size=2))
        specs.append((f"task{index}", sorted(reads - writes), sorted(writes)))
    return specs


@given(task_specs())
@settings(max_examples=80, deadline=None)
def test_task_graph_is_acyclic_and_order_respects_dependences(specs):
    graph = TaskGraph()
    for name, reads, writes in specs:
        graph.add_task(make_task(name, inputs=reads, outputs=writes))
    order = graph.topological_order()
    assert len(order) == len(specs)
    position = {task: i for i, task in enumerate(order)}
    for task in order:
        for predecessor in graph.predecessors(task):
            assert position[predecessor] < position[task]
    # Waves partition the task set and every wave is dependence-free.
    waves = graph.waves()
    assert sum(len(w) for w in waves) == len(specs)
    for wave in waves:
        wave_set = set(wave)
        for task in wave:
            assert not (set(graph.predecessors(task)) & wave_set)


@given(task_specs())
@settings(max_examples=50, deadline=None)
def test_last_writer_semantics(specs):
    """A reader depends on the most recent writer of each region it reads."""
    graph = TaskGraph()
    tasks = []
    for name, reads, writes in specs:
        task = make_task(name, inputs=reads, outputs=writes)
        graph.add_task(task)
        tasks.append((task, reads, writes))
    last_writer = {}
    for task, reads, writes in tasks:
        for region in reads:
            if region in last_writer:
                assert last_writer[region] in graph.ancestors(task) | {task}
        for region in writes:
            last_writer[region] = task


# --------------------------------------------------------------------------- #
# Power accounting
# --------------------------------------------------------------------------- #
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.001, max_value=100.0),
            st.floats(min_value=0.0, max_value=500.0),
        ),
        min_size=2,
        max_size=30,
    )
)
@settings(max_examples=80, deadline=None)
def test_energy_account_bounds(increments):
    """Trapezoidal energy is bounded by min/max power times the duration."""
    account = EnergyAccount()
    time = 0.0
    for delta, watts in increments:
        account.record(time, watts)
        time += delta
    powers = [sample.watts for sample in account.samples]
    duration = account.samples[-1].time_s - account.samples[0].time_s
    energy = account.sampled_energy_j()
    assert min(powers) * duration - 1e-6 <= energy <= max(powers) * duration + 1e-6


@given(
    st.lists(st.floats(min_value=0.1, max_value=50.0), min_size=1, max_size=20),
    st.floats(min_value=100.0, max_value=500.0),
)
@settings(max_examples=80, deadline=None)
def test_power_budget_never_oversubscribed(allocations, cap):
    budget = PowerBudget(cap_w=cap)
    accepted = 0.0
    for index, watts in enumerate(allocations):
        if budget.can_allocate(watts):
            budget.allocate(f"owner{index}", watts)
            accepted += watts
        else:
            with pytest.raises(ValueError):
                budget.allocate(f"owner{index}", watts)
    assert accepted <= cap + 1e-6
    assert budget.allocated_w == pytest.approx(accepted)


# --------------------------------------------------------------------------- #
# Undervolting models
# --------------------------------------------------------------------------- #
@given(
    st.sampled_from(sorted(PLATFORMS)),
    st.floats(min_value=0.51, max_value=1.05),
)
@settings(max_examples=120, deadline=None)
def test_fault_rate_model_invariants(platform_name, voltage):
    calibration = get_platform(platform_name)
    model = FaultRateModel(calibration)
    region = classify_voltage(voltage, calibration)
    if region is VoltageRegion.CRASH:
        with pytest.raises(ValueError):
            model.faults_per_mbit(voltage)
    else:
        rate = model.faults_per_mbit(voltage)
        assert rate >= 0.0
        # The rate never exceeds the calibrated corner value at Vcrash.
        assert rate <= calibration.faults_per_mbit_at_vcrash * (1 + 1e-9)
        if region in (VoltageRegion.NOMINAL, VoltageRegion.GUARDBAND):
            assert rate == 0.0


@given(
    st.sampled_from(sorted(PLATFORMS)),
    st.floats(min_value=0.55, max_value=0.99),
    st.floats(min_value=0.001, max_value=0.4),
)
@settings(max_examples=80, deadline=None)
def test_fault_rate_monotone_nonincreasing_in_voltage(platform_name, voltage, delta):
    calibration = get_platform(platform_name)
    model = FaultRateModel(calibration)
    low, high = voltage, min(1.0, voltage + delta)
    assume(classify_voltage(low, calibration) is not VoltageRegion.CRASH)
    assert model.faults_per_mbit(high) <= model.faults_per_mbit(low) + 1e-12


# --------------------------------------------------------------------------- #
# Microserver cost model
# --------------------------------------------------------------------------- #
@given(
    st.sampled_from(sorted(MICROSERVER_CATALOG)),
    st.sampled_from(list(WorkloadKind)),
    st.floats(min_value=0.1, max_value=1e4),
    st.floats(min_value=0.1, max_value=1e4),
)
@settings(max_examples=100, deadline=None)
def test_execution_time_and_energy_additive(model_name, workload, gops_a, gops_b):
    spec = MICROSERVER_CATALOG[model_name]
    together = spec.execution_time_s(workload, gops_a + gops_b)
    split = spec.execution_time_s(workload, gops_a) + spec.execution_time_s(workload, gops_b)
    assert together == pytest.approx(split, rel=1e-9)
    assert spec.energy_j(workload, gops_a) >= 0.0


# --------------------------------------------------------------------------- #
# Kalman filter
# --------------------------------------------------------------------------- #
@given(
    st.floats(min_value=-500.0, max_value=500.0),
    st.floats(min_value=-500.0, max_value=500.0),
    st.integers(min_value=1, max_value=30),
)
@settings(max_examples=60, deadline=None)
def test_kalman_update_never_overshoots_static_target(x, y, steps):
    """Repeated measurements of a static point pull the estimate onto it."""
    track = KalmanTrack(track_id=1, initial_position=(0.0, 0.0))
    target = np.array([x, y])
    initial_error = np.linalg.norm(track.position - target)
    for _ in range(steps):
        track.predict()
        track.update(target)
    final_error = np.linalg.norm(track.position - target)
    assert final_error <= initial_error + 1e-6


# --------------------------------------------------------------------------- #
# Checkpoint efficiency model
# --------------------------------------------------------------------------- #
@given(
    st.floats(min_value=0.1, max_value=500.0),
    st.floats(min_value=0.0, max_value=500.0),
    st.floats(min_value=1e3, max_value=1e8),
)
@settings(max_examples=80, deadline=None)
def test_young_interval_is_overhead_optimal(checkpoint_cost, recovery_cost, mtbf):
    model = CheckpointEfficiencyModel(checkpoint_cost, recovery_cost)
    optimal = optimal_interval_young(checkpoint_cost, mtbf)
    base = model.overhead_fraction(mtbf, interval_s=optimal)
    for factor in (0.5, 2.0):
        assert base <= model.overhead_fraction(mtbf, interval_s=optimal * factor) + 1e-9
