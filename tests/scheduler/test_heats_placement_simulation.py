"""Tests for HEATS scoring, placement/migration and the cluster simulator."""

from __future__ import annotations

import pytest

from repro.hardware.microserver import WorkloadKind
from repro.scheduler.baselines import (
    EnergyGreedyScheduler,
    PerformanceBestFitScheduler,
    RoundRobinScheduler,
)
from repro.scheduler.cluster import Cluster
from repro.scheduler.heats import HeatsConfig, HeatsScheduler
from repro.scheduler.modeling import ProfilingCampaign
from repro.scheduler.placement import PlacementEngine
from repro.scheduler.simulation import ClusterSimulator, run_policy_comparison
from repro.scheduler.workload import TaskRequest, WorkloadGenerator


@pytest.fixture(scope="module")
def cluster_and_models():
    cluster = Cluster.heats_testbed(scale=1)
    models = ProfilingCampaign(cluster, noise_fraction=0.02, seed=4).run().fit()
    return cluster, models


def fresh_cluster() -> Cluster:
    return Cluster.heats_testbed(scale=1)


def request(task_id="t0", energy_weight=0.5, workload=WorkloadKind.DNN_INFERENCE, cores=2):
    return TaskRequest(
        task_id=task_id,
        arrival_s=0.0,
        workload=workload,
        gops=500.0,
        cores=cores,
        memory_gib=1.0,
        energy_weight=energy_weight,
    )


class TestHeatsScoring:
    def test_scores_normalised_and_sorted(self, cluster_and_models):
        cluster, models = cluster_and_models
        scheduler = HeatsScheduler(models)
        scores = scheduler.score_candidates(request(), cluster.nodes)
        assert scores == sorted(scores, key=lambda s: s.score)
        assert all(0.0 <= s.normalised_time <= 1.0 for s in scores)
        assert all(0.0 <= s.normalised_energy <= 1.0 for s in scores)

    def test_performance_weight_picks_fastest_node(self, cluster_and_models):
        cluster, models = cluster_and_models
        scheduler = HeatsScheduler(models)
        best = scheduler.score_candidates(request(energy_weight=0.0), cluster.nodes)[0]
        predicted = {s.node: s.predicted_time_s for s in scheduler.score_candidates(request(), cluster.nodes)}
        assert best.predicted_time_s == min(predicted.values())

    def test_energy_weight_picks_cheapest_node(self, cluster_and_models):
        cluster, models = cluster_and_models
        scheduler = HeatsScheduler(models)
        best = scheduler.score_candidates(request(energy_weight=1.0), cluster.nodes)[0]
        predicted = {s.node: s.predicted_energy_j for s in scheduler.score_candidates(request(), cluster.nodes)}
        assert best.predicted_energy_j == min(predicted.values())

    def test_place_returns_feasible_node(self, cluster_and_models):
        cluster, models = cluster_and_models
        scheduler = HeatsScheduler(models)
        node_name = scheduler.place(request(cores=2), cluster, 0.0)
        assert node_name is not None
        assert cluster.node(node_name).can_host(2, 1.0)

    def test_place_returns_none_when_nothing_fits(self, cluster_and_models):
        cluster, models = cluster_and_models
        scheduler = HeatsScheduler(models)
        impossible = TaskRequest("x", 0.0, WorkloadKind.SCALAR, gops=1, cores=512, memory_gib=1.0)
        assert scheduler.place(impossible, cluster, 0.0) is None

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HeatsConfig(rescheduling_interval_s=0)
        with pytest.raises(ValueError):
            HeatsConfig(migration_improvement_threshold=1.5)


class TestPlacementEngine:
    def test_instantiate_reserves_and_complete_releases(self):
        cluster = fresh_cluster()
        engine = PlacementEngine(cluster)
        req = request()
        placement = engine.instantiate(req, cluster.nodes[0].name, 0.0)
        assert placement.expected_finish_s > 0
        assert cluster.locate(req.task_id) is cluster.nodes[0]
        engine.complete(req.task_id, placement.expected_finish_s)
        assert cluster.locate(req.task_id) is None

    def test_duplicate_instantiation_rejected(self):
        cluster = fresh_cluster()
        engine = PlacementEngine(cluster)
        req = request()
        engine.instantiate(req, cluster.nodes[0].name, 0.0)
        with pytest.raises(KeyError):
            engine.instantiate(req, cluster.nodes[1].name, 0.0)

    def test_migration_moves_reservation_and_charges_downtime(self):
        cluster = fresh_cluster()
        engine = PlacementEngine(cluster)
        req = request()
        slow_node = next(n for n in cluster if n.spec.model == "apalis-arm-soc")
        fast_node = next(n for n in cluster if n.spec.model == "xeon-d-x86")
        placement = engine.instantiate(req, slow_node.name, 0.0)
        original_finish = placement.expected_finish_s
        event = engine.migrate(req.task_id, fast_node.name, time_s=1.0)
        assert event.downtime_s > 0
        assert cluster.locate(req.task_id) is fast_node
        assert engine.placement(req.task_id).expected_finish_s < original_finish
        assert placement.migrations == 1

    def test_migration_to_same_node_rejected(self):
        cluster = fresh_cluster()
        engine = PlacementEngine(cluster)
        req = request()
        engine.instantiate(req, cluster.nodes[0].name, 0.0)
        with pytest.raises(ValueError):
            engine.migrate(req.task_id, cluster.nodes[0].name, 1.0)

    def test_unknown_task_operations_rejected(self):
        engine = PlacementEngine(fresh_cluster())
        with pytest.raises(KeyError):
            engine.complete("ghost", 0.0)
        with pytest.raises(KeyError):
            engine.migrate("ghost", "anywhere", 0.0)


class TestClusterSimulator:
    def make_schedulers(self, models):
        return {
            "heats": lambda cluster: HeatsScheduler(models),
            "round_robin": lambda cluster: RoundRobinScheduler(models),
            "perf": lambda cluster: PerformanceBestFitScheduler(models),
            "energy": lambda cluster: EnergyGreedyScheduler(models),
        }

    def test_all_tasks_complete_under_every_policy(self, cluster_and_models):
        _, models = cluster_and_models
        requests = WorkloadGenerator(seed=8, mean_interarrival_s=20.0).generate(30)
        results = run_policy_comparison(fresh_cluster, self.make_schedulers(models), requests)
        for result in results.values():
            assert len(result.completed) == 30
            assert not result.unplaced
            assert result.makespan_s > 0
            assert result.total_energy_j > 0

    def test_energy_weighted_heats_saves_task_energy_vs_round_robin(self, cluster_and_models):
        _, models = cluster_and_models
        requests = WorkloadGenerator(seed=8, mean_interarrival_s=20.0, energy_weight=1.0).generate(30)
        results = run_policy_comparison(
            fresh_cluster,
            {
                "heats": lambda c: HeatsScheduler(models),
                "round_robin": lambda c: RoundRobinScheduler(models),
            },
            requests,
        )
        assert results["heats"].task_energy_j < results["round_robin"].task_energy_j

    def test_perf_weighted_heats_matches_best_fit_turnaround(self, cluster_and_models):
        _, models = cluster_and_models
        requests = WorkloadGenerator(seed=9, mean_interarrival_s=30.0, energy_weight=0.0).generate(20)
        results = run_policy_comparison(
            fresh_cluster,
            {
                "heats": lambda c: HeatsScheduler(models),
                "perf": lambda c: PerformanceBestFitScheduler(models),
                "energy": lambda c: EnergyGreedyScheduler(models),
            },
            requests,
        )
        assert results["heats"].mean_turnaround_s <= results["energy"].mean_turnaround_s * 1.05

    def test_completed_task_accounting(self, cluster_and_models):
        _, models = cluster_and_models
        requests = WorkloadGenerator(seed=10, mean_interarrival_s=10.0).generate(10)
        simulator = ClusterSimulator(fresh_cluster(), HeatsScheduler(models))
        result = simulator.run(requests)
        for task in result.completed:
            assert task.finish_s >= task.start_s >= task.arrival_s
            assert task.energy_j > 0
            assert len(task.nodes) >= 1
        summary = result.summary()
        assert summary["tasks"] == 10

    def test_queueing_when_cluster_saturated(self, cluster_and_models):
        _, models = cluster_and_models
        # A burst of wide tasks cannot all start immediately on the small cluster.
        burst = WorkloadGenerator(seed=11, mean_interarrival_s=0.01).generate_batch_at(40, 0.0)
        simulator = ClusterSimulator(fresh_cluster(), HeatsScheduler(models))
        result = simulator.run(burst)
        assert len(result.completed) == 40
        assert result.mean_waiting_s > 0.0

    def test_monitoring_samples_collected(self, cluster_and_models):
        _, models = cluster_and_models
        requests = WorkloadGenerator(seed=12, mean_interarrival_s=60.0).generate(10)
        simulator = ClusterSimulator(fresh_cluster(), HeatsScheduler(models), monitoring_period_s=30.0)
        simulator.run(requests)
        assert len(simulator.monitor.history) > 0


class TestBaselines:
    def test_round_robin_cycles(self, cluster_and_models):
        cluster, models = cluster_and_models
        scheduler = RoundRobinScheduler(models)
        placements = {scheduler.place(request(task_id=f"t{i}", cores=1), cluster, 0.0) for i in range(8)}
        assert len(placements) > 1

    def test_baselines_never_migrate(self, cluster_and_models):
        cluster, models = cluster_and_models
        for scheduler in (
            RoundRobinScheduler(models),
            PerformanceBestFitScheduler(models),
            EnergyGreedyScheduler(models),
        ):
            assert scheduler.reschedule([], cluster, 0.0) == []
            assert scheduler.supports_rescheduling is False

    def test_energy_greedy_picks_lowest_energy_prediction(self, cluster_and_models):
        cluster, models = cluster_and_models
        scheduler = EnergyGreedyScheduler(models)
        node = scheduler.place(request(cores=1), cluster, 0.0)
        energies = {
            n.name: models.predict(n.name, request(cores=1))[1]
            for n in cluster.feasible_nodes(1, 1.0)
        }
        assert node == min(energies, key=energies.get)
