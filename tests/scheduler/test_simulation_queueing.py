"""Queueing and migration-accounting edge cases of the cluster simulator.

Covers two behaviours the serving front-end depends on:

* a request that can never fit any node must end up reported in
  ``unplaced`` (not spin the event loop forever), while feasible requests
  keep completing;
* the energy charged to a migrated task must equal the sum of the energy
  of each node share it occupied (one segment per hosting node, migration
  downtime uncharged).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.microserver import WorkloadKind
from repro.scheduler.cluster import Cluster
from repro.scheduler.simulation import ClusterSimulator
from repro.scheduler.workload import TaskRequest


def make_request(task_id, gops=100.0, cores=1, memory_gib=1.0, arrival_s=0.0):
    return TaskRequest(
        task_id=task_id,
        arrival_s=arrival_s,
        workload=WorkloadKind.SCALAR,
        gops=gops,
        cores=cores,
        memory_gib=memory_gib,
    )


class FirstFitScheduler:
    """Minimal policy: first node with room, no migrations."""

    name = "first_fit"
    supports_rescheduling = False

    def place(self, request, cluster, time_s):
        for node in cluster:
            if node.can_host(request.cores, request.memory_gib):
                return node.name
        return None

    def reschedule(self, running, cluster, time_s):
        return []


class ForcedMigrationScheduler:
    """Places everything on ``source`` and migrates it to ``target`` once."""

    name = "forced_migration"
    supports_rescheduling = True

    def __init__(self, source: str, target: str) -> None:
        self.source = source
        self.target = target
        self.migrated: set = set()

    def place(self, request, cluster, time_s):
        node = cluster.node(self.source)
        return self.source if node.can_host(request.cores, request.memory_gib) else None

    def reschedule(self, running, cluster, time_s):
        decisions: List[Tuple[str, str]] = []
        for placement in running:
            if placement.node == self.source and placement.request.task_id not in self.migrated:
                self.migrated.add(placement.request.task_id)
                decisions.append((placement.request.task_id, self.target))
        return decisions


def _segment_power_w(node, request) -> float:
    share = min(1.0, request.cores / node.spec.cores)
    return (node.spec.peak_power_w - node.spec.idle_power_w) * share + node.spec.idle_power_w * share


class TestSimulatorReuse:
    def test_simulator_refuses_a_second_run(self):
        # Cluster reservations, engine placements, and per-task bookkeeping
        # all survive run(); a silent rerun would drift every number.
        cluster = Cluster.from_models({"apalis-arm-soc": 2})
        simulator = ClusterSimulator(cluster, FirstFitScheduler())
        simulator.run([make_request("one")])
        with pytest.raises(RuntimeError):
            simulator.run([make_request("two")])


class TestImpossibleRequests:
    def test_never_fitting_request_is_reported_not_queued_forever(self):
        cluster = Cluster.from_models({"apalis-arm-soc": 2})
        impossible = make_request("giant", cores=64, memory_gib=512.0)
        feasible = make_request("ok", gops=10.0, arrival_s=1.0)
        result = ClusterSimulator(cluster, FirstFitScheduler()).run([impossible, feasible])
        assert result.unplaced == ["giant"]
        assert [task.task_id for task in result.completed] == ["ok"]

    def test_only_impossible_requests_still_terminates(self):
        cluster = Cluster.from_models({"apalis-arm-soc": 1})
        requests = [
            make_request(f"giant-{i}", cores=100, memory_gib=999.0, arrival_s=float(i))
            for i in range(3)
        ]
        result = ClusterSimulator(cluster, FirstFitScheduler()).run(requests)
        assert sorted(result.unplaced) == ["giant-0", "giant-1", "giant-2"]
        assert result.completed == []
        assert result.makespan_s == 0.0

    def test_impossible_request_terminates_under_rescheduling_policy(self):
        """Regression: with a rescheduling scheduler (HEATS), an unplaceable
        pending request used to re-arm the reschedule heartbeat forever and
        hang the event loop."""
        from repro.scheduler.heats import HeatsScheduler
        from repro.scheduler.modeling import ProfilingCampaign

        cluster = Cluster.from_models({"apalis-arm-soc": 1})
        scheduler = HeatsScheduler(ProfilingCampaign(cluster, seed=5).run().fit())
        impossible = make_request("giant", cores=64, memory_gib=512.0)
        feasible = make_request("ok", gops=10.0, arrival_s=1.0)
        result = ClusterSimulator(cluster, scheduler).run([impossible, feasible])
        assert result.unplaced == ["giant"]
        assert [task.task_id for task in result.completed] == ["ok"]

    def test_simulator_defaults_to_scheduler_cadence(self):
        from repro.scheduler.heats import HeatsConfig, HeatsScheduler
        from repro.scheduler.modeling import ProfilingCampaign

        cluster = Cluster.from_models({"apalis-arm-soc": 1})
        models = ProfilingCampaign(cluster, seed=5).run().fit()
        configured = HeatsScheduler(models, HeatsConfig(rescheduling_interval_s=12.5))
        assert ClusterSimulator(cluster, configured).rescheduling_interval_s == 12.5
        # Explicit argument still wins; config-less policies keep the default.
        assert (
            ClusterSimulator(cluster, configured, rescheduling_interval_s=5.0)
            .rescheduling_interval_s == 5.0
        )
        assert ClusterSimulator(cluster, FirstFitScheduler()).rescheduling_interval_s == 60.0

    def test_queued_request_runs_once_a_node_frees(self):
        cluster = Cluster.from_models({"apalis-arm-soc": 1})
        # First request fills all 4 cores; second must wait for it.
        hog = make_request("hog", gops=50.0, cores=4, memory_gib=1.0)
        waiter = make_request("waiter", gops=10.0, cores=4, memory_gib=1.0, arrival_s=0.5)
        result = ClusterSimulator(cluster, FirstFitScheduler()).run([hog, waiter])
        assert result.unplaced == []
        by_id = {task.task_id: task for task in result.completed}
        assert by_id["waiter"].start_s == pytest.approx(by_id["hog"].finish_s)
        assert by_id["waiter"].waiting_s > 0


class TestMigrationEnergyAccounting:
    @settings(max_examples=25, deadline=None)
    @given(
        gops=st.floats(min_value=700.0, max_value=4000.0),
        cores=st.integers(min_value=1, max_value=4),
        memory_gib=st.floats(min_value=0.25, max_value=3.5),
    )
    def test_energy_sums_across_node_shares(self, gops, cores, memory_gib):
        """Property: migrated-task energy == sum of per-node segment energies."""
        cluster = Cluster.from_models({"apalis-arm-soc": 1, "xeon-d-x86": 1})
        source = next(n for n in cluster if n.spec.model == "apalis-arm-soc")
        target = next(n for n in cluster if n.spec.model == "xeon-d-x86")
        scheduler = ForcedMigrationScheduler(source.name, target.name)
        simulator = ClusterSimulator(cluster, scheduler)
        request = make_request("mig", gops=gops, cores=cores, memory_gib=memory_gib)
        # Slow enough on the source to still be running at the first
        # reschedule tick (>= 700 Gop at <= 10 Gop/s per full share).
        assert source.execution_time_s(request.workload, gops, cores) > 60.0

        result = simulator.run([request])
        assert result.unplaced == []
        [task] = result.completed
        assert task.migrations == 1
        assert task.nodes == (source.name, target.name)
        [event] = result.migrations

        segment_1 = (event.time_s - task.start_s) * _segment_power_w(source, request)
        resume_s = event.time_s + event.downtime_s
        segment_2 = (task.finish_s - resume_s) * _segment_power_w(target, request)
        assert task.energy_j == pytest.approx(segment_1 + segment_2, rel=1e-9)
        # Both shares contribute: neither segment is degenerate.
        assert segment_1 > 0 and segment_2 > 0

    def test_unmigrated_task_energy_is_single_segment(self):
        cluster = Cluster.from_models({"xeon-d-x86": 1})
        request = make_request("plain", gops=120.0, cores=2)
        result = ClusterSimulator(cluster, FirstFitScheduler()).run([request])
        [task] = result.completed
        node = cluster.nodes[0]
        expected = (task.finish_s - task.start_s) * _segment_power_w(node, request)
        assert task.energy_j == pytest.approx(expected, rel=1e-9)
        assert task.migrations == 0
