"""Tests for cluster monitoring and the learned performance/energy models."""

from __future__ import annotations

import pytest

from repro.hardware.microserver import WorkloadKind
from repro.scheduler.cluster import Cluster
from repro.scheduler.modeling import NodeModel, PredictionModelSet, ProfilingCampaign
from repro.scheduler.monitoring import ClusterMonitor
from repro.scheduler.workload import TaskRequest


class TestMonitoring:
    def test_sample_covers_all_nodes(self, heterogeneous_cluster):
        monitor = ClusterMonitor(heterogeneous_cluster)
        snapshot = monitor.sample(0.0)
        assert len(snapshot) == len(heterogeneous_cluster)
        assert all(t.power_w > 0 for t in snapshot)

    def test_latest_returns_most_recent(self, heterogeneous_cluster):
        monitor = ClusterMonitor(heterogeneous_cluster)
        monitor.sample(0.0)
        node = heterogeneous_cluster.nodes[0]
        node.reserve("t", 2, 1.0)
        monitor.sample(10.0)
        latest = monitor.latest(node.name)
        assert latest is not None
        assert latest.time_s == 10.0
        assert latest.running_tasks == 1

    def test_latest_unknown_node_is_none(self, heterogeneous_cluster):
        monitor = ClusterMonitor(heterogeneous_cluster)
        monitor.sample(0.0)
        assert monitor.latest("ghost") is None

    def test_history_bounded(self, heterogeneous_cluster):
        monitor = ClusterMonitor(heterogeneous_cluster, history_limit=10)
        for t in range(10):
            monitor.sample(float(t))
        assert len(monitor.history) == 10

    def test_cluster_power_rises_with_load(self, heterogeneous_cluster):
        monitor = ClusterMonitor(heterogeneous_cluster)
        before = monitor.cluster_power_w()
        heterogeneous_cluster.nodes[0].reserve("t", 4, 1.0)
        assert monitor.cluster_power_w() > before

    def test_node_energy_accumulates(self, heterogeneous_cluster):
        monitor = ClusterMonitor(heterogeneous_cluster)
        node = heterogeneous_cluster.nodes[0].name
        for t in range(5):
            monitor.sample(float(t))
        assert monitor.node_energy_j(node) > 0

    def test_utilisation_summary(self, heterogeneous_cluster):
        monitor = ClusterMonitor(heterogeneous_cluster)
        summary = monitor.utilisation_summary()
        assert set(summary) == {node.name for node in heterogeneous_cluster}


class TestProfilingAndModels:
    @pytest.fixture(scope="class")
    def fitted(self):
        cluster = Cluster.heats_testbed(scale=1)
        campaign = ProfilingCampaign(cluster, noise_fraction=0.02, seed=9).run()
        return cluster, campaign, campaign.fit()

    def test_models_exist_for_every_node(self, fitted):
        cluster, _, models = fitted
        assert set(models.nodes()) == {node.name for node in cluster}

    def test_predictions_close_to_ground_truth(self, fitted):
        cluster, campaign, models = fitted
        errors = campaign.prediction_error(models)
        assert all(error < 0.15 for error in errors.values())

    def test_prediction_scales_with_work(self, fitted):
        cluster, _, models = fitted
        node = cluster.nodes[0].name
        small = TaskRequest("a", 0.0, WorkloadKind.SCALAR, gops=50, cores=1, memory_gib=1)
        large = TaskRequest("b", 0.0, WorkloadKind.SCALAR, gops=500, cores=1, memory_gib=1)
        t_small, e_small = models.predict(node, small)
        t_large, e_large = models.predict(node, large)
        assert t_large > t_small
        assert e_large > e_small

    def test_faster_node_predicted_faster(self, fitted):
        cluster, _, models = fitted
        xeon = next(n for n in cluster if n.spec.model == "xeon-d-x86").name
        apalis = next(n for n in cluster if n.spec.model == "apalis-arm-soc").name
        request = TaskRequest("r", 0.0, WorkloadKind.DATA_PARALLEL, gops=200, cores=2, memory_gib=1)
        assert models.predict(xeon, request)[0] < models.predict(apalis, request)[0]

    def test_efficient_node_predicted_cheaper(self, fitted):
        cluster, _, models = fitted
        xeon = next(n for n in cluster if n.spec.model == "xeon-d-x86").name
        jetson = next(n for n in cluster if n.spec.model == "jetson-gpu-soc").name
        request = TaskRequest("r", 0.0, WorkloadKind.DNN_INFERENCE, gops=500, cores=2, memory_gib=1)
        assert models.predict(jetson, request)[1] < models.predict(xeon, request)[1]

    def test_unknown_node_or_workload_raises(self, fitted):
        _, _, models = fitted
        request = TaskRequest("r", 0.0, WorkloadKind.SCALAR, gops=1, cores=1, memory_gib=1)
        with pytest.raises(KeyError):
            models.predict("ghost", request)
        model = NodeModel(node="partial", node_cores=4)
        with pytest.raises(KeyError):
            model.predict_time_s(request)

    def test_fit_requires_probing(self):
        cluster = Cluster.heats_testbed(scale=1)
        campaign = ProfilingCampaign(cluster)
        with pytest.raises(RuntimeError):
            campaign.fit()

    def test_empty_model_set_rejected(self):
        with pytest.raises(ValueError):
            PredictionModelSet({})
