"""Elastic cluster membership: the capacity index under add/remove.

The incremental free-capacity index was built for a fixed population; the
autoscaler now adds and removes nodes mid-run.  These tests pin the index
(buckets, aggregates, feasibility, idle lookup) to a from-scratch rebuild
after arbitrary interleavings of membership changes and reservations.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.microserver import MICROSERVER_CATALOG
from repro.scheduler.cluster import Cluster, ClusterNode

MODELS = sorted(MICROSERVER_CATALOG)


def fresh_node(index, model="xeon-d-x86"):
    return ClusterNode(name=f"elastic-{index}-{model}", spec=MICROSERVER_CATALOG[model])


def assert_index_matches_rebuild(cluster):
    """The live (incremental) aggregates must equal a from-scratch scan."""
    capacity = cluster.capacity()
    assert capacity.free_cores == sum(n.available.cores for n in cluster)
    assert capacity.total_cores == sum(n.total.cores for n in cluster)
    assert capacity.free_memory_gib == pytest.approx(
        sum(n.available.memory_gib for n in cluster)
    )
    assert capacity.total_memory_gib == pytest.approx(
        sum(n.total.memory_gib for n in cluster)
    )
    for cores, memory in ((1, 0.5), (4, 2.0), (16, 8.0)):
        expected = [n.name for n in cluster if n.available.fits(cores, memory)]
        assert [n.name for n in cluster.feasible_nodes(cores, memory)] == expected


class TestAddNode:
    def test_added_node_is_immediately_feasible(self):
        cluster = Cluster.heats_testbed(scale=1)
        node = fresh_node(0)
        before = cluster.capacity().total_cores
        cluster.add_node(node)
        assert cluster.capacity().total_cores == before + node.total.cores
        assert node in cluster.feasible_nodes(1, 0.1)
        assert_index_matches_rebuild(cluster)

    def test_added_node_updates_index_on_reserve(self):
        cluster = Cluster.heats_testbed(scale=1)
        node = fresh_node(0)
        cluster.add_node(node)
        node.reserve("t", node.total.cores, 1.0)
        assert node not in cluster.feasible_nodes(1, 0.1)
        assert_index_matches_rebuild(cluster)

    def test_duplicate_name_rejected(self):
        cluster = Cluster.heats_testbed(scale=1)
        cluster.add_node(fresh_node(0))
        with pytest.raises(ValueError, match="duplicate"):
            cluster.add_node(fresh_node(0))


class TestRemoveNode:
    def test_removed_node_leaves_index_and_stops_notifying(self):
        cluster = Cluster.heats_testbed(scale=1)
        node = fresh_node(0)
        cluster.add_node(node)
        removed = cluster.remove_node(node.name)
        assert removed is node
        assert node.name not in [n.name for n in cluster]
        assert_index_matches_rebuild(cluster)
        # Reservations on a detached node must not corrupt the old index.
        before = cluster.capacity()
        node.reserve("t", 1, 0.5)
        assert cluster.capacity() == before

    def test_busy_node_cannot_be_removed(self):
        cluster = Cluster.heats_testbed(scale=1)
        node = cluster.nodes[0]
        node.reserve("t", 1, 0.5)
        with pytest.raises(ValueError, match="still running"):
            cluster.remove_node(node.name)

    def test_last_node_cannot_be_removed(self):
        cluster = Cluster(
            [ClusterNode(name="only", spec=MICROSERVER_CATALOG["xeon-d-x86"])]
        )
        with pytest.raises(ValueError, match="at least one node"):
            cluster.remove_node("only")

    def test_unknown_node_raises(self):
        cluster = Cluster.heats_testbed(scale=1)
        with pytest.raises(KeyError):
            cluster.remove_node("ghost")


class TestIdleNodes:
    def test_only_fully_idle_nodes_are_listed(self):
        cluster = Cluster.heats_testbed(scale=1)
        busy = cluster.nodes[0]
        busy.reserve("t", 1, 0.5)
        idle_names = [n.name for n in cluster.idle_nodes()]
        assert busy.name not in idle_names
        assert len(idle_names) == len(cluster) - 1
        busy.release("t")
        assert len(cluster.idle_nodes()) == len(cluster)


@given(
    st.lists(
        st.one_of(
            st.tuples(st.just("add"), st.sampled_from(MODELS)),
            st.tuples(st.just("remove"), st.integers(min_value=0, max_value=7)),
            st.tuples(st.just("reserve"), st.integers(min_value=0, max_value=7)),
            st.tuples(st.just("release"), st.integers(min_value=0, max_value=7)),
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=60, deadline=None)
def test_index_survives_arbitrary_membership_and_load_interleavings(operations):
    cluster = Cluster.heats_testbed(scale=1)
    added = 0
    task_ids = iter(range(10_000))
    for op, arg in operations:
        nodes = cluster.nodes
        if op == "add":
            cluster.add_node(fresh_node(added, arg))
            added += 1
        elif op == "remove":
            node = nodes[arg % len(nodes)]
            if not node.running and len(nodes) > 1:
                cluster.remove_node(node.name)
        elif op == "reserve":
            node = nodes[arg % len(nodes)]
            if node.available.cores >= 1 and node.available.memory_gib >= 0.5:
                node.reserve(f"task-{next(task_ids)}", 1, 0.5)
        elif op == "release":
            node = nodes[arg % len(nodes)]
            if node.running:
                node.release(next(iter(node.running)))
    assert_index_matches_rebuild(cluster)
    idle = {n.name for n in cluster.idle_nodes()}
    expected_idle = {n.name for n in cluster if not n.running}
    assert idle == expected_idle


class TestElasticIdlePower:
    def test_total_idle_power_tracks_membership(self):
        cluster = Cluster.heats_testbed(scale=1)
        expected = sum(n.spec.idle_power_w for n in cluster)
        assert cluster.total_idle_power_w() == pytest.approx(expected)
        node = fresh_node(0)
        cluster.add_node(node)
        assert cluster.total_idle_power_w() == pytest.approx(
            expected + node.spec.idle_power_w
        )
        cluster.remove_node(node.name)
        assert cluster.total_idle_power_w() == pytest.approx(expected)


class TestIdleEnergyIntegration:
    def test_piecewise_integral_reduces_to_constant_for_static_topology(self):
        from repro.scheduler.simulation import _integrate_levels

        assert _integrate_levels([(0.0, 50.0)], 10.0) == pytest.approx(500.0)

    def test_piecewise_integral_charges_each_topology_era(self):
        from repro.scheduler.simulation import _integrate_levels

        # 4 nodes' power for 10 s, 6 nodes' for 10 s, back to 4 for 10 s.
        levels = [(0.0, 40.0), (10.0, 60.0), (20.0, 40.0)]
        assert _integrate_levels(levels, 30.0) == pytest.approx(
            40.0 * 10 + 60.0 * 10 + 40.0 * 10
        )
        # Integration clips at the makespan, ignoring later level changes.
        assert _integrate_levels(levels, 15.0) == pytest.approx(40.0 * 10 + 60.0 * 5)
        assert _integrate_levels(levels + [(40.0, 99.0)], 30.0) == pytest.approx(1400.0)
