"""Array/object-view consistency for the structured-array state tables.

The array-native core keeps node capacity in one numpy structured array
(the cluster's ``NODE_DTYPE`` table) and task progress in another (the
placement engine's ``TASK_DTYPE`` table), with the historical ``Node`` /
``Placement`` objects reduced to thin views.  Two suites pin the
contract:

* the feasibility oracle (``has_feasible_node``) can never go stale
  across elastic topology changes -- ``add_node`` / ``remove_node`` /
  ``grow_node`` must be visible to the very next query (the regression
  the retired per-bucket max-free-memory cache was at risk of);
* every view field round-trips through the arrays bit-for-bit after
  placement, progress, migration, throttle-style blocking windows, and
  node removal (including chaos-driven removals via the
  ``repro.scenarios`` actuator).
"""

from __future__ import annotations

from typing import List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.microserver import MICROSERVER_CATALOG, WorkloadKind
from repro.scenarios.chaos import ClusterActuator
from repro.scheduler.cluster import Cluster, ClusterNode
from repro.scheduler.placement import PlacementEngine
from repro.scheduler.workload import TaskRequest


def _request(index: int, cores: int = 1, memory_gib: float = 1.0, gops: float = 50.0):
    return TaskRequest(
        task_id=f"task-{index}",
        arrival_s=float(index),
        workload=WorkloadKind.SCALAR,
        gops=gops,
        cores=cores,
        memory_gib=memory_gib,
    )


def _oracle_agrees(cluster: Cluster, cores: int, memory_gib: float) -> None:
    """The three feasibility surfaces must answer identically."""
    oracle = cluster.has_feasible_node(cores, memory_gib)
    names = cluster.feasible_node_names(cores, memory_gib)
    nodes = cluster.feasible_nodes(cores, memory_gib)
    assert oracle == bool(names) == bool(nodes)
    assert [node.name for node in nodes] == list(names)
    # Ground truth: the per-node object check.
    expected = sorted(
        node.name for node in cluster if node.can_host(cores, memory_gib)
    )
    assert sorted(names) == expected


class TestFeasibilityOracleInvalidation:
    """Elastic topology changes must invalidate feasibility immediately."""

    def test_add_node_is_visible_to_the_next_query(self):
        cluster = Cluster.from_models({"apalis-arm-soc": 1})
        big = (64, 128.0)
        assert not cluster.has_feasible_node(*big)
        cluster.add_node(
            ClusterNode(name="fat-node", spec=MICROSERVER_CATALOG["xeon-d-x86"])
        )
        _oracle_agrees(cluster, *big)
        # The Xeon has what the SoC lacks; the oracle must see it now.
        small = (1, 0.5)
        _oracle_agrees(cluster, *small)

    def test_remove_node_is_visible_to_the_next_query(self):
        cluster = Cluster.from_models({"apalis-arm-soc": 1, "xeon-d-x86": 1})
        xeon = next(n for n in cluster if n.spec.model == "xeon-d-x86")
        shape = (xeon.total.cores, xeon.total.memory_gib)
        assert cluster.has_feasible_node(*shape)
        cluster.remove_node(xeon.name)
        assert not cluster.has_feasible_node(*shape)
        _oracle_agrees(cluster, *shape)

    def test_chaos_removal_through_the_scenarios_actuator(self):
        cluster = Cluster.from_models({"apalis-arm-soc": 2})
        actuator = ClusterActuator(cluster)
        victim = actuator.failure_candidates()[0]
        assert actuator.remove_node(victim)
        _oracle_agrees(cluster, 1, 0.5)
        assert victim not in [node.name for node in cluster]

    def test_grow_node_is_visible_to_the_next_query(self):
        from repro.federation.policy import ShardProfile
        from repro.federation.shard import ClusterShard

        shard = ClusterShard.build(
            0, ShardProfile("eu-north", 0.08), scale=1, use_score_cache=False
        )
        cluster = shard.cluster
        # Saturate every node so nothing can host a 1-core request.
        requests = []
        for index, node in enumerate(cluster):
            request = _request(
                index, cores=node.available.cores,
                memory_gib=node.available.memory_gib,
            )
            node.reserve(request.task_id, request.cores, request.memory_gib)
            requests.append((node, request))
        assert not cluster.has_feasible_node(1, 0.25)
        grown = shard.grow_node("xeon-d-x86")
        # The autoscaler's grow path must be feasible immediately.
        assert cluster.has_feasible_node(1, 0.25)
        _oracle_agrees(cluster, 1, 0.25)
        assert grown.name in [n for n in cluster.feasible_node_names(1, 0.25)]
        for node, request in requests:
            node.release(request.task_id)
        _oracle_agrees(cluster, 1, 0.25)

    def test_reserve_and_release_keep_the_oracle_exact(self):
        cluster = Cluster.from_models({"apalis-arm-soc": 2})
        node = cluster.nodes[0]
        shape = (node.available.cores, node.available.memory_gib)
        node.reserve("t0", *shape)
        _oracle_agrees(cluster, *shape)
        node.release("t0")
        _oracle_agrees(cluster, *shape)


def _assert_node_views(cluster: Cluster) -> None:
    for node in cluster:
        row = cluster.node_row(node.name)
        assert int(row["free_cores"]) == node.available.cores
        assert float(row["free_memory"]) == node.available.memory_gib
        assert int(row["total_cores"]) == node.total.cores
        assert float(row["total_memory"]) == node.total.memory_gib
        assert float(row["idle_power"]) == node.spec.idle_power_w
        assert float(row["dynamic_power"]) == (
            node.spec.peak_power_w - node.spec.idle_power_w
        )
        assert bool(row["active"])
    snapshot = cluster.capacity()
    assert snapshot.free_cores == sum(node.available.cores for node in cluster)
    assert snapshot.total_cores == sum(node.total.cores for node in cluster)
    assert snapshot.free_memory_gib == pytest.approx(
        sum(node.available.memory_gib for node in cluster)
    )


def _assert_task_views(engine: PlacementEngine) -> None:
    for placement in engine.running:
        rec = placement.row_record()
        assert float(rec["start_s"]) == placement.start_s
        assert float(rec["expected_finish_s"]) == placement.expected_finish_s
        assert float(rec["work_done_gops"]) == placement.work_done_gops
        assert float(rec["segment_base_gops"]) == placement.segment_base_gops
        assert int(rec["migrations"]) == placement.migrations
        assert float(rec["energy_j"]) == placement.energy_j
        assert float(rec["segment_start_s"]) == placement.segment_start_s
        assert float(rec["first_start_s"]) == placement.first_start_s
        assert int(rec["completion_version"]) == placement.completion_version
        assert bool(rec["active"])
        assert placement.node in [node.name for node in engine.cluster]


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(
            ["place", "migrate", "complete", "chaos_remove", "add", "throttle"]
        ),
        st.integers(min_value=0, max_value=10_000),
    ),
    min_size=4,
    max_size=40,
)


@settings(max_examples=40, deadline=None)
@given(ops=ops_strategy)
def test_view_fields_round_trip_through_the_arrays(ops):
    """Drive random placement/migration/removal churn; after every op the
    object views and the structured-array rows must agree exactly."""
    cluster = Cluster.from_models({"apalis-arm-soc": 2, "xeon-d-x86": 1})
    engine = PlacementEngine(cluster)
    actuator = ClusterActuator(cluster)
    time_s = 0.0
    next_task = 0
    added = 0
    #: nodes inside a simulated thermal-throttle window -- placement skips
    #: them exactly as the chaos engine's ``is_blocked`` filter does.
    throttled: List[str] = []

    for op, pick in ops:
        time_s += 1.0
        if op == "place":
            request = _request(next_task, cores=1 + pick % 2,
                               memory_gib=[0.5, 1.0, 2.0][pick % 3])
            next_task += 1
            names = [
                name
                for name in cluster.feasible_node_names(
                    request.cores, request.memory_gib
                )
                if name not in throttled
            ]
            if names:
                placement = engine.instantiate(
                    request, names[pick % len(names)], time_s
                )
                placement.set_segment(time_s, placement.node)
        elif op == "migrate":
            running = engine.running
            if running:
                placement = running[pick % len(running)]
                request = placement.request
                targets = [
                    name
                    for name in cluster.feasible_node_names(
                        request.cores, request.memory_gib
                    )
                    if name != placement.node
                ]
                if targets:
                    event = engine.migrate(
                        request.task_id, targets[pick % len(targets)], time_s
                    )
                    placement.set_segment(
                        event.time_s + event.downtime_s, event.target
                    )
        elif op == "complete":
            running = engine.running
            if running:
                placement = running[pick % len(running)]
                detached = engine.complete(placement.request.task_id, time_s)
                # Detached views must survive row recycling untouched.
                assert detached.work_done_gops == detached.request.gops
        elif op == "chaos_remove":
            idle = [n.name for n in cluster.idle_nodes()]
            candidates = [n for n in actuator.failure_candidates() if n in idle]
            if candidates:
                assert actuator.remove_node(candidates[pick % len(candidates)])
        elif op == "add":
            model = ["apalis-arm-soc", "xeon-d-x86"][pick % 2]
            cluster.add_node(
                ClusterNode(
                    name=f"grown-{added}", spec=MICROSERVER_CATALOG[model]
                )
            )
            added += 1
        elif op == "throttle":
            names = [node.name for node in cluster]
            if pick % 2 and throttled:
                throttled.pop()  # window closes
            else:
                throttled.append(names[pick % len(names)])

        _assert_node_views(cluster)
        _assert_task_views(engine)
        _oracle_agrees(cluster, 1, 0.5)
        _oracle_agrees(cluster, 2, 2.0)
