"""The cluster's incremental free-capacity index must never drift.

The index (free-core buckets, free-memory map, reserved-power aggregate)
is updated on every reserve/release instead of recomputed; these property
tests drive random reserve/release sequences and compare every indexed
answer against a brute-force rescan of the node state.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduler.cluster import Cluster


def _naive_feasible(cluster, cores, memory_gib):
    return [node.name for node in cluster.nodes if node.can_host(cores, memory_gib)]


def _assert_index_consistent(cluster):
    capacity = cluster.capacity()
    assert capacity.free_cores == sum(n.available.cores for n in cluster)
    # The memory total is accumulated incrementally, so it may differ from
    # a fresh sum by float rounding noise (never by a real amount).
    assert abs(capacity.free_memory_gib - sum(n.available.memory_gib for n in cluster)) < 1e-6
    assert capacity.total_cores == sum(n.total.cores for n in cluster)
    expected_power = sum(
        (n.spec.peak_power_w - n.spec.idle_power_w)
        * (1.0 - n.available.cores / n.total.cores)
        for n in cluster
    )
    assert abs(capacity.reserved_power_w - expected_power) < 1e-6
    assert 0.0 <= capacity.thermal_headroom <= 1.0
    for cores in (1, 2, 4, 8):
        for memory in (0.5, 2.0, 8.0):
            indexed = [n.name for n in cluster.feasible_nodes(cores, memory)]
            assert indexed == _naive_feasible(cluster, cores, memory)


operations = st.lists(
    st.tuples(
        st.sampled_from(["reserve", "release"]),
        st.integers(min_value=0, max_value=7),  # node pick (mod len)
        st.integers(min_value=1, max_value=6),  # cores
        st.floats(min_value=0.1, max_value=6.0),  # memory
    ),
    min_size=1,
    max_size=60,
)


class TestCapacityIndex:
    @settings(max_examples=40, deadline=None)
    @given(ops=operations)
    def test_index_matches_brute_force_under_churn(self, ops):
        cluster = Cluster.heats_testbed(scale=1)
        nodes = cluster.nodes
        live = {}  # task_id -> node name
        counter = 0
        for action, pick, cores, memory in ops:
            node = nodes[pick % len(nodes)]
            if action == "reserve":
                if node.can_host(cores, memory):
                    task_id = f"task-{counter}"
                    counter += 1
                    node.reserve(task_id, cores, round(memory, 2))
                    live[task_id] = node.name
            elif live:
                task_id, node_name = next(iter(live.items()))
                cluster.node(node_name).release(task_id)
                del live[task_id]
            _assert_index_consistent(cluster)

    def test_feasible_nodes_preserves_insertion_order(self):
        cluster = Cluster.heats_testbed(scale=1)
        expected = [n.name for n in cluster.nodes if n.can_host(1, 0.5)]
        assert [n.name for n in cluster.feasible_nodes(1, 0.5)] == expected

    def test_snapshot_is_memoised_until_capacity_changes(self):
        cluster = Cluster.heats_testbed(scale=1)
        first = cluster.capacity()
        assert cluster.capacity() is first
        node = cluster.nodes[0]
        node.reserve("task", 1, 0.5)
        second = cluster.capacity()
        assert second is not first
        assert second.free_cores == first.free_cores - 1
        node.release("task")
        assert cluster.capacity().free_cores == first.free_cores

    def test_thermal_headroom_shrinks_under_load(self):
        cluster = Cluster.heats_testbed(scale=1)
        idle = cluster.capacity().thermal_headroom
        for index, node in enumerate(cluster.nodes):
            node.reserve(f"task-{index}", node.available.cores, 0.1)
        assert cluster.capacity().thermal_headroom < idle
