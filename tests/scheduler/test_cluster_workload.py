"""Tests for the cluster model and workload generation."""

from __future__ import annotations

import pytest

from repro.hardware.microserver import WorkloadKind
from repro.scheduler.cluster import Cluster, ClusterNode, NodeResources
from repro.scheduler.workload import TaskRequest, WorkloadGenerator, WorkloadMix
from repro.hardware.microserver import MICROSERVER_CATALOG


class TestNodeResources:
    def test_fits_minus_plus(self):
        resources = NodeResources(cores=8, memory_gib=16.0)
        assert resources.fits(4, 8.0)
        reduced = resources.minus(4, 8.0)
        assert reduced.cores == 4 and reduced.memory_gib == pytest.approx(8.0)
        restored = reduced.plus(4, 8.0)
        assert restored.cores == 8

    def test_minus_beyond_capacity_rejected(self):
        with pytest.raises(ValueError):
            NodeResources(cores=2, memory_gib=4.0).minus(4, 1.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            NodeResources(cores=-1, memory_gib=1.0)

    def test_zero_free_resources_allowed(self):
        resources = NodeResources(cores=4, memory_gib=4.0)
        empty = resources.minus(4, 4.0)
        assert empty.cores == 0 and empty.memory_gib == pytest.approx(0.0)


class TestClusterNode:
    def make_node(self) -> ClusterNode:
        return ClusterNode(name="n0", spec=MICROSERVER_CATALOG["xeon-d-x86"])

    def test_reserve_and_release(self):
        node = self.make_node()
        node.reserve("t1", 4, 8.0)
        assert node.utilisation == pytest.approx(4 / 16)
        assert not node.can_host(13, 1.0)
        node.release("t1")
        assert node.utilisation == 0.0

    def test_duplicate_and_missing_task_errors(self):
        node = self.make_node()
        node.reserve("t1", 1, 1.0)
        with pytest.raises(KeyError):
            node.reserve("t1", 1, 1.0)
        with pytest.raises(KeyError):
            node.release("t2")

    def test_over_reservation_rejected(self):
        node = self.make_node()
        with pytest.raises(ValueError):
            node.reserve("big", 100, 1.0)

    def test_execution_time_scales_with_core_share(self):
        node = self.make_node()
        full = node.execution_time_s(WorkloadKind.SCALAR, 100, node.spec.cores)
        half = node.execution_time_s(WorkloadKind.SCALAR, 100, node.spec.cores // 2)
        assert half == pytest.approx(2 * full)

    def test_power_tracks_utilisation(self):
        node = self.make_node()
        idle_power = node.power_w()
        node.reserve("t", 8, 1.0)
        assert node.power_w() > idle_power

    def test_energy_positive(self):
        node = self.make_node()
        assert node.energy_for(WorkloadKind.SCALAR, 100, 4) > 0


class TestCluster:
    def test_from_models_and_access(self, heterogeneous_cluster):
        assert len(heterogeneous_cluster) == 8
        node = heterogeneous_cluster.nodes[0]
        assert heterogeneous_cluster.node(node.name) is node
        with pytest.raises(KeyError):
            heterogeneous_cluster.node("ghost")

    def test_duplicate_names_rejected(self):
        spec = MICROSERVER_CATALOG["xeon-d-x86"]
        with pytest.raises(ValueError):
            Cluster([ClusterNode("a", spec), ClusterNode("a", spec)])

    def test_feasible_nodes_filtering(self, heterogeneous_cluster):
        # Only the xeon nodes have 64 GiB of memory.
        feasible = heterogeneous_cluster.feasible_nodes(cores=1, memory_gib=40.0)
        assert feasible
        assert all(node.spec.model == "xeon-d-x86" for node in feasible)

    def test_locate_running_task(self, heterogeneous_cluster):
        node = heterogeneous_cluster.nodes[0]
        node.reserve("job", 1, 0.5)
        assert heterogeneous_cluster.locate("job") is node
        assert heterogeneous_cluster.locate("nothing") is None

    def test_heats_testbed_is_heterogeneous(self):
        cluster = Cluster.heats_testbed()
        models = {node.spec.model for node in cluster}
        assert len(models) == 4


class TestWorkloadGeneration:
    def test_requests_reproducible_with_seed(self):
        a = WorkloadGenerator(seed=1).generate(20)
        b = WorkloadGenerator(seed=1).generate(20)
        assert [r.gops for r in a] == [r.gops for r in b]

    def test_arrivals_monotone(self):
        requests = WorkloadGenerator(seed=2).generate(50)
        arrivals = [r.arrival_s for r in requests]
        assert arrivals == sorted(arrivals)

    def test_request_validation(self):
        with pytest.raises(ValueError):
            TaskRequest("t", arrival_s=-1, workload=WorkloadKind.SCALAR, gops=1, cores=1, memory_gib=1)
        with pytest.raises(ValueError):
            TaskRequest("t", arrival_s=0, workload=WorkloadKind.SCALAR, gops=1, cores=1, memory_gib=1, energy_weight=2.0)
        with pytest.raises(ValueError):
            TaskRequest("t", arrival_s=5, workload=WorkloadKind.SCALAR, gops=1, cores=1, memory_gib=1, deadline_s=1.0)

    def test_mix_probabilities_respected_roughly(self):
        mix = WorkloadMix({WorkloadKind.DNN_INFERENCE: 1.0})
        requests = WorkloadGenerator(mix=mix, seed=3).generate(30)
        assert all(r.workload is WorkloadKind.DNN_INFERENCE for r in requests)

    def test_mix_validation(self):
        with pytest.raises(ValueError):
            WorkloadMix({})
        with pytest.raises(ValueError):
            WorkloadMix({WorkloadKind.SCALAR: -1.0})

    def test_batch_at_fixed_arrival(self):
        requests = WorkloadGenerator(seed=4).generate_batch_at(10, arrival_s=0.0)
        assert all(r.arrival_s == 0.0 for r in requests)

    def test_energy_weight_propagated(self):
        requests = WorkloadGenerator(seed=5, energy_weight=0.9).generate(5)
        assert all(r.energy_weight == 0.9 for r in requests)

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(mean_interarrival_s=0)
        with pytest.raises(ValueError):
            WorkloadGenerator().generate(0)
