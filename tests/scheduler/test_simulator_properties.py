"""Conservation and monotonicity properties of the simulator core.

Run against both event-loop variants -- the capacity-gated fast path and
the old-equivalent full-rescan path (``fast_path=False``) -- under random
request streams and a migration-happy policy:

* every offered request is accounted exactly once
  (completed + unplaced == offered);
* per-task event times are monotone (arrival <= start <= finish);
* task energy is never negative;
* the migration count on each ``CompletedTask`` matches the per-task
  events in ``SimulationResult.migrations``;
* both paths produce identical results for the same stream.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.microserver import WorkloadKind
from repro.scheduler.cluster import Cluster
from repro.scheduler.simulation import ClusterSimulator, SimulationResult
from repro.scheduler.workload import TaskRequest


class RoundRobinMigrator:
    """Deterministic policy that keeps tasks moving between nodes.

    Places first-fit and, on every reschedule pass, proposes moving each
    running task to the next node (by index) that can host it -- enough
    churn to exercise multi-migration accounting without randomness.
    """

    name = "round_robin_migrator"
    supports_rescheduling = True

    def place(self, request, cluster, time_s):
        for node in cluster.feasible_nodes(request.cores, request.memory_gib):
            return node.name
        return None

    def reschedule(self, running, cluster, time_s) -> List[Tuple[str, str]]:
        nodes = cluster.nodes
        order = {node.name: index for index, node in enumerate(nodes)}
        decisions: List[Tuple[str, str]] = []
        for placement in running:
            start = order[placement.node]
            for offset in range(1, len(nodes)):
                candidate = nodes[(start + offset) % len(nodes)]
                if candidate.can_host(
                    placement.request.cores, placement.request.memory_gib
                ):
                    decisions.append((placement.request.task_id, candidate.name))
                    break
        return decisions


requests_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=120.0),   # arrival
        st.floats(min_value=10.0, max_value=3000.0),  # gops
        st.integers(min_value=1, max_value=10),       # cores (8 max per node)
        st.floats(min_value=0.25, max_value=40.0),    # memory (some never fit)
    ),
    min_size=1,
    max_size=18,
)


def build_requests(raw) -> List[TaskRequest]:
    return [
        TaskRequest(
            task_id=f"task-{index}",
            arrival_s=arrival,
            workload=WorkloadKind.SCALAR,
            gops=gops,
            cores=cores,
            memory_gib=memory,
        )
        for index, (arrival, gops, cores, memory) in enumerate(raw)
    ]


def run_stream(raw, fast_path: bool) -> Tuple[SimulationResult, List[TaskRequest]]:
    requests = build_requests(raw)
    cluster = Cluster.from_models({"apalis-arm-soc": 2, "xeon-d-x86": 1})
    simulator = ClusterSimulator(
        cluster, RoundRobinMigrator(), rescheduling_interval_s=15.0,
        fast_path=fast_path,
    )
    return simulator.run(requests), requests


@pytest.mark.parametrize("fast_path", [True, False], ids=["fast", "old-equivalent"])
class TestSimulatorProperties:
    @settings(max_examples=30, deadline=None)
    @given(raw=requests_strategy)
    def test_conservation_every_request_accounted_once(self, fast_path, raw):
        result, requests = run_stream(raw, fast_path)
        completed_ids = [task.task_id for task in result.completed]
        assert len(result.completed) + len(result.unplaced) == len(requests)
        assert sorted(completed_ids + list(result.unplaced)) == sorted(
            request.task_id for request in requests
        )
        assert len(set(completed_ids)) == len(completed_ids)

    @settings(max_examples=30, deadline=None)
    @given(raw=requests_strategy)
    def test_event_times_monotone_and_energy_non_negative(self, fast_path, raw):
        result, _ = run_stream(raw, fast_path)
        for task in result.completed:
            assert task.arrival_s <= task.start_s <= task.finish_s
            assert task.energy_j >= 0.0
        assert result.task_energy_j >= 0.0
        assert result.idle_energy_j >= 0.0
        for earlier, later in zip(result.migrations, result.migrations[1:]):
            assert earlier.time_s <= later.time_s

    @settings(max_examples=30, deadline=None)
    @given(raw=requests_strategy)
    def test_migration_counts_match_the_event_log(self, fast_path, raw):
        result, _ = run_stream(raw, fast_path)
        events_by_task: dict = {}
        for event in result.migrations:
            events_by_task[event.task_id] = events_by_task.get(event.task_id, 0) + 1
        for task in result.completed:
            assert task.migrations == events_by_task.get(task.task_id, 0)
        assert sum(task.migrations for task in result.completed) == len(
            result.migrations
        )


@settings(max_examples=25, deadline=None)
@given(raw=requests_strategy)
def test_fast_and_old_equivalent_paths_agree(raw):
    """The capacity-gated retry index must not change any outcome."""
    fast, _ = run_stream(raw, fast_path=True)
    slow, _ = run_stream(raw, fast_path=False)
    assert fast.summary() == slow.summary()
    assert [task.task_id for task in fast.completed] == [
        task.task_id for task in slow.completed
    ]
    assert fast.unplaced == slow.unplaced
    assert [
        (task.start_s, task.finish_s, task.nodes, task.energy_j)
        for task in fast.completed
    ] == [
        (task.start_s, task.finish_s, task.nodes, task.energy_j)
        for task in slow.completed
    ]
