"""Conservation and monotonicity properties of the array-native simulator.

Run against the structured-array event loop (one pre-sorted arrival
stream merged with a completions/reschedules heap, vectorised retry
gating) under random request streams and a migration-happy policy:

* every offered request is accounted exactly once
  (completed + unplaced == offered);
* per-task event times are monotone (arrival <= start <= finish);
* task energy is never negative;
* the migration count on each ``CompletedTask`` matches the per-task
  events in ``SimulationResult.migrations``;
* replays are bit-identical: the same stream run twice on fresh state
  produces the same result, event for event;
* a full scenario-driven soak (``repro.scenarios`` trace + chaos engine
  over the serving stack) stays conserved on the array core.
"""

from __future__ import annotations

from typing import List, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.microserver import WorkloadKind
from repro.scheduler.cluster import Cluster
from repro.scheduler.simulation import ClusterSimulator, SimulationResult
from repro.scheduler.workload import TaskRequest


class RoundRobinMigrator:
    """Deterministic policy that keeps tasks moving between nodes.

    Places first-fit and, on every reschedule pass, proposes moving each
    running task to the next node (by index) that can host it -- enough
    churn to exercise multi-migration accounting without randomness.
    """

    name = "round_robin_migrator"
    supports_rescheduling = True

    def place(self, request, cluster, time_s):
        for name in cluster.feasible_node_names(request.cores, request.memory_gib):
            return name
        return None

    def reschedule(self, running, cluster, time_s) -> List[Tuple[str, str]]:
        nodes = cluster.nodes
        order = {node.name: index for index, node in enumerate(nodes)}
        decisions: List[Tuple[str, str]] = []
        for placement in running:
            start = order[placement.node]
            for offset in range(1, len(nodes)):
                candidate = nodes[(start + offset) % len(nodes)]
                if candidate.can_host(
                    placement.request.cores, placement.request.memory_gib
                ):
                    decisions.append((placement.request.task_id, candidate.name))
                    break
        return decisions


requests_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=120.0),   # arrival
        st.floats(min_value=10.0, max_value=3000.0),  # gops
        st.integers(min_value=1, max_value=10),       # cores (8 max per node)
        st.floats(min_value=0.25, max_value=40.0),    # memory (some never fit)
    ),
    min_size=1,
    max_size=18,
)


def build_requests(raw) -> List[TaskRequest]:
    return [
        TaskRequest(
            task_id=f"task-{index}",
            arrival_s=arrival,
            workload=WorkloadKind.SCALAR,
            gops=gops,
            cores=cores,
            memory_gib=memory,
        )
        for index, (arrival, gops, cores, memory) in enumerate(raw)
    ]


def run_stream(raw) -> Tuple[SimulationResult, List[TaskRequest]]:
    requests = build_requests(raw)
    cluster = Cluster.from_models({"apalis-arm-soc": 2, "xeon-d-x86": 1})
    simulator = ClusterSimulator(
        cluster, RoundRobinMigrator(), rescheduling_interval_s=15.0
    )
    return simulator.run(requests), requests


class TestSimulatorProperties:
    @settings(max_examples=30, deadline=None)
    @given(raw=requests_strategy)
    def test_conservation_every_request_accounted_once(self, raw):
        result, requests = run_stream(raw)
        completed_ids = [task.task_id for task in result.completed]
        assert len(result.completed) + len(result.unplaced) == len(requests)
        assert sorted(completed_ids + list(result.unplaced)) == sorted(
            request.task_id for request in requests
        )
        assert len(set(completed_ids)) == len(completed_ids)

    @settings(max_examples=30, deadline=None)
    @given(raw=requests_strategy)
    def test_event_times_monotone_and_energy_non_negative(self, raw):
        result, _ = run_stream(raw)
        for task in result.completed:
            assert task.arrival_s <= task.start_s <= task.finish_s
            assert task.energy_j >= 0.0
        assert result.task_energy_j >= 0.0
        assert result.idle_energy_j >= 0.0
        for earlier, later in zip(result.migrations, result.migrations[1:]):
            assert earlier.time_s <= later.time_s

    @settings(max_examples=30, deadline=None)
    @given(raw=requests_strategy)
    def test_migration_counts_match_the_event_log(self, raw):
        result, _ = run_stream(raw)
        events_by_task: dict = {}
        for event in result.migrations:
            events_by_task[event.task_id] = events_by_task.get(event.task_id, 0) + 1
        for task in result.completed:
            assert task.migrations == events_by_task.get(task.task_id, 0)
        assert sum(task.migrations for task in result.completed) == len(
            result.migrations
        )

    @settings(max_examples=30, deadline=None)
    @given(raw=requests_strategy)
    def test_peak_array_bytes_is_reported_and_positive(self, raw):
        result, _ = run_stream(raw)
        # Both structured tables exist from construction, so the figure is
        # positive even for a run where nothing was ever placed.
        assert result.peak_array_bytes > 0


@settings(max_examples=25, deadline=None)
@given(raw=requests_strategy)
def test_replays_are_bit_identical(raw):
    """The array core must be deterministic: same stream, same result.

    This is the soak that retired the legacy ``fast_path=False`` rescan
    path -- the equality it used to pin (gated retry == full rescan) is
    now pinned as replay identity on fresh state, down to float bits of
    energy accounting.
    """
    first, _ = run_stream(raw)
    second, _ = run_stream(raw)
    assert first.summary() == second.summary()
    assert [task.task_id for task in first.completed] == [
        task.task_id for task in second.completed
    ]
    assert first.unplaced == second.unplaced
    assert [
        (task.start_s, task.finish_s, task.nodes, task.energy_j)
        for task in first.completed
    ] == [
        (task.start_s, task.finish_s, task.nodes, task.energy_j)
        for task in second.completed
    ]
    assert first.migrations == second.migrations


def _soak_scenario():
    from repro.core.seeding import SeedPolicy
    from repro.scenarios import (
        ArrivalSpec,
        ChaosEventSpec,
        ChaosSchedule,
        ParetoSpec,
        ScenarioSpec,
        TenantTrafficSpec,
    )

    return ScenarioSpec(
        name="array-core-soak",
        duration_s=90.0,
        traffic=(
            TenantTrafficSpec(
                name="burst",
                arrival=ArrivalSpec(
                    kind="flash_crowd",
                    rate_rps=2.0,
                    spike_rps=12.0,
                    spike_start_s=20.0,
                    spike_duration_s=15.0,
                ),
                endpoint_mix=(("ml_inference", 0.6), ("iot_gateway", 0.4)),
            ),
        ),
        chaos=ChaosSchedule(
            events=(
                ChaosEventSpec(kind="node_failure", at_s=30.0, probability=1.0),
                ChaosEventSpec(kind="thermal_throttle", at_s=15.0, duration_s=20.0),
            )
        ),
        sizes=ParetoSpec(alpha=1.6, lower=0.5, upper=3.0),
        deadlines=ParetoSpec(alpha=2.0, lower=0.8, upper=2.5),
        seed=SeedPolicy(base=11),
    )


def test_scenario_soak_stays_conserved_on_the_array_core():
    """Chaos-driven topology churn over the full serving stack: the
    structured-array tables must survive node failures mid-run with the
    subsystem's conservation invariants intact."""
    from repro.api import Deployment, DeploymentSpec
    from repro.scenarios import conservation_violations

    deployment = Deployment.from_spec(DeploymentSpec.preset("single"))
    outcome = deployment.run_scenario(_soak_scenario())
    assert conservation_violations(outcome) == []
    assert outcome.chaos.applied("node_failure")
    assert outcome.chaos.dead_nodes
    assert outcome.report.simulation.peak_array_bytes > 0
