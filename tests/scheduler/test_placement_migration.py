"""Migration progress accounting regressions (PlacementEngine).

The double-migration bug: ``advance_progress`` used to recompute a task's
completed work from the *current* segment only, silently discarding the
work banked before the previous migration.  A task migrated twice then
overstated its remaining work, finish time, and energy.  These tests pin
the fixed accounting: progress accrues on top of the post-migration
baseline, and the total work executed across all hosting segments equals
exactly the work the request asked for.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest

from repro.hardware.microserver import WorkloadKind
from repro.scheduler.cluster import Cluster, ClusterNode
from repro.scheduler.placement import PlacementEngine
from repro.scheduler.simulation import ClusterSimulator
from repro.scheduler.workload import TaskRequest


def make_request(gops: float = 5000.0, cores: int = 2, memory_gib: float = 0.5):
    return TaskRequest(
        task_id="hop",
        arrival_s=0.0,
        workload=WorkloadKind.SCALAR,
        gops=gops,
        cores=cores,
        memory_gib=memory_gib,
    )


def _rate(node: ClusterNode, request: TaskRequest) -> float:
    """Executed Gop/s of the request on a node (full-request run time)."""
    return request.gops / node.execution_time_s(
        request.workload, request.gops, request.cores
    )


class HopTwiceScheduler:
    """Places on the first node, then migrates to the second, then third."""

    name = "hop_twice"
    supports_rescheduling = True

    def __init__(self, hops: List[str]) -> None:
        self.hops = hops
        self._next = 1

    def place(self, request, cluster, time_s):
        node = cluster.node(self.hops[0])
        return node.name if node.can_host(request.cores, request.memory_gib) else None

    def reschedule(self, running, cluster, time_s) -> List[Tuple[str, str]]:
        if not running or self._next >= len(self.hops):
            return []
        target = self.hops[self._next]
        self._next += 1
        return [(running[0].request.task_id, target)]


class TestDoubleMigrationProgress:
    def test_second_migration_keeps_first_segment_progress(self):
        """Engine-level regression: remaining work after hop 2 must reflect
        the work done on *both* earlier hosts, not just the latest one."""
        cluster = Cluster.from_models({"xeon-d-x86": 3})
        first, second, third = cluster.nodes
        engine = PlacementEngine(cluster)
        request = make_request()
        engine.instantiate(request, first.name, 0.0)

        event_1 = engine.migrate("hop", second.name, 10.0)
        work_1 = _rate(first, request) * 10.0
        assert event_1.remaining_gops == pytest.approx(request.gops - work_1)

        resume_1 = 10.0 + event_1.downtime_s
        event_2 = engine.migrate("hop", third.name, resume_1 + 10.0)
        work_2 = _rate(second, request) * 10.0
        # Pre-fix, advance_progress zeroed the banked work_1 here.
        assert event_2.remaining_gops == pytest.approx(
            request.gops - work_1 - work_2
        )
        placement = engine.placement("hop")
        assert placement.work_done_gops == pytest.approx(work_1 + work_2)
        assert placement.migrations == 2

    def test_twice_migrated_task_executes_exactly_its_gops(self):
        """End-to-end: across three hosting segments the executed work sums
        to the requested Gop, i.e. the finish time is consistent with the
        per-node rates and no progress was lost or double counted."""
        cluster = Cluster.from_models(
            {"xeon-d-x86": 1, "arm64-server": 1, "jetson-gpu-soc": 1}
        )
        names = [node.name for node in cluster.nodes]
        scheduler = HopTwiceScheduler(names)
        request = make_request(gops=4000.0)
        simulator = ClusterSimulator(
            cluster, scheduler, rescheduling_interval_s=20.0
        )
        result = simulator.run([request])

        [task] = result.completed
        assert task.migrations == 2
        assert [event.task_id for event in result.migrations] == ["hop", "hop"]
        event_1, event_2 = result.migrations
        nodes = {node.name: node for node in cluster.nodes}

        executed = _rate(nodes[names[0]], request) * (event_1.time_s - task.start_s)
        executed += _rate(nodes[names[1]], request) * (
            event_2.time_s - (event_1.time_s + event_1.downtime_s)
        )
        executed += _rate(nodes[names[2]], request) * (
            task.finish_s - (event_2.time_s + event_2.downtime_s)
        )
        assert executed == pytest.approx(request.gops, rel=1e-9)

    def test_migration_remaining_matches_engine_progress_after_one_hop(self):
        """One migration stays exact too (the pre-fix behaviour happened to
        be correct for a single hop; keep it pinned)."""
        cluster = Cluster.from_models({"xeon-d-x86": 2})
        first, second = cluster.nodes
        engine = PlacementEngine(cluster)
        request = make_request()
        engine.instantiate(request, first.name, 0.0)
        event = engine.migrate("hop", second.name, 25.0)
        assert event.remaining_gops == pytest.approx(
            request.gops - _rate(first, request) * 25.0
        )
