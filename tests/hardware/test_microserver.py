"""Unit tests for the microserver catalogue and execution model."""

from __future__ import annotations

import pytest

from repro.hardware.microserver import (
    MICROSERVER_CATALOG,
    DeviceKind,
    Microserver,
    MicroserverSpec,
    WorkloadKind,
    make_microserver,
    most_efficient_for,
)


class TestCatalog:
    def test_all_specs_have_every_workload(self):
        for spec in MICROSERVER_CATALOG.values():
            for kind in WorkloadKind:
                assert spec.throughput_gops[kind] > 0

    def test_catalog_contains_all_device_classes(self):
        kinds = {spec.kind for spec in MICROSERVER_CATALOG.values()}
        assert DeviceKind.CPU_X86 in kinds
        assert DeviceKind.GPU in kinds
        assert DeviceKind.FPGA in kinds
        assert DeviceKind.DFE in kinds

    def test_gpu_dominates_dnn_throughput(self):
        gpu = MICROSERVER_CATALOG["gtx1080-gpu"]
        cpu = MICROSERVER_CATALOG["xeon-d-x86"]
        assert gpu.throughput_gops[WorkloadKind.DNN_INFERENCE] > cpu.throughput_gops[
            WorkloadKind.DNN_INFERENCE
        ]

    def test_fpga_most_efficient_for_streaming(self):
        best = most_efficient_for(WorkloadKind.STREAMING)
        assert best.kind.is_fpga

    def test_low_power_modules_have_low_idle(self):
        for name in ("apalis-arm-soc", "zynq-fpga-soc", "jetson-gpu-soc"):
            assert MICROSERVER_CATALOG[name].idle_power_w < 10.0

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            make_microserver("does-not-exist")


class TestSpecValidation:
    def _base_kwargs(self):
        spec = MICROSERVER_CATALOG["xeon-d-x86"]
        return dict(
            model="x",
            kind=spec.kind,
            cores=spec.cores,
            memory_gib=spec.memory_gib,
            idle_power_w=spec.idle_power_w,
            peak_power_w=spec.peak_power_w,
            throughput_gops=dict(spec.throughput_gops),
        )

    def test_rejects_zero_cores(self):
        kwargs = self._base_kwargs()
        kwargs["cores"] = 0
        with pytest.raises(ValueError):
            MicroserverSpec(**kwargs)

    def test_rejects_idle_above_peak(self):
        kwargs = self._base_kwargs()
        kwargs["idle_power_w"] = 200.0
        with pytest.raises(ValueError):
            MicroserverSpec(**kwargs)

    def test_rejects_missing_workload(self):
        kwargs = self._base_kwargs()
        throughput = dict(kwargs["throughput_gops"])
        throughput.pop(WorkloadKind.CRYPTO)
        kwargs["throughput_gops"] = throughput
        with pytest.raises(ValueError):
            MicroserverSpec(**kwargs)

    def test_rejects_bad_form_factor(self):
        kwargs = self._base_kwargs()
        kwargs["form_factor"] = "rackmount"
        with pytest.raises(ValueError):
            MicroserverSpec(**kwargs)


class TestSpecDerivedFigures:
    def test_execution_time_scales_inversely_with_throughput(self):
        spec = MICROSERVER_CATALOG["xeon-d-x86"]
        t1 = spec.execution_time_s(WorkloadKind.SCALAR, 120.0)
        t2 = spec.execution_time_s(WorkloadKind.SCALAR, 240.0)
        assert t2 == pytest.approx(2 * t1)

    def test_active_power_interpolates(self):
        spec = MICROSERVER_CATALOG["xeon-d-x86"]
        assert spec.active_power_w(0.0) == spec.idle_power_w
        assert spec.active_power_w(1.0) == spec.peak_power_w
        mid = spec.active_power_w(0.5)
        assert spec.idle_power_w < mid < spec.peak_power_w

    def test_active_power_rejects_out_of_range(self):
        spec = MICROSERVER_CATALOG["xeon-d-x86"]
        with pytest.raises(ValueError):
            spec.active_power_w(1.5)

    def test_energy_is_time_times_power(self):
        spec = MICROSERVER_CATALOG["kintex-fpga"]
        time = spec.execution_time_s(WorkloadKind.DNN_INFERENCE, 100.0)
        assert spec.energy_j(WorkloadKind.DNN_INFERENCE, 100.0) == pytest.approx(
            time * spec.peak_power_w
        )

    def test_efficiency_ordering_matches_expectation(self):
        fpga = MICROSERVER_CATALOG["kintex-fpga"]
        cpu = MICROSERVER_CATALOG["xeon-d-x86"]
        assert fpga.efficiency_gops_per_w(WorkloadKind.DNN_INFERENCE) > cpu.efficiency_gops_per_w(
            WorkloadKind.DNN_INFERENCE
        )


class TestMicroserverInstance:
    def test_unique_node_ids(self):
        a = make_microserver("xeon-d-x86")
        b = make_microserver("xeon-d-x86")
        assert a.node_id != b.node_id

    def test_execute_advances_busy_time_and_charges_energy(self, xeon):
        finish, energy = xeon.execute(WorkloadKind.SCALAR, 120.0, start_s=0.0)
        assert finish == pytest.approx(1.0)
        assert energy > 0
        assert xeon.energy.total_energy_j() == pytest.approx(energy)

    def test_execute_serialises_work(self, xeon):
        finish1, _ = xeon.execute(WorkloadKind.SCALAR, 120.0, start_s=0.0)
        finish2, _ = xeon.execute(WorkloadKind.SCALAR, 120.0, start_s=0.0)
        assert finish2 == pytest.approx(finish1 + 1.0)

    def test_memory_reservation_limits(self, xeon):
        xeon.reserve_memory(60.0)
        assert not xeon.can_fit(10.0)
        with pytest.raises(ValueError):
            xeon.reserve_memory(10.0)
        xeon.release_memory(60.0)
        assert xeon.can_fit(10.0)

    def test_release_never_goes_negative(self, xeon):
        xeon.release_memory(5.0)
        assert xeon.allocated_memory_gib == 0.0

    def test_idle_energy_charges_account(self, xeon):
        energy = xeon.idle_energy_j(10.0)
        assert energy == pytest.approx(xeon.spec.idle_power_w * 10.0)
        assert xeon.energy.total_energy_j() == pytest.approx(energy)

    def test_idle_energy_rejects_negative_duration(self, xeon):
        with pytest.raises(ValueError):
            xeon.idle_energy_j(-1.0)

    def test_is_idle_at(self, xeon):
        assert xeon.is_idle_at(0.0)
        xeon.execute(WorkloadKind.SCALAR, 120.0, start_s=0.0)
        assert not xeon.is_idle_at(0.5)
        assert xeon.is_idle_at(2.0)
