"""Unit tests for carrier composition rules."""

from __future__ import annotations

import pytest

from repro.hardware.carrier import Carrier, CarrierKind
from repro.hardware.microserver import make_microserver


def make_carrier(kind=CarrierKind.LOW_POWER):
    return Carrier(kind=kind, carrier_id=f"test-{kind.value}")


class TestSlotLimits:
    def test_low_power_carrier_has_sixteen_slots(self):
        assert make_carrier(CarrierKind.LOW_POWER).slots == 16

    def test_high_performance_carrier_has_three_slots(self):
        assert make_carrier(CarrierKind.HIGH_PERFORMANCE).slots == 3

    def test_install_fills_slots(self):
        carrier = make_carrier(CarrierKind.HIGH_PERFORMANCE)
        for _ in range(3):
            carrier.install(make_microserver("xeon-d-x86"))
        assert carrier.free_slots == 0
        with pytest.raises(ValueError):
            carrier.install(make_microserver("xeon-d-x86"))


class TestFormFactorRules:
    def test_low_power_carrier_rejects_com_express(self):
        carrier = make_carrier(CarrierKind.LOW_POWER)
        assert not carrier.accepts(make_microserver("xeon-d-x86"))
        with pytest.raises(ValueError):
            carrier.install(make_microserver("xeon-d-x86"))

    def test_low_power_carrier_accepts_jetson(self):
        carrier = make_carrier(CarrierKind.LOW_POWER)
        jetson = make_microserver("jetson-gpu-soc")
        carrier.install(jetson)
        assert carrier.find(jetson.node_id) is jetson

    def test_high_performance_carrier_rejects_low_power_module(self):
        carrier = make_carrier(CarrierKind.HIGH_PERFORMANCE)
        assert not carrier.accepts(make_microserver("apalis-arm-soc"))


class TestPowerBudget:
    def test_power_budget_enforced(self):
        carrier = make_carrier(CarrierKind.PCIE_EXPANSION)
        carrier.install(make_microserver("gtx1080-gpu"))
        carrier.install(make_microserver("gtx1080-gpu"))
        # 2 x 180 W = 360 W < 400 W cap, but slots are now exhausted.
        assert carrier.free_slots == 0

    def test_remove_releases_power(self):
        carrier = make_carrier(CarrierKind.HIGH_PERFORMANCE)
        node = make_microserver("xeon-d-x86")
        carrier.install(node)
        before = carrier.power_budget.headroom_w
        carrier.remove(node.node_id)
        assert carrier.power_budget.headroom_w > before

    def test_remove_unknown_raises(self):
        carrier = make_carrier()
        with pytest.raises(KeyError):
            carrier.remove("nope")


class TestAggregates:
    def test_power_and_energy_aggregation(self):
        carrier = make_carrier(CarrierKind.LOW_POWER)
        a = make_microserver("jetson-gpu-soc")
        b = make_microserver("zynq-fpga-soc")
        carrier.install(a)
        carrier.install(b)
        assert carrier.peak_power_w() == pytest.approx(
            a.spec.peak_power_w + b.spec.peak_power_w
        )
        assert carrier.idle_power_w() == pytest.approx(a.spec.idle_power_w + b.spec.idle_power_w)
        a.energy.charge(10.0)
        b.energy.charge(5.0)
        assert carrier.total_energy_j() == pytest.approx(15.0)

    def test_iteration_and_len(self):
        carrier = make_carrier(CarrierKind.LOW_POWER)
        carrier.install(make_microserver("jetson-gpu-soc"))
        carrier.install(make_microserver("apalis-arm-soc"))
        assert len(carrier) == 2
        assert len(list(carrier)) == 2

    def test_find_returns_none_for_unknown(self):
        carrier = make_carrier()
        assert carrier.find("missing") is None
