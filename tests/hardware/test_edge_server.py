"""Unit tests for the three-slot edge server (Fig. 9)."""

from __future__ import annotations

import pytest

from repro.hardware.edge_server import EDGE_SLOTS, EdgeServer, EdgeServerConfig


class TestComposition:
    def test_smart_mirror_compositions_have_three_slots(self):
        for config in (
            EdgeServerConfig.smart_mirror_cpu_2gpu(),
            EdgeServerConfig.smart_mirror_cpu_gpu_fpga(),
            EdgeServerConfig.low_power_arm(),
        ):
            server = EdgeServer(config)
            assert len(server) == EDGE_SLOTS

    def test_invalid_slot_count_rejected(self):
        config = EdgeServerConfig(name="bad", slots=("xeon-d-x86", "jetson-gpu-soc"))  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            EdgeServer(config)

    def test_cpu_node_owns_io(self):
        server = EdgeServer(EdgeServerConfig.smart_mirror_cpu_gpu_fpga())
        assert server.cpu_node.spec.kind.is_cpu
        assert len(server.accelerators) == 2

    def test_host_to_host_mesh(self):
        server = EdgeServer(EdgeServerConfig.smart_mirror_cpu_2gpu())
        nodes = [m.node_id for m in server.microservers]
        for i in range(len(nodes)):
            for j in range(i + 1, len(nodes)):
                assert server.fabric.is_bridged(nodes[i], nodes[j])

    def test_power_budget_allocated_per_slot(self):
        server = EdgeServer(EdgeServerConfig.low_power_arm())
        assert server.power_budget.allocated_w == pytest.approx(server.peak_power_w())


class TestPower:
    def test_low_power_composition_under_50w_peak(self):
        server = EdgeServer(EdgeServerConfig.low_power_arm())
        assert server.peak_power_w() < 50.0

    def test_active_power_between_idle_and_peak(self):
        server = EdgeServer(EdgeServerConfig.smart_mirror_cpu_2gpu())
        partial = server.active_power_w({m.node_id: 0.5 for m in server.microservers})
        assert server.idle_power_w() < partial < server.peak_power_w()

    def test_energy_starts_at_zero(self):
        server = EdgeServer(EdgeServerConfig.smart_mirror_cpu_2gpu())
        assert server.total_energy_j() == 0.0
