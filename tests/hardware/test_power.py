"""Unit tests for power metering and energy accounting."""

from __future__ import annotations

import math

import pytest

from repro.hardware.power import (
    EnergyAccount,
    PowerBudget,
    PowerDistributionUnit,
    PowerSample,
    PowerSpy,
    aggregate_energy,
    derive_power_trace,
    joules_to_kwh,
)


class TestPowerSample:
    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            PowerSample(time_s=0.0, watts=-1.0)

    def test_rejects_non_finite_power(self):
        with pytest.raises(ValueError):
            PowerSample(time_s=0.0, watts=math.inf)

    def test_holds_fields(self):
        sample = PowerSample(time_s=1.5, watts=42.0, source="node")
        assert sample.time_s == 1.5
        assert sample.watts == 42.0
        assert sample.source == "node"


class TestEnergyAccount:
    def test_trapezoidal_integration_constant_power(self):
        account = EnergyAccount()
        account.record(0.0, 100.0)
        account.record(10.0, 100.0)
        assert account.sampled_energy_j() == pytest.approx(1000.0)

    def test_trapezoidal_integration_ramp(self):
        account = EnergyAccount()
        account.record(0.0, 0.0)
        account.record(10.0, 100.0)
        assert account.sampled_energy_j() == pytest.approx(500.0)

    def test_rejects_out_of_order_samples(self):
        account = EnergyAccount()
        account.record(5.0, 10.0)
        with pytest.raises(ValueError):
            account.record(1.0, 10.0)

    def test_charge_adds_to_total(self):
        account = EnergyAccount()
        account.charge(250.0)
        account.charge(250.0)
        assert account.total_energy_j() == pytest.approx(500.0)

    def test_charge_rejects_negative(self):
        account = EnergyAccount()
        with pytest.raises(ValueError):
            account.charge(-1.0)

    def test_average_power(self):
        account = EnergyAccount()
        account.record(0.0, 50.0)
        account.record(2.0, 150.0)
        assert account.average_power_w() == pytest.approx(100.0)

    def test_average_power_single_sample(self):
        account = EnergyAccount()
        account.record(0.0, 70.0)
        assert account.average_power_w() == 70.0

    def test_peak_power(self):
        account = EnergyAccount()
        for t, w in [(0.0, 10.0), (1.0, 90.0), (2.0, 30.0)]:
            account.record(t, w)
        assert account.peak_power_w() == 90.0

    def test_window_extracts_subrange(self):
        account = EnergyAccount()
        for t in range(10):
            account.record(float(t), 10.0)
        window = account.window(2.0, 5.0)
        assert len(window.samples) == 4
        assert window.samples[0].time_s == 2.0

    def test_window_rejects_inverted_range(self):
        account = EnergyAccount()
        with pytest.raises(ValueError):
            account.window(5.0, 2.0)

    def test_reset_clears_state(self):
        account = EnergyAccount()
        account.record(0.0, 5.0)
        account.charge(10.0)
        account.reset()
        assert account.total_energy_j() == 0.0
        assert len(account.samples) == 0


class TestPowerMeters:
    def test_pdu_quantises_to_one_watt(self):
        pdu = PowerDistributionUnit("pdu")
        sample = pdu.sample(0.0, 123.4)
        assert sample is not None
        assert sample.watts == pytest.approx(123.0)

    def test_powerspy_higher_resolution(self):
        spy = PowerSpy("spy")
        sample = spy.sample(0.0, 12.342)
        assert sample is not None
        assert sample.watts == pytest.approx(12.34, abs=1e-6)

    def test_meter_skips_samples_faster_than_period(self):
        pdu = PowerDistributionUnit("pdu")
        assert pdu.sample(0.0, 100.0) is not None
        assert pdu.sample(0.5, 100.0) is None
        assert pdu.sample(1.0, 100.0) is not None

    def test_meter_energy_integrates(self):
        spy = PowerSpy("spy")
        for i in range(11):
            spy.sample(i * 0.05, 20.0)
        assert spy.energy_j() == pytest.approx(20.0 * 0.5, rel=1e-6)


class TestPowerBudget:
    def test_allocate_and_release(self):
        budget = PowerBudget(cap_w=100.0)
        budget.allocate("a", 60.0)
        assert budget.headroom_w == pytest.approx(40.0)
        assert budget.release("a") == 60.0
        assert budget.headroom_w == pytest.approx(100.0)

    def test_over_allocation_rejected(self):
        budget = PowerBudget(cap_w=100.0)
        budget.allocate("a", 80.0)
        with pytest.raises(ValueError):
            budget.allocate("b", 30.0)

    def test_duplicate_owner_rejected(self):
        budget = PowerBudget(cap_w=100.0)
        budget.allocate("a", 10.0)
        with pytest.raises(KeyError):
            budget.allocate("a", 10.0)

    def test_release_unknown_owner_rejected(self):
        budget = PowerBudget(cap_w=100.0)
        with pytest.raises(KeyError):
            budget.release("ghost")

    def test_non_positive_cap_rejected(self):
        with pytest.raises(ValueError):
            PowerBudget(cap_w=0.0)


class TestHelpers:
    def test_aggregate_energy(self):
        accounts = []
        for i in range(3):
            account = EnergyAccount(str(i))
            account.charge(100.0)
            accounts.append(account)
        assert aggregate_energy(accounts) == pytest.approx(300.0)

    def test_joules_to_kwh(self):
        assert joules_to_kwh(3.6e6) == pytest.approx(1.0)

    def test_derive_power_trace_orders_events(self):
        trace = derive_power_trace([(2.0, 50.0), (1.0, 30.0)], idle_w=5.0)
        times = [sample.time_s for sample in trace]
        assert times == sorted(times)
        assert trace[0].watts == 5.0
