"""Unit tests for the FPGA device, BRAM array and fabric model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.fpga import (
    BRAM_BLOCK_KBITS,
    POWER_SCALING_EXPONENT,
    BramArray,
    FpgaDevice,
    FpgaFabricRegion,
)
from repro.undervolting.platforms import make_platform_device


class TestFabricRegion:
    def test_fits_and_utilisation(self):
        budget = FpgaFabricRegion(luts=1000, flip_flops=2000, dsp_slices=10, bram_blocks=20)
        demand = FpgaFabricRegion(luts=500, flip_flops=500, dsp_slices=5, bram_blocks=10)
        assert budget.fits(demand)
        assert budget.utilisation(demand) == pytest.approx(0.5)

    def test_does_not_fit_when_any_resource_exceeds(self):
        budget = FpgaFabricRegion(luts=1000, flip_flops=2000, dsp_slices=10, bram_blocks=20)
        demand = FpgaFabricRegion(luts=500, flip_flops=500, dsp_slices=50, bram_blocks=10)
        assert not budget.fits(demand)

    def test_negative_resources_rejected(self):
        with pytest.raises(ValueError):
            FpgaFabricRegion(luts=-1, flip_flops=0, dsp_slices=0, bram_blocks=0)

    def test_utilisation_infinite_when_budget_zero(self):
        budget = FpgaFabricRegion(luts=100, flip_flops=100, dsp_slices=0, bram_blocks=10)
        demand = FpgaFabricRegion(luts=10, flip_flops=10, dsp_slices=1, bram_blocks=1)
        assert budget.utilisation(demand) == float("inf")


class TestBramArray:
    def test_capacity_accounting(self):
        bram = BramArray(num_blocks=10)
        assert bram.total_kbits == 10 * BRAM_BLOCK_KBITS
        assert bram.total_mbits == pytest.approx(10 * BRAM_BLOCK_KBITS / 1024)

    def test_pattern_roundtrip(self):
        bram = BramArray(num_blocks=4)
        bram.write_pattern(0xA5)
        assert bram.count_mismatches(0xA5) == 0
        assert bram.count_mismatches(0x5A) > 0

    def test_fault_injection_counts(self):
        bram = BramArray(num_blocks=4, rng=np.random.default_rng(0))
        bram.write_pattern(0x55)
        locations = bram.inject_bit_flips(100)
        assert len(locations) == 100
        # Some flips may land on the same bit twice and cancel out, so the
        # mismatch count is at most the injected count and close to it.
        mismatches = bram.count_mismatches(0x55)
        assert 0 < mismatches <= 100

    def test_clear_faults(self):
        bram = BramArray(num_blocks=2)
        bram.inject_bit_flips(5)
        assert len(bram.fault_log) == 5
        bram.clear_faults()
        assert len(bram.fault_log) == 0

    def test_block_read_write(self):
        bram = BramArray(num_blocks=2)
        data = np.arange(100, dtype=np.uint8)
        bram.write_block(1, data)
        read = bram.read_block(1)
        assert np.array_equal(read[:100], data)

    def test_block_bounds_checked(self):
        bram = BramArray(num_blocks=2)
        with pytest.raises(IndexError):
            bram.read_block(5)

    def test_negative_fault_count_rejected(self):
        with pytest.raises(ValueError):
            BramArray(num_blocks=1).inject_bit_flips(-1)


class TestFpgaDevice:
    def make_device(self) -> FpgaDevice:
        return make_platform_device("VC707")

    def test_power_decreases_with_voltage(self):
        device = self.make_device()
        nominal = device.bram_power_w()
        device.set_vccbram(0.7)
        assert device.bram_power_w() < nominal

    def test_power_saving_exceeds_90_percent_at_crash_voltage(self):
        device = self.make_device()
        device.set_vccbram(0.54)
        assert device.bram_power_saving_fraction() > 0.90

    def test_scaling_exponent_is_super_quadratic(self):
        assert POWER_SCALING_EXPONENT > 2.0

    def test_voltage_regulator_range_enforced(self):
        device = self.make_device()
        with pytest.raises(ValueError):
            device.set_vccbram(0.3)
        with pytest.raises(ValueError):
            device.set_vccbram(1.5)

    def test_crash_and_reset(self):
        device = self.make_device()
        device.crash()
        assert not device.responsive
        device.reset()
        assert device.responsive
        assert device.vccbram == pytest.approx(1.0)

    def test_total_power_includes_static(self):
        device = self.make_device()
        assert device.total_power_w() > device.bram_power_w()
