"""Unit tests for the RECS|BOX enclosure model."""

from __future__ import annotations

import pytest

from repro.hardware.carrier import CarrierKind
from repro.hardware.microserver import DeviceKind, make_microserver
from repro.hardware.recsbox import MAX_CARRIERS, MAX_MICROSERVERS, RecsBox, RecsBoxConfig


class TestConstruction:
    def test_balanced_demo_builds(self):
        box = RecsBox.from_config(RecsBoxConfig.balanced_demo())
        assert box.microserver_count == 7
        inventory = box.inventory()
        assert inventory["cpu_x86"] == 1
        assert inventory["gpu"] == 1

    def test_full_rack_scales(self):
        box = RecsBox.from_config(RecsBoxConfig.full_rack(replication=2))
        assert box.microserver_count == 14

    def test_config_respects_carrier_slot_limits(self):
        # 5 COM Express modules need two high-performance carriers (3 slots each).
        config = RecsBoxConfig(
            name="tight",
            carriers={CarrierKind.HIGH_PERFORMANCE: ["xeon-d-x86"] * 5},
        )
        box = RecsBox.from_config(config)
        assert len(box.carriers) == 2
        assert box.microserver_count == 5

    def test_backplane_carrier_limit(self):
        box = RecsBox("limit")
        for _ in range(MAX_CARRIERS):
            box.add_carrier(CarrierKind.LOW_POWER)
        with pytest.raises(ValueError):
            box.add_carrier(CarrierKind.LOW_POWER)

    def test_install_rejects_foreign_carrier(self):
        box = RecsBox("a")
        other = RecsBox("b")
        foreign_carrier = other.add_carrier(CarrierKind.HIGH_PERFORMANCE)
        with pytest.raises(ValueError):
            box.install(foreign_carrier, make_microserver("xeon-d-x86"))


class TestQueries:
    def setup_method(self):
        self.box = RecsBox.from_config(RecsBoxConfig.balanced_demo())

    def test_nodes_of_kind(self):
        fpgas = self.box.nodes_of_kind(DeviceKind.FPGA)
        assert len(fpgas) == 1
        assert fpgas[0].spec.model == "kintex-fpga"

    def test_find_by_node_id(self):
        node = self.box.microservers[0]
        assert self.box.find(node.node_id) is node

    def test_find_unknown_raises(self):
        with pytest.raises(KeyError):
            self.box.find("unknown")

    def test_iteration_covers_all(self):
        assert len(list(self.box)) == self.box.microserver_count

    def test_network_registration(self):
        nodes = self.box.microservers
        assert all(node.node_id in self.box.fabric.carrier_of for node in nodes)

    def test_power_aggregates(self):
        assert self.box.peak_power_w() > self.box.idle_power_w() > 0

    def test_sample_power_records_pdu(self):
        self.box.sample_power(0.0)
        self.box.sample_power(2.0)
        assert len(self.box.pdu.account.samples) == 2

    def test_total_energy_includes_fabric(self):
        node_a, node_b = self.box.microservers[:2]
        self.box.fabric.transfer(node_a.node_id, node_b.node_id, 1e9)
        assert self.box.total_energy_j() > 0
