"""Unit tests for the interconnect models."""

from __future__ import annotations

import pytest

from repro.hardware.network import (
    ComputeNetwork,
    HighSpeedLink,
    ManagementNetwork,
    NetworkFabric,
)


class TestLinks:
    def test_transfer_time_includes_latency_and_bandwidth(self):
        link = ComputeNetwork("eth")
        one_gb = 1e9
        expected = link.latency_s + one_gb * 8 / (link.bandwidth_gbps * 1e9)
        assert link.transfer(one_gb) == pytest.approx(expected)

    def test_high_speed_link_is_faster_than_compute(self):
        hs = HighSpeedLink("hs")
        eth = ComputeNetwork("eth")
        size = 100e6
        assert hs.transfer(size) < eth.transfer(size)

    def test_stats_accumulate(self):
        link = HighSpeedLink("hs")
        link.transfer(1e6)
        link.transfer(2e6)
        assert link.stats.messages == 2
        assert link.stats.bytes_moved == pytest.approx(3e6)
        assert link.stats.energy_j > 0

    def test_reset_clears_stats(self):
        link = ComputeNetwork("eth")
        link.transfer(1e6)
        link.reset()
        assert link.stats.messages == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            ComputeNetwork("eth").transfer(-1)

    def test_management_telemetry(self):
        mgmt = ManagementNetwork("mgmt")
        duration = mgmt.telemetry()
        assert duration > 0
        assert mgmt.stats.bytes_moved == mgmt.telemetry_bytes


class TestFabricRouting:
    def make_fabric(self):
        fabric = NetworkFabric()
        fabric.register_node("a", "carrier0")
        fabric.register_node("b", "carrier0")
        fabric.register_node("c", "carrier1")
        return fabric

    def test_same_carrier_uses_high_speed(self):
        fabric = self.make_fabric()
        assert fabric.route("a", "b") is fabric.high_speed

    def test_cross_carrier_uses_compute_network(self):
        fabric = self.make_fabric()
        assert fabric.route("a", "c") is fabric.compute

    def test_bridged_pair_uses_high_speed(self):
        fabric = self.make_fabric()
        fabric.bridge("a", "c")
        assert fabric.is_bridged("c", "a")
        assert fabric.route("a", "c") is fabric.high_speed

    def test_bridge_to_self_rejected(self):
        fabric = self.make_fabric()
        with pytest.raises(ValueError):
            fabric.bridge("a", "a")

    def test_local_transfer_is_free(self):
        fabric = self.make_fabric()
        assert fabric.transfer("a", "a", 1e9) == 0.0

    def test_broadcast_serialises_transfers(self):
        fabric = self.make_fabric()
        single = fabric.transfer("a", "c", 1e6)
        total = fabric.broadcast("a", ["b", "c"], 1e6)
        assert total > single

    def test_energy_and_bytes_aggregate(self):
        fabric = self.make_fabric()
        fabric.transfer("a", "b", 1e6)
        fabric.transfer("a", "c", 1e6)
        assert fabric.total_bytes() == pytest.approx(2e6)
        assert fabric.total_energy_j() > 0
