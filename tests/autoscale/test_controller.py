"""Autoscaler control-loop tests: decisions, cooldowns, accounting."""

from __future__ import annotations

import pytest

from repro import LegatoSystem, MetricsRegistry, ServingWorkload
from repro.autoscale import Autoscaler, AutoscaleConfig, ScalingAction
from repro.federation import Federation, FederationConfig
from repro.serving import Tenant

QUICK = AutoscaleConfig(
    control_interval_s=2.0,
    scale_up_cooldown_s=0.0,
    scale_down_cooldown_s=0.0,
)


def build_federation(num_shards=1, config: FederationConfig = None):
    return Federation.build(
        num_shards=num_shards,
        shard_scale=1,
        metrics=MetricsRegistry(),
        federation_config=config
        if config is not None
        else FederationConfig(rescheduling_interval_s=2.0),
    )


def saturate(federation, fraction=1.0):
    """Reserve a fraction of every node's cores directly."""
    for node in federation.cluster:
        cores = max(1, int(node.total.cores * fraction))
        node.reserve(f"fill-{node.name}", min(cores, node.available.cores), 0.1)


class TestScaleUp:
    def test_saturation_grows_a_node_in_the_hottest_shard(self):
        federation = build_federation()
        scaler = Autoscaler(federation, config=QUICK)
        before = federation.total_nodes
        saturate(federation)
        scaler.control(2.0, [])
        actions = [d.action for d in scaler.decisions]
        assert actions == [ScalingAction.GROW_NODE]
        assert federation.total_nodes == before + 1
        # The grown node is immediately placeable: it has learned models
        # and lives in both the shard index and the union index.
        shard = federation.shards[0]
        new_node = [n for n in shard.cluster if "auto" in n.name][0]
        assert new_node.name in shard.scheduler.models
        assert federation.cluster.shard_of(new_node.name) == shard.name

    def test_cooldown_blocks_consecutive_scale_ups(self):
        federation = build_federation()
        scaler = Autoscaler(
            federation,
            config=AutoscaleConfig(
                control_interval_s=2.0, scale_up_cooldown_s=10.0
            ),
        )
        saturate(federation)
        scaler.control(2.0, [])
        scaler.control(4.0, [])  # inside the cooldown window
        assert len(scaler.decisions) == 1
        scaler.control(12.0, [])  # cooldown elapsed
        assert len(scaler.decisions) == 2

    def test_shard_added_when_all_shards_at_node_cap(self):
        federation = build_federation()
        scaler = Autoscaler(
            federation,
            config=AutoscaleConfig(
                control_interval_s=2.0,
                scale_up_cooldown_s=0.0,
                scale_down_cooldown_s=0.0,
                max_nodes_per_shard=4,  # the build size: no node headroom
            ),
        )
        saturate(federation)
        scaler.control(2.0, [])
        assert [d.action for d in scaler.decisions] == [ScalingAction.ADD_SHARD]
        assert len(federation.shards) == 2
        # The new shard is routable: an idle federation places there.
        assert federation.total_nodes == 8


    def test_growth_falls_through_to_cooler_shards_with_headroom(self):
        federation = build_federation(num_shards=2)
        scaler = Autoscaler(
            federation,
            config=AutoscaleConfig(
                control_interval_s=2.0,
                scale_up_cooldown_s=0.0,
                scale_down_cooldown_s=0.0,
                max_nodes_per_shard=5,
                max_shards=2,  # no shard headroom: node growth is the only lever
            ),
        )
        hottest = federation.shards[0]
        federation.grow_node(hottest.name, "xeon-d-x86")  # hottest at the 5-node cap
        saturate(federation)
        scaler.control(2.0, [])
        decisions = [d for d in scaler.decisions if d.action is ScalingAction.GROW_NODE]
        assert len(decisions) == 1
        # The hottest shard is full, so the cooler shard got the node.
        assert decisions[0].target.startswith(federation.shards[1].name)

    def test_autoscaler_requires_instrumented_federation(self):
        federation = Federation.build(num_shards=1, shard_scale=1)
        with pytest.raises(ValueError, match="MetricsRegistry"):
            Autoscaler(federation)


class TestScaleDown:
    def test_idle_federation_drains_and_removes_a_shard(self):
        federation = build_federation(num_shards=2)
        scaler = Autoscaler(federation, config=QUICK)
        scaler.control(2.0, [])
        assert [d.action for d in scaler.decisions] == [ScalingAction.BEGIN_DRAIN]
        drained = scaler.decisions[0].target
        assert federation.scheduler.is_draining(drained)
        # Next tick: the shard is empty, so the drain finalises.
        scaler.control(4.0, [])
        action_kinds = [d.action for d in scaler.decisions]
        assert ScalingAction.REMOVE_SHARD in action_kinds
        assert len(federation.shards) == 1
        assert drained not in [s.name for s in federation.shards]

    def test_never_scales_below_min_shards(self):
        federation = build_federation(num_shards=1)
        scaler = Autoscaler(federation, config=QUICK)
        for tick in range(1, 6):
            scaler.control(2.0 * tick, [])
        assert len(federation.shards) == 1
        assert not any(
            d.action in (ScalingAction.BEGIN_DRAIN, ScalingAction.SHRINK_NODE)
            for d in scaler.decisions
        )

    def test_grown_nodes_are_shrunk_before_shards_are_drained(self):
        federation = build_federation(num_shards=2)
        scaler = Autoscaler(federation, config=QUICK)
        grown = federation.grow_node(federation.shards[0].name, "xeon-d-x86")
        scaler.control(2.0, [])
        first = scaler.decisions[0]
        assert first.action is ScalingAction.SHRINK_NODE
        assert first.target == grown
        assert federation.total_nodes == 8

    def test_scale_up_pressure_cancels_an_active_drain(self):
        federation = build_federation(num_shards=2)
        scaler = Autoscaler(federation, config=QUICK)
        draining = federation.shards[1].name
        federation.begin_drain(draining)
        saturate(federation)  # both shards fully loaded -> up pressure
        scaler.control(2.0, [])
        assert [d.action for d in scaler.decisions] == [ScalingAction.CANCEL_DRAIN]
        assert not federation.scheduler.is_draining(draining)


class TestAccounting:
    def test_node_seconds_integrate_across_topology_changes(self):
        federation = build_federation()
        scaler = Autoscaler(federation, config=QUICK)
        saturate(federation)
        scaler.control(10.0, [])  # 4 nodes for 10 s, then grows to 5
        report = scaler.report(horizon_s=20.0)  # 5 nodes for the next 10 s
        assert report.node_seconds == pytest.approx(4 * 10.0 + 5 * 10.0)
        assert report.peak_nodes == 5
        assert report.min_nodes == 4
        assert report.final_nodes == 5
        assert report.control_ticks == 1
        assert report.action_count(ScalingAction.GROW_NODE) == 1
        assert report.summary()["actions"] == {"grow_node": 1}

    def test_gauges_reflect_current_topology(self):
        federation = build_federation()
        scaler = Autoscaler(federation, config=QUICK)
        scaler.control(2.0, [])
        snapshot = federation.metrics.snapshot()
        assert snapshot.gauges["autoscale.nodes"] == federation.total_nodes
        assert snapshot.gauges["autoscale.shards"] == len(federation.shards)


class TestFacade:
    def test_serve_autoscale_true_runs_elastically(self):
        tenants = [
            Tenant(name="hot", rate_limit_rps=400.0, burst=200, energy_weight=0.2),
            Tenant(name="cold", rate_limit_rps=400.0, burst=200, energy_weight=0.8),
        ]
        workload = ServingWorkload.synthetic(
            tenants,
            {
                "hot": {"ml_inference": 0.6, "smartmirror": 0.4},
                "cold": {"iot_gateway": 1.0},
            },
            offered_rps=150.0,
            duration_s=20.0,
            seed=5,
        )
        report = LegatoSystem().serve(workload, cluster_scale=1, autoscale=True)
        # Round-trip conservation still holds under elastic topology...
        assert report.completed > 0
        assert report.admitted == report.completed + report.dropped
        # ...the elastic history is attached and the overload grew capacity.
        auto = report.autoscale_report
        assert auto is not None
        assert auto.control_ticks > 0
        assert auto.peak_nodes > 4
        assert auto.node_seconds > 0
        assert report.summary()["autoscale"]["peak_nodes"] == auto.peak_nodes

    def test_system_autoscaler_builds_attached_controller(self):
        scaler = LegatoSystem().autoscaler(num_shards=2)
        assert scaler.federation.scheduler.autoscaler is scaler
        assert scaler.federation.metrics is not None
        # Control heartbeat aligned with the federation's rescheduler.
        assert (
            scaler.federation.scheduler.config.rescheduling_interval_s
            == scaler.config.control_interval_s
        )


class TestShrinkNodeSafety:
    def test_failed_shrink_leaves_union_and_shard_consistent(self):
        federation = build_federation(num_shards=2)
        foreign = federation.shards[1].cluster.nodes[0]
        # Asking shard 0 to shrink a node owned by shard 1 must fail
        # without touching either index.
        with pytest.raises(KeyError):
            federation.shrink_node(federation.shards[0].name, foreign.name)
        assert federation.cluster.shard_of(foreign.name) == federation.shards[1].name
        assert foreign.name in [n.name for n in federation.shards[1].cluster]

    def test_busy_node_shrink_refused_atomically(self):
        federation = build_federation(num_shards=1)
        node = federation.shards[0].cluster.nodes[0]
        node.reserve("t", 1, 0.5)
        with pytest.raises(ValueError, match="still running"):
            federation.shrink_node(federation.shards[0].name, node.name)
        # Both views still index the node.
        assert federation.cluster.shard_of(node.name) == federation.shards[0].name
        assert node.name in [n.name for n in federation.shards[0].cluster]
