"""Elastic-topology unblocking regressions for the cluster simulator.

Pre-overhaul, ``ClusterSimulator`` retried its pending queue only when a
completion fired: nodes grown by an autoscaler during a reschedule pass
could not unblock queued requests until some unrelated task finished, and
an arrival that no *current* node could ever host was rejected outright
even though a later grow would have made it feasible.  These tests pin
the fixed behaviour with a deterministic elastic policy.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest

from repro.hardware.microserver import MICROSERVER_CATALOG, WorkloadKind
from repro.scheduler.cluster import Cluster, ClusterNode
from repro.scheduler.simulation import ClusterSimulator
from repro.scheduler.workload import TaskRequest


def make_request(task_id, gops=200.0, cores=4, memory_gib=1.0, arrival_s=0.0):
    return TaskRequest(
        task_id=task_id,
        arrival_s=arrival_s,
        workload=WorkloadKind.SCALAR,
        gops=gops,
        cores=cores,
        memory_gib=memory_gib,
    )


class GrowOnReschedule:
    """First-fit policy that grows one node at a chosen reschedule pass.

    Carries a truthy ``autoscaler`` marker so the simulator treats the
    topology as elastic (arrivals too large for every current node queue
    instead of being rejected outright).  ``cooldown_passes`` no-op
    heartbeats run before the grow, mimicking a controller cooldown;
    ``cooldown_passes=None`` never grows at all.
    """

    name = "grow_on_reschedule"
    supports_rescheduling = True

    def __init__(
        self,
        cluster: Cluster,
        model: str = "apalis-arm-soc",
        cooldown_passes: int = 0,
    ) -> None:
        self.cluster = cluster
        self.model = model
        self.cooldown_passes = cooldown_passes
        self.autoscaler = object()  # marks the topology as elastic
        self.passes = 0
        self.grow_times: List[float] = []

    def place(self, request, cluster, time_s):
        for node in cluster.feasible_nodes(request.cores, request.memory_gib):
            return node.name
        return None

    def reschedule(self, running, cluster, time_s) -> List[Tuple[str, str]]:
        self.passes += 1
        if (
            self.cooldown_passes is not None
            and not self.grow_times
            and self.passes > self.cooldown_passes
        ):
            self.cluster.add_node(
                ClusterNode(
                    name=f"grown-{len(self.grow_times)}-{self.model}",
                    spec=MICROSERVER_CATALOG[self.model],
                )
            )
            self.grow_times.append(time_s)
        return []


class TestGrowUnblocksQueued:
    def test_grown_node_unblocks_queued_request_at_the_reschedule(self):
        """A request queued behind a full cluster must start on the grown
        node at the reschedule instant, not wait for the hog to finish."""
        cluster = Cluster.from_models({"apalis-arm-soc": 1})
        scheduler = GrowOnReschedule(cluster)
        hog = make_request("hog", gops=500.0, cores=4)
        waiter = make_request("waiter", gops=50.0, cores=4, arrival_s=1.0)
        result = ClusterSimulator(
            cluster, scheduler, rescheduling_interval_s=5.0
        ).run([hog, waiter])

        assert result.unplaced == []
        by_id = {task.task_id: task for task in result.completed}
        [grow_time] = scheduler.grow_times
        assert by_id["waiter"].start_s == pytest.approx(grow_time)
        assert by_id["waiter"].start_s < by_id["hog"].finish_s
        assert by_id["waiter"].nodes == ("grown-0-apalis-arm-soc",)

    def test_arrival_too_big_for_any_current_node_waits_for_a_grow(self):
        """Under an elastic policy, 'no node could ever host this' is not a
        final verdict: the request queues and lands on the grown node."""
        cluster = Cluster.from_models({"apalis-arm-soc": 1})  # 4 cores
        scheduler = GrowOnReschedule(cluster, model="xeon-d-x86")  # 8 cores
        big = make_request("big", gops=100.0, cores=8, memory_gib=4.0)
        result = ClusterSimulator(
            cluster, scheduler, rescheduling_interval_s=5.0
        ).run([big])

        assert result.unplaced == []
        [task] = result.completed
        assert task.nodes == ("grown-0-xeon-d-x86",)
        assert task.start_s == pytest.approx(scheduler.grow_times[0])

    def test_queued_work_survives_a_controller_cooldown(self):
        """A grow on the *third* heartbeat (cooldown) must still unblock a
        queued request with nothing else running: the elastic grace window
        keeps the heartbeat armed across no-progress passes."""
        cluster = Cluster.from_models({"apalis-arm-soc": 1})  # 4 cores
        scheduler = GrowOnReschedule(
            cluster, model="xeon-d-x86", cooldown_passes=2
        )
        big = make_request("big", gops=100.0, cores=8, memory_gib=4.0)
        result = ClusterSimulator(
            cluster, scheduler, rescheduling_interval_s=5.0
        ).run([big])

        assert result.unplaced == []
        [task] = result.completed
        assert task.start_s == pytest.approx(scheduler.grow_times[0])
        assert scheduler.passes >= 3

    def test_elastic_run_terminates_when_the_controller_never_grows(self):
        """The grace window is bounded: a controller that never acts must
        not keep the heartbeat (and the event loop) alive forever."""
        cluster = Cluster.from_models({"apalis-arm-soc": 1})
        scheduler = GrowOnReschedule(cluster, cooldown_passes=None)
        big = make_request("big", gops=100.0, cores=8, memory_gib=64.0)
        result = ClusterSimulator(
            cluster, scheduler, rescheduling_interval_s=5.0
        ).run([big])

        assert result.unplaced == ["big"]
        assert result.completed == []
        assert scheduler.passes <= ClusterSimulator._ELASTIC_GRACE_HEARTBEATS + 1

    def test_static_policy_still_rejects_impossible_arrivals(self):
        """Without an autoscaler the fixed-topology fast reject stays."""
        cluster = Cluster.from_models({"apalis-arm-soc": 1})

        class FirstFit:
            name = "first_fit"
            supports_rescheduling = False

            def place(self, request, cluster, time_s):
                for node in cluster.feasible_nodes(request.cores, request.memory_gib):
                    return node.name
                return None

            def reschedule(self, running, cluster, time_s):
                return []

        result = ClusterSimulator(cluster, FirstFit()).run(
            [make_request("big", cores=64, memory_gib=128.0)]
        )
        assert result.unplaced == ["big"]
