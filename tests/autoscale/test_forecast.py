"""Forecaster tests: EWMA level tracking and Holt-Winters trend/season."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autoscale import EwmaForecaster, HoltWintersForecaster


class TestEwmaForecaster:
    def test_constant_series_converges_to_level(self):
        forecaster = EwmaForecaster(alpha=0.5)
        for _ in range(20):
            forecaster.observe(40.0)
        assert forecaster.forecast() == pytest.approx(40.0)

    def test_empty_forecast_is_zero(self):
        assert EwmaForecaster().forecast() == 0.0

    def test_first_observation_seeds_level(self):
        forecaster = EwmaForecaster(alpha=0.2)
        forecaster.observe(12.0)
        assert forecaster.level == pytest.approx(12.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EwmaForecaster(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaForecaster().forecast(steps=0)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50),
        st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_level_stays_within_observed_range(self, values, alpha):
        forecaster = EwmaForecaster(alpha=alpha)
        for value in values:
            forecaster.observe(value)
        assert min(values) - 1e-6 <= forecaster.forecast() <= max(values) + 1e-6


class TestHoltWintersForecaster:
    def test_linear_trend_is_extrapolated(self):
        forecaster = HoltWintersForecaster(alpha=0.8, beta=0.8)
        for step in range(30):
            forecaster.observe(10.0 + 5.0 * step)  # rate rising 5/tick
        one_ahead = forecaster.forecast(1)
        # The last observation was 10 + 5*29 = 155; the forecast must see
        # the rise coming, not lag at the level.
        assert one_ahead > 155.0
        assert forecaster.forecast(4) > one_ahead

    def test_constant_series_has_no_trend(self):
        forecaster = HoltWintersForecaster()
        for _ in range(25):
            forecaster.observe(60.0)
        assert forecaster.trend == pytest.approx(0.0, abs=1e-6)
        assert forecaster.forecast(10) == pytest.approx(60.0, rel=0.01)

    def test_forecast_is_floored_at_zero(self):
        forecaster = HoltWintersForecaster(alpha=0.9, beta=0.9)
        for value in (100.0, 50.0, 10.0, 0.0, 0.0):
            forecaster.observe(value)
        assert forecaster.forecast(10) == 0.0

    def test_seasonal_cycle_is_learned(self):
        period = 4
        cycle = [10.0, 80.0, 10.0, 10.0]
        forecaster = HoltWintersForecaster(
            alpha=0.3, beta=0.1, gamma=0.6, season_period=period
        )
        for repeat in range(12):
            for value in cycle:
                forecaster.observe(value)
        # Next step is the spike position of the cycle: the seasonal
        # component must predict it well above the off-peak level.
        assert forecaster.forecast(2) > forecaster.forecast(1) + 20.0

    def test_empty_forecast_is_zero(self):
        assert HoltWintersForecaster().forecast() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            HoltWintersForecaster(alpha=1.5)
        with pytest.raises(ValueError):
            HoltWintersForecaster(beta=-0.1)
        with pytest.raises(ValueError):
            HoltWintersForecaster(season_period=1)
        with pytest.raises(ValueError):
            HoltWintersForecaster().forecast(steps=0)
