"""Request gateway: per-tenant admission control for the serving front-end.

Every tenant registers with an SLA describing its traffic contract: a
token-bucket rate limit (sustained requests/s plus a burst allowance), a
bounded ingress queue, and the energy/performance weight its batches carry
into HEATS scoring.  The gateway admits or rejects each offered request at
its arrival instant and hands admitted requests downstream in round-robin
order across tenants so one noisy tenant cannot starve the others.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Sequence

from repro.hardware.microserver import WorkloadKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.registry import MetricsRegistry


@dataclass(frozen=True)
class ServingRequest:
    """One user-facing request offered to the serving front-end."""

    request_id: str
    tenant: str
    use_case: str
    arrival_s: float
    workload: WorkloadKind
    gops: float
    cores: int
    memory_gib: float
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError("arrival time must be non-negative")
        if self.gops <= 0:
            raise ValueError("request work must be positive")
        if self.cores <= 0 or self.memory_gib <= 0:
            raise ValueError("resource demands must be positive")
        if self.deadline_s is not None and self.deadline_s <= self.arrival_s:
            raise ValueError("deadline must be after arrival")


@dataclass(frozen=True)
class Tenant:
    """One customer of the cluster-as-a-service front-end.

    ``region`` optionally names the energy region the tenant prefers (for
    data locality or contractual energy pricing); when the backend is a
    federation, the tenant's shard affinity is seeded from the shard whose
    profile matches this region.
    """

    name: str
    rate_limit_rps: float = 50.0
    burst: int = 20
    max_queue_depth: int = 256
    energy_weight: float = 0.5
    latency_slo_s: Optional[float] = None
    region: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant needs a name")
        if self.region is not None and not self.region:
            raise ValueError("region must be a non-empty name when given")
        if self.rate_limit_rps <= 0:
            raise ValueError("rate limit must be positive")
        if self.burst <= 0:
            raise ValueError("burst must be positive")
        if self.max_queue_depth <= 0:
            raise ValueError("queue depth must be positive")
        if not (0.0 <= self.energy_weight <= 1.0):
            raise ValueError("energy weight must be within [0, 1]")
        if self.latency_slo_s is not None and self.latency_slo_s <= 0:
            raise ValueError("latency SLO must be positive")


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s refill, ``burst`` capacity."""

    def __init__(self, rate_per_s: float, burst: int) -> None:
        if rate_per_s <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate_per_s = rate_per_s
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last_refill_s = 0.0

    def available(self, now_s: float) -> float:
        self._refill(now_s)
        return self._tokens

    def try_consume(self, now_s: float, tokens: float = 1.0) -> bool:
        self._refill(now_s)
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    def _refill(self, now_s: float) -> None:
        if now_s < self._last_refill_s:
            raise ValueError("token bucket observed time going backwards")
        # Clamp the credited gap to the time a drained bucket needs to fill
        # completely.  Any longer simulated-time jump (an idle tenant, a
        # coarse replay tick, or a pathological horizon) is equivalent to a
        # full bucket -- and the clamp keeps ``elapsed * rate`` finite, so
        # an extreme jump can never over-credit past ``burst`` through
        # float overflow of the refill product.
        elapsed = min(now_s - self._last_refill_s, self.burst / self.rate_per_s)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate_per_s)
        self._last_refill_s = now_s


class AdmissionDecision(Enum):
    """Outcome of offering one request to the gateway."""

    ADMITTED = "admitted"
    REJECTED_RATE_LIMIT = "rejected_rate_limit"
    REJECTED_QUEUE_FULL = "rejected_queue_full"
    REJECTED_UNKNOWN_TENANT = "rejected_unknown_tenant"

    @property
    def admitted(self) -> bool:
        return self is AdmissionDecision.ADMITTED


@dataclass
class GatewayStats:
    """Per-tenant admission accounting."""

    offered: int = 0
    admitted: int = 0
    rejected_rate_limit: int = 0
    rejected_queue_full: int = 0

    @property
    def rejected(self) -> int:
        return self.rejected_rate_limit + self.rejected_queue_full

    @property
    def rejection_rate(self) -> float:
        return self.rejected / self.offered if self.offered else 0.0


class RequestGateway:
    """Admission control front door: one token bucket + queue per tenant."""

    def __init__(
        self,
        tenants: Sequence[Tenant] = (),
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self._tenants: Dict[str, Tenant] = {}
        self._buckets: Dict[str, TokenBucket] = {}
        self._queues: Dict[str, Deque[ServingRequest]] = {}
        self._stats: Dict[str, GatewayStats] = {}
        self._queued_total = 0
        # Admission instruments are bound once; the per-offer hot path does
        # a constant number of float adds, no registry lookups.
        if metrics is not None:
            self._m_offered = metrics.counter("gateway.offered")
            self._m_admitted = metrics.counter("gateway.admitted")
            self._m_rejected = metrics.counter("gateway.rejected")
            self._m_queue_depth = metrics.gauge("gateway.queue_depth")
        else:
            self._m_offered = None
            self._m_admitted = None
            self._m_rejected = None
            self._m_queue_depth = None
        for tenant in tenants:
            self.register(tenant)

    # ------------------------------------------------------------------ #
    # Tenant management
    # ------------------------------------------------------------------ #
    def register(self, tenant: Tenant) -> None:
        if tenant.name in self._tenants:
            raise ValueError(f"tenant {tenant.name!r} is already registered")
        self._tenants[tenant.name] = tenant
        self._buckets[tenant.name] = TokenBucket(tenant.rate_limit_rps, tenant.burst)
        self._queues[tenant.name] = deque()
        self._stats[tenant.name] = GatewayStats()

    def tenant(self, name: str) -> Tenant:
        if name not in self._tenants:
            raise KeyError(f"no tenant named {name!r}")
        return self._tenants[name]

    @property
    def tenants(self) -> List[Tenant]:
        return list(self._tenants.values())

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #
    def offer(self, request: ServingRequest, now_s: Optional[float] = None) -> AdmissionDecision:
        """Admit or reject one request at time ``now_s`` (its arrival by default)."""
        now = request.arrival_s if now_s is None else now_s
        tenant = self._tenants.get(request.tenant)
        if tenant is None:
            return AdmissionDecision.REJECTED_UNKNOWN_TENANT
        stats = self._stats[request.tenant]
        stats.offered += 1
        if self._m_offered is not None:
            self._m_offered.inc()
        # Check queue capacity before consuming a token so a queue-full
        # rejection does not also burn the tenant's rate budget.
        queue = self._queues[request.tenant]
        if len(queue) >= tenant.max_queue_depth:
            stats.rejected_queue_full += 1
            if self._m_rejected is not None:
                self._m_rejected.inc()
            return AdmissionDecision.REJECTED_QUEUE_FULL
        if not self._buckets[request.tenant].try_consume(now):
            stats.rejected_rate_limit += 1
            if self._m_rejected is not None:
                self._m_rejected.inc()
            return AdmissionDecision.REJECTED_RATE_LIMIT
        queue.append(request)
        self._queued_total += 1
        stats.admitted += 1
        if self._m_admitted is not None:
            self._m_admitted.inc()
            self._m_queue_depth.add(1.0)
        return AdmissionDecision.ADMITTED

    def drain(self, limit: Optional[int] = None) -> List[ServingRequest]:
        """Pop admitted requests, round-robin across tenants for fairness."""
        drained: List[ServingRequest] = []
        queues = [q for q in self._queues.values() if q]
        while queues and (limit is None or len(drained) < limit):
            for queue in list(queues):
                if limit is not None and len(drained) >= limit:
                    break
                drained.append(queue.popleft())
                if not queue:
                    queues.remove(queue)
        self._queued_total -= len(drained)
        if self._m_queue_depth is not None and drained:
            self._m_queue_depth.add(-float(len(drained)))
        return drained

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def queued_count(self) -> int:
        """Admitted requests currently waiting to be drained, across tenants.

        Maintained as a running counter on offer/drain so the serving
        loop's event-driven tick derivation reads it in O(1).
        """
        return self._queued_total

    def queue_depth(self, tenant: str) -> int:
        return len(self._queues[tenant])

    def stats(self, tenant: str) -> GatewayStats:
        if tenant not in self._stats:
            raise KeyError(f"no tenant named {tenant!r}")
        return self._stats[tenant]

    def all_stats(self) -> Dict[str, GatewayStats]:
        return dict(self._stats)
