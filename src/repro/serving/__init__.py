"""Multi-tenant request-serving front-end over the HEATS cluster.

The ROADMAP north star is serving heavy request traffic, not replaying
hand-built benchmark scripts.  This subsystem is the missing path from "a
stream of user requests" to "tasks placed on the cluster":

* :mod:`repro.serving.gateway`   -- per-tenant admission control with
  token-bucket rate limiting and bounded queues.
* :mod:`repro.serving.batching`  -- coalesces compatible requests (same
  tenant / use case / resource shape) into :class:`TaskRequest` batches
  with deadline-aware flushing.
* :mod:`repro.serving.cache`     -- LRU prediction-score cache so HEATS
  scoring is not recomputed per request on the hot path.
* :mod:`repro.serving.endpoints` -- the LEGaTO use cases exposed as
  servable endpoints plus a synthetic traffic generator.
* :mod:`repro.serving.sla`       -- per-tenant SLA telemetry (p50/p95/p99
  latency, throughput, rejection rate, energy per request).
* :mod:`repro.serving.loop`      -- the serving loop driving the
  discrete-event cluster simulator as its placement backend.

``LegatoSystem.serve(workload)`` is the facade entry point wiring all of
the above together.
"""

from repro.serving.gateway import (
    AdmissionDecision,
    GatewayStats,
    RequestGateway,
    ServingRequest,
    Tenant,
    TokenBucket,
)
from repro.serving.batching import Batch, Batcher, BatchPolicy
from repro.serving.cache import CacheStats, PredictionScoreCache
from repro.serving.endpoints import (
    SERVABLE_ENDPOINTS,
    ServableEndpoint,
    endpoint,
    synthesize_traffic,
)
from repro.serving.sla import SlaTracker, TenantSlaReport
from repro.serving.loop import ServingLoop, ServingReport, ServingWorkload

__all__ = [
    "AdmissionDecision",
    "Batch",
    "Batcher",
    "BatchPolicy",
    "CacheStats",
    "GatewayStats",
    "PredictionScoreCache",
    "RequestGateway",
    "SERVABLE_ENDPOINTS",
    "ServableEndpoint",
    "ServingLoop",
    "ServingReport",
    "ServingRequest",
    "ServingWorkload",
    "SlaTracker",
    "Tenant",
    "TenantSlaReport",
    "TokenBucket",
    "endpoint",
    "synthesize_traffic",
]
