"""Servable endpoints: the LEGaTO use cases as request shapes.

Each endpoint describes what one user request of a use case costs the
cluster: the workload kind the schedulers' models understand, the work per
request, and the resource shape the batch will reserve.  The figures are
derived from the use-case modules (``InferenceRequestBatch`` for ML
inference, the Smart Mirror frame pipeline, the IoT gateway's per-window
message processing) so a served request is comparable to one unit of the
corresponding standalone workload.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.hardware.microserver import WorkloadKind
from repro.serving.gateway import ServingRequest, Tenant


@dataclass(frozen=True)
class ServableEndpoint:
    """Request shape of one use case exposed through the front-end."""

    name: str
    workload: WorkloadKind
    gops_per_request: float
    cores: int
    memory_gib: float
    #: default end-to-end latency bound attached to requests (None = best effort).
    default_deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.gops_per_request <= 0:
            raise ValueError("per-request work must be positive")
        if self.cores <= 0 or self.memory_gib <= 0:
            raise ValueError("resource shape must be positive")
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ValueError("deadline must be positive")


#: the use cases reachable through ``LegatoSystem.serve``.
SERVABLE_ENDPOINTS: Dict[str, ServableEndpoint] = {
    # One DNN-inference request (InferenceRequestBatch.gops_per_request).
    "ml_inference": ServableEndpoint(
        name="ml_inference",
        workload=WorkloadKind.DNN_INFERENCE,
        gops_per_request=3.0,
        cores=2,
        memory_gib=0.5,
        default_deadline_s=60.0,
    ),
    # One Smart Mirror camera frame through detection + tracking.
    "smartmirror": ServableEndpoint(
        name="smartmirror",
        workload=WorkloadKind.STREAMING,
        gops_per_request=8.0,
        cores=2,
        memory_gib=1.0,
        default_deadline_s=30.0,
    ),
    # One Secure IoT Gateway message window (decrypt/validate/aggregate/sign).
    "iot_gateway": ServableEndpoint(
        name="iot_gateway",
        workload=WorkloadKind.CRYPTO,
        gops_per_request=1.5,
        cores=1,
        memory_gib=0.5,
        default_deadline_s=120.0,
    ),
}


def endpoint(name: str) -> ServableEndpoint:
    """Look up a servable endpoint by name.

    Args:
        name: key into ``SERVABLE_ENDPOINTS``.

    Returns:
        The endpoint's request shape.
    """
    if name not in SERVABLE_ENDPOINTS:
        raise KeyError(
            f"no servable endpoint {name!r}; available: {sorted(SERVABLE_ENDPOINTS)}"
        )
    return SERVABLE_ENDPOINTS[name]


def synthesize_traffic(
    tenants: Sequence[Tenant],
    endpoint_mix: Dict[str, Dict[str, float]],
    offered_rps: float,
    duration_s: float,
    seed: int = 2020,
    with_deadlines: bool = True,
) -> List[ServingRequest]:
    """Poisson request streams for several tenants sharing one front door.

    ``endpoint_mix`` maps tenant name -> {endpoint name: weight}; the
    offered load is split evenly across tenants and each tenant draws its
    endpoints from its own mix.  Arrivals are merged and sorted so the
    stream can be replayed in time order.
    """
    if offered_rps <= 0:
        raise ValueError("offered load must be positive")
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    if not tenants:
        raise ValueError("traffic needs at least one tenant")
    rng = np.random.default_rng(seed)
    ids = itertools.count()
    per_tenant_rps = offered_rps / len(tenants)
    requests: List[ServingRequest] = []
    for tenant in tenants:
        mix = endpoint_mix.get(tenant.name)
        if not mix:
            raise ValueError(f"tenant {tenant.name!r} has no endpoint mix")
        names = sorted(mix)
        weights = np.array([mix[n] for n in names], dtype=float)
        if (weights < 0).any() or weights.sum() <= 0:
            raise ValueError(f"tenant {tenant.name!r} has an invalid endpoint mix")
        probabilities = weights / weights.sum()
        time_s = 0.0
        while True:
            time_s += float(rng.exponential(1.0 / per_tenant_rps))
            if time_s > duration_s:
                break
            chosen = endpoint(names[int(rng.choice(len(names), p=probabilities))])
            deadline = (
                time_s + chosen.default_deadline_s
                if with_deadlines and chosen.default_deadline_s is not None
                else None
            )
            requests.append(
                ServingRequest(
                    request_id=f"req-{next(ids)}",
                    tenant=tenant.name,
                    use_case=chosen.name,
                    arrival_s=time_s,
                    workload=chosen.workload,
                    gops=chosen.gops_per_request,
                    cores=chosen.cores,
                    memory_gib=chosen.memory_gib,
                    deadline_s=deadline,
                )
            )
    requests.sort(key=lambda r: (r.arrival_s, r.request_id))
    return requests
