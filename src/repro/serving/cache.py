"""LRU prediction-score cache for the HEATS hot path.

Serving traffic is highly repetitive: thousands of requests per minute
share a handful of (use case, resource shape) combinations, and the
feasible node set only changes when load shifts.  Re-running the HEATS
scoring pipeline (per-node model prediction, normalisation, ranking) for
every placement is therefore mostly recomputation.  The cache memoises the
ranked :class:`~repro.scheduler.heats.NodeScore` list under a key built
from the task kind, the request's resource shape (work and weight
quantised into buckets), and the candidate node set -- which encodes the
cluster load, since feasibility is what load changes.

Quantising work into geometric buckets trades a bounded scoring error
(within one bucket the ranking of candidate nodes is nearly always
identical, because predicted time is linear and predicted energy affine in
the work amount) for a high hit rate.  Predictions are only used to *rank*
nodes; actual execution time and energy always come from the cluster
model, so a cache hit never corrupts the simulation accounting.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional, Sequence, Tuple

from repro.scheduler.workload import TaskRequest

CacheKey = Tuple[Hashable, ...]


@dataclass
class CacheStats:
    """Hit/miss accounting of one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class PredictionScoreCache:
    """Bounded LRU map from (task kind, shape, load) keys to ranked scores."""

    def __init__(
        self,
        capacity: int = 4096,
        gops_bucket_ratio: float = 1.25,
        weight_buckets: int = 20,
    ) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        if gops_bucket_ratio <= 1.0:
            raise ValueError("gops bucket ratio must exceed 1")
        if weight_buckets <= 0:
            raise ValueError("weight buckets must be positive")
        self.capacity = capacity
        self._log_ratio = math.log(gops_bucket_ratio)
        self.weight_buckets = weight_buckets
        self._entries: "OrderedDict[CacheKey, Tuple[object, ...]]" = OrderedDict()
        self.stats = CacheStats()

    # ------------------------------------------------------------------ #
    # Keys
    # ------------------------------------------------------------------ #
    def gops_bucket(self, gops: float) -> int:
        """Geometric bucket index: requests within ~one ratio share a bucket."""
        # floor, not int(): truncation toward zero would make the buckets
        # around gops=1 double-width and break the one-ratio error bound.
        return math.floor(math.log(max(gops, 1e-9)) / self._log_ratio)

    def key_for(
        self,
        request: TaskRequest,
        candidate_names: Sequence[str],
        energy_weight: float,
    ) -> CacheKey:
        # Tuples pass through uncopied: the cluster's feasibility pass
        # hands over interned hash-caching tuples, and rebuilding them
        # would throw that cached hash away (a plain tuple built from the
        # same names stays an equal key, so hit/miss accounting is
        # unchanged either way).
        names = (
            candidate_names
            if isinstance(candidate_names, tuple)
            else tuple(candidate_names)
        )
        return (
            request.workload,
            request.cores,
            self.gops_bucket(request.gops),
            int(energy_weight * self.weight_buckets),
            names,
        )

    # ------------------------------------------------------------------ #
    # LRU mechanics
    # ------------------------------------------------------------------ #
    def get(self, key: CacheKey) -> Optional[Tuple[object, ...]]:
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(self, key: CacheKey, scores: Sequence[object]) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = tuple(scores)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries
