"""Batcher: coalesce compatible serving requests into schedulable tasks.

Placing every user request as its own cluster task would drown the
scheduler in per-task overhead (scoring, placement bookkeeping, container
start).  The batcher coalesces *compatible* requests -- same tenant, same
use case, same resource shape -- into one :class:`TaskRequest` whose work is
the sum of its members' work.  A batch flushes when it reaches the size
cap, when its oldest member has waited ``max_delay_s``, or when holding it
any longer would endanger a member's deadline (the deadline-aware part).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.hardware.microserver import WorkloadKind
from repro.scheduler.workload import TaskRequest
from repro.serving.gateway import ServingRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.registry import MetricsRegistry

#: batch key: (tenant, use case, workload kind, cores, memory bucket)
BatchKey = Tuple[str, str, WorkloadKind, int, int]


@dataclass(frozen=True)
class BatchPolicy:
    """Tunables of the coalescing policy."""

    max_batch_size: int = 16
    max_delay_s: float = 2.0
    #: requests whose memory demand falls in the same bucket share a batch.
    memory_bucket_gib: float = 0.5
    #: safety margin subtracted from a member's deadline slack before flush.
    deadline_margin_s: float = 0.5

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ValueError("batch size must be positive")
        if self.max_delay_s < 0:
            raise ValueError("max delay must be non-negative")
        if self.memory_bucket_gib <= 0:
            raise ValueError("memory bucket must be positive")
        if self.deadline_margin_s < 0:
            raise ValueError("deadline margin must be non-negative")


@dataclass
class Batch:
    """A group of compatible requests flushed as one cluster task."""

    batch_id: str
    key: BatchKey
    requests: List[ServingRequest]
    opened_s: float
    flushed_s: Optional[float] = None

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def total_gops(self) -> float:
        return sum(request.gops for request in self.requests)

    @property
    def earliest_deadline_s(self) -> Optional[float]:
        deadlines = [r.deadline_s for r in self.requests if r.deadline_s is not None]
        return min(deadlines) if deadlines else None

    def to_task_request(self, flush_s: float, energy_weight: float) -> TaskRequest:
        """The schedulable task this batch becomes when flushed."""
        head = self.requests[0]
        # A member deadline that already passed by flush time cannot be
        # carried on the task (arrival would be at/after it); the batch
        # still runs, and the SLA tracker scores the miss per member.
        # One walk over the members computes the aggregate resource shape
        # (same accumulation order as the per-property passes, so the
        # floats are identical).
        total_gops = 0.0
        cores = 0
        memory_gib = 0.0
        deadline: Optional[float] = None
        for r in self.requests:
            total_gops += r.gops
            if r.cores > cores:
                cores = r.cores
            if r.memory_gib > memory_gib:
                memory_gib = r.memory_gib
            if r.deadline_s is not None and (deadline is None or r.deadline_s < deadline):
                deadline = r.deadline_s
        if deadline is not None and deadline <= flush_s:
            deadline = None
        return TaskRequest(
            task_id=self.batch_id,
            arrival_s=flush_s,
            workload=head.workload,
            gops=total_gops,
            cores=cores,
            memory_gib=memory_gib,
            energy_weight=energy_weight,
            deadline_s=deadline,
            tenant=head.tenant,
        )


class Batcher:
    """Open-batch table keyed by (tenant, use case, resource shape)."""

    def __init__(
        self,
        policy: Optional[BatchPolicy] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.policy = policy if policy is not None else BatchPolicy()
        self._open: Dict[BatchKey, Batch] = {}
        self._ids = itertools.count()
        self._last_now_s = float("-inf")
        # Bound once; each flush records one counter add + one ring write.
        if metrics is not None:
            self._m_flushes = metrics.counter("batcher.flushes")
            self._m_batch_size = metrics.histogram("batcher.batch_size")
        else:
            self._m_flushes = None
            self._m_batch_size = None

    def _key(self, request: ServingRequest) -> BatchKey:
        bucket = int(request.memory_gib / self.policy.memory_bucket_gib)
        return (request.tenant, request.use_case, request.workload, request.cores, bucket)

    def _observe_clock(self, now_s: float) -> None:
        """Enforce the monotone-clock contract of the batching timeline.

        A batch must never flush earlier than any of its members was
        added; rejecting a backwards clock at the door makes that
        invariant structural instead of an accident of the caller's tick
        arithmetic.
        """
        if now_s < self._last_now_s:
            raise ValueError(
                f"batcher observed time going backwards "
                f"({now_s} after {self._last_now_s})"
            )
        self._last_now_s = now_s

    def next_flush_due_s(self) -> Optional[float]:
        """Earliest instant any open batch becomes flushable, or None.

        The staleness rule fires a batch at ``opened + max_delay`` and the
        deadline rule at ``deadline - margin``; the minimum over open
        batches is the next time a time-driven flush can possibly happen,
        which lets an event-driven serving loop skip every quiet tick
        before it.  Size-cap flushes happen inside :meth:`add` and need no
        clock.
        """
        due: Optional[float] = None
        for batch in self._open.values():
            batch_due = batch.opened_s + self.policy.max_delay_s
            deadline = batch.earliest_deadline_s
            if deadline is not None:
                batch_due = min(batch_due, deadline - self.policy.deadline_margin_s)
            if due is None or batch_due < due:
                due = batch_due
        return due

    @property
    def open_batches(self) -> List[Batch]:
        return list(self._open.values())

    # ------------------------------------------------------------------ #
    # Filling and flushing
    # ------------------------------------------------------------------ #
    def add(self, request: ServingRequest, now_s: float) -> List[Batch]:
        """Append a request; returns any batches this add caused to flush."""
        # _observe_clock inlined (one call per admitted request).
        if now_s < self._last_now_s:
            raise ValueError(
                f"batcher observed time going backwards "
                f"({now_s} after {self._last_now_s})"
            )
        self._last_now_s = now_s
        policy = self.policy
        key = (
            request.tenant,
            request.use_case,
            request.workload,
            request.cores,
            int(request.memory_gib / policy.memory_bucket_gib),
        )
        batch = self._open.get(key)
        if batch is None:
            batch = Batch(
                batch_id=f"batch-{next(self._ids)}-{request.tenant}-{request.use_case}",
                key=key,
                requests=[request],
                opened_s=now_s,
            )
            self._open[key] = batch
        else:
            batch.requests.append(request)
        if len(batch.requests) >= policy.max_batch_size:
            return [self._flush(key, now_s)]
        return []

    def flush_ready(self, now_s: float) -> List[Batch]:
        """Flush batches that are stale or whose deadline slack ran out."""
        self._observe_clock(now_s)
        flushed: List[Batch] = []
        for key, batch in list(self._open.items()):
            if now_s - batch.opened_s >= self.policy.max_delay_s:
                flushed.append(self._flush(key, now_s))
                continue
            deadline = batch.earliest_deadline_s
            if deadline is not None and now_s >= deadline - self.policy.deadline_margin_s:
                flushed.append(self._flush(key, now_s))
        return flushed

    def flush_all(self, now_s: float) -> List[Batch]:
        """Drain every open batch (end of stream)."""
        self._observe_clock(now_s)
        return [self._flush(key, now_s) for key in list(self._open)]

    def _flush(self, key: BatchKey, now_s: float) -> Batch:
        batch = self._open.pop(key)
        batch.flushed_s = now_s
        if self._m_flushes is not None:
            self._m_flushes.inc()
            self._m_batch_size.record(float(batch.size))
        return batch
