"""SLA tracking and per-tenant serving telemetry.

The serving layer is judged the way a production front-end is judged:
latency percentiles (p50/p95/p99 of request arrival to batch completion),
throughput, rejection rate at admission, deadline hit rate, and energy per
served request.  The tracker accumulates raw observations during a serving
run and renders them into per-tenant reports at the end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile; 0.0 for an empty sample."""
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=float), q))


def percentiles(values: Sequence[float], qs: Sequence[float]) -> Tuple[float, ...]:
    """Several linear-interpolated percentiles from one vectorised pass.

    Converting and partially sorting the sample once per *set* of
    percentiles (instead of once per percentile) is what keeps the
    report-rendering paths linear in the sample size for large serving
    runs.

    Args:
        values: the sample; an empty sample yields all zeros.
        qs: the percentile ranks to compute, each in [0, 100].

    Returns:
        One value per requested rank, in the same order.
    """
    if not values:
        return tuple(0.0 for _ in qs)
    results = np.percentile(np.asarray(values, dtype=float), qs)
    return tuple(float(value) for value in results)


@dataclass
class TenantSlaReport:
    """Rendered serving telemetry for one tenant."""

    tenant: str
    offered: int
    admitted: int
    rejected: int
    completed: int
    dropped: int
    horizon_s: float
    p50_latency_s: float
    p95_latency_s: float
    p99_latency_s: float
    mean_latency_s: float
    deadline_hits: int
    deadline_misses: int
    energy_j: float
    latency_slo_s: Optional[float] = None

    @property
    def rejection_rate(self) -> float:
        return self.rejected / self.offered if self.offered else 0.0

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.horizon_s if self.horizon_s > 0 else 0.0

    @property
    def energy_per_request_j(self) -> float:
        return self.energy_j / self.completed if self.completed else 0.0

    @property
    def deadline_hit_rate(self) -> float:
        total = self.deadline_hits + self.deadline_misses
        return self.deadline_hits / total if total else 1.0

    @property
    def slo_met(self) -> bool:
        """Whether the tenant's p99 latency SLO (if any) was met.

        Dropped (admitted-but-never-served) traffic violates a latency SLO
        outright: with zero completions the p99 of an empty sample is 0.0
        and would otherwise pass vacuously.
        """
        if self.latency_slo_s is None:
            return True
        if self.dropped:
            return False
        if self.completed == 0:
            return True  # nothing served, but nothing dropped either
        return self.p99_latency_s <= self.latency_slo_s

    def summary(self) -> Dict[str, object]:
        return {
            "tenant": self.tenant,
            "offered": self.offered,
            "completed": self.completed,
            "rejection_rate": round(self.rejection_rate, 4),
            "throughput_rps": round(self.throughput_rps, 3),
            "p50_latency_s": round(self.p50_latency_s, 3),
            "p95_latency_s": round(self.p95_latency_s, 3),
            "p99_latency_s": round(self.p99_latency_s, 3),
            "deadline_hit_rate": round(self.deadline_hit_rate, 4),
            "energy_per_request_j": round(self.energy_per_request_j, 2),
            "slo_met": self.slo_met,
        }


@dataclass
class _TenantAccumulator:
    offered: int = 0
    admitted: int = 0
    rejected: int = 0
    dropped: int = 0
    latencies_s: List[float] = field(default_factory=list)
    deadline_hits: int = 0
    deadline_misses: int = 0
    energy_j: float = 0.0


class SlaTracker:
    """Accumulates serving observations and renders per-tenant reports."""

    def __init__(self) -> None:
        self._tenants: Dict[str, _TenantAccumulator] = {}
        self._slos: Dict[str, Optional[float]] = {}

    def _acc(self, tenant: str) -> _TenantAccumulator:
        if tenant not in self._tenants:
            self._tenants[tenant] = _TenantAccumulator()
        return self._tenants[tenant]

    # ------------------------------------------------------------------ #
    # Observations
    # ------------------------------------------------------------------ #
    def set_latency_slo(self, tenant: str, slo_s: Optional[float]) -> None:
        self._acc(tenant)  # a registered tenant reports even with zero traffic
        self._slos[tenant] = slo_s

    def record_offered(self, tenant: str, admitted: bool) -> None:
        acc = self._acc(tenant)
        acc.offered += 1
        if admitted:
            acc.admitted += 1
        else:
            acc.rejected += 1

    def record_completion(
        self,
        tenant: str,
        latency_s: float,
        energy_j: float,
        deadline_met: Optional[bool] = None,
    ) -> None:
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        acc = self._acc(tenant)
        acc.latencies_s.append(latency_s)
        acc.energy_j += energy_j
        if deadline_met is True:
            acc.deadline_hits += 1
        elif deadline_met is False:
            acc.deadline_misses += 1

    def record_dropped(self, tenant: str, count: int = 1) -> None:
        """Requests admitted but never completed (batch unplaceable)."""
        self._acc(tenant).dropped += count

    # ------------------------------------------------------------------ #
    # Reports
    # ------------------------------------------------------------------ #
    def report(self, tenant: str, horizon_s: float) -> TenantSlaReport:
        acc = self._acc(tenant)
        p50, p95, p99 = percentiles(acc.latencies_s, (50.0, 95.0, 99.0))
        mean = float(np.mean(acc.latencies_s)) if acc.latencies_s else 0.0
        return TenantSlaReport(
            tenant=tenant,
            offered=acc.offered,
            admitted=acc.admitted,
            rejected=acc.rejected,
            completed=len(acc.latencies_s),
            dropped=acc.dropped,
            horizon_s=horizon_s,
            p50_latency_s=p50,
            p95_latency_s=p95,
            p99_latency_s=p99,
            mean_latency_s=mean,
            deadline_hits=acc.deadline_hits,
            deadline_misses=acc.deadline_misses,
            energy_j=acc.energy_j,
            latency_slo_s=self._slos.get(tenant),
        )

    def reports(self, horizon_s: float) -> Dict[str, TenantSlaReport]:
        return {name: self.report(name, horizon_s) for name in sorted(self._tenants)}
