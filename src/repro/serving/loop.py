"""The serving loop: admission -> batching -> placement -> SLA report.

``ServingLoop.run`` replays a time-ordered stream of user requests through
the front-end: each request is admitted (or rejected) by the gateway at
its arrival instant, admitted requests are coalesced by the batcher, and
flushed batches become :class:`TaskRequest` tasks replayed on the existing
discrete-event :class:`~repro.scheduler.simulation.ClusterSimulator` under
whatever placement backend the loop was built with -- a single HEATS
cluster, or a :class:`~repro.federation.federation.Federation`'s union
cluster and federated scheduler (in which case the report additionally
carries the federation's routing telemetry).  Completions are mapped back
to the member requests to produce per-tenant SLA telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.registry import MetricsRegistry

from repro.scheduler.cluster import Cluster
from repro.scheduler.simulation import ClusterSimulator, SchedulerProtocol, SimulationResult
from repro.scheduler.workload import TaskRequest
from repro.serving.batching import Batch, Batcher, BatchPolicy
from repro.serving.cache import CacheStats
from repro.serving.gateway import AdmissionDecision, RequestGateway, ServingRequest, Tenant
from repro.serving.sla import SlaTracker, TenantSlaReport, percentiles
from repro.telemetry.profile import NULL_PHASE, PhaseProfiler
from repro.telemetry.trace import Span, Tracer, TraceSummary, summarize_trace


@dataclass(frozen=True)
class ServingWorkload:
    """A multi-tenant request stream plus the tenants' contracts.

    Both fields accept any iterable -- a generator produced by an arrival
    process streams in as readily as a materialised list -- and are
    normalised to tuples exactly once at construction, so every later
    consumer (including ``Deployment.serve_iter``'s second pass over the
    requests) sees a stable, re-iterable sequence.
    """

    tenants: Tuple[Tenant, ...]
    requests: Tuple[ServingRequest, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "tenants", tuple(self.tenants))
        object.__setattr__(self, "requests", tuple(self.requests))
        if not self.tenants:
            raise ValueError("a serving workload needs at least one tenant")
        names = {tenant.name for tenant in self.tenants}
        if len(names) != len(self.tenants):
            raise ValueError("tenant names must be unique")
        unknown = {r.tenant for r in self.requests} - names
        if unknown:
            raise ValueError(f"requests reference unregistered tenants: {sorted(unknown)}")

    @classmethod
    def synthetic(
        cls,
        tenants: Sequence[Tenant],
        endpoint_mix: Dict[str, Dict[str, float]],
        offered_rps: float = 20.0,
        duration_s: float = 60.0,
        seed: int = 2020,
    ) -> "ServingWorkload":
        """Generate a reproducible Poisson traffic stream for the tenants.

        Args:
            tenants: the tenants offering traffic.
            endpoint_mix: per-tenant endpoint-name -> relative weight.
            offered_rps: aggregate offered request rate.
            duration_s: length of the arrival window.
            seed: RNG seed for the traffic generator.

        Returns:
            A workload pairing the tenants with the generated requests.
        """
        from repro.serving.endpoints import synthesize_traffic

        requests = synthesize_traffic(
            tenants, endpoint_mix, offered_rps=offered_rps, duration_s=duration_s, seed=seed
        )
        return cls(tenants=tuple(tenants), requests=tuple(requests))


@dataclass
class ServingReport:
    """Outcome of one serving run, per tenant and overall."""

    tenant_reports: Dict[str, TenantSlaReport]
    simulation: SimulationResult
    horizon_s: float
    batches: int
    offered: int
    admitted: int
    completed: int
    dropped: int
    latencies_s: List[float] = field(default_factory=list)
    #: per-member completion instants, index-aligned with ``latencies_s``
    #: (what ``Deployment.serve_iter`` buckets into its tick stream).
    completions_s: List[float] = field(default_factory=list)
    #: this run's score-cache delta (a snapshot -- later runs on a warm
    #: session never mutate it); None when the scheduler has no cache.
    cache_stats: Optional[CacheStats] = None
    #: routing telemetry when the backend is a federation (a
    #: :class:`~repro.federation.federation.FederationStats`), else None.
    federation_stats: Optional[object] = None
    #: elastic-scaling telemetry when an autoscaler drove the run (an
    #: :class:`~repro.autoscale.controller.AutoscaleReport`), else None.
    autoscale_report: Optional[object] = None
    #: request-scoped spans drained from the deployment's tracer after the
    #: run; None when tracing was disabled (the pay-nothing default).
    trace_spans: Optional[List[Span]] = None
    #: memoised (p50, p95, p99) over ``latencies_s`` -- the three
    #: percentile properties and ``summary()`` share one vectorised
    #: numpy pass instead of re-sorting the sample per read.
    _latency_percentiles: Optional[Tuple[float, float, float]] = field(
        default=None, init=False, repr=False, compare=False
    )
    #: memoised :func:`summarize_trace` result (the fold is O(spans)).
    _trace_summary: Optional[TraceSummary] = field(
        default=None, init=False, repr=False, compare=False
    )

    def _percentile(self, index: int) -> float:
        if self._latency_percentiles is None:
            p50, p95, p99 = percentiles(self.latencies_s, (50.0, 95.0, 99.0))
            self._latency_percentiles = (p50, p95, p99)
        return self._latency_percentiles[index]

    @property
    def rejected(self) -> int:
        """Requests the gateway turned away at admission."""
        return self.offered - self.admitted

    @property
    def rejection_rate(self) -> float:
        """Fraction of offered requests rejected at admission."""
        return self.rejected / self.offered if self.offered else 0.0

    @property
    def ops_per_sec(self) -> float:
        """Completed requests per second over the serving horizon."""
        return self.completed / self.horizon_s if self.horizon_s > 0 else 0.0

    @property
    def p50_latency_s(self) -> float:
        """Median end-to-end request latency in seconds."""
        return self._percentile(0)

    @property
    def p95_latency_s(self) -> float:
        """95th-percentile end-to-end request latency in seconds."""
        return self._percentile(1)

    @property
    def p99_latency_s(self) -> float:
        """99th-percentile end-to-end request latency in seconds."""
        return self._percentile(2)

    @property
    def energy_per_request_j(self) -> float:
        """Task energy spent per completed request, in joules."""
        if not self.completed:
            return 0.0
        return self.simulation.task_energy_j / self.completed

    def trace_summary(self) -> Optional[TraceSummary]:
        """Fold the run's spans into a per-stage latency breakdown.

        Returns:
            The :class:`~repro.telemetry.trace.TraceSummary` (per-stage
            count/p50/p99, critical-path attribution, terminal verdict
            counts), or ``None`` when the run was not traced.
        """
        if self.trace_spans is None:
            return None
        if self._trace_summary is None:
            self._trace_summary = summarize_trace(self.trace_spans)
        return self._trace_summary

    def summary(self) -> Dict[str, object]:
        """Render the overall and per-tenant outcome as one dict.

        Returns:
            Counts, rates, latency percentiles, energy per request, the
            per-tenant sub-summaries, and -- when the backend was a
            federation -- its routing telemetry.
        """
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "completed": self.completed,
            "dropped": self.dropped,
            "batches": self.batches,
            "rejection_rate": round(self.rejection_rate, 4),
            "ops_per_sec": round(self.ops_per_sec, 3),
            "p50_latency_s": round(self.p50_latency_s, 3),
            "p99_latency_s": round(self.p99_latency_s, 3),
            "energy_per_request_j": round(self.energy_per_request_j, 2),
            "tenants": {name: r.summary() for name, r in self.tenant_reports.items()},
            **(
                {"federation": self.federation_stats.summary()}
                if self.federation_stats is not None
                else {}
            ),
            **(
                {"autoscale": self.autoscale_report.summary()}
                if self.autoscale_report is not None
                else {}
            ),
            **(
                {"trace": self.trace_summary().to_dict()}
                if self.trace_spans is not None
                else {}
            ),
        }


class ServingLoop:
    """Drives admission, batching and cluster placement for one run."""

    def __init__(
        self,
        cluster: Cluster,
        scheduler: SchedulerProtocol,
        gateway: RequestGateway,
        batch_policy: Optional[BatchPolicy] = None,
        tracker: Optional[SlaTracker] = None,
        flush_tick_s: float = 0.5,
        metrics: Optional["MetricsRegistry"] = None,
        tracer: Optional[Tracer] = None,
        profiler: Optional[PhaseProfiler] = None,
    ) -> None:
        if flush_tick_s <= 0:
            raise ValueError("flush tick must be positive")
        self.cluster = cluster
        self.scheduler = scheduler
        self.gateway = gateway
        self.batcher = Batcher(batch_policy, metrics=metrics)
        self.tracker = tracker if tracker is not None else SlaTracker()
        self.flush_tick_s = flush_tick_s
        self.tracer = tracer
        #: single cached boolean so every hot-path instrumentation site is
        #: one branch when tracing is off (pay-for-what-you-use).
        self._trace = tracer is not None and tracer.enabled
        self.profiler = profiler
        #: same cached-boolean discipline for the host-time profiler.
        self._profile = profiler is not None and profiler.enabled
        # Open spans keyed by request id, closed as requests cross seams.
        self._request_roots: Dict[str, Span] = {}
        self._gateway_spans: Dict[str, Span] = {}
        self._batch_wait_spans: Dict[str, Span] = {}
        self._consumed = False

    # ------------------------------------------------------------------ #
    # Front half: admission and batching
    # ------------------------------------------------------------------ #
    def _ingest(self, requests: Sequence[ServingRequest]) -> List[Batch]:
        """Replay arrivals through gateway + batcher; returns flushed batches.

        The gateway's queues drain into the batcher once per tick, not per
        offer, so a burst arriving within one tick genuinely fills the
        bounded tenant queues (queue-full backpressure can fire) and
        stale/deadline-bound batches flush even across arrival gaps.

        The walk is event-driven over the tick grid: ticks where nothing
        can happen (no queued admissions, no batch stale or deadline-due
        yet) are provably no-ops and are skipped wholesale, so the cost
        scales with arrivals + flushes instead of the horizon.  The
        drained tail and every flush are stamped on a monotone clock (the
        batcher enforces it), never behind a member's add time.  The
        clock is always ``index * tick`` (not repeated addition), so
        skipping ahead lands exactly on the grid a naive full scan would
        walk even when the tick is not exactly representable in binary
        floating point.
        """
        ordered = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        flushed: List[Batch] = []
        tick = self.flush_tick_s
        #: tick counter; the clock is always ``index * tick`` so skipping
        #: ahead lands exactly on the grid the legacy scan walked.
        index = 0

        def last_index_at(time_s: float) -> int:
            """Largest tick index whose instant is <= ``time_s``."""
            at = max(index, int(time_s / tick))
            while (at + 1) * tick <= time_s:
                at += 1
            while at > index and at * tick > time_s:
                at -= 1
            return at

        def run_tick() -> None:
            nonlocal index
            index += 1
            now = index * tick
            for admitted in self.gateway.drain():
                flushed.extend(self._admit_to_batcher(admitted, now))
            flushed.extend(self.batcher.flush_ready(now))

        def advance_to(time_s: float) -> None:
            nonlocal index
            while (index + 1) * tick <= time_s:
                if self.gateway.queued_count == 0:
                    due = self.batcher.next_flush_due_s()
                    if due is None or due > time_s:
                        # Every remaining tick up to the target is a no-op;
                        # jump straight to the grid position the legacy
                        # scan would have ended on.
                        index = last_index_at(time_s)
                        return
                    if due > (index + 1) * tick:
                        # Skip to just before the first tick that could
                        # flush; flush_ready stays the authority at the
                        # ticks from there on.
                        index = max(index, last_index_at(due) - 1)
                run_tick()

        for request in ordered:
            # Inline no-op guard: most arrivals land inside the current
            # tick, where advance_to would immediately fall through.
            if (index + 1) * tick <= request.arrival_s:
                advance_to(request.arrival_s)
            decision = self.gateway.offer(request)
            self.tracker.record_offered(request.tenant, decision.admitted)
            if self._trace:
                self._trace_admission(request, decision)
        end = ordered[-1].arrival_s if ordered else 0.0
        advance_to(end)
        # Drain the post-last-arrival admissions on the monotone clock:
        # the batcher stamps them at ``end`` (>= the last processed tick).
        for admitted in self.gateway.drain():
            flushed.extend(self._admit_to_batcher(admitted, end))
        # Keep walking the grid past the last arrival so the tail still
        # flushes through the deadline-/staleness-aware path rather than
        # being stamped wholesale at end + max_delay.
        advance_to(end + self.batcher.policy.max_delay_s + tick)
        flushed.extend(self.batcher.flush_all(max(index * tick, end)))
        return flushed

    # ------------------------------------------------------------------ #
    # Tracing seams (only reached when ``self._trace`` is set)
    # ------------------------------------------------------------------ #
    def _trace_admission(self, request: ServingRequest, decision: AdmissionDecision) -> None:
        """Open the request root span; rejections terminate immediately."""
        root = self.tracer.start_span(
            "request", request.arrival_s, request.request_id, tenant=request.tenant
        )
        if decision.admitted:
            self._request_roots[request.request_id] = root
            self._gateway_spans[request.request_id] = self.tracer.start_span(
                "request.gateway", request.arrival_s, request.request_id, parent=root
            )
        else:
            root.annotate("terminal", True)
            root.end(request.arrival_s, verdict=decision.value)

    def _admit_to_batcher(self, admitted: ServingRequest, now: float) -> List[Batch]:
        """Hand one drained admission to the batcher, crossing the trace seam.

        Args:
            admitted: the request the gateway just drained.
            now: the monotone ingest clock.

        Returns:
            Batches the add caused to flush (the batcher's return value).
        """
        if self._trace:
            gate = self._gateway_spans.pop(admitted.request_id, None)
            if gate is not None:
                gate.end(now)
            self._batch_wait_spans[admitted.request_id] = self.tracer.start_span(
                "request.batch_wait",
                now,
                admitted.request_id,
                parent=self._request_roots.get(admitted.request_id),
            )
        return self.batcher.add(admitted, now)

    def _trace_flushes(self, batches: Sequence[Batch]) -> None:
        """Close every member's batch-wait span at its batch's flush instant."""
        for batch in batches:
            for member in batch.requests:
                span = self._batch_wait_spans.pop(member.request_id, None)
                if span is not None:
                    span.end(batch.flushed_s, batch_id=batch.batch_id)

    def _to_task_requests(self, batches: Sequence[Batch]) -> List[TaskRequest]:
        tasks: List[TaskRequest] = []
        for batch in batches:
            tenant = self.gateway.tenant(batch.requests[0].tenant)
            assert batch.flushed_s is not None
            tasks.append(batch.to_task_request(batch.flushed_s, tenant.energy_weight))
        tasks.sort(key=lambda t: (t.arrival_s, t.task_id))
        return tasks

    # ------------------------------------------------------------------ #
    # Full round trip
    # ------------------------------------------------------------------ #
    def run(self, requests: Sequence[ServingRequest]) -> ServingReport:
        """Replay a request stream through the full serving round trip.

        Args:
            requests: time-ordered user requests to offer to the gateway.

        Returns:
            The :class:`ServingReport` for the run (per-tenant SLA
            telemetry, simulation outcome, cache and federation stats).
        """
        if self._consumed:
            # Gateway buckets, tracker accumulators, and cluster state all
            # carry the previous run; reusing them would corrupt the report.
            raise RuntimeError(
                "a ServingLoop can only run once; build a fresh loop "
                "(and cluster) per serving run"
            )
        self._consumed = True
        # Baseline for the per-run cache delta: on a warm session the live
        # CacheStats keeps accumulating across runs, and attaching the live
        # object would let a later run retroactively mutate this report.
        cache = getattr(self.scheduler, "score_cache", None)
        cache_baseline = (
            CacheStats(**vars(cache.stats)) if cache is not None else None
        )
        for tenant in self.gateway.tenants:
            self.tracker.set_latency_slo(tenant.name, tenant.latency_slo_s)
        with self.profiler.phase("ingest") if self._profile else NULL_PHASE:
            batches = self._ingest(requests)
            if self._trace:
                self._trace_flushes(batches)
            by_task_id: Dict[str, Batch] = {
                batch.batch_id: batch for batch in batches
            }
            tasks = self._to_task_requests(batches)

        simulator = ClusterSimulator(
            self.cluster,
            self.scheduler,
            tracer=self.tracer if self._trace else None,
            profiler=self.profiler if self._profile else None,
        )
        # Placement/advance/reschedule record nested under "simulate", so
        # the top-level phases (ingest/simulate/rollup) partition the run.
        with self.profiler.phase("simulate") if self._profile else NULL_PHASE:
            simulation = simulator.run(tasks)

        arrivals_end = max((r.arrival_s for r in requests), default=0.0)
        horizon = max(arrivals_end, simulation.makespan_s)
        with self.profiler.phase("rollup") if self._profile else NULL_PHASE:
            return self._rollup(
                simulation, by_task_id, batches, horizon, cache, cache_baseline
            )

    def _rollup(
        self, simulation, by_task_id, batches, horizon, cache, cache_baseline
    ) -> ServingReport:
        """Map completions back to members and assemble the report."""
        latencies: List[float] = []
        completions: List[float] = []
        completed_requests = 0
        record_completion = self.tracker.record_completion
        trace = self._trace
        for task in simulation.completed:
            batch = by_task_id[task.task_id]
            finish_s = task.finish_s
            energy_per_member = task.energy_j / batch.size
            for member in batch.requests:
                latency = finish_s - member.arrival_s
                if latency < 0.0:
                    latency = 0.0
                deadline_met = (
                    finish_s <= member.deadline_s
                    if member.deadline_s is not None
                    else None
                )
                record_completion(
                    member.tenant, latency, energy_per_member, deadline_met
                )
                if trace:
                    root = self._request_roots.pop(member.request_id, None)
                    if root is not None:
                        root.annotate("terminal", True)
                        root.end(
                            task.finish_s,
                            verdict="completed",
                            task_id=task.task_id,
                            deadline_met=deadline_met,
                        )
                latencies.append(latency)
                completions.append(finish_s)
                completed_requests += 1
        dropped = 0
        for task_id in simulation.unplaced:
            batch = by_task_id[task_id]
            self.tracker.record_dropped(batch.requests[0].tenant, batch.size)
            dropped += batch.size
            if self._trace:
                for member in batch.requests:
                    root = self._request_roots.pop(member.request_id, None)
                    if root is not None:
                        root.annotate("terminal", True)
                        root.end(
                            max(horizon, root.start_s),
                            verdict="dropped",
                            task_id=task_id,
                        )
        # Totals come from the tracker (which saw every offer, including
        # unknown-tenant rejections the gateway keeps no stats for), so the
        # overall numbers always agree with the per-tenant reports.
        tenant_reports = self.tracker.reports(horizon)
        if cache is not None:
            cache_stats = CacheStats(
                hits=cache.stats.hits - cache_baseline.hits,
                misses=cache.stats.misses - cache_baseline.misses,
                evictions=cache.stats.evictions - cache_baseline.evictions,
            )
        else:
            cache_stats = None
        autoscaler = getattr(self.scheduler, "autoscaler", None)
        return ServingReport(
            tenant_reports=tenant_reports,
            simulation=simulation,
            horizon_s=horizon,
            batches=len(batches),
            offered=sum(r.offered for r in tenant_reports.values()),
            admitted=sum(r.admitted for r in tenant_reports.values()),
            completed=completed_requests,
            dropped=dropped,
            latencies_s=latencies,
            completions_s=completions,
            cache_stats=cache_stats,
            federation_stats=getattr(self.scheduler, "federation_stats", None),
            autoscale_report=(
                autoscaler.report(horizon) if autoscaler is not None else None
            ),
            trace_spans=self.tracer.drain() if self._trace else None,
        )
