"""OpenStack-like infrastructure-as-a-service layer (paper Section II.B).

"The other main block of the LEGaTO middleware is OpenStack, ... managing
cloud computing with the idea of providing infrastructure as a service."
The model provides the subset the rest of the stack interacts with:

* **projects** (tenants) with resource quotas,
* **flavours** describing instance shapes (vCPUs, memory, optional
  accelerator requirement),
* **instance scheduling** onto the managed microservers (filter by
  capability and remaining capacity, then weigh by a packing or an
  energy-efficiency objective),
* instance lifecycle (spawn, delete) with capacity bookkeeping per node.

The IaaS layer only places instances on nodes the management firmware
reports as powered on, tying the two middleware blocks together.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.hardware.microserver import DeviceKind, Microserver, WorkloadKind
from repro.hardware.recsbox import RecsBox
from repro.middleware.firmware import ManagementController, NodePowerState


class QuotaExceededError(RuntimeError):
    """Raised when a project would exceed its quota."""


@dataclass(frozen=True)
class Quota:
    """Per-project resource limits."""

    vcpus: int = 64
    memory_gib: float = 128.0
    instances: int = 20

    def __post_init__(self) -> None:
        if self.vcpus <= 0 or self.memory_gib <= 0 or self.instances <= 0:
            raise ValueError("quota limits must be positive")


@dataclass(frozen=True)
class Flavor:
    """An instance shape."""

    name: str
    vcpus: int
    memory_gib: float
    accelerator: Optional[DeviceKind] = None

    def __post_init__(self) -> None:
        if self.vcpus <= 0 or self.memory_gib <= 0:
            raise ValueError("flavour resources must be positive")

    @staticmethod
    def standard_catalog() -> Dict[str, "Flavor"]:
        return {
            "m1.tiny": Flavor("m1.tiny", vcpus=1, memory_gib=1.0),
            "m1.small": Flavor("m1.small", vcpus=2, memory_gib=4.0),
            "m1.large": Flavor("m1.large", vcpus=8, memory_gib=16.0),
            "g1.gpu": Flavor("g1.gpu", vcpus=4, memory_gib=8.0, accelerator=DeviceKind.GPU_SOC),
            "f1.fpga": Flavor("f1.fpga", vcpus=2, memory_gib=4.0, accelerator=DeviceKind.FPGA),
        }


@dataclass
class Project:
    """A tenant with a quota and usage counters."""

    name: str
    quota: Quota = field(default_factory=Quota)
    used_vcpus: int = 0
    used_memory_gib: float = 0.0
    instance_ids: List[str] = field(default_factory=list)

    def can_allocate(self, flavor: Flavor) -> bool:
        return (
            self.used_vcpus + flavor.vcpus <= self.quota.vcpus
            and self.used_memory_gib + flavor.memory_gib <= self.quota.memory_gib
            and len(self.instance_ids) + 1 <= self.quota.instances
        )

    def charge(self, instance_id: str, flavor: Flavor) -> None:
        if not self.can_allocate(flavor):
            raise QuotaExceededError(
                f"project {self.name!r} quota exceeded for flavour {flavor.name!r}"
            )
        self.used_vcpus += flavor.vcpus
        self.used_memory_gib += flavor.memory_gib
        self.instance_ids.append(instance_id)

    def release(self, instance_id: str, flavor: Flavor) -> None:
        if instance_id not in self.instance_ids:
            raise KeyError(f"project {self.name!r} owns no instance {instance_id!r}")
        self.instance_ids.remove(instance_id)
        self.used_vcpus -= flavor.vcpus
        self.used_memory_gib = round(self.used_memory_gib - flavor.memory_gib, 9)


@dataclass
class Instance:
    """A running instance."""

    instance_id: str
    project: str
    flavor: Flavor
    node_id: str


@dataclass
class _HostState:
    microserver: Microserver
    free_vcpus: int
    free_memory_gib: float
    instances: List[str] = field(default_factory=list)


class IaasManager:
    """Projects, flavours and instance scheduling over one RECS|BOX."""

    def __init__(
        self,
        box: RecsBox,
        firmware: Optional[ManagementController] = None,
        placement_objective: str = "pack",
    ) -> None:
        if placement_objective not in ("pack", "efficiency"):
            raise ValueError("placement objective must be 'pack' or 'efficiency'")
        self.box = box
        self.firmware = firmware if firmware is not None else ManagementController(box)
        self.placement_objective = placement_objective
        self.flavors: Dict[str, Flavor] = Flavor.standard_catalog()
        self._projects: Dict[str, Project] = {}
        self._instances: Dict[str, Instance] = {}
        self._hosts: Dict[str, _HostState] = {
            m.node_id: _HostState(
                microserver=m, free_vcpus=m.spec.cores, free_memory_gib=m.spec.memory_gib
            )
            for m in box.microservers
        }
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------ #
    # Projects and flavours
    # ------------------------------------------------------------------ #
    def create_project(self, name: str, quota: Optional[Quota] = None) -> Project:
        if name in self._projects:
            raise ValueError(f"project {name!r} already exists")
        project = Project(name=name, quota=quota if quota is not None else Quota())
        self._projects[name] = project
        return project

    def project(self, name: str) -> Project:
        if name not in self._projects:
            raise KeyError(f"no project named {name!r}")
        return self._projects[name]

    def register_flavor(self, flavor: Flavor) -> None:
        self.flavors[flavor.name] = flavor

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def _host_matches(self, host: _HostState, flavor: Flavor) -> bool:
        if self.firmware.power_state(host.microserver.node_id) is not NodePowerState.ON:
            return False
        if host.free_vcpus < flavor.vcpus or host.free_memory_gib < flavor.memory_gib:
            return False
        if flavor.accelerator is not None and host.microserver.spec.kind != flavor.accelerator:
            return False
        return True

    def _weigh(self, host: _HostState, flavor: Flavor) -> Tuple[float, str]:
        """Lower-is-better weight (pack tightly, or prefer efficient hosts)."""
        if self.placement_objective == "pack":
            # Prefer the host with the least remaining vCPUs (bin packing).
            weight = host.free_vcpus - flavor.vcpus
        else:
            spec = host.microserver.spec
            weight = -spec.efficiency_gops_per_w(WorkloadKind.DATA_PARALLEL)
        return (weight, host.microserver.node_id)

    def candidate_hosts(self, flavor: Flavor) -> List[str]:
        matches = [host for host in self._hosts.values() if self._host_matches(host, flavor)]
        return [host.microserver.node_id for host in sorted(matches, key=lambda h: self._weigh(h, flavor))]

    def spawn(self, project_name: str, flavor_name: str) -> Instance:
        """Create an instance; raises when quota or capacity forbid it."""
        project = self.project(project_name)
        if flavor_name not in self.flavors:
            raise KeyError(f"unknown flavour {flavor_name!r}")
        flavor = self.flavors[flavor_name]
        if not project.can_allocate(flavor):
            raise QuotaExceededError(
                f"project {project_name!r} quota exceeded for flavour {flavor_name!r}"
            )
        candidates = self.candidate_hosts(flavor)
        if not candidates:
            raise RuntimeError(f"no valid host for flavour {flavor_name!r}")
        node_id = candidates[0]
        host = self._hosts[node_id]
        instance_id = f"inst-{next(self._ids)}"
        project.charge(instance_id, flavor)
        host.free_vcpus -= flavor.vcpus
        host.free_memory_gib = round(host.free_memory_gib - flavor.memory_gib, 9)
        host.instances.append(instance_id)
        instance = Instance(instance_id=instance_id, project=project_name, flavor=flavor, node_id=node_id)
        self._instances[instance_id] = instance
        return instance

    def delete(self, instance_id: str) -> None:
        if instance_id not in self._instances:
            raise KeyError(f"no instance {instance_id!r}")
        instance = self._instances.pop(instance_id)
        host = self._hosts[instance.node_id]
        host.free_vcpus += instance.flavor.vcpus
        host.free_memory_gib += instance.flavor.memory_gib
        host.instances.remove(instance_id)
        self.project(instance.project).release(instance_id, instance.flavor)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def instances(self, project_name: Optional[str] = None) -> List[Instance]:
        if project_name is None:
            return list(self._instances.values())
        return [i for i in self._instances.values() if i.project == project_name]

    def host_utilisation(self) -> Dict[str, float]:
        """Fraction of vCPUs committed per host."""
        usage = {}
        for node_id, host in self._hosts.items():
            total = host.microserver.spec.cores
            usage[node_id] = 1.0 - host.free_vcpus / total
        return usage

    def instance_of(self, instance_id: str) -> Instance:
        if instance_id not in self._instances:
            raise KeyError(f"no instance {instance_id!r}")
        return self._instances[instance_id]
