"""Embedded management firmware for the RECS|BOX (paper Section II.B).

Every carrier carries a management CPU whose firmware controls and monitors
the microservers at a low level: power sequencing (off / standby / on),
sensor readout (temperature, voltage, power), heartbeat supervision with
automatic fault flagging, and out-of-band console (KVM) access over the
management network.  The HEATS monitoring module and the IaaS layer sit on
top of this interface.

The model tracks per-node power state and health, synthesises physically
consistent sensor readings from the node's utilisation and the enclosure's
ambient temperature, and charges management-network traffic for every
telemetry poll so the management plane has a visible (small) cost.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.microserver import Microserver
from repro.hardware.network import ManagementNetwork
from repro.hardware.recsbox import RecsBox

#: thermal model constants: junction temperature rises linearly with power
#: density up to this many kelvin above ambient at full load.
_MAX_TEMP_RISE_K = 55.0
#: temperature above which the firmware flags a node as overheating.
OVERHEAT_THRESHOLD_C = 95.0
#: heartbeats a node may miss before it is declared failed.
MISSED_HEARTBEAT_LIMIT = 3


class NodePowerState(str, enum.Enum):
    """Power-sequencing states the firmware drives."""

    OFF = "off"
    STANDBY = "standby"
    ON = "on"
    FAULT = "fault"


@dataclass(frozen=True)
class SensorReading:
    """One sensor sample for one node."""

    time_s: float
    node_id: str
    temperature_c: float
    power_w: float
    voltage_v: float
    fan_rpm: float


@dataclass
class BoardSensors:
    """Synthesises sensor readings for one microserver."""

    microserver: Microserver
    ambient_c: float = 28.0
    supply_voltage_v: float = 12.0
    noise_seed: int = 0

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.noise_seed)

    def read(self, time_s: float, utilisation: float) -> SensorReading:
        """Produce a reading for the given utilisation level."""
        if not (0.0 <= utilisation <= 1.0):
            raise ValueError("utilisation must be within [0, 1]")
        spec = self.microserver.spec
        power = spec.active_power_w(utilisation)
        # Temperature rise scales with the fraction of peak power dissipated.
        rise = _MAX_TEMP_RISE_K * (power / spec.peak_power_w)
        temperature = self.ambient_c + rise + float(self._rng.normal(0.0, 0.5))
        voltage = self.supply_voltage_v * (1.0 - 0.004 * utilisation) + float(
            self._rng.normal(0.0, 0.01)
        )
        fan = 1500.0 + 6500.0 * (power / spec.peak_power_w)
        return SensorReading(
            time_s=time_s,
            node_id=self.microserver.node_id,
            temperature_c=temperature,
            power_w=power,
            voltage_v=voltage,
            fan_rpm=fan,
        )


@dataclass
class _NodeRecord:
    microserver: Microserver
    sensors: BoardSensors
    state: NodePowerState = NodePowerState.OFF
    missed_heartbeats: int = 0
    last_reading: Optional[SensorReading] = None
    console_attached: bool = False


class ManagementController:
    """The firmware instance managing every node of one RECS|BOX."""

    def __init__(self, box: RecsBox, ambient_c: float = 28.0) -> None:
        self.box = box
        self.ambient_c = ambient_c
        self.management_net: ManagementNetwork = box.fabric.management
        self._nodes: Dict[str, _NodeRecord] = {}
        self._event_log: List[Tuple[float, str, str]] = []
        for index, microserver in enumerate(box.microservers):
            self._nodes[microserver.node_id] = _NodeRecord(
                microserver=microserver,
                sensors=BoardSensors(microserver, ambient_c=ambient_c, noise_seed=index),
            )

    # ------------------------------------------------------------------ #
    # Power sequencing
    # ------------------------------------------------------------------ #
    def _record(self, node_id: str) -> _NodeRecord:
        if node_id not in self._nodes:
            raise KeyError(f"firmware manages no node {node_id!r}")
        return self._nodes[node_id]

    def power_state(self, node_id: str) -> NodePowerState:
        return self._record(node_id).state

    def power_on(self, node_id: str, time_s: float = 0.0) -> None:
        record = self._record(node_id)
        if record.state is NodePowerState.FAULT:
            raise RuntimeError(f"node {node_id} is faulted; clear the fault before power-on")
        record.state = NodePowerState.ON
        record.missed_heartbeats = 0
        self._log(time_s, node_id, "power-on")

    def power_off(self, node_id: str, time_s: float = 0.0) -> None:
        record = self._record(node_id)
        record.state = NodePowerState.OFF
        self._log(time_s, node_id, "power-off")

    def standby(self, node_id: str, time_s: float = 0.0) -> None:
        record = self._record(node_id)
        if record.state is NodePowerState.FAULT:
            raise RuntimeError(f"node {node_id} is faulted")
        record.state = NodePowerState.STANDBY
        self._log(time_s, node_id, "standby")

    def clear_fault(self, node_id: str, time_s: float = 0.0) -> None:
        record = self._record(node_id)
        record.state = NodePowerState.OFF
        record.missed_heartbeats = 0
        self._log(time_s, node_id, "fault-cleared")

    def power_on_all(self, time_s: float = 0.0) -> None:
        for node_id in self._nodes:
            if self._nodes[node_id].state is not NodePowerState.FAULT:
                self.power_on(node_id, time_s)

    def nodes_in_state(self, state: NodePowerState) -> List[str]:
        return [node_id for node_id, record in self._nodes.items() if record.state is state]

    # ------------------------------------------------------------------ #
    # Monitoring
    # ------------------------------------------------------------------ #
    def poll_sensors(
        self, time_s: float, utilisations: Optional[Mapping[str, float]] = None
    ) -> List[SensorReading]:
        """Poll every powered-on node; charges management-network traffic."""
        utilisations = utilisations or {}
        readings: List[SensorReading] = []
        for node_id, record in self._nodes.items():
            if record.state is not NodePowerState.ON:
                continue
            self.management_net.telemetry()
            reading = record.sensors.read(time_s, utilisations.get(node_id, 0.0))
            record.last_reading = reading
            readings.append(reading)
            if reading.temperature_c > OVERHEAT_THRESHOLD_C:
                record.state = NodePowerState.FAULT
                self._log(time_s, node_id, "overheat-shutdown")
        return readings

    def heartbeat(self, time_s: float, responding: Optional[Sequence[str]] = None) -> List[str]:
        """Process one heartbeat round; returns nodes newly declared failed.

        ``responding`` lists the nodes that answered this round; omitted
        means every powered-on node answered.
        """
        responders = set(responding) if responding is not None else {
            node_id for node_id, record in self._nodes.items() if record.state is NodePowerState.ON
        }
        newly_failed: List[str] = []
        for node_id, record in self._nodes.items():
            if record.state is not NodePowerState.ON:
                continue
            if node_id in responders:
                record.missed_heartbeats = 0
                continue
            record.missed_heartbeats += 1
            if record.missed_heartbeats >= MISSED_HEARTBEAT_LIMIT:
                record.state = NodePowerState.FAULT
                newly_failed.append(node_id)
                self._log(time_s, node_id, "heartbeat-failure")
        return newly_failed

    def last_reading(self, node_id: str) -> Optional[SensorReading]:
        return self._record(node_id).last_reading

    # ------------------------------------------------------------------ #
    # Console (KVM) access
    # ------------------------------------------------------------------ #
    def attach_console(self, node_id: str) -> None:
        record = self._record(node_id)
        if record.state is not NodePowerState.ON:
            raise RuntimeError(f"node {node_id} must be powered on for console access")
        record.console_attached = True

    def detach_console(self, node_id: str) -> None:
        self._record(node_id).console_attached = False

    def console_attached(self, node_id: str) -> bool:
        return self._record(node_id).console_attached

    # ------------------------------------------------------------------ #
    # Event log
    # ------------------------------------------------------------------ #
    def _log(self, time_s: float, node_id: str, event: str) -> None:
        self._event_log.append((time_s, node_id, event))

    @property
    def event_log(self) -> List[Tuple[float, str, str]]:
        return list(self._event_log)

    def events_for(self, node_id: str) -> List[str]:
        return [event for _, node, event in self._event_log if node == node_id]
