"""Middleware layer: resource management and composition (paper Section II.B).

The LEGaTO middleware has two blocks:

* an **embedded firmware** running on management CPUs inside the hardware,
  "managing, controlling and monitoring it on a low level" -- power
  sequencing, sensor readout, KVM/console access, heartbeat supervision
  (:mod:`repro.middleware.firmware`);
* **OpenStack**, providing infrastructure-as-a-service on top of the
  managed hardware -- projects with quotas, instance flavours, and
  scheduling of instances onto microservers
  (:mod:`repro.middleware.iaas`).

Together they are the layer that abstracts the RECS|BOX composition away
from the runtimes and the HEATS orchestrator.
"""

from repro.middleware.firmware import (
    BoardSensors,
    ManagementController,
    NodePowerState,
    SensorReading,
)
from repro.middleware.iaas import (
    Flavor,
    IaasManager,
    Instance,
    Project,
    Quota,
    QuotaExceededError,
)

__all__ = [
    "BoardSensors",
    "ManagementController",
    "NodePowerState",
    "SensorReading",
    "Flavor",
    "IaasManager",
    "Instance",
    "Project",
    "Quota",
    "QuotaExceededError",
]
