"""Compiler toolchain: task-based dataflow front end and HLS estimation.

Section II.D/E: LEGaTO builds a toolchain that maps applications written in
a high-level task-based dataflow language (OmpSs pragmas over C/C++ in the
real project) onto the heterogeneous platform, using vendor HLS tools
(Vivado HLS / Quartus) to generate FPGA configurations from the same
high-level code.

The reproduction keeps the same pipeline shape:

* :mod:`repro.compiler.frontend` -- parses a small pragma-annotated kernel
  description language into tasks with declared dependences and target
  clauses,
* :mod:`repro.compiler.ir`       -- the dataflow intermediate representation,
* :mod:`repro.compiler.hls`      -- resource/latency estimation for FPGA
  targets (the stand-in for Vivado HLS),
* :mod:`repro.compiler.lowering` -- lowers IR nodes to runtime tasks for the
  OmpSs-like runtime, selecting targets and attaching HLS results,
* :mod:`repro.compiler.toolchain`-- the end-to-end driver.
"""

from repro.compiler.frontend import ParsedKernel, ParseError, parse_program
from repro.compiler.ir import DataflowGraph, IrNode, IrEdge
from repro.compiler.hls import HlsEstimate, HlsEstimator
from repro.compiler.lowering import LoweredProgram, lower_to_tasks
from repro.compiler.toolchain import CompilationResult, Toolchain

__all__ = [
    "ParsedKernel",
    "ParseError",
    "parse_program",
    "DataflowGraph",
    "IrNode",
    "IrEdge",
    "HlsEstimate",
    "HlsEstimator",
    "LoweredProgram",
    "lower_to_tasks",
    "CompilationResult",
    "Toolchain",
]
