"""Dataflow intermediate representation built from parsed kernels.

The IR is a DAG whose nodes are kernel instances and whose edges carry the
data regions flowing between them, derived from the ``in``/``out``/``inout``
clauses in submission order -- the same dependence rules the runtime uses,
applied at compile time so the toolchain can analyse and transform the
program before execution (target selection, HLS estimation, fusion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.compiler.frontend import ParsedKernel


@dataclass(frozen=True)
class IrNode:
    """One kernel instance in the dataflow graph."""

    kernel: ParsedKernel
    index: int

    @property
    def name(self) -> str:
        return self.kernel.name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"IrNode({self.kernel.name}#{self.index})"


@dataclass(frozen=True)
class IrEdge:
    """A dataflow edge: ``producer`` writes ``region`` read by ``consumer``."""

    producer: IrNode
    consumer: IrNode
    region: str


class DataflowGraph:
    """The compiler's dataflow DAG."""

    def __init__(self, kernels: Sequence[ParsedKernel]) -> None:
        if not kernels:
            raise ValueError("a dataflow graph needs at least one kernel")
        self._graph = nx.DiGraph()
        self._nodes: List[IrNode] = []
        self._edges: List[IrEdge] = []
        last_writer: Dict[str, IrNode] = {}
        for index, kernel in enumerate(kernels):
            node = IrNode(kernel=kernel, index=index)
            self._graph.add_node(node)
            self._nodes.append(node)
            reads = set(kernel.inputs) | set(kernel.inouts)
            writes = set(kernel.outputs) | set(kernel.inouts)
            for region in sorted(reads):
                producer = last_writer.get(region)
                if producer is not None and producer is not node:
                    edge = IrEdge(producer=producer, consumer=node, region=region)
                    self._graph.add_edge(producer, node, region=region)
                    self._edges.append(edge)
            for region in writes:
                last_writer[region] = node
        if not nx.is_directed_acyclic_graph(self._graph):
            raise ValueError("kernel program produces a cyclic dataflow graph")

    # ------------------------------------------------------------------ #
    # Structure queries
    # ------------------------------------------------------------------ #
    @property
    def nodes(self) -> List[IrNode]:
        return list(self._nodes)

    @property
    def edges(self) -> List[IrEdge]:
        return list(self._edges)

    def consumers(self, node: IrNode) -> List[IrNode]:
        return list(self._graph.successors(node))

    def producers(self, node: IrNode) -> List[IrNode]:
        return list(self._graph.predecessors(node))

    def sources(self) -> List[IrNode]:
        return [node for node in self._nodes if self._graph.in_degree(node) == 0]

    def sinks(self) -> List[IrNode]:
        return [node for node in self._nodes if self._graph.out_degree(node) == 0]

    def topological_order(self) -> List[IrNode]:
        order = list(nx.topological_sort(self._graph))
        return sorted(order, key=lambda node: node.index)

    def stage_levels(self) -> Dict[IrNode, int]:
        """Pipeline stage (longest distance from any source) per node."""
        levels: Dict[IrNode, int] = {}
        for node in self.topological_order():
            predecessors = self.producers(node)
            levels[node] = 0 if not predecessors else 1 + max(levels[p] for p in predecessors)
        return levels

    def external_inputs(self) -> Set[str]:
        """Regions read by some kernel but produced by none."""
        produced = {e.region for e in self._edges}
        all_written: Set[str] = set()
        all_read: Set[str] = set()
        for node in self._nodes:
            all_written |= set(node.kernel.outputs) | set(node.kernel.inouts)
            all_read |= set(node.kernel.inputs) | set(node.kernel.inouts)
        return (all_read - all_written) | (all_read - produced - all_written)

    def external_outputs(self) -> Set[str]:
        """Regions written by some kernel and never consumed downstream."""
        consumed_after_write: Set[str] = {e.region for e in self._edges}
        written: Set[str] = set()
        for node in self._nodes:
            written |= set(node.kernel.outputs) | set(node.kernel.inouts)
        return written - consumed_after_write

    def critical_path_gops(self) -> float:
        """Work along the heaviest dependence chain."""
        best: Dict[IrNode, float] = {}
        for node in self.topological_order():
            incoming = [best[p] for p in self.producers(node)]
            best[node] = node.kernel.gops + (max(incoming) if incoming else 0.0)
        return max(best.values()) if best else 0.0

    def total_gops(self) -> float:
        return sum(node.kernel.gops for node in self._nodes)

    def to_networkx(self) -> nx.DiGraph:
        return self._graph.copy()
