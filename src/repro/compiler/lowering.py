"""Lowering: turn the dataflow IR into runtime tasks with chosen targets.

The lowering pass walks the IR in topological order and, for every kernel
instance,

* builds the corresponding :class:`~repro.runtime.task.Task` (carrying the
  kernel's dependences, workload and policy flags),
* decides which device kinds can execute it -- restricted by explicit
  ``device(...)`` clauses, by security (secure kernels need a device with
  enclave support, i.e. a CPU in this model), and by HLS feasibility for
  FPGA targets,
* records the HLS estimate for kernels that may run on the FPGA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.compiler.frontend import ParsedKernel
from repro.compiler.hls import HlsEstimate, HlsEstimator
from repro.compiler.ir import DataflowGraph, IrNode
from repro.hardware.fpga import FpgaFabricRegion
from repro.hardware.microserver import DeviceKind
from repro.runtime.task import Task, make_task

#: device kinds with hardware security support (SGX on x86, TrustZone on ARM).
_ENCLAVE_CAPABLE = frozenset({DeviceKind.CPU_X86, DeviceKind.CPU_ARM})

#: FPGA-class targets that require a synthesised bitstream.
_FPGA_KINDS = frozenset({DeviceKind.FPGA, DeviceKind.FPGA_SOC, DeviceKind.DFE})


@dataclass
class LoweredKernel:
    """One lowered kernel: the runtime task plus target metadata."""

    node: IrNode
    task: Task
    allowed_devices: FrozenSet[DeviceKind]
    hls: Optional[HlsEstimate] = None

    @property
    def fpga_capable(self) -> bool:
        return self.hls is not None and self.hls.fits


@dataclass
class LoweredProgram:
    """The lowering result for a whole program."""

    kernels: List[LoweredKernel] = field(default_factory=list)

    @property
    def tasks(self) -> List[Task]:
        return [kernel.task for kernel in self.kernels]

    def kernel(self, name: str) -> LoweredKernel:
        for lowered in self.kernels:
            if lowered.node.name == name:
                return lowered
        raise KeyError(f"no lowered kernel named {name!r}")

    def fpga_kernels(self) -> List[LoweredKernel]:
        return [kernel for kernel in self.kernels if kernel.fpga_capable]

    def secure_kernels(self) -> List[LoweredKernel]:
        return [kernel for kernel in self.kernels if kernel.task.requirements.secure]


def _allowed_devices(
    kernel: ParsedKernel, hls: Optional[HlsEstimate]
) -> FrozenSet[DeviceKind]:
    """Intersect the clause-level restriction with capability constraints."""
    allowed = set(kernel.devices) if kernel.devices is not None else set(DeviceKind)
    if kernel.secure:
        allowed &= _ENCLAVE_CAPABLE
    if hls is None or not hls.fits:
        allowed -= _FPGA_KINDS
    if not allowed:
        raise ValueError(
            f"kernel {kernel.name!r} has no feasible device: clauses and "
            "capability constraints (secure/FPGA fit) eliminate every target"
        )
    return frozenset(allowed)


def lower_to_tasks(
    graph: DataflowGraph,
    fabric: Optional[FpgaFabricRegion] = None,
) -> LoweredProgram:
    """Lower an IR graph to runtime tasks.

    ``fabric`` is the FPGA target the HLS estimator synthesises for; when it
    is ``None`` no FPGA estimation is attempted and FPGA kinds are removed
    from every kernel's allowed set.
    """
    estimator = HlsEstimator(fabric) if fabric is not None else None
    program = LoweredProgram()
    for node in graph.topological_order():
        kernel = node.kernel
        hls: Optional[HlsEstimate] = None
        wants_fpga = kernel.devices is None or bool(set(kernel.devices) & _FPGA_KINDS)
        if estimator is not None and wants_fpga and not kernel.secure:
            hls = estimator.best_unroll(kernel)
        allowed = _allowed_devices(kernel, hls)
        task = make_task(
            name=f"{kernel.name}#{node.index}",
            workload=kernel.workload,
            gops=kernel.gops,
            memory_gib=kernel.memory_gib,
            inputs=kernel.inputs,
            outputs=kernel.outputs,
            inouts=kernel.inouts,
            region_size_bytes=kernel.region_size_bytes,
            reliability_critical=kernel.critical,
            secure=kernel.secure,
            allowed_devices=allowed,
            min_width=kernel.min_width,
            max_width=kernel.max_width,
        )
        program.kernels.append(
            LoweredKernel(node=node, task=task, allowed_devices=allowed, hls=hls)
        )
    return program
