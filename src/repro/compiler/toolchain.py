"""The end-to-end compiler driver: source text in, runtime tasks out.

The :class:`Toolchain` chains the front end, IR construction, HLS
estimation and lowering, and can hand the result straight to the OmpSs-like
runtime for execution -- the "single programming model" path of Fig. 2 that
takes an annotated application down to the heterogeneous hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.compiler.frontend import ParsedKernel, parse_program
from repro.compiler.ir import DataflowGraph
from repro.compiler.lowering import LoweredProgram, lower_to_tasks
from repro.hardware.fpga import FpgaFabricRegion
from repro.runtime.devices import ExecutionDevice
from repro.runtime.ompss import ExecutionTrace, OmpSsRuntime, SchedulingPolicy
from repro.undervolting.platforms import get_platform


@dataclass
class CompilationResult:
    """Everything the toolchain produced for one program."""

    kernels: List[ParsedKernel]
    graph: DataflowGraph
    lowered: LoweredProgram

    @property
    def num_kernels(self) -> int:
        return len(self.kernels)

    def report(self) -> Dict[str, object]:
        """A compact, printable compilation report."""
        fpga = [k.node.name for k in self.lowered.fpga_kernels()]
        secure = [k.node.name for k in self.lowered.secure_kernels()]
        return {
            "kernels": self.num_kernels,
            "edges": len(self.graph.edges),
            "critical_path_gops": self.graph.critical_path_gops(),
            "total_gops": self.graph.total_gops(),
            "fpga_capable_kernels": fpga,
            "secure_kernels": secure,
        }


class Toolchain:
    """Front end -> IR -> HLS -> lowering -> (optionally) execution."""

    def __init__(
        self,
        fpga_platform: Optional[str] = "KC705-A",
        fabric: Optional[FpgaFabricRegion] = None,
    ) -> None:
        if fabric is not None:
            self.fabric: Optional[FpgaFabricRegion] = fabric
        elif fpga_platform is not None:
            calibration = get_platform(fpga_platform)
            self.fabric = FpgaFabricRegion(
                luts=calibration.luts,
                flip_flops=calibration.flip_flops,
                dsp_slices=calibration.dsp_slices,
                bram_blocks=calibration.bram_blocks,
            )
        else:
            self.fabric = None

    # ------------------------------------------------------------------ #
    # Compilation
    # ------------------------------------------------------------------ #
    def compile(self, source: str) -> CompilationResult:
        """Compile an annotated program down to runtime tasks."""
        kernels = parse_program(source)
        graph = DataflowGraph(kernels)
        lowered = lower_to_tasks(graph, fabric=self.fabric)
        return CompilationResult(kernels=kernels, graph=graph, lowered=lowered)

    # ------------------------------------------------------------------ #
    # Execution helper
    # ------------------------------------------------------------------ #
    def compile_and_run(
        self,
        source: str,
        devices: Optional[Sequence[ExecutionDevice]] = None,
        policy: SchedulingPolicy = SchedulingPolicy.ENERGY,
    ) -> ExecutionTrace:
        """Compile the program and execute it on the OmpSs-like runtime."""
        result = self.compile(source)
        runtime = OmpSsRuntime(devices=devices, policy=policy)
        return runtime.run(result.lowered.tasks)
