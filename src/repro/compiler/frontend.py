"""Front end: parse a pragma-annotated task program.

The input language is a deliberately small, OmpSs-flavoured kernel
description.  A program is a sequence of kernel declarations::

    #pragma legato task in(a, b) out(c) workload(data_parallel) gops(120) \
            device(gpu, fpga) critical secure width(1:4)
    kernel vecadd

Each ``#pragma legato task`` line annotates the ``kernel <name>`` line that
follows it.  Clauses:

``in(...)`` / ``out(...)`` / ``inout(...)``
    comma-separated data region names (dependences).
``workload(<kind>)``
    one of the :class:`~repro.hardware.microserver.WorkloadKind` values.
``gops(<float>)`` and ``memory(<float>)``
    work amount (Gop) and memory footprint (GiB).
``device(<kinds...>)``
    restrict execution to the listed device kinds.
``critical`` / ``secure``
    mark the task reliability-critical / enclave-required.
``width(<min>:<max>)``
    elastic width range for the XiTAO backend.
``size(<bytes>)``
    per-region payload size used for transfer-cost estimation.

Blank lines and ``//`` comments are ignored.  Errors raise
:class:`ParseError` with the offending line number.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.hardware.microserver import DeviceKind, WorkloadKind


class ParseError(ValueError):
    """Raised on malformed programs, carrying the line number."""

    def __init__(self, message: str, line_number: int) -> None:
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


@dataclass(frozen=True)
class ParsedKernel:
    """One kernel declaration with its pragma clauses."""

    name: str
    inputs: Tuple[str, ...] = ()
    outputs: Tuple[str, ...] = ()
    inouts: Tuple[str, ...] = ()
    workload: WorkloadKind = WorkloadKind.SCALAR
    gops: float = 1.0
    memory_gib: float = 0.1
    devices: Optional[FrozenSet[DeviceKind]] = None
    critical: bool = False
    secure: bool = False
    min_width: int = 1
    max_width: int = 1
    region_size_bytes: float = 0.0

    @property
    def all_regions(self) -> Tuple[str, ...]:
        return self.inputs + self.outputs + self.inouts


_CLAUSE_RE = re.compile(r"(\w+)\s*\(([^)]*)\)|(\bcritical\b)|(\bsecure\b)")
_PRAGMA_PREFIX = "#pragma legato task"


def _split_names(payload: str) -> Tuple[str, ...]:
    names = tuple(name.strip() for name in payload.split(",") if name.strip())
    return names


def _parse_clauses(pragma: str, line_number: int) -> Dict[str, object]:
    body = pragma[len(_PRAGMA_PREFIX):].strip()
    clauses: Dict[str, object] = {}
    consumed = 0
    for match in _CLAUSE_RE.finditer(body):
        consumed += 1
        if match.group(3):
            clauses["critical"] = True
            continue
        if match.group(4):
            clauses["secure"] = True
            continue
        keyword = match.group(1)
        payload = match.group(2).strip()
        if keyword in ("in", "out", "inout"):
            clauses[keyword] = _split_names(payload)
        elif keyword == "workload":
            try:
                clauses["workload"] = WorkloadKind(payload.strip())
            except ValueError:
                raise ParseError(f"unknown workload kind {payload!r}", line_number) from None
        elif keyword == "gops":
            clauses["gops"] = _parse_float(payload, "gops", line_number)
        elif keyword == "memory":
            clauses["memory_gib"] = _parse_float(payload, "memory", line_number)
        elif keyword == "size":
            clauses["region_size_bytes"] = _parse_float(payload, "size", line_number)
        elif keyword == "device":
            kinds = []
            for token in _split_names(payload):
                try:
                    kinds.append(DeviceKind(token))
                except ValueError:
                    raise ParseError(f"unknown device kind {token!r}", line_number) from None
            clauses["devices"] = frozenset(kinds)
        elif keyword == "width":
            if ":" not in payload:
                raise ParseError("width clause must be width(min:max)", line_number)
            low, high = payload.split(":", 1)
            clauses["min_width"] = _parse_int(low, "width min", line_number)
            clauses["max_width"] = _parse_int(high, "width max", line_number)
        else:
            raise ParseError(f"unknown clause {keyword!r}", line_number)
    if consumed == 0 and body:
        raise ParseError(f"could not parse pragma clauses: {body!r}", line_number)
    return clauses


def _parse_float(payload: str, what: str, line_number: int) -> float:
    try:
        value = float(payload)
    except ValueError:
        raise ParseError(f"{what} expects a number, got {payload!r}", line_number) from None
    if value <= 0:
        raise ParseError(f"{what} must be positive", line_number)
    return value


def _parse_int(payload: str, what: str, line_number: int) -> int:
    try:
        value = int(payload)
    except ValueError:
        raise ParseError(f"{what} expects an integer, got {payload!r}", line_number) from None
    if value <= 0:
        raise ParseError(f"{what} must be positive", line_number)
    return value


def parse_program(source: str) -> List[ParsedKernel]:
    """Parse a program into kernel declarations, in source order."""
    kernels: List[ParsedKernel] = []
    pending_clauses: Optional[Dict[str, object]] = None
    pending_line = 0
    seen_names = set()

    # Join pragma continuation lines (trailing backslash).
    raw_lines = source.splitlines()
    lines: List[Tuple[int, str]] = []
    buffer = ""
    buffer_start = 0
    for index, raw in enumerate(raw_lines, start=1):
        stripped = raw.strip()
        if buffer:
            buffer = buffer.rstrip("\\").rstrip() + " " + stripped
            if not stripped.endswith("\\"):
                lines.append((buffer_start, buffer.rstrip("\\").rstrip()))
                buffer = ""
            continue
        if stripped.endswith("\\"):
            buffer = stripped
            buffer_start = index
            continue
        lines.append((index, stripped))
    if buffer:
        raise ParseError("unterminated line continuation", buffer_start)

    for line_number, line in lines:
        if not line or line.startswith("//"):
            continue
        if line.startswith(_PRAGMA_PREFIX):
            if pending_clauses is not None:
                raise ParseError("pragma not followed by a kernel declaration", pending_line)
            pending_clauses = _parse_clauses(line, line_number)
            pending_line = line_number
            continue
        if line.startswith("kernel"):
            parts = line.split()
            if len(parts) != 2:
                raise ParseError("kernel declaration must be 'kernel <name>'", line_number)
            name = parts[1]
            if name in seen_names:
                raise ParseError(f"duplicate kernel name {name!r}", line_number)
            seen_names.add(name)
            clauses = pending_clauses or {}
            pending_clauses = None
            kernels.append(
                ParsedKernel(
                    name=name,
                    inputs=tuple(clauses.get("in", ())),
                    outputs=tuple(clauses.get("out", ())),
                    inouts=tuple(clauses.get("inout", ())),
                    workload=clauses.get("workload", WorkloadKind.SCALAR),
                    gops=clauses.get("gops", 1.0),
                    memory_gib=clauses.get("memory_gib", 0.1),
                    devices=clauses.get("devices"),
                    critical=bool(clauses.get("critical", False)),
                    secure=bool(clauses.get("secure", False)),
                    min_width=int(clauses.get("min_width", 1)),
                    max_width=int(clauses.get("max_width", clauses.get("min_width", 1))),
                    region_size_bytes=float(clauses.get("region_size_bytes", 0.0)),
                )
            )
            continue
        raise ParseError(f"unrecognised statement: {line!r}", line_number)

    if pending_clauses is not None:
        raise ParseError("pragma not followed by a kernel declaration", pending_line)
    if not kernels:
        raise ParseError("program declares no kernels", 1)
    return kernels
