"""High-level synthesis estimation: the stand-in for Vivado HLS / Quartus.

OmpSs@FPGA drives the vendor IP-generation tools to turn annotated task
code into a hardware configuration (Section II.C/D).  Running the actual
vendor tools is impossible here; instead :class:`HlsEstimator` produces the
two things the rest of the toolchain consumes from an HLS run:

* a **resource estimate** (LUTs, FFs, DSPs, BRAM blocks) that is checked
  against the target device's fabric budget to decide whether the kernel
  (with the requested unroll factor) fits, and
* a **latency / initiation-interval estimate** that feeds the lowering
  pass's performance model for the FPGA target.

The estimation is a first-order analytical model: resources scale with the
kernel's arithmetic intensity and unroll factor; frequency degrades as the
device fills up (routing congestion).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.compiler.frontend import ParsedKernel
from repro.hardware.fpga import FpgaFabricRegion
from repro.hardware.microserver import WorkloadKind

#: resource cost per Gop of work per unroll lane, by workload kind.
#: (LUTs, FFs, DSPs, BRAM blocks) -- coarse figures representative of 28 nm
#: HLS output for the corresponding kernel classes.
_RESOURCE_PER_GOP: Dict[WorkloadKind, tuple] = {
    WorkloadKind.SCALAR: (400.0, 600.0, 1.0, 0.2),
    WorkloadKind.DATA_PARALLEL: (120.0, 180.0, 2.0, 0.4),
    WorkloadKind.DNN_INFERENCE: (90.0, 140.0, 4.0, 0.8),
    WorkloadKind.STREAMING: (60.0, 100.0, 1.5, 0.6),
    WorkloadKind.CRYPTO: (250.0, 300.0, 0.5, 0.3),
    WorkloadKind.MEMORY_BOUND: (80.0, 120.0, 0.5, 1.5),
}

#: base pipeline depth (cycles) per workload kind.
_PIPELINE_DEPTH: Dict[WorkloadKind, int] = {
    WorkloadKind.SCALAR: 12,
    WorkloadKind.DATA_PARALLEL: 8,
    WorkloadKind.DNN_INFERENCE: 16,
    WorkloadKind.STREAMING: 6,
    WorkloadKind.CRYPTO: 20,
    WorkloadKind.MEMORY_BOUND: 10,
}

#: nominal fabric clock for 28 nm HLS designs before congestion derating.
BASE_CLOCK_MHZ = 250.0


@dataclass(frozen=True)
class HlsEstimate:
    """Result of synthesising one kernel for one device."""

    kernel: str
    unroll: int
    resources: FpgaFabricRegion
    fits: bool
    utilisation: float
    clock_mhz: float
    initiation_interval: int
    latency_cycles: float
    throughput_gops: float

    @property
    def kernel_time_s(self) -> float:
        """Estimated execution time of one kernel invocation."""
        if self.clock_mhz <= 0:
            return math.inf
        return self.latency_cycles / (self.clock_mhz * 1e6)


class HlsEstimator:
    """Analytical HLS resource / timing estimator for one target device."""

    def __init__(self, fabric: FpgaFabricRegion, base_clock_mhz: float = BASE_CLOCK_MHZ) -> None:
        if base_clock_mhz <= 0:
            raise ValueError("base clock must be positive")
        self.fabric = fabric
        self.base_clock_mhz = base_clock_mhz

    # ------------------------------------------------------------------ #
    # Resource model
    # ------------------------------------------------------------------ #
    def estimate_resources(self, kernel: ParsedKernel, unroll: int) -> FpgaFabricRegion:
        if unroll <= 0:
            raise ValueError("unroll factor must be positive")
        luts_per, ffs_per, dsps_per, brams_per = _RESOURCE_PER_GOP[kernel.workload]
        scale = math.sqrt(kernel.gops) * unroll
        return FpgaFabricRegion(
            luts=int(luts_per * scale) + 500,
            flip_flops=int(ffs_per * scale) + 800,
            dsp_slices=int(dsps_per * scale) + 2,
            bram_blocks=int(brams_per * scale) + 2,
        )

    def _clock_after_congestion(self, utilisation: float) -> float:
        """Achievable clock: derates linearly above 60 % utilisation."""
        if utilisation <= 0.6:
            return self.base_clock_mhz
        if utilisation >= 1.0:
            return 0.0
        derate = 1.0 - 0.5 * (utilisation - 0.6) / 0.4
        return self.base_clock_mhz * derate

    # ------------------------------------------------------------------ #
    # Synthesis
    # ------------------------------------------------------------------ #
    def synthesise(self, kernel: ParsedKernel, unroll: int = 1) -> HlsEstimate:
        """Estimate one kernel at a fixed unroll factor."""
        resources = self.estimate_resources(kernel, unroll)
        utilisation = self.fabric.utilisation(resources)
        fits = self.fabric.fits(resources)
        clock_mhz = self._clock_after_congestion(utilisation) if fits else 0.0
        depth = _PIPELINE_DEPTH[kernel.workload]
        # One operation completes per lane per cycle when pipelined (II = 1);
        # congestion-limited designs fall back to II = 2.
        initiation_interval = 1 if utilisation < 0.8 else 2
        ops = kernel.gops * 1e9
        latency_cycles = depth + (ops / max(unroll, 1)) * initiation_interval
        throughput = 0.0
        if clock_mhz > 0:
            throughput = (unroll / initiation_interval) * clock_mhz * 1e6 / 1e9
        return HlsEstimate(
            kernel=kernel.name,
            unroll=unroll,
            resources=resources,
            fits=fits,
            utilisation=utilisation,
            clock_mhz=clock_mhz,
            initiation_interval=initiation_interval,
            latency_cycles=latency_cycles,
            throughput_gops=throughput,
        )

    def best_unroll(self, kernel: ParsedKernel, max_unroll: int = 64) -> HlsEstimate:
        """Largest power-of-two unroll that still fits the device."""
        if max_unroll <= 0:
            raise ValueError("max unroll must be positive")
        best: Optional[HlsEstimate] = None
        unroll = 1
        while unroll <= max_unroll:
            estimate = self.synthesise(kernel, unroll)
            if estimate.fits:
                best = estimate
            else:
                break
            unroll *= 2
        if best is None:
            # Even unroll=1 does not fit; return the failing estimate so the
            # caller can report the resource excess.
            return self.synthesise(kernel, 1)
        return best
