"""Signal extraction: turn raw telemetry into one control-loop input.

The controller never reads cluster internals directly; everything it acts
on is either an O(1) capacity aggregate (per-shard saturation and thermal
headroom, maintained incrementally by the clusters) or a windowed rollup
of hot-path metrics the serving stack emitted into the shared
:class:`~repro.telemetry.registry.MetricsRegistry` (queueing delay,
placement demand, unplaced attempts).  :func:`collect_signals` samples
both into an immutable :class:`FederationSignals` per control tick.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federation.federation import FederatedScheduler
    from repro.telemetry.registry import MetricsRegistry

#: metric names the router emits and the controller subscribes to.
ROUTER_PLACE_CALLS = "router.place_calls"
ROUTER_PLACEMENTS = "router.placements"
ROUTER_UNPLACED = "router.unplaced"
ROUTER_QUEUE_DELAY = "router.queue_delay_s"
ROUTER_DEMAND_PREFIX = "router.demand."


@dataclass(frozen=True)
class ShardSignals:
    """One shard's health at a control tick (from O(1) aggregates)."""

    shard: str
    nodes: int
    utilisation: float
    thermal_headroom: float
    draining: bool


@dataclass(frozen=True)
class FederationSignals:
    """Everything one control decision is based on."""

    time_s: float
    shards: Tuple[ShardSignals, ...]
    total_nodes: int
    #: core utilisation over the *non-draining* shards (a draining shard's
    #: free capacity is unroutable, so it must not dilute the pressure).
    utilisation: float
    #: minimum thermal headroom across the non-draining shards.
    thermal_headroom: float
    #: placement attempts per second since the previous tick (demand proxy:
    #: retries of queued work count as sustained pressure, as they should).
    demand_rate_rps: float
    #: per-tenant share of that demand rate.
    tenant_demand_rps: Dict[str, float]
    #: placement attempts that found no shard since the previous tick.
    unplaced_delta: float
    #: windowed p99 of queueing delay (placement time minus batch arrival).
    queue_delay_p99_s: float
    #: fraction of *this tick's* placements whose queueing delay exceeded
    #: the configured SLO (time-scoped: stale spike-era samples must not
    #: keep blocking scale-down through a quiet tail).
    late_fraction: float


def collect_signals(
    scheduler: "FederatedScheduler",
    metrics: "MetricsRegistry",
    time_s: float,
    last_time_s: float,
    last_counters: Dict[str, float],
    queue_delay_slo_s: float,
) -> FederationSignals:
    """Sample the federation into one immutable control-loop input.

    Args:
        scheduler: the federated scheduler (shard list and capacity views).
        metrics: the shared telemetry bus the hot paths record into.
        time_s: current control-tick time.
        last_time_s: previous control-tick time (for rate deltas).
        last_counters: counter totals at the previous tick; *mutated* in
            place to the current totals so the caller can hand the same
            dict back next tick.
        queue_delay_slo_s: queueing delay counted as an SLA violation.

    Returns:
        The :class:`FederationSignals` snapshot for this tick.
    """
    shard_signals = []
    total_cores = 0
    free_cores = 0
    headrooms = []
    for shard in scheduler.shards:
        capacity = shard.capacity()
        draining = scheduler.is_draining(shard.name)
        shard_signals.append(
            ShardSignals(
                shard=shard.name,
                nodes=len(shard.cluster),
                utilisation=1.0 - capacity.free_core_fraction,
                thermal_headroom=capacity.thermal_headroom,
                draining=draining,
            )
        )
        if draining:
            # A draining shard's free capacity is unroutable: counting it
            # would understate the pressure on the shards actually
            # receiving traffic (and its headroom cannot be relieved by
            # scaling -- it is already on the way out).
            continue
        total_cores += capacity.total_cores
        free_cores += capacity.free_cores
        headrooms.append(capacity.thermal_headroom)

    interval = max(time_s - last_time_s, 1e-9)
    # Counters only: a full snapshot would roll up (sort) every histogram
    # window each control tick for values this function never reads.
    counters = metrics.counter_values()

    def delta(name: str) -> float:
        current = counters.get(name, 0.0)
        previous = last_counters.get(name, 0.0)
        last_counters[name] = current
        return max(0.0, current - previous)

    demand_delta = delta(ROUTER_PLACE_CALLS)
    unplaced_delta = delta(ROUTER_UNPLACED)
    placements_delta = delta(ROUTER_PLACEMENTS)
    tenant_demand = {
        name[len(ROUTER_DEMAND_PREFIX) :]: delta(name) / interval
        for name in counters
        if name.startswith(ROUTER_DEMAND_PREFIX)
    }

    delay = metrics.histogram(ROUTER_QUEUE_DELAY)
    window = delay.window_values()
    # Time-scope the lateness signal to *this tick's* placements (the
    # newest samples of the insertion-ordered window): a sample-count
    # window would otherwise keep spike-era delays alive long into a quiet
    # tail and pin the fleet at peak size.
    recent = window[-int(placements_delta) :] if placements_delta > 0 else []
    late = (
        sum(1 for value in recent if value > queue_delay_slo_s) / len(recent)
        if recent
        else 0.0
    )

    return FederationSignals(
        time_s=time_s,
        shards=tuple(shard_signals),
        total_nodes=sum(s.nodes for s in shard_signals),
        utilisation=1.0 - (free_cores / total_cores if total_cores else 0.0),
        thermal_headroom=min(headrooms) if headrooms else 1.0,
        demand_rate_rps=demand_delta / interval,
        tenant_demand_rps=tenant_demand,
        unplaced_delta=unplaced_delta,
        queue_delay_p99_s=delay.quantile(0.99),
        late_fraction=late,
    )
