"""Per-tenant arrival-rate forecasting for predictive scaling.

Reactive autoscaling always pays one control interval of SLA damage before
capacity catches up with a traffic step.  The controller therefore feeds
each tenant's observed demand rate into a forecaster and scales on the
*predicted* near-term rate: a rising trend triggers growth before the
saturation signal does, and a falling trend lets scale-down start while
stragglers finish.

Two forecasters, matching the two shapes serving traffic takes:

* :class:`EwmaForecaster` -- exponential smoothing of the level only; the
  robust default for noisy, trendless traffic.
* :class:`HoltWintersForecaster` -- Holt's linear (level + trend) method,
  optionally extended with an additive seasonal component (full
  Holt-Winters) for traffic with a known period in control ticks.
"""

from __future__ import annotations

from typing import List, Optional


class EwmaForecaster:
    """Exponentially smoothed level; forecasts are flat at the level."""

    def __init__(self, alpha: float = 0.5) -> None:
        """Create an empty forecaster.

        Args:
            alpha: smoothing factor in (0, 1]; larger tracks faster.
        """
        if not (0.0 < alpha <= 1.0):
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._level: Optional[float] = None

    @property
    def level(self) -> float:
        """The current smoothed level (0.0 before any observation)."""
        return self._level if self._level is not None else 0.0

    def observe(self, value: float) -> None:
        """Fold one observation into the smoothed level.

        Args:
            value: the observed rate (or any non-negative signal).
        """
        if self._level is None:
            self._level = value
        else:
            self._level = self.alpha * value + (1.0 - self.alpha) * self._level

    def forecast(self, steps: int = 1) -> float:
        """Predict the signal ``steps`` observations ahead.

        Args:
            steps: forecasting horizon in observation intervals.

        Returns:
            The flat-level forecast, floored at zero.
        """
        if steps <= 0:
            raise ValueError("forecast horizon must be positive")
        return max(0.0, self.level)


class HoltWintersForecaster:
    """Holt's linear trend method with optional additive seasonality.

    With ``season_period=None`` this is double exponential smoothing
    (level + trend).  With a period ``m`` it is full additive Holt-Winters:
    a ring of ``m`` seasonal offsets is updated alongside level and trend,
    and forecasts add the offset of the target step's position in the
    cycle.
    """

    def __init__(
        self,
        alpha: float = 0.5,
        beta: float = 0.3,
        gamma: float = 0.2,
        season_period: Optional[int] = None,
    ) -> None:
        """Create an empty forecaster.

        Args:
            alpha: level smoothing factor in (0, 1].
            beta: trend smoothing factor in [0, 1].
            gamma: seasonal smoothing factor in [0, 1]; ignored without a
                season period.
            season_period: length of the seasonal cycle in observations;
                None disables the seasonal component.
        """
        if not (0.0 < alpha <= 1.0):
            raise ValueError("alpha must be in (0, 1]")
        if not (0.0 <= beta <= 1.0):
            raise ValueError("beta must be in [0, 1]")
        if not (0.0 <= gamma <= 1.0):
            raise ValueError("gamma must be in [0, 1]")
        if season_period is not None and season_period < 2:
            raise ValueError("a seasonal cycle needs at least two steps")
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self.season_period = season_period
        self._level: Optional[float] = None
        self._trend = 0.0
        self._season: List[float] = (
            [0.0] * season_period if season_period is not None else []
        )
        self._step = 0

    @property
    def level(self) -> float:
        """The current smoothed level (0.0 before any observation)."""
        return self._level if self._level is not None else 0.0

    @property
    def trend(self) -> float:
        """The current smoothed per-step trend."""
        return self._trend

    def observe(self, value: float) -> None:
        """Fold one observation into level, trend, and seasonal state.

        Args:
            value: the observed rate at this control tick.
        """
        position = self._step % self.season_period if self.season_period else 0
        seasonal = self._season[position] if self.season_period else 0.0
        if self._level is None:
            self._level = value - seasonal
        else:
            previous_level = self._level
            self._level = (
                self.alpha * (value - seasonal)
                + (1.0 - self.alpha) * (self._level + self._trend)
            )
            self._trend = (
                self.beta * (self._level - previous_level)
                + (1.0 - self.beta) * self._trend
            )
        if self.season_period:
            self._season[position] = (
                self.gamma * (value - self._level) + (1.0 - self.gamma) * seasonal
            )
        self._step += 1

    def forecast(self, steps: int = 1) -> float:
        """Predict the signal ``steps`` observations ahead.

        Args:
            steps: forecasting horizon in observation intervals.

        Returns:
            ``level + steps * trend`` plus the target step's seasonal
            offset, floored at zero (rates cannot be negative).
        """
        if steps <= 0:
            raise ValueError("forecast horizon must be positive")
        if self._level is None:
            return 0.0
        seasonal = 0.0
        if self.season_period:
            position = (self._step + steps - 1) % self.season_period
            seasonal = self._season[position]
        return max(0.0, self._level + steps * self._trend + seasonal)
