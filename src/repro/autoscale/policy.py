"""Autoscaling policy: knobs, actions, and decision records.

The controller's behaviour is fully described by :class:`AutoscaleConfig`:
when to consider the federation under pressure (utilisation, SLA, thermal
floors), how fast it may react (cooldowns), and how far it may scale
(shard/node bounds).  Every actuation is recorded as a
:class:`ScalingDecision` so a serving run's elastic history is auditable
after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Tuple


class ScalingAction(Enum):
    """One kind of elastic actuation."""

    GROW_NODE = "grow_node"
    SHRINK_NODE = "shrink_node"
    ADD_SHARD = "add_shard"
    BEGIN_DRAIN = "begin_drain"
    CANCEL_DRAIN = "cancel_drain"
    REMOVE_SHARD = "remove_shard"


@dataclass(frozen=True)
class ScalingDecision:
    """One actuation taken by the control loop."""

    time_s: float
    action: ScalingAction
    target: str
    reason: str


@dataclass(frozen=True)
class AutoscaleConfig:
    """Tunables of the elastic control loop.

    Args:
        control_interval_s: cadence of the control loop; also becomes the
            federation's rescheduling interval so control, drain
            migration, and rebalancing share one heartbeat.
        scale_up_utilisation: federation-wide core utilisation at (or
            predicted to reach) which capacity is added.
        scale_down_utilisation: utilisation at or below which capacity may
            be removed.
        sla_violation_rate_high: fraction of recent placements whose
            queueing delay exceeded ``queue_delay_slo_s`` that counts as
            SLA pressure.
        queue_delay_slo_s: queueing delay (placement time minus batch
            arrival) treated as an SLA violation.
        thermal_headroom_floor: minimum aggregate thermal headroom; going
            below it is scale-up pressure even at moderate utilisation.
        scale_up_cooldown_s: minimum time between scale-up actuations.
        scale_down_cooldown_s: minimum time between scale-down actuations
            (longer than scale-up: adding late is cheaper than flapping).
        min_shards / max_shards: bounds on non-draining member shards.
        min_nodes_per_shard / max_nodes_per_shard: bounds on per-shard
            node counts for node-level grow/shrink.
        grow_node_models: microserver catalogue models cycled when growing
            nodes into a shard.
        forecast_alpha / forecast_beta: Holt smoothing factors for the
            per-tenant demand forecasters.
        forecast_horizon_ticks: how many control intervals ahead the
            demand forecast looks.
        forecast_ratio_clamp: bound on the predicted/current demand ratio
            used to project utilisation, so a cold-start forecast cannot
            swing capacity wildly.
    """

    control_interval_s: float = 2.0
    scale_up_utilisation: float = 0.70
    scale_down_utilisation: float = 0.30
    sla_violation_rate_high: float = 0.10
    queue_delay_slo_s: float = 5.0
    thermal_headroom_floor: float = 0.05
    scale_up_cooldown_s: float = 4.0
    scale_down_cooldown_s: float = 20.0
    min_shards: int = 1
    max_shards: int = 4
    min_nodes_per_shard: int = 4
    max_nodes_per_shard: int = 12
    grow_node_models: Tuple[str, ...] = ("xeon-d-x86", "arm64-server")
    forecast_alpha: float = 0.5
    forecast_beta: float = 0.3
    forecast_horizon_ticks: int = 1
    forecast_ratio_clamp: float = 2.0

    def __post_init__(self) -> None:
        if self.control_interval_s <= 0:
            raise ValueError("control interval must be positive")
        if not (0.0 < self.scale_up_utilisation <= 1.0):
            raise ValueError("scale-up utilisation must be in (0, 1]")
        if not (0.0 <= self.scale_down_utilisation < self.scale_up_utilisation):
            raise ValueError(
                "scale-down utilisation must be below the scale-up threshold"
            )
        if not (0.0 <= self.sla_violation_rate_high <= 1.0):
            raise ValueError("SLA violation threshold must be in [0, 1]")
        if self.queue_delay_slo_s <= 0:
            raise ValueError("queue-delay SLO must be positive")
        if not (0.0 <= self.thermal_headroom_floor < 1.0):
            raise ValueError("thermal floor must be in [0, 1)")
        if self.scale_up_cooldown_s < 0 or self.scale_down_cooldown_s < 0:
            raise ValueError("cooldowns must be non-negative")
        if not (1 <= self.min_shards <= self.max_shards):
            raise ValueError("shard bounds must satisfy 1 <= min <= max")
        if not (1 <= self.min_nodes_per_shard <= self.max_nodes_per_shard):
            raise ValueError("node bounds must satisfy 1 <= min <= max")
        if not self.grow_node_models:
            raise ValueError("growing nodes needs at least one catalogue model")
        if self.forecast_horizon_ticks <= 0:
            raise ValueError("forecast horizon must be positive")
        if self.forecast_ratio_clamp < 1.0:
            raise ValueError("forecast ratio clamp must be at least 1")
