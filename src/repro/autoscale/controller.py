"""The elastic control loop closing serving telemetry back into capacity.

An :class:`Autoscaler` attaches to a :class:`~repro.federation.federation.
Federation` and is consulted at the top of every rescheduling pass (the
federation's heartbeat).  Each tick it:

1. finalises in-progress shard drains whose shards emptied out,
2. samples the telemetry bus and capacity aggregates into one
   :class:`~repro.autoscale.signals.FederationSignals`,
3. folds per-tenant demand rates into Holt forecasters and projects
   near-term utilisation,
4. actuates at most one scaling step -- cancel a drain, grow a node in
   the hottest shard, add a shard; or shrink an idle node, begin draining
   the coldest shard -- under per-direction cooldowns,

and accounts node-seconds (the energy-proportional cost the step-load
benchmark compares against static provisioning).  Scale-down is always
drain-first: a shard is only removed after the rescheduler migrated every
running task off it, so elasticity never loses a placed request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.autoscale.forecast import HoltWintersForecaster
from repro.autoscale.policy import AutoscaleConfig, ScalingAction, ScalingDecision
from repro.autoscale.signals import FederationSignals, ShardSignals, collect_signals

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federation.federation import Federation
    from repro.scheduler.placement import Placement
    from repro.telemetry.profile import PhaseProfiler
    from repro.telemetry.trace import Tracer


@dataclass
class AutoscaleReport:
    """Outcome of one autoscaled serving run."""

    decisions: Tuple[ScalingDecision, ...]
    node_seconds: float
    peak_nodes: int
    min_nodes: int
    final_nodes: int
    final_shards: int
    control_ticks: int

    def action_count(self, action: ScalingAction) -> int:
        """How many times one action kind was taken.

        Args:
            action: the action kind to count.

        Returns:
            Number of matching decisions.
        """
        return sum(1 for decision in self.decisions if decision.action is action)

    def summary(self) -> Dict[str, object]:
        """A compact dict rendering of the elastic history.

        Returns:
            Node-second totals, node-count envelope, and per-action counts.
        """
        return {
            "node_seconds": round(self.node_seconds, 1),
            "peak_nodes": self.peak_nodes,
            "min_nodes": self.min_nodes,
            "final_nodes": self.final_nodes,
            "final_shards": self.final_shards,
            "control_ticks": self.control_ticks,
            "actions": {
                action.value: self.action_count(action)
                for action in ScalingAction
                if self.action_count(action)
            },
        }


class Autoscaler:
    """Observability-driven elastic controller for one federation."""

    def __init__(
        self,
        federation: "Federation",
        config: Optional[AutoscaleConfig] = None,
        tracer: Optional["Tracer"] = None,
        profiler: Optional["PhaseProfiler"] = None,
    ) -> None:
        """Attach the controller to a federation.

        Args:
            federation: the federation to scale; it must carry a telemetry
                bus (``metrics``), because every signal the controller
                acts on flows through it.
            config: control-loop tunables; defaults to
                ``AutoscaleConfig()``.
            tracer: optional request-scoped tracer; when enabled every
                actuation is recorded as a zero-length
                ``autoscale.<action>`` event span.
            profiler: optional host-time phase profiler; when enabled
                every control tick records an ``autoscale`` phase (nested
                under the simulator's ``reschedule``).
        """
        if federation.metrics is None:
            raise ValueError(
                "autoscaling needs an instrumented federation; build it "
                "with a MetricsRegistry (Federation.build(metrics=...))"
            )
        self.federation = federation
        self.config = config if config is not None else AutoscaleConfig()
        self.metrics = federation.metrics
        federation.scheduler.autoscaler = self
        self._forecasters: Dict[str, HoltWintersForecaster] = {}
        self._last_counters: Dict[str, float] = {}
        self._last_tick_s = 0.0
        self._last_scale_up_s = -float("inf")
        self._last_scale_down_s = -float("inf")
        self._node_seconds = 0.0
        self._integrated_to_s = 0.0
        self._peak_nodes = federation.total_nodes
        self._min_nodes = federation.total_nodes
        self._ticks = 0
        self._grown_total = 0
        self.decisions: List[ScalingDecision] = []
        self.tracer = tracer
        self._trace = tracer is not None and tracer.enabled
        self.profiler = profiler
        #: same cached-boolean discipline for the host-time profiler.
        self._profile = profiler is not None and profiler.enabled

    def rebase_counters(self) -> None:
        """Adopt the bus's current totals as this controller's zero point.

        A deployment session reuses one telemetry bus across many serving
        runs but attaches a *fresh* controller per run (cooldowns and
        node-second accounting are per-run state).  Without rebasing, the
        fresh controller's first tick would read the whole previous run's
        counter totals as one giant delta and scale up spuriously.
        """
        self._last_counters.update(self.metrics.counter_values())

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    def _integrate_node_seconds(self, time_s: float) -> None:
        """Accumulate node-seconds at the *current* node count up to now."""
        if time_s > self._integrated_to_s:
            nodes = self.federation.total_nodes
            self._node_seconds += nodes * (time_s - self._integrated_to_s)
            self._integrated_to_s = time_s

    def _track_envelope(self) -> None:
        nodes = self.federation.total_nodes
        self._peak_nodes = max(self._peak_nodes, nodes)
        self._min_nodes = min(self._min_nodes, nodes)

    def _record(self, time_s: float, action: ScalingAction, target: str, reason: str) -> None:
        self.decisions.append(
            ScalingDecision(time_s=time_s, action=action, target=target, reason=reason)
        )
        if self._trace:
            self.tracer.event(
                f"autoscale.{action.value}",
                time_s,
                trace_id="autoscale",
                target=target,
                reason=reason,
            )
        self._track_envelope()

    # ------------------------------------------------------------------ #
    # The control loop
    # ------------------------------------------------------------------ #
    def control(self, time_s: float, running: Sequence["Placement"]) -> None:
        """One control tick; invoked by the federation's rescheduler.

        Args:
            time_s: simulation time of the tick.
            running: all running placements (unused directly -- the drain
                state is read from the O(1) capacity aggregates -- but part
                of the hook contract).
        """
        if self._profile:
            with self.profiler.phase("autoscale"):
                self._control(time_s, running)
            return
        self._control(time_s, running)

    def _control(self, time_s: float, running: Sequence["Placement"]) -> None:
        self._integrate_node_seconds(time_s)
        self._finalize_drains(time_s)
        signals = collect_signals(
            self.federation.scheduler,
            self.metrics,
            time_s,
            self._last_tick_s,
            self._last_counters,
            self.config.queue_delay_slo_s,
        )
        forecast_rps = self._update_forecasts(signals)
        self._decide(signals, forecast_rps, time_s)
        self._last_tick_s = time_s
        self._ticks += 1
        self.metrics.gauge("autoscale.nodes").set(float(self.federation.total_nodes))
        self.metrics.gauge("autoscale.shards").set(float(len(self.federation.shards)))
        self.metrics.gauge("autoscale.utilisation").set(signals.utilisation)
        self.metrics.gauge("autoscale.forecast_demand_rps").set(forecast_rps)

    def _finalize_drains(self, time_s: float) -> None:
        for name in list(self.federation.scheduler.draining_shards):
            removed = self.federation.finalize_drain(name)
            if removed is not None:
                self._record(
                    time_s,
                    ScalingAction.REMOVE_SHARD,
                    name,
                    "drain complete: all running tasks migrated off",
                )

    def _update_forecasts(self, signals: FederationSignals) -> float:
        """Fold tenant demand into the forecasters; return predicted total."""
        total = 0.0
        for tenant, rate in signals.tenant_demand_rps.items():
            forecaster = self._forecasters.get(tenant)
            if forecaster is None:
                forecaster = HoltWintersForecaster(
                    alpha=self.config.forecast_alpha, beta=self.config.forecast_beta
                )
                self._forecasters[tenant] = forecaster
            forecaster.observe(rate)
            total += forecaster.forecast(self.config.forecast_horizon_ticks)
        return total

    def _decide(
        self, signals: FederationSignals, forecast_rps: float, time_s: float
    ) -> None:
        config = self.config
        active = [shard for shard in signals.shards if not shard.draining]
        if not active:
            return
        # Project utilisation by the forecast/current demand ratio, clamped
        # so a cold or degenerate forecast cannot swing capacity wildly.
        ratio = 1.0
        if signals.demand_rate_rps > 1e-9:
            ratio = forecast_rps / signals.demand_rate_rps
            ratio = min(max(ratio, 1.0 / config.forecast_ratio_clamp), config.forecast_ratio_clamp)
        predicted_utilisation = min(1.0, signals.utilisation * ratio)
        self.metrics.gauge("autoscale.predicted_utilisation").set(predicted_utilisation)

        saturated = max(signals.utilisation, predicted_utilisation)
        up_pressure = (
            saturated >= config.scale_up_utilisation
            or signals.late_fraction >= config.sla_violation_rate_high
            or signals.unplaced_delta > 0
            or signals.thermal_headroom < config.thermal_headroom_floor
        )
        if up_pressure:
            if time_s - self._last_scale_up_s >= config.scale_up_cooldown_s:
                if self._scale_up(signals, active, time_s):
                    self._last_scale_up_s = time_s
            return

        down_pressure = (
            signals.utilisation <= config.scale_down_utilisation
            and predicted_utilisation <= config.scale_down_utilisation
            and signals.unplaced_delta == 0
        )
        if down_pressure and time_s - self._last_scale_down_s >= config.scale_down_cooldown_s:
            if self._scale_down(active, time_s):
                self._last_scale_down_s = time_s

    # ------------------------------------------------------------------ #
    # Actuation
    # ------------------------------------------------------------------ #
    def _scale_up(
        self,
        signals: FederationSignals,
        active: Sequence[ShardSignals],
        time_s: float,
    ) -> bool:
        federation = self.federation
        config = self.config
        reason = (
            f"util={signals.utilisation:.2f} late={signals.late_fraction:.2f} "
            f"unplaced={signals.unplaced_delta:.0f} "
            f"headroom={signals.thermal_headroom:.2f}"
        )
        # Cheapest capacity first: un-retire a shard already mid-drain.
        draining = federation.scheduler.draining_shards
        if draining:
            name = draining[0]
            federation.cancel_drain(name)
            self._record(time_s, ScalingAction.CANCEL_DRAIN, name, reason)
            return True
        # Grow the hottest shard that still has node headroom (falling
        # through to cooler shards: one node anywhere beats a whole new
        # shard, and beats doing nothing when shard count is capped).
        for shard in sorted(
            active, key=lambda s: (-s.utilisation, s.shard)
        ):
            if shard.nodes >= config.max_nodes_per_shard:
                continue
            model = config.grow_node_models[
                self._grown_total % len(config.grow_node_models)
            ]
            node = federation.grow_node(shard.shard, model)
            self._grown_total += 1
            self._record(time_s, ScalingAction.GROW_NODE, node, reason)
            return True
        # All shards at node capacity: widen the federation.
        if len(active) < config.max_shards:
            shard = federation.add_shard()
            self._record(time_s, ScalingAction.ADD_SHARD, shard.name, reason)
            return True
        return False

    def _scale_down(self, active: Sequence[ShardSignals], time_s: float) -> bool:
        federation = self.federation
        config = self.config
        coldest = min(active, key=lambda shard: (shard.utilisation, shard.nodes, shard.shard))
        reason = f"util={coldest.utilisation:.2f} on coldest shard"
        # Gradual descent: give back single idle nodes (coolest, most
        # grown shard first) before retiring whole shards.
        shrinkable = [
            shard for shard in active if shard.nodes > config.min_nodes_per_shard
        ]
        for target in sorted(
            shrinkable, key=lambda shard: (shard.utilisation, -shard.nodes, shard.shard)
        ):
            removed = federation.shrink_node(target.shard)
            if removed is not None:
                self._record(
                    time_s,
                    ScalingAction.SHRINK_NODE,
                    removed,
                    f"util={target.utilisation:.2f} on shard with node headroom",
                )
                return True
        if len(active) > config.min_shards:
            federation.begin_drain(coldest.shard)
            self._record(time_s, ScalingAction.BEGIN_DRAIN, coldest.shard, reason)
            return True
        return False

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def report(self, horizon_s: Optional[float] = None) -> AutoscaleReport:
        """Close the node-second integral and render the elastic history.

        Args:
            horizon_s: serving horizon to account node-seconds up to;
                None stops the integral at the last control tick.

        Returns:
            The :class:`AutoscaleReport`.
        """
        if horizon_s is not None:
            self._integrate_node_seconds(horizon_s)
        self._track_envelope()
        return AutoscaleReport(
            decisions=tuple(self.decisions),
            node_seconds=self._node_seconds,
            peak_nodes=self._peak_nodes,
            min_nodes=self._min_nodes,
            final_nodes=self.federation.total_nodes,
            final_shards=len(self.federation.shards),
            control_ticks=self._ticks,
        )
