"""Elastic shard/node autoscaling over the federated serving stack.

PR 2's federation scaled statically: shard and node counts were fixed at
``federate()`` time, so a traffic spike saturated shards while a lull
burned idle node energy.  This package closes the loop the telemetry bus
opens: a control loop subscribes to per-shard saturation, thermal
headroom, queueing delay, and SLA-violation signals, forecasts near-term
per-tenant demand, and actuates elastic capacity.

* :mod:`repro.autoscale.forecast`   -- EWMA and Holt-Winters demand
  forecasters (level/trend/optional seasonality).
* :mod:`repro.autoscale.policy`     -- :class:`AutoscaleConfig` knobs,
  :class:`ScalingAction` / :class:`ScalingDecision` audit records.
* :mod:`repro.autoscale.signals`    -- per-tick signal extraction from the
  telemetry bus and O(1) capacity aggregates.
* :mod:`repro.autoscale.controller` -- the :class:`Autoscaler` control
  loop and its :class:`AutoscaleReport`.

``LegatoSystem.serve(workload, autoscale=True)`` and
``LegatoSystem.autoscaler()`` are the facade entry points.
"""

from repro.autoscale.forecast import EwmaForecaster, HoltWintersForecaster
from repro.autoscale.policy import AutoscaleConfig, ScalingAction, ScalingDecision
from repro.autoscale.signals import FederationSignals, ShardSignals, collect_signals
from repro.autoscale.controller import Autoscaler, AutoscaleReport

__all__ = [
    "Autoscaler",
    "AutoscaleConfig",
    "AutoscaleReport",
    "EwmaForecaster",
    "FederationSignals",
    "HoltWintersForecaster",
    "ScalingAction",
    "ScalingDecision",
    "ShardSignals",
    "collect_signals",
]
