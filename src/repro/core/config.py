"""Configuration of one LEGaTO deployment.

The configuration captures the two axes a LEGaTO user controls: the hardware
population (which microservers the RECS|BOX hosts) and which stack
optimisations are active.  Turning all optimisation flags off yields the
*baseline* system the goal metrics compare against (CPU-only,
performance-oriented scheduling, no undervolting, no selective replication,
no task checkpointing, no enclaves).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.autoscale.policy import AutoscaleConfig
from repro.hardware.recsbox import RecsBoxConfig
from repro.runtime.fault_tolerance import ReplicationPolicy
from repro.runtime.ompss import SchedulingPolicy


@dataclass(frozen=True)
class OptimisationFlags:
    """Which LEGaTO technologies are enabled."""

    energy_aware_scheduling: bool = True
    heterogeneous_offload: bool = True
    fpga_undervolting: bool = True
    selective_replication: bool = True
    task_checkpointing: bool = True
    enclave_security: bool = True

    @staticmethod
    def all_enabled() -> "OptimisationFlags":
        return OptimisationFlags()

    @staticmethod
    def baseline() -> "OptimisationFlags":
        """The un-optimised reference system."""
        return OptimisationFlags(
            energy_aware_scheduling=False,
            heterogeneous_offload=False,
            fpga_undervolting=False,
            selective_replication=False,
            task_checkpointing=False,
            enclave_security=False,
        )

    def enabled_count(self) -> int:
        return sum(
            1
            for flag in (
                self.energy_aware_scheduling,
                self.heterogeneous_offload,
                self.fpga_undervolting,
                self.selective_replication,
                self.task_checkpointing,
                self.enclave_security,
            )
            if flag
        )


@dataclass(frozen=True)
class LegatoConfig:
    """Full deployment configuration."""

    name: str = "legato"
    hardware: RecsBoxConfig = field(default_factory=RecsBoxConfig.balanced_demo)
    optimisations: OptimisationFlags = field(default_factory=OptimisationFlags.all_enabled)
    scheduling_policy: SchedulingPolicy = SchedulingPolicy.ENERGY
    replication_policy: ReplicationPolicy = ReplicationPolicy.SELECTIVE
    undervolt_platform: str = "VC707"
    undervolt_max_accuracy_drop: float = 0.01
    #: elastic-scaling knobs used when serving with ``autoscale=True``; the
    #: deployment-wide default ``serve(autoscale_config=...)`` overrides.
    autoscale: AutoscaleConfig = field(default_factory=AutoscaleConfig)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("configuration needs a name")
        if not (0.0 <= self.undervolt_max_accuracy_drop <= 1.0):
            raise ValueError("accuracy-drop budget must be a fraction in [0, 1]")

    # ------------------------------------------------------------------ #
    # Derived behaviour
    # ------------------------------------------------------------------ #
    @property
    def effective_scheduling_policy(self) -> SchedulingPolicy:
        """Baseline systems schedule for performance only."""
        if self.optimisations.energy_aware_scheduling:
            return self.scheduling_policy
        return SchedulingPolicy.PERFORMANCE

    @property
    def effective_replication_policy(self) -> ReplicationPolicy:
        """Baseline systems run without replication."""
        if self.optimisations.selective_replication:
            return self.replication_policy
        return ReplicationPolicy.NONE

    def device_models(self) -> Tuple[str, ...]:
        """The microserver models the runtime may schedule onto.

        Returns:
            Catalogue model names, restricted to CPU models when
            heterogeneous offload is disabled.
        """
        models = []
        for kind_models in self.hardware.carriers.values():
            models.extend(kind_models)
        if not self.optimisations.heterogeneous_offload:
            cpu_only = tuple(m for m in models if m.startswith(("xeon", "arm64", "apalis")))
            return cpu_only if cpu_only else ("xeon-d-x86",)
        return tuple(models)

    # ------------------------------------------------------------------ #
    # Variants
    # ------------------------------------------------------------------ #
    def as_baseline(self) -> "LegatoConfig":
        """The same deployment with every optimisation disabled.

        Returns:
            A ``-baseline``-suffixed copy with all flags off.
        """
        return replace(self, name=f"{self.name}-baseline", optimisations=OptimisationFlags.baseline())

    def with_optimisations(self, **flags: bool) -> "LegatoConfig":
        """A copy with individual optimisation flags overridden.

        Args:
            **flags: ``OptimisationFlags`` field names mapped to new values.

        Returns:
            The updated configuration copy.
        """
        return replace(self, optimisations=replace(self.optimisations, **flags))

    @staticmethod
    def default() -> "LegatoConfig":
        """The fully optimised demo deployment.

        Returns:
            A configuration with every optimisation enabled on the
            balanced demo hardware population.
        """
        return LegatoConfig()
