"""The integrated LEGaTO ecosystem facade.

:class:`LegatoSystem` is the composition root a user of the toolset works
with: it builds the simulated RECS|BOX population described by the
configuration, exposes the compiler toolchain, runs task graphs on the
OmpSs-like runtime (with the configured energy policy), layers the
fault-tolerance and security executors on top, couples the FPGA
undervolting operating-point selection with the accelerator energy model,
and evaluates the project-goal metrics against an un-optimised baseline
deployment of the same hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.autoscale.controller import Autoscaler
    from repro.autoscale.policy import AutoscaleConfig
    from repro.federation.federation import Federation
    from repro.federation.policy import FederationConfig
    from repro.telemetry.registry import MetricsRegistry

from repro.compiler.toolchain import CompilationResult, Toolchain
from repro.core.config import LegatoConfig
from repro.core.goals import GoalAssessment, GoalReport, make_assessment
from repro.checkpoint.fti import CheckpointStrategy
from repro.checkpoint.heat2d import run_fig6_point
from repro.checkpoint.mtbf import CheckpointEfficiencyModel, sustainable_mtbf_ratio
from repro.hardware.microserver import DeviceKind
from repro.hardware.recsbox import RecsBox
from repro.runtime.devices import ExecutionDevice, build_devices
from repro.runtime.fault_tolerance import (
    FaultInjector,
    ReplicationPolicy,
    ResilienceReport,
    ResilientExecutor,
)
from repro.runtime.graph import TaskGraph
from repro.runtime.ompss import ExecutionTrace, OmpSsRuntime, SchedulingPolicy
from repro.runtime.task import Task
from repro.scheduler.cluster import Cluster
from repro.scheduler.heats import HeatsConfig, HeatsScheduler
from repro.security.secure_task import SecureExecutionReport, SecureTaskExecutor
from repro.serving.batching import BatchPolicy
from repro.serving.cache import PredictionScoreCache
from repro.serving.gateway import RequestGateway
from repro.serving.loop import ServingLoop, ServingReport, ServingWorkload
from repro.undervolting.mlresilience import UndervoltedInferenceStudy, VoltageAccuracyPoint
from repro.usecases.iot_gateway import SecureIotGateway
from repro.usecases.ml_inference import InferenceService

#: fraction of an FPGA microserver's board power on the undervolted BRAM rail.
_FPGA_BRAM_POWER_SHARE = 0.30

#: residual sensitive-data exposure even with enclaves (side channels,
#: metadata): the security proxy never claims more than a 1/residual gain.
_RESIDUAL_EXPOSURE_FRACTION = 0.08

#: hand-written lines of code per kernel per device target, used by the
#: productivity proxy (a conservative figure for CUDA/OpenCL/HLS ports).
_MANUAL_LOC_PER_KERNEL_TARGET = 60
#: pragma + signature lines per kernel in the LEGaTO programming model.
_PRAGMA_LOC_PER_KERNEL = 3


class LegatoSystem:
    """One deployed LEGaTO stack over a simulated RECS|BOX."""

    def __init__(self, config: Optional[LegatoConfig] = None) -> None:
        self.config = config if config is not None else LegatoConfig.default()
        self.recsbox = RecsBox.from_config(self.config.hardware)
        self.toolchain = Toolchain(
            fpga_platform=self.config.undervolt_platform
            if self.config.optimisations.heterogeneous_offload
            else None
        )
        self._undervolt_point: Optional[VoltageAccuracyPoint] = None

    # ------------------------------------------------------------------ #
    # Building blocks
    # ------------------------------------------------------------------ #
    def devices(self) -> List[ExecutionDevice]:
        """Fresh execution devices matching the configured population.

        Returns:
            One :class:`ExecutionDevice` per configured microserver model.
        """
        return build_devices(list(self.config.device_models()))

    def runtime(self) -> OmpSsRuntime:
        """A fresh OmpSs-like runtime over the configured devices.

        Returns:
            The runtime, using the configuration's effective scheduling
            policy.
        """
        return OmpSsRuntime(
            devices=self.devices(), policy=self.config.effective_scheduling_policy
        )

    # ------------------------------------------------------------------ #
    # Compilation and execution
    # ------------------------------------------------------------------ #
    def compile(self, source: str) -> CompilationResult:
        """Compile an annotated source program with the LEGaTO toolchain.

        Args:
            source: pragma-annotated task program text.

        Returns:
            The compilation result (lowered task graph plus diagnostics).
        """
        return self.toolchain.compile(source)

    def run_tasks(self, tasks: Sequence[Task]) -> ExecutionTrace:
        """Run a task list on the configured runtime and apply undervolting.

        When FPGA undervolting is enabled the energy of FPGA-executed tasks
        is reduced by the selected operating point's saving applied to the
        BRAM share of the board power.

        Args:
            tasks: the tasks to execute.

        Returns:
            The execution trace with undervolting-adjusted energies.
        """
        trace = self.runtime().run(list(tasks))
        if self.config.optimisations.fpga_undervolting:
            saving = self.undervolting_operating_point().power_saving_fraction
            factor = 1.0 - saving * _FPGA_BRAM_POWER_SHARE
            adjusted = []
            for execution in trace.executions:
                if DeviceKind(execution.device_kind).is_fpga:
                    adjusted.append(
                        type(execution)(
                            task=execution.task,
                            device_name=execution.device_name,
                            device_kind=execution.device_kind,
                            start_s=execution.start_s,
                            finish_s=execution.finish_s,
                            energy_j=execution.energy_j * factor,
                        )
                    )
                else:
                    adjusted.append(execution)
            trace.executions[:] = adjusted
        return trace

    def run_program(self, source: str) -> ExecutionTrace:
        """Compile an annotated program and run it.

        Args:
            source: pragma-annotated task program text.

        Returns:
            The execution trace of the compiled tasks.
        """
        result = self.compile(source)
        return self.run_tasks(result.lowered.tasks)

    def run_resilient(self, graph: TaskGraph, fault_probability: float = 0.05) -> ResilienceReport:
        """Execute a task graph under fault injection with replication.

        Args:
            graph: the task graph to run.
            fault_probability: per-task fault injection probability.

        Returns:
            The resilience report (failures, recoveries, overhead).
        """
        executor = ResilientExecutor(
            devices=self.devices(),
            policy=self.config.effective_replication_policy,
            injector=FaultInjector(fault_probability=fault_probability),
        )
        return executor.execute(graph)

    def run_secure(self, graph: TaskGraph) -> SecureExecutionReport:
        """Execute a task graph with enclave protection for secure tasks.

        Args:
            graph: the task graph to run.

        Returns:
            The secure-execution report (attestation, exposure accounting).
        """
        if not self.config.optimisations.enclave_security:
            raise RuntimeError(
                "enclave security is disabled in this configuration; "
                "enable it or use run_tasks for unprotected execution"
            )
        executor = SecureTaskExecutor(devices=self.devices())
        return executor.execute(graph)

    # ------------------------------------------------------------------ #
    # Request serving (cluster-as-a-service front-end)
    # ------------------------------------------------------------------ #
    def serve(
        self,
        workload: ServingWorkload,
        cluster_scale: int = 1,
        use_score_cache: bool = True,
        batch_policy: Optional[BatchPolicy] = None,
        heats_config: Optional[HeatsConfig] = None,
        seed: int = 7,
        num_shards: int = 1,
        autoscale: bool = False,
        autoscale_config: Optional["AutoscaleConfig"] = None,
    ) -> ServingReport:
        """Serve a multi-tenant request stream on a HEATS-scheduled backend.

        The round trip is admission (per-tenant rate limits and bounded
        queues) -> batching (coalescing compatible requests) -> HEATS
        placement (with the prediction-score cache on the scoring hot path
        unless disabled) -> per-tenant SLA report.  With ``num_shards > 1``
        the backend is a federation of shards at the same total node
        count, built via :meth:`federate`.  With ``autoscale=True`` the
        backend is an elastically scaled federation: ``num_shards`` /
        ``cluster_scale`` describe the *initial* topology, an
        :class:`~repro.autoscale.controller.Autoscaler` grows and shrinks
        it with the traffic, and the report carries the elastic history in
        ``autoscale_report``.

        Args:
            workload: tenants plus their request stream.
            cluster_scale: total ``heats_testbed`` scale (4 * scale nodes);
                must be divisible by ``num_shards``.
            use_score_cache: attach prediction-score cache(s).
            batch_policy: optional batching override.
            heats_config: node-level scheduler tunables.
            seed: profiling seed (shards derive independent seeds).
            num_shards: number of federation shards; 1 = single cluster
                (an autoscaled run treats 1 as a one-shard federation).
            autoscale: attach the elastic control loop.
            autoscale_config: control-loop tunables; defaults to the
                deployment configuration's ``autoscale`` section.

        Returns:
            The :class:`ServingReport` for the run.
        """
        if cluster_scale <= 0:
            raise ValueError("cluster scale must be positive")
        if num_shards <= 0:
            raise ValueError("shard count must be positive")
        if cluster_scale % num_shards:
            raise ValueError(
                "cluster scale must be divisible by the shard count so "
                "shards are equally sized"
            )
        if autoscale:
            scaler = self.autoscaler(
                num_shards=num_shards,
                shard_scale=cluster_scale // num_shards,
                autoscale_config=autoscale_config,
                use_score_cache=use_score_cache,
                heats_config=heats_config,
                seed=seed,
            )
            return scaler.federation.serve(workload, batch_policy=batch_policy)
        if num_shards > 1:
            federation = self.federate(
                num_shards=num_shards,
                shard_scale=cluster_scale // num_shards,
                use_score_cache=use_score_cache,
                heats_config=heats_config,
                seed=seed,
            )
            return federation.serve(workload, batch_policy=batch_policy)
        cluster = Cluster.heats_testbed(scale=cluster_scale)
        scheduler = HeatsScheduler.with_learned_models(
            cluster,
            config=heats_config,
            seed=seed,
            score_cache=PredictionScoreCache() if use_score_cache else None,
        )
        gateway = RequestGateway(workload.tenants)
        loop = ServingLoop(cluster, scheduler, gateway, batch_policy=batch_policy)
        return loop.run(workload.requests)

    def federate(
        self,
        num_shards: int = 2,
        shard_scale: int = 1,
        use_score_cache: bool = True,
        heats_config: Optional[HeatsConfig] = None,
        federation_config: Optional["FederationConfig"] = None,
        seed: int = 7,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> "Federation":
        """Build a federation of HEATS shards behind one scheduler.

        Each shard is an independent HEATS deployment (own cluster, own
        profiling seed, own scheduler-config copy, own score cache) in a
        distinct energy region; requests are routed shard-first from O(1)
        capacity aggregates, then placed by the shard's HEATS scheduler.

        Args:
            num_shards: number of member shards.
            shard_scale: ``heats_testbed`` scale per shard.
            use_score_cache: attach per-shard prediction-score caches.
            heats_config: node-level scheduler tunables, copied per shard.
            federation_config: shard-selection and migration tunables.
            seed: federation base seed; shard ``i`` profiles with
                ``seed + 101 * i``.
            metrics: optional telemetry bus wired through the routing,
                admission, and batching hot paths.

        Returns:
            A :class:`~repro.federation.federation.Federation` ready to
            serve one workload.
        """
        from repro.federation.federation import Federation

        return Federation.build(
            num_shards=num_shards,
            shard_scale=shard_scale,
            heats_config=heats_config,
            federation_config=federation_config,
            use_score_cache=use_score_cache,
            seed=seed,
            metrics=metrics,
        )

    def autoscaler(
        self,
        num_shards: int = 1,
        shard_scale: int = 1,
        autoscale_config: Optional["AutoscaleConfig"] = None,
        use_score_cache: bool = True,
        heats_config: Optional[HeatsConfig] = None,
        federation_config: Optional["FederationConfig"] = None,
        seed: int = 7,
    ) -> "Autoscaler":
        """Build an elastically scaled federation and its control loop.

        The federation is built around a fresh telemetry bus (the gateway,
        batcher, HEATS, and routing hot paths all record into it), its
        rescheduling heartbeat is aligned with the control interval, and
        the returned controller is already attached -- serving through
        ``autoscaler.federation.serve(workload)`` runs elastically.

        Args:
            num_shards: initial shard count.
            shard_scale: initial ``heats_testbed`` scale per shard.
            autoscale_config: control-loop tunables; defaults to the
                deployment configuration's ``autoscale`` section.
            use_score_cache: attach per-shard prediction-score caches.
            heats_config: node-level scheduler tunables, copied per shard.
            federation_config: shard-selection and migration tunables; its
                rescheduling interval is overridden by the control
                interval so control and migration share one heartbeat.
            seed: federation base seed.

        Returns:
            The attached :class:`~repro.autoscale.controller.Autoscaler`.
        """
        from dataclasses import replace

        from repro.autoscale.controller import Autoscaler
        from repro.federation.policy import FederationConfig
        from repro.telemetry.registry import MetricsRegistry

        config = autoscale_config if autoscale_config is not None else self.config.autoscale
        base = federation_config if federation_config is not None else FederationConfig()
        federation = self.federate(
            num_shards=num_shards,
            shard_scale=shard_scale,
            use_score_cache=use_score_cache,
            heats_config=heats_config,
            federation_config=replace(
                base, rescheduling_interval_s=config.control_interval_s
            ),
            seed=seed,
            metrics=MetricsRegistry(),
        )
        return Autoscaler(federation, config=config)

    # ------------------------------------------------------------------ #
    # Undervolting coupling
    # ------------------------------------------------------------------ #
    def undervolting_operating_point(self) -> VoltageAccuracyPoint:
        """The lowest safe-accuracy VCCBRAM operating point (cached).

        Returns:
            The operating point whose accuracy drop stays within the
            configured budget.
        """
        if self._undervolt_point is None:
            study = UndervoltedInferenceStudy(platform=self.config.undervolt_platform)
            self._undervolt_point = study.recommended_operating_point(
                max_accuracy_drop=self.config.undervolt_max_accuracy_drop
            )
        return self._undervolt_point

    # ------------------------------------------------------------------ #
    # Goal evaluation (Section VII)
    # ------------------------------------------------------------------ #
    def evaluate_goals(self, num_batches: int = 6) -> GoalReport:
        """Measure the four project-goal dimensions on a reference workload.

        The reference workload is the ML-inference use case (the workload the
        project itself uses to demonstrate the stack); security additionally
        uses the Secure IoT Gateway's sensitive-data accounting, reliability
        the checkpoint efficiency model plus selective replication coverage,
        and productivity the compiler front end's annotation counts.

        Args:
            num_batches: size of the reference ML-inference workload.

        Returns:
            The four-dimension :class:`GoalReport` against the baseline.
        """
        baseline_system = LegatoSystem(self.config.as_baseline())
        report = GoalReport(workload=f"ml-inference x{num_batches} batches")

        # --- energy ---------------------------------------------------- #
        service = InferenceService(policy=SchedulingPolicy.ENERGY)
        batches = service.make_batches(num_batches)
        tasks_baseline = service.build_tasks(batches)
        tasks_optimised = service.build_tasks(batches)
        baseline_trace = baseline_system.run_tasks(tasks_baseline)
        optimised_trace = self.run_tasks(tasks_optimised)
        report.assessments.append(
            make_assessment(
                "energy",
                baseline_value=baseline_trace.total_energy_j,
                optimised_value=optimised_trace.total_energy_j,
                metric="J per reference ML-inference workload",
            )
        )

        # --- security ---------------------------------------------------- #
        gateway = SecureIotGateway()
        graph = gateway.build_graph(windows=2)
        sensitive_bytes = sum(
            task.footprint_bytes for task in graph.tasks if task.requirements.secure
        )
        baseline_exposure = max(sensitive_bytes, 1.0)
        if self.config.optimisations.enclave_security:
            optimised_exposure = max(baseline_exposure * _RESIDUAL_EXPOSURE_FRACTION, 1.0)
            note = "unprotected sensitive bytes; enclaves leave a residual exposure floor"
        else:
            optimised_exposure = baseline_exposure
            note = "enclave security disabled"
        report.assessments.append(
            make_assessment(
                "security",
                baseline_value=baseline_exposure,
                optimised_value=optimised_exposure,
                metric="sensitive bytes processed outside an attested enclave",
                proxy_note=note,
            )
        )

        # --- reliability ------------------------------------------------- #
        if self.config.optimisations.task_checkpointing:
            initial_point = run_fig6_point(1, 4.0, CheckpointStrategy.INITIAL)
            async_point = run_fig6_point(1, 4.0, CheckpointStrategy.ASYNC)
            initial_model = CheckpointEfficiencyModel(
                checkpoint_cost_s=initial_point.checkpoint_time_s,
                recovery_cost_s=initial_point.recover_time_s,
            )
            async_model = CheckpointEfficiencyModel(
                checkpoint_cost_s=async_point.checkpoint_time_s,
                recovery_cost_s=async_point.recover_time_s,
            )
            mtbf_ratio = sustainable_mtbf_ratio(initial_model, async_model)
        else:
            mtbf_ratio = 1.0
        report.assessments.append(
            make_assessment(
                "reliability",
                baseline_value=1.0,
                optimised_value=mtbf_ratio,
                metric="sustainable failure-rate increase at equal FT overhead",
                proxy_note="Young-model MTBF ratio of async vs blocking checkpointing",
                higher_is_better=True,
            )
        )

        # --- productivity ------------------------------------------------ #
        num_kernels = max(1, len(tasks_optimised))
        # Manual development must port each kernel to every target class the
        # deployment uses (CPU plus GPU and FPGA when offload is enabled).
        num_targets = 1 + (2 if self.config.optimisations.heterogeneous_offload else 0)
        manual_loc = num_kernels * _MANUAL_LOC_PER_KERNEL_TARGET * num_targets
        pragma_loc = num_kernels * _PRAGMA_LOC_PER_KERNEL
        report.assessments.append(
            make_assessment(
                "productivity",
                baseline_value=float(manual_loc),
                optimised_value=float(pragma_loc),
                metric="developer-written lines of code for the workload",
                proxy_note="per-target manual ports vs single-source pragma annotations",
            )
        )
        return report

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def describe(self) -> Dict[str, object]:
        """A compact description of the deployment (used by examples).

        Returns:
            Name, inventory, optimisation flags, policies, and peak power.
        """
        return {
            "name": self.config.name,
            "microservers": self.recsbox.inventory(),
            "optimisations": self.config.optimisations,
            "scheduling_policy": self.config.effective_scheduling_policy.value,
            "replication_policy": self.config.effective_replication_policy.value,
            "peak_power_w": self.recsbox.peak_power_w(),
        }
