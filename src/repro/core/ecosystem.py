"""The integrated LEGaTO ecosystem facade.

:class:`LegatoSystem` is the composition root a user of the toolset works
with: it builds the simulated RECS|BOX population described by the
configuration, exposes the compiler toolchain, runs task graphs on the
OmpSs-like runtime (with the configured energy policy), layers the
fault-tolerance and security executors on top, couples the FPGA
undervolting operating-point selection with the accelerator energy model,
and evaluates the project-goal metrics against an un-optimised baseline
deployment of the same hardware.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.api.deployment import Deployment
    from repro.api.spec import DeploymentSpec
    from repro.autoscale.controller import Autoscaler
    from repro.autoscale.policy import AutoscaleConfig
    from repro.federation.federation import Federation
    from repro.federation.policy import FederationConfig
    from repro.telemetry.registry import MetricsRegistry

from repro.compiler.toolchain import CompilationResult, Toolchain
from repro.core.config import LegatoConfig
from repro.core.goals import GoalAssessment, GoalReport, make_assessment
from repro.checkpoint.fti import CheckpointStrategy
from repro.checkpoint.heat2d import run_fig6_point
from repro.checkpoint.mtbf import CheckpointEfficiencyModel, sustainable_mtbf_ratio
from repro.hardware.microserver import DeviceKind
from repro.hardware.recsbox import RecsBox
from repro.runtime.devices import ExecutionDevice, build_devices
from repro.runtime.fault_tolerance import (
    FaultInjector,
    ReplicationPolicy,
    ResilienceReport,
    ResilientExecutor,
)
from repro.runtime.graph import TaskGraph
from repro.runtime.ompss import ExecutionTrace, OmpSsRuntime, SchedulingPolicy
from repro.runtime.task import Task
from repro.scheduler.heats import HeatsConfig
from repro.security.secure_task import SecureExecutionReport, SecureTaskExecutor
from repro.serving.batching import BatchPolicy
from repro.serving.loop import ServingReport, ServingWorkload
from repro.undervolting.mlresilience import UndervoltedInferenceStudy, VoltageAccuracyPoint
from repro.usecases.iot_gateway import SecureIotGateway
from repro.usecases.ml_inference import InferenceService

#: fraction of an FPGA microserver's board power on the undervolted BRAM rail.
_FPGA_BRAM_POWER_SHARE = 0.30

#: residual sensitive-data exposure even with enclaves (side channels,
#: metadata): the security proxy never claims more than a 1/residual gain.
_RESIDUAL_EXPOSURE_FRACTION = 0.08

#: hand-written lines of code per kernel per device target, used by the
#: productivity proxy (a conservative figure for CUDA/OpenCL/HLS ports).
_MANUAL_LOC_PER_KERNEL_TARGET = 60
#: pragma + signature lines per kernel in the LEGaTO programming model.
_PRAGMA_LOC_PER_KERNEL = 3


class LegatoSystem:
    """One deployed LEGaTO stack over a simulated RECS|BOX."""

    def __init__(self, config: Optional[LegatoConfig] = None) -> None:
        self.config = config if config is not None else LegatoConfig.default()
        self.recsbox = RecsBox.from_config(self.config.hardware)
        self.toolchain = Toolchain(
            fpga_platform=self.config.undervolt_platform
            if self.config.optimisations.heterogeneous_offload
            else None
        )
        self._undervolt_point: Optional[VoltageAccuracyPoint] = None

    # ------------------------------------------------------------------ #
    # Building blocks
    # ------------------------------------------------------------------ #
    def devices(self) -> List[ExecutionDevice]:
        """Fresh execution devices matching the configured population.

        Returns:
            One :class:`ExecutionDevice` per configured microserver model.
        """
        return build_devices(list(self.config.device_models()))

    def runtime(self) -> OmpSsRuntime:
        """A fresh OmpSs-like runtime over the configured devices.

        Returns:
            The runtime, using the configuration's effective scheduling
            policy.
        """
        return OmpSsRuntime(
            devices=self.devices(), policy=self.config.effective_scheduling_policy
        )

    # ------------------------------------------------------------------ #
    # Compilation and execution
    # ------------------------------------------------------------------ #
    def compile(self, source: str) -> CompilationResult:
        """Compile an annotated source program with the LEGaTO toolchain.

        Args:
            source: pragma-annotated task program text.

        Returns:
            The compilation result (lowered task graph plus diagnostics).
        """
        return self.toolchain.compile(source)

    def run_tasks(self, tasks: Sequence[Task]) -> ExecutionTrace:
        """Run a task list on the configured runtime and apply undervolting.

        When FPGA undervolting is enabled the energy of FPGA-executed tasks
        is reduced by the selected operating point's saving applied to the
        BRAM share of the board power.

        Args:
            tasks: the tasks to execute.

        Returns:
            The execution trace with undervolting-adjusted energies.
        """
        trace = self.runtime().run(list(tasks))
        if self.config.optimisations.fpga_undervolting:
            saving = self.undervolting_operating_point().power_saving_fraction
            factor = 1.0 - saving * _FPGA_BRAM_POWER_SHARE
            adjusted = []
            for execution in trace.executions:
                if DeviceKind(execution.device_kind).is_fpga:
                    adjusted.append(
                        type(execution)(
                            task=execution.task,
                            device_name=execution.device_name,
                            device_kind=execution.device_kind,
                            start_s=execution.start_s,
                            finish_s=execution.finish_s,
                            energy_j=execution.energy_j * factor,
                        )
                    )
                else:
                    adjusted.append(execution)
            trace.executions[:] = adjusted
        return trace

    def run_program(self, source: str) -> ExecutionTrace:
        """Compile an annotated program and run it.

        Args:
            source: pragma-annotated task program text.

        Returns:
            The execution trace of the compiled tasks.
        """
        result = self.compile(source)
        return self.run_tasks(result.lowered.tasks)

    def run_resilient(self, graph: TaskGraph, fault_probability: float = 0.05) -> ResilienceReport:
        """Execute a task graph under fault injection with replication.

        Args:
            graph: the task graph to run.
            fault_probability: per-task fault injection probability.

        Returns:
            The resilience report (failures, recoveries, overhead).
        """
        executor = ResilientExecutor(
            devices=self.devices(),
            policy=self.config.effective_replication_policy,
            injector=FaultInjector(fault_probability=fault_probability),
        )
        return executor.execute(graph)

    def run_secure(self, graph: TaskGraph) -> SecureExecutionReport:
        """Execute a task graph with enclave protection for secure tasks.

        Args:
            graph: the task graph to run.

        Returns:
            The secure-execution report (attestation, exposure accounting).
        """
        if not self.config.optimisations.enclave_security:
            raise RuntimeError(
                "enclave security is disabled in this configuration; "
                "enable it or use run_tasks for unprotected execution"
            )
        executor = SecureTaskExecutor(devices=self.devices())
        return executor.execute(graph)

    # ------------------------------------------------------------------ #
    # Request serving (cluster-as-a-service front-end)
    # ------------------------------------------------------------------ #
    def deploy(self, spec: Optional["DeploymentSpec"] = None) -> "Deployment":
        """Build a reusable serving session from a declarative spec.

        This is the serving entry point: the spec is validated (every
        problem reported at once, path-tagged), the backend -- single
        cluster, federation, or autoscaled federation -- is built exactly
        once, and the returned :class:`~repro.api.deployment.Deployment`
        serves any number of workloads against the warm state (profiled
        prediction models, score caches, affinity pins, telemetry bus,
        elastically grown topology).

        Args:
            spec: the :class:`~repro.api.spec.DeploymentSpec` to deploy;
                None deploys the ``"single"`` preset.

        Returns:
            The deployment session (also usable as a context manager).
        """
        from repro.api.deployment import Deployment
        from repro.api.spec import DeploymentSpec

        if spec is None:
            spec = DeploymentSpec.preset("single")
        return Deployment.from_spec(spec, system=self)

    def _spec_from_serve_kwargs(
        self,
        cluster_scale: int,
        use_score_cache: bool,
        batch_policy: Optional[BatchPolicy],
        heats_config: Optional[HeatsConfig],
        seed: int,
        num_shards: int,
        autoscale: bool,
        autoscale_config: Optional["AutoscaleConfig"],
        telemetry: Optional[bool] = None,
    ) -> "DeploymentSpec":
        """Translate the legacy kwarg surface into one deployment spec.

        The single translation point for all three deprecated shims
        (``serve``/``federate``/``autoscaler``), so a knob added here is
        automatically honoured by every shim.
        """
        from repro.api.spec import (
            AutoscaleSpec,
            DeploymentSpec,
            SchedulerSpec,
            ServingSpec,
            TelemetrySpec,
            TopologySpec,
        )
        from repro.core.seeding import SeedPolicy

        return DeploymentSpec(
            name=self.config.name,
            topology=TopologySpec(
                cluster_scale=cluster_scale,
                shards=num_shards,
                seed=SeedPolicy(base=seed),
            ),
            scheduler=SchedulerSpec.from_heats_config(
                heats_config, score_cache=use_score_cache
            ),
            serving=ServingSpec.from_batch_policy(batch_policy),
            autoscale=AutoscaleSpec.from_config(
                autoscale_config if autoscale_config is not None else self.config.autoscale,
                enabled=autoscale,
            ),
            telemetry=TelemetrySpec(
                enabled=autoscale if telemetry is None else telemetry
            ),
        )

    def serve(
        self,
        workload: ServingWorkload,
        cluster_scale: int = 1,
        use_score_cache: bool = True,
        batch_policy: Optional[BatchPolicy] = None,
        heats_config: Optional[HeatsConfig] = None,
        seed: int = 7,
        num_shards: int = 1,
        autoscale: bool = False,
        autoscale_config: Optional["AutoscaleConfig"] = None,
    ) -> ServingReport:
        """Serve one request stream (deprecated kwarg shim over deploy).

        .. deprecated:: 1.4
            This kwarg surface is frozen and will be removed one release
            after 1.4; build a :class:`~repro.api.spec.DeploymentSpec`
            and use ``deploy(spec).serve(workload)`` instead.  The shim
            translates the kwargs into exactly that call, so reports are
            bit-identical to the spec API.

        Args:
            workload: tenants plus their request stream.
            cluster_scale: total ``heats_testbed`` scale (4 * scale nodes);
                must be divisible by ``num_shards``.
            use_score_cache: attach prediction-score cache(s).
            batch_policy: optional batching override.
            heats_config: node-level scheduler tunables.
            seed: profiling seed (shards derive independent seeds).
            num_shards: number of federation shards; 1 = single cluster
                (an autoscaled run treats 1 as a one-shard federation).
            autoscale: attach the elastic control loop.
            autoscale_config: control-loop tunables; defaults to the
                deployment configuration's ``autoscale`` section.

        Returns:
            The :class:`ServingReport` for the run.
        """
        warnings.warn(
            "LegatoSystem.serve(**kwargs) is deprecated; build a "
            "DeploymentSpec and serve through "
            "LegatoSystem.deploy(spec).serve(workload) (see docs/api.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        spec = self._spec_from_serve_kwargs(
            cluster_scale,
            use_score_cache,
            batch_policy,
            heats_config,
            seed,
            num_shards,
            autoscale,
            autoscale_config,
        )
        with self.deploy(spec) as deployment:
            return deployment.serve(workload)

    def federate(
        self,
        num_shards: int = 2,
        shard_scale: int = 1,
        use_score_cache: bool = True,
        heats_config: Optional[HeatsConfig] = None,
        federation_config: Optional["FederationConfig"] = None,
        seed: int = 7,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> "Federation":
        """Build a federation of HEATS shards (deprecated kwarg shim).

        .. deprecated:: 1.4
            Use a spec with ``topology.shards > 1`` and
            ``deploy(spec)`` instead; the session keeps the federation
            warm across workloads.  This shim translates its kwargs into
            a spec and returns the backend's
            :class:`~repro.federation.federation.Federation` unchanged.

        Args:
            num_shards: number of member shards.
            shard_scale: ``heats_testbed`` scale per shard.
            use_score_cache: attach per-shard prediction-score caches.
            heats_config: node-level scheduler tunables, copied per shard.
            federation_config: shard-selection and migration tunables.
            seed: federation base seed; shard ``i`` profiles with the
                seed policy's ``shard_seed(i)``.
            metrics: optional telemetry bus wired through the routing,
                admission, and batching hot paths.

        Returns:
            A :class:`~repro.federation.federation.Federation` ready to
            serve one workload.
        """
        from repro.api.backend import FederatedBackend

        warnings.warn(
            "LegatoSystem.federate(**kwargs) is deprecated; use a "
            "DeploymentSpec with topology.shards > 1 and "
            "LegatoSystem.deploy(spec) (see docs/api.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        spec = self._spec_from_serve_kwargs(
            cluster_scale=num_shards * shard_scale,
            use_score_cache=use_score_cache,
            batch_policy=None,
            heats_config=heats_config,
            seed=seed,
            num_shards=num_shards,
            autoscale=False,
            autoscale_config=None,
            telemetry=metrics is not None,
        ).check()
        backend = FederatedBackend(
            spec, metrics=metrics, federation_config=federation_config
        )
        return backend.federation

    def autoscaler(
        self,
        num_shards: int = 1,
        shard_scale: int = 1,
        autoscale_config: Optional["AutoscaleConfig"] = None,
        use_score_cache: bool = True,
        heats_config: Optional[HeatsConfig] = None,
        federation_config: Optional["FederationConfig"] = None,
        seed: int = 7,
    ) -> "Autoscaler":
        """Build an elastic federation + control loop (deprecated shim).

        .. deprecated:: 1.4
            Use a spec with ``autoscale.enabled`` and ``deploy(spec)``
            instead; the session rebuilds a fresh controller per run
            while keeping the elastic topology warm.  This shim
            translates its kwargs into a spec and returns the backend's
            attached :class:`~repro.autoscale.controller.Autoscaler`.

        Args:
            num_shards: initial shard count.
            shard_scale: initial ``heats_testbed`` scale per shard.
            autoscale_config: control-loop tunables; defaults to the
                deployment configuration's ``autoscale`` section.
            use_score_cache: attach per-shard prediction-score caches.
            heats_config: node-level scheduler tunables, copied per shard.
            federation_config: shard-selection and migration tunables; its
                rescheduling interval is overridden by the control
                interval so control and migration share one heartbeat.
            seed: federation base seed.

        Returns:
            The attached :class:`~repro.autoscale.controller.Autoscaler`.
        """
        from repro.api.backend import AutoscaledBackend
        from repro.telemetry.registry import MetricsRegistry

        warnings.warn(
            "LegatoSystem.autoscaler(**kwargs) is deprecated; use a "
            "DeploymentSpec with autoscale.enabled=True and "
            "LegatoSystem.deploy(spec) (see docs/api.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        spec = self._spec_from_serve_kwargs(
            cluster_scale=num_shards * shard_scale,
            use_score_cache=use_score_cache,
            batch_policy=None,
            heats_config=heats_config,
            seed=seed,
            num_shards=num_shards,
            autoscale=True,
            autoscale_config=autoscale_config,
        ).check()
        backend = AutoscaledBackend(
            spec,
            metrics=MetricsRegistry(
                default_histogram_window=spec.telemetry.histogram_window
            ),
            federation_config=federation_config,
        )
        return backend.autoscaler

    # ------------------------------------------------------------------ #
    # Undervolting coupling
    # ------------------------------------------------------------------ #
    def undervolting_operating_point(self) -> VoltageAccuracyPoint:
        """The lowest safe-accuracy VCCBRAM operating point (cached).

        Returns:
            The operating point whose accuracy drop stays within the
            configured budget.
        """
        if self._undervolt_point is None:
            study = UndervoltedInferenceStudy(platform=self.config.undervolt_platform)
            self._undervolt_point = study.recommended_operating_point(
                max_accuracy_drop=self.config.undervolt_max_accuracy_drop
            )
        return self._undervolt_point

    # ------------------------------------------------------------------ #
    # Goal evaluation (Section VII)
    # ------------------------------------------------------------------ #
    def evaluate_goals(self, num_batches: int = 6) -> GoalReport:
        """Measure the four project-goal dimensions on a reference workload.

        The reference workload is the ML-inference use case (the workload the
        project itself uses to demonstrate the stack); security additionally
        uses the Secure IoT Gateway's sensitive-data accounting, reliability
        the checkpoint efficiency model plus selective replication coverage,
        and productivity the compiler front end's annotation counts.

        Args:
            num_batches: size of the reference ML-inference workload.

        Returns:
            The four-dimension :class:`GoalReport` against the baseline.
        """
        baseline_system = LegatoSystem(self.config.as_baseline())
        report = GoalReport(workload=f"ml-inference x{num_batches} batches")

        # --- energy ---------------------------------------------------- #
        service = InferenceService(policy=SchedulingPolicy.ENERGY)
        batches = service.make_batches(num_batches)
        tasks_baseline = service.build_tasks(batches)
        tasks_optimised = service.build_tasks(batches)
        baseline_trace = baseline_system.run_tasks(tasks_baseline)
        optimised_trace = self.run_tasks(tasks_optimised)
        report.assessments.append(
            make_assessment(
                "energy",
                baseline_value=baseline_trace.total_energy_j,
                optimised_value=optimised_trace.total_energy_j,
                metric="J per reference ML-inference workload",
            )
        )

        # --- security ---------------------------------------------------- #
        gateway = SecureIotGateway()
        graph = gateway.build_graph(windows=2)
        sensitive_bytes = sum(
            task.footprint_bytes for task in graph.tasks if task.requirements.secure
        )
        baseline_exposure = max(sensitive_bytes, 1.0)
        if self.config.optimisations.enclave_security:
            optimised_exposure = max(baseline_exposure * _RESIDUAL_EXPOSURE_FRACTION, 1.0)
            note = "unprotected sensitive bytes; enclaves leave a residual exposure floor"
        else:
            optimised_exposure = baseline_exposure
            note = "enclave security disabled"
        report.assessments.append(
            make_assessment(
                "security",
                baseline_value=baseline_exposure,
                optimised_value=optimised_exposure,
                metric="sensitive bytes processed outside an attested enclave",
                proxy_note=note,
            )
        )

        # --- reliability ------------------------------------------------- #
        if self.config.optimisations.task_checkpointing:
            initial_point = run_fig6_point(1, 4.0, CheckpointStrategy.INITIAL)
            async_point = run_fig6_point(1, 4.0, CheckpointStrategy.ASYNC)
            initial_model = CheckpointEfficiencyModel(
                checkpoint_cost_s=initial_point.checkpoint_time_s,
                recovery_cost_s=initial_point.recover_time_s,
            )
            async_model = CheckpointEfficiencyModel(
                checkpoint_cost_s=async_point.checkpoint_time_s,
                recovery_cost_s=async_point.recover_time_s,
            )
            mtbf_ratio = sustainable_mtbf_ratio(initial_model, async_model)
        else:
            mtbf_ratio = 1.0
        report.assessments.append(
            make_assessment(
                "reliability",
                baseline_value=1.0,
                optimised_value=mtbf_ratio,
                metric="sustainable failure-rate increase at equal FT overhead",
                proxy_note="Young-model MTBF ratio of async vs blocking checkpointing",
                higher_is_better=True,
            )
        )

        # --- productivity ------------------------------------------------ #
        num_kernels = max(1, len(tasks_optimised))
        # Manual development must port each kernel to every target class the
        # deployment uses (CPU plus GPU and FPGA when offload is enabled).
        num_targets = 1 + (2 if self.config.optimisations.heterogeneous_offload else 0)
        manual_loc = num_kernels * _MANUAL_LOC_PER_KERNEL_TARGET * num_targets
        pragma_loc = num_kernels * _PRAGMA_LOC_PER_KERNEL
        report.assessments.append(
            make_assessment(
                "productivity",
                baseline_value=float(manual_loc),
                optimised_value=float(pragma_loc),
                metric="developer-written lines of code for the workload",
                proxy_note="per-target manual ports vs single-source pragma annotations",
            )
        )
        return report

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def describe(self) -> Dict[str, object]:
        """A compact description of the whole stack (used by examples).

        Beyond the PR-0 hardware view (inventory, optimisation flags,
        policies, peak power), the description carries the package
        version and the serving / federation / autoscale defaults this
        system would deploy with, so one dict answers "what would run
        here".  ``Deployment.snapshot()`` embeds this same view for
        deployments created through :meth:`deploy`.

        Returns:
            Name, version, inventory, optimisation flags, policies, peak
            power, and the serving/federation/autoscale default sections.
        """
        from dataclasses import asdict

        from repro import __version__
        from repro.api.spec import AutoscaleSpec, ServingSpec
        from repro.federation.policy import FederationConfig

        return {
            "name": self.config.name,
            "version": __version__,
            "microservers": self.recsbox.inventory(),
            "optimisations": self.config.optimisations,
            "scheduling_policy": self.config.effective_scheduling_policy.value,
            "replication_policy": self.config.effective_replication_policy.value,
            "peak_power_w": self.recsbox.peak_power_w(),
            "serving": asdict(ServingSpec()),
            "federation": asdict(FederationConfig()),
            "autoscale": asdict(
                AutoscaleSpec.from_config(self.config.autoscale, enabled=False)
            ),
        }
