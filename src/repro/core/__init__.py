"""Core: the integrated LEGaTO ecosystem facade and project-goal metrics.

The other subpackages each reproduce one layer of Fig. 2; this one wires
them together the way the project intends them to be used: one configuration
object (:class:`~repro.core.config.LegatoConfig`) selects the hardware
population and which optimisations are active, one facade
(:class:`~repro.core.ecosystem.LegatoSystem`) exposes compile/run/evaluate
entry points, and :mod:`repro.core.goals` tracks progress against the
project's headline targets (10x energy, 10x security, 5x reliability, 5x
productivity -- Section VII).
"""

from repro.core.config import LegatoConfig, OptimisationFlags
from repro.core.goals import GoalAssessment, GoalReport, PROJECT_TARGETS
from repro.core.ecosystem import LegatoSystem
from repro.core.seeding import SeedPolicy

__all__ = [
    "LegatoConfig",
    "OptimisationFlags",
    "GoalAssessment",
    "GoalReport",
    "PROJECT_TARGETS",
    "LegatoSystem",
    "SeedPolicy",
]
