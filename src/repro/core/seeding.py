"""Seed derivation policy: every RNG stream in a deployment, one rule.

Before this module, seed defaults were scattered magic numbers: the facade
defaulted profiling to ``seed=7``, the federation derived per-shard seeds
as ``seed + 101 * i``, and elastic node growth probed with
``shard_seed + 1009 * (k + 1)``.  :class:`SeedPolicy` centralises all
three rules so they are documented once, validated once, and serialisable
as part of a :class:`~repro.api.spec.DeploymentSpec`.

The strides are primes far apart from each other, so the derived seed
sets stay disjoint for any realistic shard count and growth history:
shard ``i`` profiles with ``base + shard_stride * i``, and the ``k``-th
node grown into that shard probes with
``shard_seed + probe_stride * (k + 1)``.
"""

from __future__ import annotations

from dataclasses import dataclass

#: historic defaults, kept bit-compatible with the pre-spec API: the
#: facade's ``seed=7``, the federation's ``+ 101 * i`` shard rule, and the
#: elastic growth ``+ 1009 * (k + 1)`` probe rule.
DEFAULT_BASE_SEED = 7
DEFAULT_SHARD_STRIDE = 101
DEFAULT_PROBE_STRIDE = 1009


@dataclass(frozen=True)
class SeedPolicy:
    """How every RNG seed in a deployment derives from one base seed.

    Args:
        base: the deployment-wide base seed (shard 0 profiles with it).
        shard_stride: seed distance between consecutive shards; must be
            positive so shard streams never collide.
        probe_stride: seed distance between consecutive node-growth
            probing campaigns inside one shard; must be positive.
    """

    base: int = DEFAULT_BASE_SEED
    shard_stride: int = DEFAULT_SHARD_STRIDE
    probe_stride: int = DEFAULT_PROBE_STRIDE

    def __post_init__(self) -> None:
        if self.shard_stride <= 0:
            raise ValueError("shard stride must be positive")
        if self.probe_stride <= 0:
            raise ValueError("probe stride must be positive")

    def shard_seed(self, index: int) -> int:
        """The profiling seed of shard ``index``.

        Shard 0 profiles with the base seed itself, so a single-cluster
        deployment is indistinguishable from a one-shard federation.

        Args:
            index: zero-based shard index.

        Returns:
            ``base + shard_stride * index``.
        """
        if index < 0:
            raise ValueError("shard index must be non-negative")
        return self.base + self.shard_stride * index

    def probe_seed(self, shard_seed: int, grown_count: int) -> int:
        """The probing seed for the next node grown into a shard.

        Args:
            shard_seed: the owning shard's profiling seed.
            grown_count: how many nodes were already grown into the shard
                (the new node is number ``grown_count``).

        Returns:
            ``shard_seed + probe_stride * (grown_count + 1)``, disjoint
            from the shard's original campaign and from earlier growth.
        """
        if grown_count < 0:
            raise ValueError("grown-node count must be non-negative")
        return shard_seed + self.probe_stride * (grown_count + 1)
