"""Project-goal tracking: the 10x / 10x / 5x / 5x targets of Section VII.

LEGaTO's final-year goals are an order-of-magnitude (10x) energy saving,
10x security, 5x reliability and 5x productivity improvement over the
un-optimised baseline.  "Energy" has a direct physical metric; the other
three are tracked by the project through proxy metrics, and the proxies
used here are documented with each assessment:

* **energy**      -- joules for the reference workload, baseline / LEGaTO.
* **security**    -- reduction of the unprotected sensitive-data exposure
  (bytes of sensitive task data processed outside an attested enclave),
  with a residual floor for what enclaves cannot protect.
* **reliability** -- sustainable-MTBF ratio at equal fault-tolerance
  overhead (from the checkpoint efficiency model) combined with the fault
  detection coverage from selective replication.
* **productivity**-- source lines a developer writes: pragma-annotated
  kernels versus hand-written per-device implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

#: the headline targets from Section VII.
PROJECT_TARGETS: Dict[str, float] = {
    "energy": 10.0,
    "security": 10.0,
    "reliability": 5.0,
    "productivity": 5.0,
}


@dataclass(frozen=True)
class GoalAssessment:
    """One goal dimension: target versus achieved improvement factor."""

    dimension: str
    target_factor: float
    achieved_factor: float
    baseline_value: float
    optimised_value: float
    metric: str
    proxy_note: str = ""

    def __post_init__(self) -> None:
        if self.target_factor <= 0 or self.achieved_factor < 0:
            raise ValueError("factors must be positive")

    @property
    def met(self) -> bool:
        return self.achieved_factor >= self.target_factor

    @property
    def progress_fraction(self) -> float:
        """Achieved / target, capped at 1 for reporting."""
        return min(1.0, self.achieved_factor / self.target_factor)


@dataclass
class GoalReport:
    """All four goal dimensions for one evaluated workload."""

    workload: str
    assessments: List[GoalAssessment] = field(default_factory=list)

    def assessment(self, dimension: str) -> GoalAssessment:
        for item in self.assessments:
            if item.dimension == dimension:
                return item
        raise KeyError(f"no assessment for dimension {dimension!r}")

    @property
    def dimensions(self) -> List[str]:
        return [a.dimension for a in self.assessments]

    def met_all(self) -> bool:
        return all(a.met for a in self.assessments)

    def as_rows(self) -> List[Dict[str, object]]:
        """Printable rows: one per dimension (used by the goals benchmark)."""
        return [
            {
                "dimension": a.dimension,
                "target_x": a.target_factor,
                "achieved_x": round(a.achieved_factor, 2),
                "met": a.met,
                "metric": a.metric,
            }
            for a in self.assessments
        ]


def make_assessment(
    dimension: str,
    baseline_value: float,
    optimised_value: float,
    metric: str,
    proxy_note: str = "",
    higher_is_better: bool = False,
) -> GoalAssessment:
    """Build an assessment from raw baseline/optimised measurements.

    For cost-like metrics (energy, exposure, lines of code) the improvement
    factor is ``baseline / optimised``; for benefit-like metrics
    (``higher_is_better=True``, e.g. sustainable failure rate) it is
    ``optimised / baseline``.
    """
    if dimension not in PROJECT_TARGETS:
        raise KeyError(f"unknown goal dimension {dimension!r}")
    if baseline_value <= 0 or optimised_value <= 0:
        raise ValueError("goal metrics must be positive to form a ratio")
    if higher_is_better:
        achieved = optimised_value / baseline_value
    else:
        achieved = baseline_value / optimised_value
    return GoalAssessment(
        dimension=dimension,
        target_factor=PROJECT_TARGETS[dimension],
        achieved_factor=achieved,
        baseline_value=baseline_value,
        optimised_value=optimised_value,
        metric=metric,
        proxy_note=proxy_note,
    )
