"""The metrics bus: one registry shared by every instrumented component.

A :class:`MetricsRegistry` is the rendezvous point between the hot paths
that *record* (gateway, batcher, schedulers) and the consumers that *read*
(the autoscale controller, exporters, benchmarks).  Components get-or-create
their instruments once at construction time and keep direct references, so
the per-event recording path never touches the registry's dict again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.telemetry.metrics import Counter, Gauge, Histogram


@dataclass(frozen=True)
class HistogramSnapshot:
    """Point-in-time rollup of one histogram."""

    name: str
    count: int
    total: float
    window_mean: float
    ewma: float
    p50: float
    p99: float


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable point-in-time view of every registered metric.

    Built by :meth:`MetricsRegistry.snapshot`; this is what exporters
    serialise and what tests assert against, decoupled from the live
    (still-mutating) instruments.
    """

    counters: Mapping[str, float]
    gauges: Mapping[str, float]
    histograms: Mapping[str, HistogramSnapshot]
    #: host-time phase breakdown (:meth:`PhaseProfiler.report`) when the
    #: deployment was built with ``TelemetrySpec(profiling=True)``.
    profile: Optional[Mapping[str, object]] = None

    def __getitem__(self, key: str):
        """Section access by name: ``snapshot["profile"]`` and friends.

        Args:
            key: one of ``"counters"``, ``"gauges"``, ``"histograms"``,
                ``"profile"``.

        Returns:
            The named section (``profile`` is None unless profiling was
            enabled on the deployment).
        """
        if key in ("counters", "gauges", "histograms", "profile"):
            return getattr(self, key)
        raise KeyError(key)

    def counter(self, name: str, default: float = 0.0) -> float:
        """A counter's total at snapshot time.

        Args:
            name: metric name.
            default: value returned when the counter was never registered.

        Returns:
            The total, or ``default``.
        """
        return self.counters.get(name, default)


class MetricsRegistry:
    """Named metric instruments with get-or-create semantics."""

    def __init__(self, default_histogram_window: Optional[int] = None) -> None:
        """Create an empty registry.

        Args:
            default_histogram_window: ring-buffer window applied to
                histograms created without an explicit ``window``; None
                keeps :attr:`Histogram.DEFAULT_WINDOW` (how deployment
                specs plumb ``telemetry.histogram_window`` bus-wide).
        """
        if default_histogram_window is not None and default_histogram_window < 2:
            raise ValueError("default histogram window must be at least 2")
        self._default_histogram_window = (
            default_histogram_window
            if default_histogram_window is not None
            else Histogram.DEFAULT_WINDOW
        )
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------ #
    # Instrument creation / lookup
    # ------------------------------------------------------------------ #
    def counter(self, name: str) -> Counter:
        """Get or create the counter with this name.

        Args:
            name: metric name, unique per instrument kind.

        Returns:
            The (possibly pre-existing) counter.
        """
        self._check_name(name, self._counters)
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = Counter(name)
            self._counters[name] = instrument
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge with this name.

        Args:
            name: metric name, unique per instrument kind.

        Returns:
            The (possibly pre-existing) gauge.
        """
        self._check_name(name, self._gauges)
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = Gauge(name)
            self._gauges[name] = instrument
        return instrument

    def histogram(self, name: str, window: Optional[int] = None) -> Histogram:
        """Get or create the histogram with this name.

        Args:
            name: metric name, unique per instrument kind.
            window: ring-buffer window for a newly created histogram (an
                existing histogram keeps its original window); None uses
                the registry's default window.

        Returns:
            The (possibly pre-existing) histogram.
        """
        self._check_name(name, self._histograms)
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = Histogram(
                name,
                window=window if window is not None else self._default_histogram_window,
            )
            self._histograms[name] = instrument
        return instrument

    def _check_name(self, name: str, own: Dict[str, object]) -> None:
        if not name:
            raise ValueError("metric name must be non-empty")
        for family in (self._counters, self._gauges, self._histograms):
            if family is not own and name in family:
                raise ValueError(
                    f"metric {name!r} already registered as a different kind"
                )

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def names(self) -> List[str]:
        """All registered metric names, sorted.

        Returns:
            Counter, gauge, and histogram names in one sorted list.
        """
        return sorted(
            list(self._counters) + list(self._gauges) + list(self._histograms)
        )

    def counter_values(self) -> Dict[str, float]:
        """Just the counter totals, without any histogram rollups.

        The cheap read for recurring consumers (the autoscale control
        loop runs every tick): a full :meth:`snapshot` sorts every
        histogram's window for quantiles, which is wasted work when only
        counter deltas are needed.

        Returns:
            Counter name -> current total.
        """
        return {name: counter.value for name, counter in self._counters.items()}

    def snapshot(self, profile: Optional[Mapping[str, object]] = None) -> MetricsSnapshot:
        """Render every instrument into an immutable point-in-time view.

        Args:
            profile: optional host-time phase breakdown
                (:meth:`~repro.telemetry.profile.PhaseProfiler.report`)
                to embed, so deployments can surface profiling next to
                the metric sections.

        Returns:
            The :class:`MetricsSnapshot` (histograms carry their windowed
            rollups: mean, EWMA, p50, p99).
        """
        histograms: Dict[str, HistogramSnapshot] = {}
        for name, histogram in self._histograms.items():
            histograms[name] = HistogramSnapshot(
                name=name,
                count=histogram.count,
                total=histogram.total,
                window_mean=histogram.window_mean(),
                ewma=histogram.ewma(),
                p50=histogram.quantile(0.50),
                p99=histogram.quantile(0.99),
            )
        return MetricsSnapshot(
            counters={name: c.value for name, c in self._counters.items()},
            gauges={name: g.value for name, g in self._gauges.items()},
            histograms=histograms,
            profile=profile,
        )
