"""Host-time phase profiler for the serving hot path.

PR 6's tracer attributes *simulated* time to request stages; it cannot
say which part of the Python hot path burns *wall-clock* time, which is
what the vectorisation roadmap item needs.  This module adds a
zero-dependency phase profiler on :func:`time.perf_counter`:

* :class:`PhaseProfiler` hands out nestable ``with profiler.phase("ingest")``
  contexts.  Nested phases record under ``/``-joined paths
  (``simulate/placement/routing``), so both the breakdown and the
  top-level coverage (sum of depth-0 phases vs. measured wall-clock)
  fall out of one report.
* Hot loops that cannot afford a context manager per event use
  :meth:`PhaseProfiler.add` with a pre-measured duration.
* A disabled profiler (``PhaseProfiler.disabled()``) returns a shared
  no-op context from :meth:`~PhaseProfiler.phase`, and every
  instrumentation seam additionally guards on one cached boolean
  (``self._profile = profiler is not None and profiler.enabled``) so the
  unprofiled fast path is unchanged -- the same discipline as the
  tracer's ``NULL_SPAN``.

The report is a plain dict (``{"phases": {...}, "top_level_s": ...}``)
so it can ride inside ``Deployment.metrics()["profile"]`` and the
benchmark harness' JSON payloads without any serialisation shim.
"""

from __future__ import annotations

from time import perf_counter

__all__ = ["PhaseProfiler"]


class _NullPhase:
    """Shared no-op context returned by a disabled profiler's ``phase()``."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


NULL_PHASE = _NullPhase()


class _Phase:
    """Context manager recording one timed phase on its profiler.

    Entering pushes the phase onto the profiler's path prefix (so nested
    phases record under ``parent/child`` keys); exiting accumulates the
    elapsed host time into the profiler's stats and restores the prefix.
    """

    __slots__ = ("_profiler", "_name", "_path", "_prev_prefix", "_start")

    def __init__(self, profiler, name):
        self._profiler = profiler
        self._name = name
        self._path = ""
        self._prev_prefix = ""
        self._start = 0.0

    def __enter__(self):
        profiler = self._profiler
        prefix = profiler._prefix
        self._prev_prefix = prefix
        self._path = prefix + "/" + self._name if prefix else self._name
        profiler._prefix = self._path
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        elapsed = perf_counter() - self._start
        profiler = self._profiler
        stat = profiler._stats.get(self._path)
        if stat is None:
            profiler._stats[self._path] = [1, elapsed]
        else:
            stat[0] += 1
            stat[1] += elapsed
        profiler._prefix = self._prev_prefix
        return False


class PhaseProfiler:
    """Nestable host-time phase profiler with a cheap disabled mode.

    Phases are identified by ``/``-joined paths reflecting nesting at
    record time: ``with profiler.phase("simulate")`` around an event loop
    that internally records ``phase("placement")`` produces
    ``simulate`` and ``simulate/placement`` entries.  All accumulation is
    O(1) per phase (one dict upsert); the report is computed on demand.

    Args:
        enabled: when False, :meth:`phase` returns a shared no-op
            context and :meth:`add` is a no-op, so a disabled profiler
            can be threaded through constructors at zero per-event cost.
    """

    __slots__ = ("enabled", "_stats", "_prefix")

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self._stats = {}
        self._prefix = ""

    @classmethod
    def disabled(cls) -> "PhaseProfiler":
        """Build a no-op profiler.

        Returns:
            A :class:`PhaseProfiler` with ``enabled=False``; its
            ``phase()`` contexts and ``add()`` calls record nothing.
        """
        return cls(enabled=False)

    def phase(self, name: str):
        """Open a timed phase context.

        Args:
            name: phase name; must not contain ``/`` (reserved for the
                nesting separator).

        Returns:
            A context manager that records host time under the current
            nesting path on exit, or a shared no-op context when the
            profiler is disabled.
        """
        if not self.enabled:
            return NULL_PHASE
        if "/" in name:
            raise ValueError(f"phase name may not contain '/': {name!r}")
        return _Phase(self, name)

    def add(self, name: str, seconds: float) -> None:
        """Accumulate a pre-measured duration under the current path.

        Hot loops measure with two ``perf_counter()`` calls and hand the
        difference here, avoiding a context-manager object per event.

        Args:
            name: phase name (no ``/``), recorded under the currently
                open phase path.
            seconds: elapsed host time to accumulate.
        """
        if not self.enabled:
            return
        prefix = self._prefix
        path = prefix + "/" + name if prefix else name
        stat = self._stats.get(path)
        if stat is None:
            self._stats[path] = [1, seconds]
        else:
            stat[0] += 1
            stat[1] += seconds

    def reset(self) -> None:
        """Drop all accumulated stats (e.g. between benchmark runs)."""
        self._stats.clear()
        self._prefix = ""

    def top_level_seconds(self) -> float:
        """Sum of all depth-0 phase totals.

        Returns:
            Total host seconds attributed to top-level phases; dividing
            by an externally measured wall-clock gives the profiler's
            coverage of a run.
        """
        return sum(
            stat[1] for path, stat in self._stats.items() if "/" not in path
        )

    def coverage(self, wall_clock_s: float) -> float:
        """Fraction of a measured wall-clock covered by top-level phases.

        Args:
            wall_clock_s: externally measured wall-clock seconds for the
                profiled region.

        Returns:
            ``top_level_seconds() / wall_clock_s`` (0.0 when the
            wall-clock is not positive).
        """
        if wall_clock_s <= 0.0:
            return 0.0
        return self.top_level_seconds() / wall_clock_s

    def report(self) -> dict:
        """Snapshot the accumulated phase breakdown.

        Self time is computed at report time as a phase's total minus
        the totals of its direct children, so the hot path never pays
        for it.

        Returns:
            ``{"phases": {path: {"calls", "total_s", "self_s"}},
            "top_level_s": float}`` with phases in sorted path order.
        """
        child_totals = {}
        for path, stat in self._stats.items():
            if "/" in path:
                parent = path.rsplit("/", 1)[0]
                child_totals[parent] = child_totals.get(parent, 0.0) + stat[1]
        phases = {}
        for path in sorted(self._stats):
            count, total = self._stats[path]
            phases[path] = {
                "calls": count,
                "total_s": total,
                "self_s": max(0.0, total - child_totals.get(path, 0.0)),
            }
        return {"phases": phases, "top_level_s": self.top_level_seconds()}

    def format(self) -> str:
        """Render the breakdown as an aligned text table.

        Returns:
            One line per phase path (indented by nesting depth) with
            call count, total and self host-time in milliseconds.
        """
        report = self.report()
        lines = ["phase profile (host time)"]
        if not report["phases"]:
            lines.append("  (no phases recorded)")
            return "\n".join(lines)
        width = max(len(path) for path in report["phases"]) + 2
        lines.append(
            f"  {'phase':<{width}} {'calls':>8} {'total_ms':>10} {'self_ms':>10}"
        )
        for path, stat in report["phases"].items():
            depth = path.count("/")
            label = "  " * depth + path.rsplit("/", 1)[-1]
            lines.append(
                f"  {label:<{width}} {stat['calls']:>8} "
                f"{stat['total_s'] * 1e3:>10.2f} {stat['self_s'] * 1e3:>10.2f}"
            )
        lines.append(f"  top-level total: {report['top_level_s'] * 1e3:.2f} ms")
        return "\n".join(lines)
