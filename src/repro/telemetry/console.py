"""Live deployment console: one tile model, two renderers.

``serve_iter()`` already streams a deployment's timeline as
:class:`~repro.api.deployment.ServingTick` windows.  This module turns
that stream into a *console frame* per tick -- per-shard tiles (load,
queue depth, SLA hit rate, energy price, autoscale actions) plus the
tick's cluster-wide counters -- and renders the same model two ways:

* :func:`render_ansi` -- a terminal dashboard block per frame, suitable
  for printing in a live loop (and safe to run headlessly in CI);
* :func:`render_html` -- a self-contained single-file HTML snapshot with
  inline JS (a frame scrubber) and no external assets, suitable for
  attaching to a CI run as an artifact.

Frame building is a pure function over already-collected data
(:func:`build_frames` takes ticks + an optional ``topology()`` dict +
optional trace spans), so it never perturbs the serving hot path.  Tile
fields that need tracing (running tasks, queue depth, SLA hit rate,
per-shard completions) degrade to ``None`` on untraced runs; the
cluster-wide tick counters are always present.  :class:`LiveConsole`
wraps the whole pipeline around a :class:`~repro.api.deployment.Deployment`
and can stream every frame into a
:class:`~repro.telemetry.export.JsonlExporter` event feed.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "ConsoleFrame",
    "LiveConsole",
    "ShardTile",
    "build_frames",
    "render_ansi",
    "render_html",
]

#: Tile name used when the backend is a single cluster (no shards) or no
#: topology was provided: every task is attributed to one synthetic tile.
CLUSTER_TILE = "cluster"


@dataclass(frozen=True)
class ShardTile:
    """One shard's slice of a console frame.

    Static identity (name, region, node count, energy price) comes from
    the backend's ``topology()``; the live fields come from trace spans
    and are ``None`` on untraced runs.
    """

    shard: str
    region: Optional[str]
    nodes: Optional[int]
    energy_price_per_kwh: Optional[float]
    #: tasks executing on this shard at the frame's window end (traced only).
    running: Optional[int]
    #: ``running / nodes`` -- a load proxy in tasks-per-node (traced only).
    load: Optional[float]
    #: tasks whose final execute segment ended inside this window (traced only).
    completed_tasks: Optional[int]
    #: autoscale actions targeting this shard inside this window.
    actions: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        """The tile as a JSON-ready dict (one object per tile).

        Returns:
            All tile fields, with ``actions`` as a list.
        """
        return {
            "shard": self.shard,
            "region": self.region,
            "nodes": self.nodes,
            "energy_price_per_kwh": self.energy_price_per_kwh,
            "running": self.running,
            "load": self.load,
            "completed_tasks": self.completed_tasks,
            "actions": list(self.actions),
        }


@dataclass(frozen=True)
class ConsoleFrame:
    """One rendered-ready console frame: a tick plus its shard tiles.

    The cluster-wide counters mirror the source
    :class:`~repro.api.deployment.ServingTick` exactly (same windows,
    same counts), so summing frames reproduces the final
    :class:`~repro.serving.loop.ServingReport` totals.  Trace-derived
    fields (queue depth, SLA, tile live fields) are ``None`` when the
    run was not traced.
    """

    index: int
    start_s: float
    end_s: float
    arrivals: int
    completed: int
    cumulative_completed: int
    p50_latency_s: float
    p95_latency_s: float
    #: batches waiting for placement at the window end (traced only).
    queue_depth: Optional[int]
    #: deadline-carrying requests completed in-window that met it (traced only).
    sla_hits: Optional[int]
    #: deadline-carrying requests completed in-window (traced only).
    sla_total: Optional[int]
    #: spans ended in-window per stage name (from the tick; traced only).
    stage_spans: Optional[Dict[str, int]]
    tiles: Tuple[ShardTile, ...] = ()
    #: autoscale events in-window: dicts with ``action``/``target``/``time_s``.
    actions: Tuple[Dict[str, object], ...] = ()

    @property
    def sla_hit_rate(self) -> Optional[float]:
        """Fraction of in-window deadline-carrying completions that met it.

        Returns:
            ``sla_hits / sla_total``; None when untraced or when no
            completed request in this window carried a deadline.
        """
        if not self.sla_total:
            return None
        return self.sla_hits / self.sla_total

    def to_dict(self) -> Dict[str, object]:
        """The frame as a JSON-ready dict (the JSONL event-feed record).

        Returns:
            All frame fields plus ``"type": "console.frame"`` so feed
            consumers can interleave frames with metric snapshots.
        """
        return {
            "type": "console.frame",
            "tick": self.index,
            "window_s": [self.start_s, self.end_s],
            "arrivals": self.arrivals,
            "completed": self.completed,
            "cumulative_completed": self.cumulative_completed,
            "p50_latency_s": self.p50_latency_s,
            "p95_latency_s": self.p95_latency_s,
            "queue_depth": self.queue_depth,
            "sla_hits": self.sla_hits,
            "sla_total": self.sla_total,
            "sla_hit_rate": self.sla_hit_rate,
            "stage_spans": dict(sorted(self.stage_spans.items()))
            if self.stage_spans is not None
            else None,
            "tiles": [tile.to_dict() for tile in self.tiles],
            "actions": [dict(action) for action in self.actions],
        }


# --------------------------------------------------------------------- #
# Frame building
# --------------------------------------------------------------------- #
def _shard_entries(
    topology: Optional[Mapping[str, object]],
) -> List[Tuple[str, Optional[str], Optional[int], Optional[float]]]:
    """Static tile identities from a backend ``topology()`` dict."""
    if topology is None:
        return [(CLUSTER_TILE, None, None, None)]
    shards = topology.get("shards")
    if not shards:
        nodes = topology.get("total_nodes")
        return [(CLUSTER_TILE, None, int(nodes) if nodes is not None else None, None)]
    entries = []
    for shard in shards:
        entries.append(
            (
                str(shard.get("name")),
                shard.get("region"),
                int(shard["nodes"]) if shard.get("nodes") is not None else None,
                shard.get("energy_price_per_kwh"),
            )
        )
    return entries


def _count_through(sorted_times: Sequence[float], time_s: float) -> int:
    """How many of the sorted instants are ``<= time_s``."""
    return bisect_right(sorted_times, time_s)


def _take_window(
    events: Sequence[Tuple[float, object]], pos: int, end_s: float, last: bool
) -> Tuple[List[object], int]:
    """Pop the events falling in a half-open window ending at ``end_s``.

    Mirrors ``serve_iter``'s windowing: events land in ``[start, end)``
    except the final window, which is closed on the right so the horizon
    instant is not lost.
    """
    taken: List[object] = []
    while pos < len(events) and (
        events[pos][0] < end_s or (last and events[pos][0] <= end_s)
    ):
        taken.append(events[pos][1])
        pos += 1
    return taken, pos


def build_frames(
    ticks: Iterable[object],
    topology: Optional[Mapping[str, object]] = None,
    spans: Optional[Sequence[object]] = None,
) -> List[ConsoleFrame]:
    """Build the console frame model from already-collected run data.

    A pure function: ticks come from ``Deployment.serve_iter``, topology
    from ``Deployment.topology()``/``backend.topology()``, spans from
    ``report.trace_spans``.  Nothing here touches the serving hot path.

    Args:
        ticks: the run's :class:`~repro.api.deployment.ServingTick`
            stream (any iterable; consumed once).
        topology: the backend's ``topology()`` dict; None degrades to a
            single synthetic ``"cluster"`` tile with no static identity.
        spans: the run's trace spans; None (untraced run) leaves every
            trace-derived field ``None``.

    Returns:
        One :class:`ConsoleFrame` per tick, in tick order.
    """
    tick_list = list(ticks)
    entries = _shard_entries(topology)
    shard_names = [entry[0] for entry in entries]
    traced = spans is not None

    # Pre-index the spans once: per-shard execute intervals, pending
    # intervals, completion/SLA/autoscale instants.  Open spans (end_s
    # None) never appear in the end lists, so they count as running or
    # queued forever.
    exec_starts: Dict[str, List[float]] = {name: [] for name in shard_names}
    exec_ends: Dict[str, List[float]] = {name: [] for name in shard_names}
    pend_starts: List[float] = []
    pend_ends: List[float] = []
    completions: List[Tuple[float, str]] = []
    sla_marks: List[Tuple[float, bool]] = []
    autoscale_events: List[Tuple[float, Dict[str, object]]] = []
    if traced:
        execs_by_trace: Dict[str, List[object]] = {}
        task_roots: List[object] = []
        for span in spans:
            name = span.name
            if name == "task.execute":
                shard = span.annotations.get("shard") or CLUSTER_TILE
                if shard not in exec_starts:
                    shard = shard_names[0]
                exec_starts[shard].append(span.start_s)
                if span.end_s is not None:
                    exec_ends[shard].append(span.end_s)
                execs_by_trace.setdefault(span.trace_id, []).append(span)
            elif name == "task.pending":
                pend_starts.append(span.start_s)
                if span.end_s is not None:
                    pend_ends.append(span.end_s)
            elif name == "task":
                if span.end_s is not None and (
                    span.annotations.get("verdict") == "completed"
                ):
                    task_roots.append(span)
            elif name == "request":
                met = span.annotations.get("deadline_met")
                if met is not None and span.end_s is not None:
                    sla_marks.append((span.end_s, bool(met)))
            elif name.startswith("autoscale."):
                autoscale_events.append(
                    (
                        span.start_s,
                        {
                            "time_s": span.start_s,
                            "action": name[len("autoscale.") :],
                            "target": span.annotations.get("target"),
                            "reason": span.annotations.get("reason"),
                        },
                    )
                )
        # A completed task's *last* execute segment carries the shard the
        # completion happened on (earlier segments end at migrations).
        for root in task_roots:
            segments = execs_by_trace.get(root.trace_id)
            shard = CLUSTER_TILE
            if segments:
                final = max(segments, key=lambda s: s.end_s or s.start_s)
                shard = final.annotations.get("shard") or CLUSTER_TILE
            if shard not in exec_starts:
                shard = shard_names[0]
            completions.append((root.end_s, shard))
        for starts in exec_starts.values():
            starts.sort()
        for ends in exec_ends.values():
            ends.sort()
        pend_starts.sort()
        pend_ends.sort()
        completions.sort(key=lambda item: item[0])
        sla_marks.sort(key=lambda item: item[0])
        autoscale_events.sort(key=lambda item: item[0])

    frames: List[ConsoleFrame] = []
    done_pos = sla_pos = act_pos = 0
    for i, tick in enumerate(tick_list):
        last = i == len(tick_list) - 1
        queue_depth = sla_hits = sla_total = None
        window_actions: Tuple[Dict[str, object], ...] = ()
        done_by_shard: Dict[str, int] = {}
        if traced:
            window_done, done_pos = _take_window(completions, done_pos, tick.end_s, last)
            for shard in window_done:
                done_by_shard[shard] = done_by_shard.get(shard, 0) + 1
            window_sla, sla_pos = _take_window(sla_marks, sla_pos, tick.end_s, last)
            sla_total = len(window_sla)
            sla_hits = sum(1 for met in window_sla if met)
            window_acts, act_pos = _take_window(
                autoscale_events, act_pos, tick.end_s, last
            )
            window_actions = tuple(window_acts)
            queue_depth = _count_through(pend_starts, tick.end_s) - _count_through(
                pend_ends, tick.end_s
            )
        tiles = []
        for shard, region, nodes, price in entries:
            running = load = None
            done = None
            if traced:
                running = _count_through(
                    exec_starts[shard], tick.end_s
                ) - _count_through(exec_ends[shard], tick.end_s)
                load = running / nodes if nodes else None
                done = done_by_shard.get(shard, 0)
            tiles.append(
                ShardTile(
                    shard=shard,
                    region=region,
                    nodes=nodes,
                    energy_price_per_kwh=price,
                    running=running,
                    load=load,
                    completed_tasks=done,
                    actions=tuple(
                        str(action["action"])
                        for action in window_actions
                        if action.get("target") == shard
                    ),
                )
            )
        frames.append(
            ConsoleFrame(
                index=tick.index,
                start_s=tick.start_s,
                end_s=tick.end_s,
                arrivals=tick.arrivals,
                completed=tick.completed,
                cumulative_completed=tick.cumulative_completed,
                p50_latency_s=tick.p50_latency_s,
                p95_latency_s=tick.p95_latency_s,
                queue_depth=queue_depth,
                sla_hits=sla_hits,
                sla_total=sla_total,
                stage_spans=dict(tick.stage_spans)
                if tick.stage_spans is not None
                else None,
                tiles=tuple(tiles),
                actions=window_actions,
            )
        )
    return frames


# --------------------------------------------------------------------- #
# ANSI renderer
# --------------------------------------------------------------------- #
_RESET = "\x1b[0m"
_DIM = "\x1b[2m"
_BOLD = "\x1b[1m"
_GREEN = "\x1b[32m"
_YELLOW = "\x1b[33m"
_RED = "\x1b[31m"


def _paint(text: str, code: str, color: bool) -> str:
    """Wrap ``text`` in an ANSI code (or pass through when colour is off)."""
    return f"{code}{text}{_RESET}" if color else text


def _load_colour(load: Optional[float]) -> str:
    """Green under 0.7 tasks/node, yellow under 1.0, red at saturation."""
    if load is None or load < 0.7:
        return _GREEN
    if load < 1.0:
        return _YELLOW
    return _RED


def render_ansi(frame: ConsoleFrame, color: bool = True) -> str:
    """Render one frame as a terminal dashboard block.

    Args:
        frame: the frame to render.
        color: emit ANSI colour/emphasis codes; pass False for plain
            text (logs, dumb terminals, golden-file tests).

    Returns:
        A multi-line string; one block per frame, safe to print in a
        loop (no cursor control, just appended blocks).
    """
    lines: List[str] = []
    header = (
        f"tick {frame.index:>3}  "
        f"[{frame.start_s:8.1f}s → {frame.end_s:8.1f}s]"
    )
    lines.append(_paint(f"── {header} ", _BOLD, color) + "─" * 24)
    counters = (
        f"  arrivals {frame.arrivals:>5}   completed {frame.completed:>5}   "
        f"cumulative {frame.cumulative_completed:>6}   "
        f"p50 {frame.p50_latency_s:7.3f}s   p95 {frame.p95_latency_s:7.3f}s"
    )
    if frame.queue_depth is not None:
        counters += f"   queue {frame.queue_depth:>4}"
    rate = frame.sla_hit_rate
    if rate is not None:
        code = _GREEN if rate >= 0.99 else (_YELLOW if rate >= 0.9 else _RED)
        counters += "   SLA " + _paint(f"{rate * 100.0:5.1f}%", code, color)
    lines.append(counters)
    for tile in frame.tiles:
        region = tile.region or "-"
        nodes = f"{tile.nodes}n" if tile.nodes is not None else "-"
        price = (
            f"${tile.energy_price_per_kwh:.3f}/kWh"
            if tile.energy_price_per_kwh is not None
            else "-"
        )
        row = f"  {tile.shard:<14} {region:<12} {nodes:>5}  {price:>12}"
        if tile.load is not None:
            row += "  load " + _paint(
                f"{tile.load:5.2f}", _load_colour(tile.load), color
            )
        if tile.running is not None:
            row += f"  run {tile.running:>4}"
        if tile.completed_tasks is not None:
            row += f"  done {tile.completed_tasks:>4}"
        if tile.actions:
            row += "  " + _paint("↯ " + ",".join(tile.actions), _YELLOW, color)
        lines.append(row)
    for action in frame.actions:
        if action.get("target") is None:
            lines.append(
                "  "
                + _paint(
                    f"↯ autoscale {action['action']}"
                    + (f" ({action['reason']})" if action.get("reason") else ""),
                    _YELLOW,
                    color,
                )
            )
    if frame.stage_spans:
        stages = "  ".join(
            f"{name}={count}" for name, count in sorted(frame.stage_spans.items())
        )
        lines.append(_paint(f"  stages: {stages}", _DIM, color))
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# HTML renderer
# --------------------------------------------------------------------- #
_HTML_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>__TITLE__</title>
<style>
body { font-family: ui-monospace, Menlo, Consolas, monospace; margin: 1.5rem;
       background: #111418; color: #d7dde4; }
h1 { font-size: 1.1rem; }
.controls { margin: .8rem 0; display: flex; gap: 1rem; align-items: center; }
.controls input[type=range] { width: 22rem; }
.counters { margin: .6rem 0; color: #9fb4c7; }
.counters b { color: #e8eef4; }
.tiles { display: flex; flex-wrap: wrap; gap: .7rem; }
.tile { border: 1px solid #2c3540; border-radius: 6px; padding: .6rem .8rem;
        min-width: 13rem; background: #171c22; }
.tile h2 { margin: 0 0 .3rem; font-size: .95rem; }
.tile .meta { color: #7e8c9a; font-size: .8rem; }
.tile .load-ok { color: #5fd38a; }
.tile .load-warn { color: #e8c35a; }
.tile .load-hot { color: #ef6a6a; }
.tile .actions { color: #e8c35a; font-size: .8rem; }
.stages { margin-top: .8rem; color: #7e8c9a; font-size: .85rem; }
.actions-log { margin-top: .5rem; color: #e8c35a; font-size: .85rem; }
</style>
</head>
<body>
<h1>__TITLE__</h1>
<div class="controls">
  <label>frame <input id="scrub" type="range" min="0" max="0" value="0"></label>
  <span id="frameno"></span>
</div>
<div class="counters" id="counters"></div>
<div class="tiles" id="tiles"></div>
<div class="actions-log" id="actions"></div>
<div class="stages" id="stages"></div>
<script>
const FRAMES = __FRAMES__;
const scrub = document.getElementById("scrub");
scrub.max = Math.max(0, FRAMES.length - 1);
scrub.value = scrub.max;
function fmt(x, digits) { return x === null ? "-" : Number(x).toFixed(digits); }
function loadClass(load) {
  if (load === null) return "meta";
  if (load < 0.7) return "load-ok";
  if (load < 1.0) return "load-warn";
  return "load-hot";
}
function draw() {
  const f = FRAMES[Number(scrub.value)];
  if (!f) return;
  document.getElementById("frameno").textContent =
    "tick " + f.tick + "  [" + fmt(f.window_s[0], 1) + "s \\u2192 " +
    fmt(f.window_s[1], 1) + "s]";
  let counters = "arrivals <b>" + f.arrivals + "</b>  completed <b>" +
    f.completed + "</b>  cumulative <b>" + f.cumulative_completed +
    "</b>  p50 <b>" + fmt(f.p50_latency_s, 3) + "s</b>  p95 <b>" +
    fmt(f.p95_latency_s, 3) + "s</b>";
  if (f.queue_depth !== null) counters += "  queue <b>" + f.queue_depth + "</b>";
  if (f.sla_hit_rate !== null)
    counters += "  SLA <b>" + fmt(f.sla_hit_rate * 100, 1) + "%</b>";
  document.getElementById("counters").innerHTML = counters;
  const tiles = document.getElementById("tiles");
  tiles.innerHTML = "";
  for (const t of f.tiles) {
    const div = document.createElement("div");
    div.className = "tile";
    let html = "<h2>" + t.shard + "</h2><div class='meta'>" +
      (t.region || "-") + " \\u00b7 " +
      (t.nodes === null ? "-" : t.nodes + " nodes") + " \\u00b7 " +
      (t.energy_price_per_kwh === null ? "-"
        : "$" + fmt(t.energy_price_per_kwh, 3) + "/kWh") + "</div>";
    if (t.load !== null)
      html += "<div class='" + loadClass(t.load) + "'>load " +
        fmt(t.load, 2) + " (" + t.running + " running)</div>";
    if (t.completed_tasks !== null)
      html += "<div class='meta'>done " + t.completed_tasks + "</div>";
    if (t.actions.length)
      html += "<div class='actions'>\\u21af " + t.actions.join(", ") + "</div>";
    div.innerHTML = html;
    tiles.appendChild(div);
  }
  document.getElementById("actions").textContent = f.actions.length
    ? f.actions.map(a => "\\u21af " + a.action +
        (a.target ? " \\u2192 " + a.target : "")).join("   ")
    : "";
  document.getElementById("stages").textContent = f.stage_spans
    ? "stages: " + Object.entries(f.stage_spans)
        .map(([k, v]) => k + "=" + v).join("  ")
    : "";
}
scrub.addEventListener("input", draw);
draw();
</script>
</body>
</html>
"""


def render_html(
    frames: Sequence[ConsoleFrame], title: str = "deployment console"
) -> str:
    """Render a frame sequence as one self-contained HTML document.

    The document embeds the frame model as inline JSON and a small
    inline script with a frame scrubber -- no external assets, so the
    single file works as a CI artifact or an email attachment.

    Args:
        frames: the frames to embed, in tick order.
        title: the page title/heading.

    Returns:
        The complete HTML document as a string.
    """
    payload = json.dumps(
        [frame.to_dict() for frame in frames], sort_keys=True
    ).replace("</", "<\\/")
    safe_title = (
        title.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )
    return _HTML_TEMPLATE.replace("__TITLE__", safe_title).replace(
        "__FRAMES__", payload
    )


# --------------------------------------------------------------------- #
# Deployment-facing wrapper
# --------------------------------------------------------------------- #
class LiveConsole:
    """Frame pipeline around a deployment: serve, model, render, export.

    Wraps ``serve_iter()`` + :func:`build_frames` + the renderers, and
    optionally streams every frame dict into a
    :class:`~repro.telemetry.export.JsonlExporter` event feed.  Holds no
    serving state itself; each :meth:`run` is one workload.
    """

    def __init__(
        self,
        deployment: object,
        tick_s: float = 5.0,
        exporter: Optional[object] = None,
        color: bool = True,
    ) -> None:
        """Bind the console to a deployment.

        Args:
            deployment: a :class:`~repro.api.deployment.Deployment` (or
                anything with ``serve_iter``/``last_report``/``backend``).
            tick_s: frame window width, forwarded to ``serve_iter``.
            exporter: optional sink with a ``write(record)`` method
                (e.g. :class:`~repro.telemetry.export.JsonlExporter`);
                every built frame is written to it as one event.
            color: default colour setting for :meth:`stream`.
        """
        if tick_s <= 0:
            raise ValueError(f"tick_s must be > 0, got {tick_s}")
        self.deployment = deployment
        self.tick_s = tick_s
        self.exporter = exporter
        self.color = color

    def run(
        self, workload: object, batch_policy: Optional[object] = None
    ) -> List[ConsoleFrame]:
        """Serve one workload and build its console frames.

        Args:
            workload: the serving workload, forwarded to ``serve_iter``.
            batch_policy: optional per-run batching override.

        Returns:
            The run's frames, in tick order (also written to the
            exporter when one is attached).
        """
        ticks = list(
            self.deployment.serve_iter(
                workload, tick_s=self.tick_s, batch_policy=batch_policy
            )
        )
        report = self.deployment.last_report
        spans = getattr(report, "trace_spans", None) if report is not None else None
        frames = build_frames(
            ticks, topology=self.deployment.backend.topology(), spans=spans
        )
        if self.exporter is not None:
            for frame in frames:
                self.exporter.write(frame.to_dict())
        return frames

    def stream(
        self, workload: object, batch_policy: Optional[object] = None
    ) -> Iterator[str]:
        """Serve one workload and yield each frame's ANSI rendering.

        Args:
            workload: the serving workload.
            batch_policy: optional per-run batching override.

        Returns:
            An iterator of rendered blocks, one per frame, for a
            ``for block in console.stream(...): print(block)`` loop.
        """
        for frame in self.run(workload, batch_policy=batch_policy):
            yield render_ansi(frame, color=self.color)

    def html(
        self, frames: Sequence[ConsoleFrame], title: str = "deployment console"
    ) -> str:
        """Render previously-built frames as the single-file HTML snapshot.

        Args:
            frames: frames from :meth:`run`.
            title: the page title.

        Returns:
            The complete HTML document.
        """
        return render_html(frames, title=title)
