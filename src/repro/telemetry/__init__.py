"""Cluster-wide metrics pipeline: record in O(1), roll up on demand.

The serving and scheduling hot paths (gateway admission, batch flushes,
HEATS placement, shard routing) emit observations into a shared
:class:`MetricsRegistry`; consumers -- the autoscale control loop,
exporters, benchmarks -- read windowed rollups without ever slowing the
recording side down:

* :mod:`repro.telemetry.metrics`  -- :class:`Counter`, :class:`Gauge`,
  :class:`Histogram` backed by a fixed-size :class:`RingBuffer`; recording
  is O(1) with no per-event aggregation, rollups (windowed EWMA, linear
  quantiles, means) run at read time.
* :mod:`repro.telemetry.registry` -- the named-instrument bus and the
  immutable :class:`MetricsSnapshot` view.
* :mod:`repro.telemetry.export`   -- pluggable exporters: text rendering
  for benchmark result files, JSON Lines feeds for dashboards, in-memory
  history for tests/controllers.
* :mod:`repro.telemetry.trace`    -- request-scoped spans on the simulated
  clock: per-deployment :class:`Tracer` with a no-op mode, stage
  summaries with critical-path attribution via :func:`summarize_trace`.
* :mod:`repro.telemetry.profile`  -- the host-time :class:`PhaseProfiler`:
  wall-clock phase breakdowns of the serving/scheduling hot path itself.
* :mod:`repro.telemetry.console`  -- the live deployment console: per-shard
  tiles over ``serve_iter()`` ticks rendered as ANSI blocks or a
  self-contained HTML snapshot.
"""

from repro.telemetry.metrics import Counter, Gauge, Histogram, RingBuffer
from repro.telemetry.registry import (
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.telemetry.export import (
    Exporter,
    InMemoryExporter,
    JsonlExporter,
    TextExporter,
    export_text,
    render_text,
)
from repro.telemetry.trace import (
    Span,
    StageStats,
    Tracer,
    TraceSummary,
    summarize_trace,
)
from repro.telemetry.profile import PhaseProfiler
from repro.telemetry.console import (
    ConsoleFrame,
    LiveConsole,
    ShardTile,
    build_frames,
    render_ansi,
    render_html,
)

__all__ = [
    "ConsoleFrame",
    "Counter",
    "Exporter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "InMemoryExporter",
    "JsonlExporter",
    "LiveConsole",
    "MetricsRegistry",
    "MetricsSnapshot",
    "PhaseProfiler",
    "RingBuffer",
    "ShardTile",
    "Span",
    "StageStats",
    "TextExporter",
    "Tracer",
    "TraceSummary",
    "build_frames",
    "export_text",
    "render_ansi",
    "render_html",
    "render_text",
    "summarize_trace",
]
