"""Cluster-wide metrics pipeline: record in O(1), roll up on demand.

The serving and scheduling hot paths (gateway admission, batch flushes,
HEATS placement, shard routing) emit observations into a shared
:class:`MetricsRegistry`; consumers -- the autoscale control loop,
exporters, benchmarks -- read windowed rollups without ever slowing the
recording side down:

* :mod:`repro.telemetry.metrics`  -- :class:`Counter`, :class:`Gauge`,
  :class:`Histogram` backed by a fixed-size :class:`RingBuffer`; recording
  is O(1) with no per-event aggregation, rollups (windowed EWMA, linear
  quantiles, means) run at read time.
* :mod:`repro.telemetry.registry` -- the named-instrument bus and the
  immutable :class:`MetricsSnapshot` view.
* :mod:`repro.telemetry.export`   -- pluggable exporters: text rendering
  for benchmark result files, in-memory history for tests/controllers.
* :mod:`repro.telemetry.trace`    -- request-scoped spans on the simulated
  clock: per-deployment :class:`Tracer` with a no-op mode, stage
  summaries with critical-path attribution via :func:`summarize_trace`.
"""

from repro.telemetry.metrics import Counter, Gauge, Histogram, RingBuffer
from repro.telemetry.registry import (
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.telemetry.export import (
    Exporter,
    InMemoryExporter,
    TextExporter,
    export_text,
    render_text,
)
from repro.telemetry.trace import (
    Span,
    StageStats,
    Tracer,
    TraceSummary,
    summarize_trace,
)

__all__ = [
    "Counter",
    "Exporter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "InMemoryExporter",
    "MetricsRegistry",
    "MetricsSnapshot",
    "RingBuffer",
    "Span",
    "StageStats",
    "TextExporter",
    "Tracer",
    "TraceSummary",
    "export_text",
    "render_text",
    "summarize_trace",
]
