"""Request-scoped tracing on the simulated clock.

The aggregate counters and histograms in :mod:`repro.telemetry.registry`
answer *how much* -- how many requests were admitted, what the latency
distribution looked like.  They cannot answer *where a single request's
latency went* once it crossed gateway -> batcher -> scheduler -> shard.
This module adds that causal layer: cheap span objects recorded through a
per-deployment :class:`Tracer`, stamped with simulated-clock timestamps
and linked to their parents, summarised per stage by
:func:`summarize_trace`.

Design constraints (mirroring the serving hot path this instruments):

* **Pay for what you use.**  A disabled tracer never allocates a span;
  every instrumentation site guards on a single cached boolean, so the
  array-native hot-path numbers are unaffected when tracing is off.
* **Monotone within a span.**  ``Span.end`` rejects an end time before
  the start time, which is how the property-test suite pins the "no span
  ends before it starts" invariant at the source.
* **Deterministic.**  Span ids are a per-tracer counter, timestamps are
  simulated seconds; two runs of the same workload produce identical
  traces, which is what lets the benchmark gate diff them.

Stage names are the public schema (see ``docs/observability.md``):

========================  =====================================================
span name                 interval
========================  =====================================================
``request``               arrival -> terminal verdict (root, one per request)
``request.gateway``       arrival -> drained from the admission queue
``request.batch_wait``    enqueued in the batcher -> batch flush
``task``                  batch flush -> task finished / abandoned (root)
``task.pending``          batch flush -> first successful placement
``task.execute``          one contiguous execution segment on one node
``task.migrate``          migration downtime between two execute segments
``autoscale.*``           zero-length actuation events from the autoscaler
``chaos.*``               zero-length fault injections from a scenario's
                          :class:`~repro.scenarios.chaos.ChaosEngine`
                          (``chaos.node_failure``, ``chaos.partition``, ...)
========================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

__all__ = [
    "Span",
    "Tracer",
    "StageStats",
    "TraceSummary",
    "summarize_trace",
    "REQUEST_STAGES",
    "TASK_STAGES",
]

#: Stage names carved out of the request's own trace (trace id = request id).
REQUEST_STAGES: Tuple[str, ...] = ("request.gateway", "request.batch_wait")

#: Stage names carved out of the linked task trace (trace id = task id).
TASK_STAGES: Tuple[str, ...] = ("task.pending", "task.execute", "task.migrate")


class Span:
    """One timed interval on the simulated clock.

    A span is deliberately tiny: a name, a trace id tying it to the
    request or task it belongs to, start/end seconds, an optional parent
    link, and a free-form annotation dict.  Spans are mutable until
    :meth:`end` is called; the tracer hands them out and the
    instrumentation sites close them as the simulation crosses each seam.
    """

    __slots__ = ("name", "span_id", "trace_id", "start_s", "parent_id", "end_s", "annotations")

    def __init__(
        self,
        name: str,
        span_id: int,
        trace_id: str,
        start_s: float,
        parent_id: Optional[int] = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.trace_id = trace_id
        self.start_s = float(start_s)
        self.parent_id = parent_id
        self.end_s: Optional[float] = None
        self.annotations: Dict[str, Any] = {}

    def annotate(self, key: str, value: Any) -> "Span":
        """Attach one key/value annotation to the span.

        Args:
            key: Annotation name (e.g. ``"node"``, ``"verdict"``).
            value: Any JSON-representable value.

        Returns:
            This span, so annotations chain fluently.
        """
        self.annotations[key] = value
        return self

    def end(self, end_s: float, **annotations: Any) -> "Span":
        """Close the span at ``end_s``, optionally annotating in one call.

        Args:
            end_s: Simulated end time; must be >= the span's start time.
            **annotations: Extra annotations applied before closing.

        Returns:
            This span.

        Raises:
            ValueError: if ``end_s`` precedes ``start_s`` or the span is
                already ended (double-close is always an instrumentation
                bug worth failing loudly on).
        """
        if self.end_s is not None:
            raise ValueError(f"span {self.name!r} ({self.span_id}) ended twice")
        end_s = float(end_s)
        if end_s < self.start_s:
            raise ValueError(
                f"span {self.name!r} would end at {end_s} before it started at {self.start_s}"
            )
        for key, value in annotations.items():
            self.annotations[key] = value
        self.end_s = end_s
        return self

    @property
    def ended(self) -> bool:
        """Whether :meth:`end` has been called."""
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        """Simulated seconds covered by the span (0.0 while still open)."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def to_dict(self) -> Dict[str, Any]:
        """Serialise the span for JSON export.

        Returns:
            A plain dict with the span's fields and annotations.
        """
        return {
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "annotations": dict(self.annotations),
        }

    def __repr__(self) -> str:
        state = f"{self.start_s:.3f}..{self.end_s:.3f}" if self.ended else f"{self.start_s:.3f}.."
        return f"Span({self.name!r}, trace={self.trace_id!r}, {state})"


class _NullSpan(Span):
    """Shared do-nothing span handed out by a disabled tracer.

    Every mutator is a no-op so call sites that did not guard on
    ``tracer.enabled`` still cost almost nothing and never accumulate
    state.
    """

    def __init__(self) -> None:
        super().__init__("null", -1, "", 0.0)

    def annotate(self, key: str, value: Any) -> "Span":
        """Discard the annotation.

        Args:
            key: Ignored.
            value: Ignored.

        Returns:
            This shared null span.
        """
        return self

    def end(self, end_s: float, **annotations: Any) -> "Span":
        """Discard the close; a null span is never considered ended.

        Args:
            end_s: Ignored.
            **annotations: Ignored.

        Returns:
            This shared null span.
        """
        return self


#: Module-level singleton returned by every call on a disabled tracer.
NULL_SPAN = _NullSpan()


class Tracer:
    """Per-deployment span recorder with an always-on no-op mode.

    A tracer is either *enabled* -- it allocates real :class:`Span`
    objects and keeps them until :meth:`drain` -- or *disabled*, in which
    case every call returns the shared :data:`NULL_SPAN` and records
    nothing.  Instrumentation sites additionally cache
    ``tracer is not None and tracer.enabled`` into a local boolean so the
    disabled path costs one branch, not an attribute chase.
    """

    __slots__ = ("enabled", "_spans", "_next_id")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._spans: List[Span] = []
        self._next_id = 0

    @classmethod
    def disabled(cls) -> "Tracer":
        """Build a no-op tracer.

        Returns:
            A tracer whose every method is a cheap no-op.
        """
        return cls(enabled=False)

    def start_span(
        self,
        name: str,
        start_s: float,
        trace_id: str,
        parent: Optional[Span] = None,
        **annotations: Any,
    ) -> Span:
        """Open a new span (or return the null span when disabled).

        Args:
            name: Stage name, e.g. ``"request.gateway"``.
            start_s: Simulated start time in seconds.
            trace_id: Request id or task id the span belongs to.
            parent: Optional enclosing span; records its id as the link.
            **annotations: Initial annotations.

        Returns:
            The opened span; close it with :meth:`Span.end`.
        """
        if not self.enabled:
            return NULL_SPAN
        span = Span(
            name,
            self._next_id,
            trace_id,
            start_s,
            parent_id=parent.span_id if parent is not None else None,
        )
        self._next_id += 1
        if annotations:
            span.annotations.update(annotations)
        self._spans.append(span)
        return span

    def event(self, name: str, time_s: float, trace_id: str = "", **annotations: Any) -> Span:
        """Record a zero-length event (start == end).

        Args:
            name: Event name, e.g. ``"autoscale.add_shard"``.
            time_s: Simulated instant the event occurred.
            trace_id: Optional trace id to file the event under.
            **annotations: Annotations describing the event.

        Returns:
            The already-closed span.
        """
        if not self.enabled:
            return NULL_SPAN
        span = self.start_span(name, time_s, trace_id, **annotations)
        span.end(time_s)
        return span

    @property
    def span_count(self) -> int:
        """Number of spans recorded since the last drain."""
        return len(self._spans)

    def drain(self) -> List[Span]:
        """Remove and return every recorded span.

        The serving loop calls this once per run so consecutive runs on
        one deployment do not bleed spans into each other's reports.

        Returns:
            The recorded spans, in creation order.
        """
        spans, self._spans = self._spans, []
        return spans


@dataclass(frozen=True)
class StageStats:
    """Latency statistics for one stage (one span name)."""

    stage: str
    count: int
    total_s: float
    mean_s: float
    p50_s: float
    p99_s: float

    def to_dict(self) -> Dict[str, Any]:
        """Serialise for JSON export.

        Returns:
            A plain dict of the stage statistics.
        """
        return {
            "stage": self.stage,
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "p50_s": self.p50_s,
            "p99_s": self.p99_s,
        }


@dataclass(frozen=True)
class TraceSummary:
    """Per-stage latency breakdown with critical-path attribution.

    ``stages`` maps span name to :class:`StageStats`.  ``critical_path``
    attributes each completed request's end-to-end latency to the stages
    it actually crossed -- gateway wait, batch wait, scheduler pending
    time, execution, migration downtime, and an ``other`` remainder --
    as fractions that sum to ~1.0.  ``verdicts`` counts terminal
    outcomes (completed / dropped / rejected_*).
    """

    stages: Dict[str, StageStats]
    critical_path: Dict[str, float]
    verdicts: Dict[str, int]
    span_count: int
    open_spans: int

    def stage(self, name: str) -> Optional[StageStats]:
        """Look up one stage's statistics.

        Args:
            name: Span/stage name, e.g. ``"task.execute"``.

        Returns:
            The stats for that stage, or ``None`` if no span used it.
        """
        return self.stages.get(name)

    def to_dict(self) -> Dict[str, Any]:
        """Serialise for JSON export (the shape BENCH files embed).

        Returns:
            A plain dict with stages, critical path and verdict counts.
        """
        return {
            "stages": {name: stats.to_dict() for name, stats in sorted(self.stages.items())},
            "critical_path": dict(sorted(self.critical_path.items())),
            "verdicts": dict(sorted(self.verdicts.items())),
            "span_count": self.span_count,
            "open_spans": self.open_spans,
        }

    def format(self) -> str:
        """Render a fixed-width table of the breakdown.

        Returns:
            A human-readable multi-line summary; the single line
            ``"(no spans)"`` for an empty trace.
        """
        if not self.stages and self.span_count == 0:
            return "(no spans)"
        lines = [
            f"{'stage':<22} {'count':>7} {'p50 (s)':>10} {'p99 (s)':>10} {'total (s)':>11}"
        ]
        for name in sorted(self.stages):
            stats = self.stages[name]
            lines.append(
                f"{name:<22} {stats.count:>7d} {stats.p50_s:>10.4f} "
                f"{stats.p99_s:>10.4f} {stats.total_s:>11.2f}"
            )
        if self.critical_path:
            parts = ", ".join(
                f"{stage}={fraction:.1%}" for stage, fraction in sorted(self.critical_path.items())
            )
            lines.append(f"critical path: {parts}")
        if self.verdicts:
            parts = ", ".join(f"{k}={v}" for k, v in sorted(self.verdicts.items()))
            lines.append(f"verdicts: {parts}")
        return "\n".join(lines)


def _stage_stats(name: str, durations: List[float]) -> StageStats:
    array = np.asarray(durations, dtype=np.float64)
    p50, p99 = np.percentile(array, (50.0, 99.0))
    return StageStats(
        stage=name,
        count=int(array.size),
        total_s=float(array.sum()),
        mean_s=float(array.mean()),
        p50_s=float(p50),
        p99_s=float(p99),
    )


def summarize_trace(spans: Iterable[Span]) -> TraceSummary:
    """Fold a span list into per-stage stats and critical-path shares.

    Critical-path attribution walks every *completed* request root: its
    end-to-end latency decomposes into the request-trace stages
    (``request.gateway``, ``request.batch_wait``), the linked task-trace
    stages (``task.pending``, ``task.execute``, ``task.migrate`` via the
    root's ``task_id`` annotation), plus an ``other`` remainder for time
    not covered by any instrumented stage.  Shares are totals across all
    completed requests, normalised to fractions.

    An empty span list (a traced run that completed zero requests) is a
    valid input: the result is a well-formed all-zeros summary -- empty
    ``stages``/``critical_path``/``verdicts``, zero counts -- so callers
    never need to guard before summarising.

    Args:
        spans: Spans from one serving run (``Tracer.drain()`` output or
            ``ServingReport.trace_spans``).

    Returns:
        The aggregated :class:`TraceSummary`.
    """
    spans = list(spans)
    durations_by_stage: Dict[str, List[float]] = {}
    verdicts: Dict[str, int] = {}
    open_spans = 0

    by_trace: Dict[str, List[Span]] = {}
    request_roots: List[Span] = []
    for span in spans:
        if not span.ended:
            open_spans += 1
            continue
        durations_by_stage.setdefault(span.name, []).append(span.duration_s)
        by_trace.setdefault(span.trace_id, []).append(span)
        if span.name == "request" and span.annotations.get("terminal"):
            request_roots.append(span)
            verdict = str(span.annotations.get("verdict", "unknown"))
            verdicts[verdict] = verdicts.get(verdict, 0) + 1

    path_totals: Dict[str, float] = {}
    grand_total = 0.0
    for root in request_roots:
        if root.annotations.get("verdict") != "completed":
            continue
        total = root.duration_s
        grand_total += total
        covered = 0.0
        own = by_trace.get(root.trace_id, [])
        task_id = root.annotations.get("task_id")
        linked = by_trace.get(task_id, []) if task_id is not None else []
        for span in own:
            if span.name in REQUEST_STAGES:
                path_totals[span.name] = path_totals.get(span.name, 0.0) + span.duration_s
                covered += span.duration_s
        for span in linked:
            if span.name in TASK_STAGES:
                path_totals[span.name] = path_totals.get(span.name, 0.0) + span.duration_s
                covered += span.duration_s
        remainder = total - covered
        if remainder > 1e-9:
            path_totals["other"] = path_totals.get("other", 0.0) + remainder

    critical_path: Dict[str, float] = {}
    if grand_total > 0.0:
        critical_path = {
            stage: total / grand_total for stage, total in path_totals.items() if total > 0.0
        }

    stages = {
        name: _stage_stats(name, durations) for name, durations in durations_by_stage.items()
    }
    return TraceSummary(
        stages=stages,
        critical_path=critical_path,
        verdicts=verdicts,
        span_count=len(spans),
        open_spans=open_spans,
    )
