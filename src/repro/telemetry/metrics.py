"""Metric primitives: O(1) recording, windowed rollups computed at read time.

The hot paths these metrics instrument (gateway admission, batch flushes,
HEATS placement, shard routing) run once per request or per batch, so the
recording side must stay O(1) and must not build intermediate aggregation
objects.  Each primitive therefore does constant work per observation:

* :class:`Counter` -- a monotone float add.
* :class:`Gauge`   -- a float store.
* :class:`Histogram` -- one write into a pre-allocated ring buffer (the
  *window*) plus running count/sum updates.

Everything allocation-heavy -- sorting for quantiles, EWMA smoothing,
snapshot rendering -- happens in the *rollup* methods, which only run when
a reader (an exporter, the autoscale controller, a test) asks.  A rollup
always describes the current window: the last ``window`` recorded samples
in insertion order.
"""

from __future__ import annotations

from typing import List, Optional


class RingBuffer:
    """Fixed-size overwrite-oldest sample store with O(1) append.

    The backing list is pre-allocated once; recording writes one slot and
    bumps two integers, so a full buffer costs exactly as much to record
    into as an empty one and never allocates on the hot path.
    """

    __slots__ = ("_slots", "_capacity", "_next", "_filled")

    def __init__(self, capacity: int) -> None:
        """Pre-allocate the sample slots.

        Args:
            capacity: window length; the buffer keeps the most recent
                ``capacity`` samples.
        """
        if capacity <= 0:
            raise ValueError("ring buffer capacity must be positive")
        self._slots: List[float] = [0.0] * capacity
        self._capacity = capacity
        self._next = 0
        self._filled = 0

    @property
    def capacity(self) -> int:
        """Maximum number of retained samples."""
        return self._capacity

    def __len__(self) -> int:
        return self._filled

    def record(self, value: float) -> None:
        """Append one sample, overwriting the oldest when full.

        Args:
            value: the observation to retain.
        """
        self._slots[self._next] = value
        self._next += 1
        if self._next == self._capacity:
            self._next = 0
        if self._filled < self._capacity:
            self._filled += 1

    def values(self) -> List[float]:
        """The retained samples, oldest first (allocates; read path only).

        Returns:
            A fresh list of the window's samples in insertion order.
        """
        if self._filled < self._capacity:
            return self._slots[: self._filled]
        return self._slots[self._next :] + self._slots[: self._next]


class Counter:
    """Monotonically increasing total; recording is one float add."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        """Create the counter at zero.

        Args:
            name: registry-unique metric name.
        """
        self.name = name
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add to the total; negative increments are rejected.

        Args:
            amount: non-negative increment (default 1).
        """
        if amount < 0:
            raise ValueError("counters are monotone; increment must be >= 0")
        self._value += amount

    @property
    def value(self) -> float:
        """The accumulated total."""
        return self._value


class Gauge:
    """Last-written value; recording is one float store."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        """Create the gauge at zero.

        Args:
            name: registry-unique metric name.
        """
        self.name = name
        self._value = 0.0

    def set(self, value: float) -> None:
        """Store the current level.

        Args:
            value: the new gauge reading.
        """
        self._value = value

    def add(self, delta: float) -> None:
        """Adjust the current level in place.

        Args:
            delta: signed adjustment.
        """
        self._value += delta

    @property
    def value(self) -> float:
        """The most recent reading."""
        return self._value


class Histogram:
    """Sample distribution over a fixed window, with O(1) recording.

    Observations land in a pre-allocated :class:`RingBuffer`; lifetime
    ``count`` and ``total`` are running scalars.  The distribution rollups
    (:meth:`quantile`, :meth:`ewma`, :meth:`window_mean`) are computed from
    the window on demand, never on the recording path.
    """

    __slots__ = ("name", "_ring", "_count", "_total")

    #: default window length; ~1k samples bounds rollup cost while covering
    #: several control intervals of serving traffic.
    DEFAULT_WINDOW = 1024

    def __init__(self, name: str, window: int = DEFAULT_WINDOW) -> None:
        """Create the histogram with an empty window.

        Args:
            name: registry-unique metric name.
            window: ring-buffer capacity (number of retained samples).
        """
        self.name = name
        self._ring = RingBuffer(window)
        self._count = 0
        self._total = 0.0

    def record(self, value: float) -> None:
        """Record one observation in O(1).

        Args:
            value: the observation.
        """
        self._ring.record(value)
        self._count += 1
        self._total += value

    @property
    def count(self) -> int:
        """Lifetime number of recorded observations."""
        return self._count

    @property
    def total(self) -> float:
        """Lifetime sum of recorded observations."""
        return self._total

    @property
    def window(self) -> int:
        """The configured window length."""
        return self._ring.capacity

    def window_values(self) -> List[float]:
        """The windowed raw samples, oldest first.

        Returns:
            A fresh list (the rollup input; empty when nothing recorded).
        """
        return self._ring.values()

    def window_mean(self) -> float:
        """Arithmetic mean over the window (0.0 when empty).

        Returns:
            The windowed mean.
        """
        values = self._ring.values()
        return sum(values) / len(values) if values else 0.0

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile over the window (0.0 when empty).

        Args:
            q: quantile in [0, 1] (0.5 = median, 0.99 = p99).

        Returns:
            The windowed quantile.
        """
        if not (0.0 <= q <= 1.0):
            raise ValueError("quantile must be in [0, 1]")
        values = sorted(self._ring.values())
        if not values:
            return 0.0
        if len(values) == 1:
            return values[0]
        position = q * (len(values) - 1)
        low = int(position)
        high = min(low + 1, len(values) - 1)
        fraction = position - low
        return values[low] * (1.0 - fraction) + values[high] * fraction

    def ewma(self, alpha: float = 0.3) -> float:
        """Exponentially weighted moving average over the window.

        Smoothing walks the window oldest-to-newest, so the most recent
        samples dominate -- the "current level" signal the autoscale
        controller reads.

        Args:
            alpha: smoothing factor in (0, 1]; larger reacts faster.

        Returns:
            The windowed EWMA (0.0 when empty).
        """
        if not (0.0 < alpha <= 1.0):
            raise ValueError("EWMA alpha must be in (0, 1]")
        values = self._ring.values()
        if not values:
            return 0.0
        level = values[0]
        for value in values[1:]:
            level = alpha * value + (1.0 - alpha) * level
        return level
