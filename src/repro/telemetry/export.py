"""Pluggable exporters rendering metric snapshots off the hot path.

An exporter consumes :class:`~repro.telemetry.registry.MetricsSnapshot`
objects -- never live instruments -- so exporting can happen at any cadence
without perturbing the recording paths.  Two concrete exporters cover the
repo's needs: a text renderer for benchmark result files and human
inspection, and an in-memory collector tests and the autoscale controller
use to look at signal history.

Both stateful exporters are bounded: a long-lived ``serve_iter`` dashboard
exporting once per tick must not grow memory without limit, so histories
are deques that keep the most recent ``capacity`` entries.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, List, Mapping, Optional, Protocol

from repro.telemetry.registry import MetricsRegistry, MetricsSnapshot

#: Default history bound for the stateful exporters.  Generous enough for
#: every test and dashboard in the repo, small enough that an unattended
#: ``serve_iter`` loop cannot grow memory without limit.
DEFAULT_EXPORT_CAPACITY = 512


class Exporter(Protocol):
    """What the telemetry layer needs from an exporter sink."""

    def export(self, snapshot: MetricsSnapshot) -> None:
        """Consume one point-in-time snapshot."""
        ...


class InMemoryExporter:
    """Keeps recent exported snapshots; the test/controller-facing sink.

    History is bounded: once ``capacity`` snapshots have been exported the
    oldest are dropped, so long-running dashboards that export every tick
    hold memory constant.  Pass ``capacity=None`` for the old unbounded
    behaviour.
    """

    def __init__(self, capacity: Optional[int] = DEFAULT_EXPORT_CAPACITY) -> None:
        """Create the exporter with an empty, bounded history.

        Args:
            capacity: maximum snapshots retained (oldest evicted first);
                ``None`` keeps everything.
        """
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self._snapshots: Deque[MetricsSnapshot] = deque(maxlen=capacity)

    def export(self, snapshot: MetricsSnapshot) -> None:
        """Append one snapshot to the history (evicting the oldest at capacity).

        Args:
            snapshot: the snapshot to retain.
        """
        self._snapshots.append(snapshot)

    @property
    def snapshots(self) -> List[MetricsSnapshot]:
        """The retained snapshots, oldest first."""
        return list(self._snapshots)

    @property
    def latest(self) -> MetricsSnapshot:
        """The most recently exported snapshot."""
        if not self._snapshots:
            raise LookupError("nothing exported yet")
        return self._snapshots[-1]


class TextExporter:
    """Renders snapshots as fixed-width text (benchmark result files).

    Like :class:`InMemoryExporter`, the rendered history is bounded to the
    most recent ``capacity`` blocks.
    """

    def __init__(self, capacity: Optional[int] = DEFAULT_EXPORT_CAPACITY) -> None:
        """Create the exporter with an empty, bounded buffer.

        Args:
            capacity: maximum rendered blocks retained; ``None`` keeps all.
        """
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self._lines: Deque[str] = deque(maxlen=capacity)

    def export(self, snapshot: MetricsSnapshot) -> None:
        """Render one snapshot into the text buffer.

        Args:
            snapshot: the snapshot to render.
        """
        self._lines.append(render_text(snapshot))

    @property
    def lines(self) -> List[str]:
        """The retained rendered blocks, oldest first."""
        return list(self._lines)

    @property
    def text(self) -> str:
        """All rendered snapshots, separated by blank lines."""
        return "\n\n".join(self._lines)


class JsonlExporter:
    """Renders exports as JSON Lines: one JSON object per line.

    The machine-readable sibling of :class:`TextExporter`: each exported
    snapshot (or arbitrary record, via :meth:`write`) becomes exactly one
    ``\\n``-free JSON object, so the buffer concatenates into a valid
    ``.jsonl`` feed for dashboards and offline analysis.  Field order is
    deterministic (keys sorted at every nesting level) so identical
    exports diff byte-identically.  Like the other exporters, the buffer
    is bounded to the most recent ``capacity`` lines.
    """

    def __init__(self, capacity: Optional[int] = DEFAULT_EXPORT_CAPACITY) -> None:
        """Create the exporter with an empty, bounded line buffer.

        Args:
            capacity: maximum lines retained (oldest evicted first);
                ``None`` keeps everything.
        """
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self._lines: Deque[str] = deque(maxlen=capacity)

    def export(self, snapshot: MetricsSnapshot) -> None:
        """Serialise one snapshot as a single JSON line.

        Args:
            snapshot: the snapshot to serialise (counters, gauges,
                histogram rollups, and the profile section when present).
        """
        record = {
            "counters": dict(snapshot.counters),
            "gauges": dict(snapshot.gauges),
            "histograms": {
                name: {
                    "count": h.count,
                    "total": h.total,
                    "window_mean": h.window_mean,
                    "ewma": h.ewma,
                    "p50": h.p50,
                    "p99": h.p99,
                }
                for name, h in snapshot.histograms.items()
            },
        }
        if snapshot.profile is not None:
            record["profile"] = snapshot.profile
        self.write(record)

    def write(self, record: Mapping[str, object]) -> None:
        """Append one arbitrary record as a JSON line (the event feed).

        The live console streams its frame dicts through this, so one
        exporter can interleave metric snapshots and console events into
        a single chronological feed.

        Args:
            record: any JSON-representable mapping; non-serialisable
                values fall back to ``str``.
        """
        self._lines.append(
            json.dumps(dict(record), sort_keys=True, default=str, separators=(",", ":"))
        )

    @property
    def lines(self) -> List[str]:
        """The retained JSON lines, oldest first."""
        return list(self._lines)

    @property
    def text(self) -> str:
        """The buffer as one ``.jsonl`` document (lines joined by ``\\n``)."""
        return "\n".join(self._lines)


def render_text(snapshot: MetricsSnapshot) -> str:
    """One snapshot as aligned ``name  kind  value`` text lines.

    Args:
        snapshot: the snapshot to render.

    Returns:
        The text block, deterministically ordered by ``(name, kind)``
        across all instrument families so diffs of result files are
        stable even when a counter and a histogram share a name.
    """
    rows: List[tuple] = []
    for name, value in snapshot.counters.items():
        rows.append((name, "counter", f"{value:.6g}"))
    for name, value in snapshot.gauges.items():
        rows.append((name, "gauge", f"{value:.6g}"))
    for name, h in snapshot.histograms.items():
        rows.append(
            (
                name,
                "histogram",
                f"count={h.count} mean={h.window_mean:.4g} "
                f"ewma={h.ewma:.4g} p50={h.p50:.4g} p99={h.p99:.4g}",
            )
        )
    if not rows:
        return "(no metrics)"
    rows.sort(key=lambda row: (row[0], row[1]))
    name_width = max(len(row[0]) for row in rows)
    kind_width = max(len(row[1]) for row in rows)
    return "\n".join(
        f"{name.ljust(name_width)}  {kind.ljust(kind_width)}  {value}"
        for name, kind, value in rows
    )


def export_text(registry: MetricsRegistry) -> str:
    """Convenience: snapshot a registry and render it as text.

    Args:
        registry: the live registry to snapshot.

    Returns:
        The rendered text block.
    """
    return render_text(registry.snapshot())
