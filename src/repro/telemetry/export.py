"""Pluggable exporters rendering metric snapshots off the hot path.

An exporter consumes :class:`~repro.telemetry.registry.MetricsSnapshot`
objects -- never live instruments -- so exporting can happen at any cadence
without perturbing the recording paths.  Two concrete exporters cover the
repo's needs: a text renderer for benchmark result files and human
inspection, and an in-memory collector tests and the autoscale controller
use to look at signal history.
"""

from __future__ import annotations

from typing import List, Protocol

from repro.telemetry.registry import MetricsRegistry, MetricsSnapshot


class Exporter(Protocol):
    """What the telemetry layer needs from an exporter sink."""

    def export(self, snapshot: MetricsSnapshot) -> None:
        """Consume one point-in-time snapshot."""
        ...


class InMemoryExporter:
    """Keeps every exported snapshot; the test/controller-facing sink."""

    def __init__(self) -> None:
        """Create the exporter with an empty history."""
        self.snapshots: List[MetricsSnapshot] = []

    def export(self, snapshot: MetricsSnapshot) -> None:
        """Append one snapshot to the history.

        Args:
            snapshot: the snapshot to retain.
        """
        self.snapshots.append(snapshot)

    @property
    def latest(self) -> MetricsSnapshot:
        """The most recently exported snapshot."""
        if not self.snapshots:
            raise LookupError("nothing exported yet")
        return self.snapshots[-1]


class TextExporter:
    """Renders snapshots as fixed-width text (benchmark result files)."""

    def __init__(self) -> None:
        """Create the exporter with an empty buffer."""
        self.lines: List[str] = []

    def export(self, snapshot: MetricsSnapshot) -> None:
        """Render one snapshot into the text buffer.

        Args:
            snapshot: the snapshot to render.
        """
        self.lines.append(render_text(snapshot))

    @property
    def text(self) -> str:
        """All rendered snapshots, separated by blank lines."""
        return "\n\n".join(self.lines)


def render_text(snapshot: MetricsSnapshot) -> str:
    """One snapshot as aligned ``name  kind  value`` text lines.

    Args:
        snapshot: the snapshot to render.

    Returns:
        The text block (deterministic order: counters, gauges, histograms,
        each sorted by name).
    """
    rows: List[tuple] = []
    for name in sorted(snapshot.counters):
        rows.append((name, "counter", f"{snapshot.counters[name]:.6g}"))
    for name in sorted(snapshot.gauges):
        rows.append((name, "gauge", f"{snapshot.gauges[name]:.6g}"))
    for name in sorted(snapshot.histograms):
        h = snapshot.histograms[name]
        rows.append(
            (
                name,
                "histogram",
                f"count={h.count} mean={h.window_mean:.4g} "
                f"ewma={h.ewma:.4g} p50={h.p50:.4g} p99={h.p99:.4g}",
            )
        )
    if not rows:
        return "(no metrics)"
    name_width = max(len(row[0]) for row in rows)
    kind_width = max(len(row[1]) for row in rows)
    return "\n".join(
        f"{name.ljust(name_width)}  {kind.ljust(kind_width)}  {value}"
        for name, kind, value in rows
    )


def export_text(registry: MetricsRegistry) -> str:
    """Convenience: snapshot a registry and render it as text.

    Args:
        registry: the live registry to snapshot.

    Returns:
        The rendered text block.
    """
    return render_text(registry.snapshot())
