"""Remote attestation: proving an enclave runs the expected code.

A minimal measured-boot style flow: the attestation service knows the set of
trusted measurements; an enclave produces a :class:`Quote` binding its
measurement to a caller-supplied nonce (so quotes cannot be replayed); the
service verifies the signature-equivalent (an HMAC keyed with the service's
provisioning secret, standing in for the hardware key hierarchy) and the
nonce before declaring the enclave trustworthy.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.security.enclave import Enclave


class AttestationError(RuntimeError):
    """Raised when a quote fails verification."""


@dataclass(frozen=True)
class Quote:
    """An attestation quote produced for one nonce."""

    enclave_id: int
    measurement: str
    nonce: str
    mac: str


class AttestationService:
    """Verifies enclave quotes against a whitelist of trusted measurements."""

    def __init__(self, provisioning_secret: Optional[bytes] = None) -> None:
        self._secret = provisioning_secret if provisioning_secret is not None else secrets.token_bytes(32)
        self._trusted: Set[str] = set()
        self._issued_nonces: Set[str] = set()
        self._consumed_nonces: Set[str] = set()

    # ------------------------------------------------------------------ #
    # Provisioning
    # ------------------------------------------------------------------ #
    def trust(self, measurement: str) -> None:
        if not measurement:
            raise ValueError("measurement must be non-empty")
        self._trusted.add(measurement)

    def trust_enclave(self, enclave: Enclave) -> None:
        self.trust(enclave.measurement)

    def revoke(self, measurement: str) -> None:
        self._trusted.discard(measurement)

    def is_trusted(self, measurement: str) -> bool:
        return measurement in self._trusted

    # ------------------------------------------------------------------ #
    # Quote lifecycle
    # ------------------------------------------------------------------ #
    def challenge(self) -> str:
        """Issue a fresh nonce for a verification round."""
        nonce = secrets.token_hex(16)
        self._issued_nonces.add(nonce)
        return nonce

    def _mac(self, measurement: str, nonce: str) -> str:
        message = f"{measurement}:{nonce}".encode("utf-8")
        return hmac.new(self._secret, message, hashlib.sha256).hexdigest()

    def quote(self, enclave: Enclave, nonce: str) -> Quote:
        """Produce a quote (the hardware quoting enclave's role)."""
        if nonce not in self._issued_nonces:
            raise AttestationError("nonce was not issued by this service")
        return Quote(
            enclave_id=enclave.enclave_id,
            measurement=enclave.measurement,
            nonce=nonce,
            mac=self._mac(enclave.measurement, nonce),
        )

    def verify(self, quote: Quote) -> bool:
        """Verify a quote; raises :class:`AttestationError` on any failure."""
        if quote.nonce not in self._issued_nonces:
            raise AttestationError("unknown nonce")
        if quote.nonce in self._consumed_nonces:
            raise AttestationError("nonce already used (replay)")
        expected = self._mac(quote.measurement, quote.nonce)
        if not hmac.compare_digest(expected, quote.mac):
            raise AttestationError("quote MAC mismatch")
        if quote.measurement not in self._trusted:
            raise AttestationError("measurement is not trusted")
        self._consumed_nonces.add(quote.nonce)
        return True

    def attest(self, enclave: Enclave) -> bool:
        """Full round trip: challenge, quote, verify."""
        nonce = self.challenge()
        return self.verify(self.quote(enclave, nonce))
