"""Enclave model: SGX-like and TrustZone-like trusted execution environments.

The model captures the costs that determine whether enclave-backed execution
is practical for a task: enclave creation, transition (ecall/ocall) latency,
memory encryption bandwidth overhead, and the paging penalty once the
protected memory (EPC on SGX) is exceeded.  The two built-in profiles use
publicly reported magnitudes for the respective technologies; their ratio --
SGX transitions are expensive but its protected memory is managed
transparently, TrustZone transitions are cheap but the secure world is small
-- is what the secure-task scheduler reacts to.
"""

from __future__ import annotations

import enum
import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class EnclaveKind(str, enum.Enum):
    """Hardware TEE flavours named in the paper."""

    SGX = "sgx"            # Intel SGX on x86 microservers
    TRUSTZONE = "trustzone"  # ARM TrustZone on ARM microservers


@dataclass(frozen=True)
class EnclaveOverheadProfile:
    """Cost model of one TEE technology."""

    kind: EnclaveKind
    creation_s: float
    transition_s: float            # one ecall/ocall round trip
    memory_bandwidth_penalty: float  # fractional slowdown on protected memory
    protected_memory_mib: float
    paging_penalty_per_mib_s: float
    energy_overhead_fraction: float  # extra energy per unit of protected work

    def __post_init__(self) -> None:
        if self.creation_s < 0 or self.transition_s < 0:
            raise ValueError("latencies must be non-negative")
        if not (0.0 <= self.memory_bandwidth_penalty < 1.0):
            raise ValueError("bandwidth penalty must be a fraction in [0, 1)")
        if self.protected_memory_mib <= 0:
            raise ValueError("protected memory must be positive")
        if self.paging_penalty_per_mib_s < 0 or self.energy_overhead_fraction < 0:
            raise ValueError("penalties must be non-negative")


#: SGX: slow transitions (~8 us), ~128 MiB usable EPC, costly paging.
SGX_PROFILE = EnclaveOverheadProfile(
    kind=EnclaveKind.SGX,
    creation_s=0.02,
    transition_s=8e-6,
    memory_bandwidth_penalty=0.12,
    protected_memory_mib=128.0,
    paging_penalty_per_mib_s=0.4e-3,
    energy_overhead_fraction=0.10,
)

#: TrustZone: cheap world switches, small secure world, no transparent paging
#: (exceeding it is charged as an explicit staging penalty).
TRUSTZONE_PROFILE = EnclaveOverheadProfile(
    kind=EnclaveKind.TRUSTZONE,
    creation_s=0.005,
    transition_s=1.5e-6,
    memory_bandwidth_penalty=0.05,
    protected_memory_mib=32.0,
    paging_penalty_per_mib_s=1.2e-3,
    energy_overhead_fraction=0.06,
)

PROFILES: Dict[EnclaveKind, EnclaveOverheadProfile] = {
    EnclaveKind.SGX: SGX_PROFILE,
    EnclaveKind.TRUSTZONE: TRUSTZONE_PROFILE,
}


@dataclass
class SealedBlob:
    """Data sealed to an enclave measurement."""

    measurement: str
    payload: bytes


class Enclave:
    """One enclave instance bound to a code identity (its measurement)."""

    _ids = itertools.count(1)

    def __init__(self, code_identity: str, profile: EnclaveOverheadProfile) -> None:
        if not code_identity:
            raise ValueError("enclave needs a code identity")
        self.enclave_id = next(self._ids)
        self.profile = profile
        self.measurement = hashlib.sha256(code_identity.encode("utf-8")).hexdigest()
        self._sealed: Dict[str, SealedBlob] = {}
        self.transitions = 0
        self.created = True

    # ------------------------------------------------------------------ #
    # Cost model
    # ------------------------------------------------------------------ #
    def execution_overhead_s(
        self,
        plain_time_s: float,
        working_set_mib: float,
        transitions: int = 2,
    ) -> float:
        """Extra time for running a computation of ``plain_time_s`` inside.

        The overhead has three parts: ecall/ocall transitions, the memory
        encryption slowdown, and paging once the working set exceeds the
        protected memory.
        """
        if plain_time_s < 0 or working_set_mib < 0 or transitions < 0:
            raise ValueError("arguments must be non-negative")
        self.transitions += transitions
        transition_cost = transitions * self.profile.transition_s
        bandwidth_cost = plain_time_s * self.profile.memory_bandwidth_penalty
        spill_mib = max(0.0, working_set_mib - self.profile.protected_memory_mib)
        paging_cost = spill_mib * self.profile.paging_penalty_per_mib_s
        return transition_cost + bandwidth_cost + paging_cost

    def energy_overhead_j(self, plain_energy_j: float) -> float:
        if plain_energy_j < 0:
            raise ValueError("energy must be non-negative")
        return plain_energy_j * self.profile.energy_overhead_fraction

    # ------------------------------------------------------------------ #
    # Sealed storage
    # ------------------------------------------------------------------ #
    def seal(self, name: str, payload: bytes) -> SealedBlob:
        """Seal data to this enclave's measurement."""
        blob = SealedBlob(measurement=self.measurement, payload=bytes(payload))
        self._sealed[name] = blob
        return blob

    def unseal(self, name: str) -> bytes:
        """Unseal previously sealed data; fails if the measurement differs."""
        if name not in self._sealed:
            raise KeyError(f"no sealed blob named {name!r}")
        blob = self._sealed[name]
        if blob.measurement != self.measurement:
            raise PermissionError("sealed blob was bound to a different enclave identity")
        return blob.payload

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Enclave(id={self.enclave_id}, kind={self.profile.kind.value})"
