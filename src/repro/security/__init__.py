"""Security-by-design: enclave-backed task execution.

LEGaTO develops "energy-efficient security-by-design by leveraging
instruction-level hardware support for security (SGX in x86 and TrustZone in
ARM) to accelerate software-based security implementations" (Section I).
The reproduction models the parts the rest of the stack interacts with:

* :mod:`repro.security.enclave`     -- enclave lifecycle (create, load,
  enter/exit) with SGX-like and TrustZone-like overhead profiles, sealed
  storage, and EPC-paging penalties;
* :mod:`repro.security.attestation` -- measurement and quote verification so
  a workflow can check it is talking to the code it expects;
* :mod:`repro.security.secure_task` -- running runtime tasks inside an
  enclave, charging the overheads and exposing the security/energy
  trade-off used by the project-goal benchmark.
"""

from repro.security.enclave import (
    Enclave,
    EnclaveKind,
    EnclaveOverheadProfile,
    SGX_PROFILE,
    TRUSTZONE_PROFILE,
)
from repro.security.attestation import AttestationError, AttestationService, Quote
from repro.security.secure_task import SecureExecutionReport, SecureTaskExecutor

__all__ = [
    "Enclave",
    "EnclaveKind",
    "EnclaveOverheadProfile",
    "SGX_PROFILE",
    "TRUSTZONE_PROFILE",
    "AttestationError",
    "AttestationService",
    "Quote",
    "SecureExecutionReport",
    "SecureTaskExecutor",
]
