"""Running runtime tasks inside enclaves and accounting the cost.

The executor takes tasks marked ``secure`` (either by the programmer or by
the compiler front end), places them on an enclave-capable device, attests
the enclave before first use, and charges the enclave overhead model on top
of the plain execution cost.  Non-secure tasks run unmodified, so the report
exposes exactly how much the security guarantee costs -- the quantity behind
the project's "10x security at bounded overhead" goal tracking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hardware.microserver import DeviceKind
from repro.runtime.devices import ExecutionDevice
from repro.runtime.energy import EnergyPolicy, pick_device
from repro.runtime.graph import TaskGraph
from repro.runtime.task import Task
from repro.security.attestation import AttestationService
from repro.security.enclave import (
    PROFILES,
    Enclave,
    EnclaveKind,
    EnclaveOverheadProfile,
)

#: which enclave technology each CPU kind provides.
_TEE_OF_KIND: Dict[DeviceKind, EnclaveKind] = {
    DeviceKind.CPU_X86: EnclaveKind.SGX,
    DeviceKind.CPU_ARM: EnclaveKind.TRUSTZONE,
}


@dataclass(frozen=True)
class SecureTaskOutcome:
    """Cost breakdown for one executed task."""

    task_name: str
    secure: bool
    device: str
    enclave_kind: Optional[str]
    plain_time_s: float
    overhead_time_s: float
    plain_energy_j: float
    overhead_energy_j: float

    @property
    def total_time_s(self) -> float:
        return self.plain_time_s + self.overhead_time_s

    @property
    def total_energy_j(self) -> float:
        return self.plain_energy_j + self.overhead_energy_j


@dataclass
class SecureExecutionReport:
    """Aggregate of a secure run."""

    outcomes: List[SecureTaskOutcome] = field(default_factory=list)
    attestations: int = 0

    @property
    def total_time_s(self) -> float:
        return sum(o.total_time_s for o in self.outcomes)

    @property
    def total_energy_j(self) -> float:
        return sum(o.total_energy_j for o in self.outcomes)

    @property
    def security_time_overhead_fraction(self) -> float:
        plain = sum(o.plain_time_s for o in self.outcomes)
        if plain == 0:
            return 0.0
        return sum(o.overhead_time_s for o in self.outcomes) / plain

    @property
    def security_energy_overhead_fraction(self) -> float:
        plain = sum(o.plain_energy_j for o in self.outcomes)
        if plain == 0:
            return 0.0
        return sum(o.overhead_energy_j for o in self.outcomes) / plain

    @property
    def secured_task_fraction(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(1 for o in self.outcomes if o.secure) / len(self.outcomes)


class SecureTaskExecutor:
    """Executes a task graph with enclave protection for secure tasks."""

    def __init__(
        self,
        devices: Sequence[ExecutionDevice],
        attestation: Optional[AttestationService] = None,
        energy_policy: EnergyPolicy = EnergyPolicy.ENERGY,
    ) -> None:
        if not devices:
            raise ValueError("secure execution needs at least one device")
        if not any(device.kind in _TEE_OF_KIND for device in devices):
            raise ValueError("no enclave-capable (CPU) device available for secure tasks")
        self.devices = list(devices)
        self.attestation = attestation if attestation is not None else AttestationService()
        self.energy_policy = energy_policy
        self._enclaves: Dict[str, Enclave] = {}

    # ------------------------------------------------------------------ #
    # Enclave management
    # ------------------------------------------------------------------ #
    def _enclave_for(self, device: ExecutionDevice, report: SecureExecutionReport) -> Enclave:
        """Get (creating and attesting on first use) the device's enclave."""
        if device.name in self._enclaves:
            return self._enclaves[device.name]
        tee_kind = _TEE_OF_KIND[device.kind]
        enclave = Enclave(code_identity=f"legato-runtime@{device.name}", profile=PROFILES[tee_kind])
        self.attestation.trust_enclave(enclave)
        self.attestation.attest(enclave)
        report.attestations += 1
        self._enclaves[device.name] = enclave
        return enclave

    def _pick_secure_device(self, task: Task) -> ExecutionDevice:
        capable = [device for device in self.devices if device.kind in _TEE_OF_KIND]
        eligible = [device for device in capable if device.supports(task)]
        if not eligible:
            raise ValueError(
                f"secure task {task.name!r} cannot run: no enclave-capable device supports it"
            )
        return pick_device(task, eligible, policy=self.energy_policy)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def execute(self, graph: TaskGraph) -> SecureExecutionReport:
        report = SecureExecutionReport()
        for task in graph.topological_order():
            secure = task.requirements.secure
            if secure:
                device = self._pick_secure_device(task)
            else:
                device = pick_device(task, self.devices, policy=self.energy_policy)
            plain_time = device.estimate_time_s(task)
            plain_energy = device.estimate_energy_j(task)
            overhead_time = 0.0
            overhead_energy = 0.0
            enclave_kind: Optional[str] = None
            if secure:
                enclave = self._enclave_for(device, report)
                working_set_mib = task.requirements.memory_gib * 1024.0
                overhead_time = enclave.execution_overhead_s(plain_time, working_set_mib)
                overhead_energy = enclave.energy_overhead_j(plain_energy)
                enclave_kind = enclave.profile.kind.value
            device.execute(task)
            report.outcomes.append(
                SecureTaskOutcome(
                    task_name=task.name,
                    secure=secure,
                    device=device.name,
                    enclave_kind=enclave_kind,
                    plain_time_s=plain_time,
                    overhead_time_s=overhead_time,
                    plain_energy_j=plain_energy,
                    overhead_energy_j=overhead_energy,
                )
            )
        return report
