"""Baseline schedulers HEATS is compared against in the Fig. 7 benchmark.

The HEATS evaluation (Rocha et al., PDP'19, which Section V summarises)
compares against schedulers that ignore either heterogeneity or energy:

* :class:`RoundRobinScheduler` -- the Kubernetes-default-like spreading
  policy: cycle through the nodes that fit, ignoring both speed and energy.
* :class:`PerformanceBestFitScheduler` -- pick the node with the best
  predicted run time, ignoring energy (a throughput-oriented scheduler).
* :class:`EnergyGreedyScheduler` -- pick the node with the lowest predicted
  task energy, ignoring completion time.

All baselines use the same learned models as HEATS so the comparison
isolates the *policy*, not the quality of the predictions.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

from repro.scheduler.cluster import Cluster, ClusterNode
from repro.scheduler.modeling import PredictionModelSet
from repro.scheduler.placement import Placement
from repro.scheduler.workload import TaskRequest


class _BaselineScheduler:
    """Shared plumbing: baselines never migrate."""

    name = "baseline"
    supports_rescheduling = False

    def __init__(self, models: PredictionModelSet) -> None:
        self.models = models

    def reschedule(
        self, running: Sequence[Placement], cluster: Cluster, time_s: float
    ) -> List[Tuple[str, str]]:
        return []

    def _candidates(self, request: TaskRequest, cluster: Cluster) -> List[ClusterNode]:
        return [
            node
            for node in cluster.feasible_nodes(request.cores, request.memory_gib)
            if node.name in self.models
        ]


class RoundRobinScheduler(_BaselineScheduler):
    """Cycle through feasible nodes in a fixed order."""

    name = "round_robin"

    def __init__(self, models: PredictionModelSet) -> None:
        super().__init__(models)
        self._cursor = itertools.count()

    def place(self, request: TaskRequest, cluster: Cluster, time_s: float) -> Optional[str]:
        candidates = self._candidates(request, cluster)
        if not candidates:
            return None
        ordered = sorted(candidates, key=lambda node: node.name)
        return ordered[next(self._cursor) % len(ordered)].name


class PerformanceBestFitScheduler(_BaselineScheduler):
    """Minimise predicted completion time, ignore energy."""

    name = "performance_best_fit"

    def place(self, request: TaskRequest, cluster: Cluster, time_s: float) -> Optional[str]:
        candidates = self._candidates(request, cluster)
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda node: (self.models.predict(node.name, request)[0], node.name),
        ).name


class EnergyGreedyScheduler(_BaselineScheduler):
    """Minimise predicted task energy, ignore completion time."""

    name = "energy_greedy"

    def place(self, request: TaskRequest, cluster: Cluster, time_s: float) -> Optional[str]:
        candidates = self._candidates(request, cluster)
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda node: (self.models.predict(node.name, request)[1], node.name),
        ).name
