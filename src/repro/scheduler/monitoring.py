"""HEATS monitoring: resource availability and energy telemetry (Fig. 7).

The monitoring module periodically reports, for every cluster node, the
available resources (the Heapster role in the paper's deployment) and the
measured power draw (the PDU / PowerSpy role).  The scheduler and the
modeling component consume these reports: scheduling needs the availability
snapshot, model learning needs the energy counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.hardware.power import PowerDistributionUnit, PowerSpy
from repro.scheduler.cluster import Cluster, ClusterNode


@dataclass(frozen=True)
class NodeTelemetry:
    """One monitoring report for one node."""

    time_s: float
    node: str
    available_cores: int
    available_memory_gib: float
    utilisation: float
    power_w: float
    running_tasks: int


class ClusterMonitor:
    """Samples the cluster and keeps a bounded telemetry history."""

    def __init__(self, cluster: Cluster, history_limit: int = 10_000) -> None:
        if history_limit <= 0:
            raise ValueError("history limit must be positive")
        self.cluster = cluster
        self.history_limit = history_limit
        self._history: List[NodeTelemetry] = []
        self._meters: Dict[str, PowerSpy] = {
            node.name: PowerSpy(name=f"{node.name}-meter") for node in cluster
        }
        self.rack_pdu = PowerDistributionUnit(name="rack-pdu")

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def sample(self, time_s: float) -> List[NodeTelemetry]:
        """Take one monitoring snapshot of every node."""
        snapshot: List[NodeTelemetry] = []
        rack_power = 0.0
        for node in self.cluster:
            power = node.power_w()
            rack_power += power
            meter = self._meters.get(node.name)
            if meter is None:
                # Elastic scale-up added this node after the monitor was
                # built; attach a meter on first sight.
                meter = PowerSpy(name=f"{node.name}-meter")
                self._meters[node.name] = meter
            meter.sample(time_s, power)
            telemetry = NodeTelemetry(
                time_s=time_s,
                node=node.name,
                # Free capacity read straight off the node (the
                # ``available`` property would build a throwaway snapshot
                # object per node per sample).
                available_cores=node._free_cores,
                available_memory_gib=node._free_memory,
                utilisation=node.utilisation,
                power_w=power,
                running_tasks=len(node.running),
            )
            snapshot.append(telemetry)
        self.rack_pdu.sample(time_s, rack_power)
        self._history.extend(snapshot)
        if len(self._history) > self.history_limit:
            self._history = self._history[-self.history_limit:]
        return snapshot

    # ------------------------------------------------------------------ #
    # Queries used by the scheduler
    # ------------------------------------------------------------------ #
    def latest(self, node_name: str) -> Optional[NodeTelemetry]:
        for telemetry in reversed(self._history):
            if telemetry.node == node_name:
                return telemetry
        return None

    def available_nodes(self, cores: int, memory_gib: float) -> List[ClusterNode]:
        """Nodes currently able to host a request (live view, not history)."""
        return self.cluster.feasible_nodes(cores, memory_gib)

    def cluster_power_w(self) -> float:
        return sum(node.power_w() for node in self.cluster)

    def node_energy_j(self, node_name: str) -> float:
        return self._meters[node_name].energy_j()

    @property
    def history(self) -> Sequence[NodeTelemetry]:
        return tuple(self._history)

    def utilisation_summary(self) -> Dict[str, float]:
        """Latest utilisation per node."""
        summary: Dict[str, float] = {}
        for node in self.cluster:
            summary[node.name] = node.utilisation
        return summary
