"""The heterogeneous cluster HEATS schedules onto.

A cluster node corresponds to one physical host (in LEGaTO: one microserver
or one server built from them).  Nodes expose countable resources (cores,
memory) that tasks reserve, plus a performance/energy profile derived from
the microserver catalogue so different nodes genuinely differ in speed and
efficiency -- the heterogeneity HEATS exploits.

The cluster's capacity index is a numpy structured array: one row per node
holding its free/total cores and memory plus its power columns, updated in
place on every reserve/release through the node's capacity listener.  The
placement hot path (``has_feasible_node`` / ``feasible_nodes`` /
``feasible_shape_mask``) is a vectorised comparison over those columns --
no per-node Python objects are touched until a candidate list is actually
materialised -- and ``capacity()`` exposes the O(1) cluster-level
aggregates the federation layer uses to pick a shard without looking at
individual nodes.  Node objects remain the owners of truth (they are
shared between shard clusters and the federated union view); each cluster
mirrors their state into its own array.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.hardware.microserver import (
    MICROSERVER_CATALOG,
    DeviceKind,
    MicroserverSpec,
    WorkloadKind,
)

#: one row per node in a cluster's capacity table.  ``free_*`` columns
#: mirror the node's live reservations exactly (the same rounded floats the
#: node holds, so vectorised comparisons agree bit-for-bit with per-object
#: checks); ``active`` is False for tombstoned rows awaiting compaction.
NODE_DTYPE = np.dtype(
    [
        ("free_cores", np.int64),
        ("free_memory", np.float64),
        ("total_cores", np.int64),
        ("total_memory", np.float64),
        ("reserved_power", np.float64),
        ("idle_power", np.float64),
        ("dynamic_power", np.float64),
        ("active", np.bool_),
    ]
)


class CandidateNames(tuple):
    """An interned feasible-node-set tuple with a memoised hash.

    The cluster interns one instance per distinct feasibility mask, so the
    serving score cache -- whose keys embed the candidate set -- hashes
    each distinct set once per topology instead of re-hashing dozens of
    node-name strings on every lookup.  Equality and ordering are plain
    tuple semantics, so cache keys built from lists compare identically.
    """

    def __hash__(self) -> int:
        cached = getattr(self, "_hash", None)
        if cached is None:
            cached = self._hash = tuple.__hash__(self)
        return cached


@dataclass(frozen=True)
class NodeResources:
    """Countable resources of a node (what the task requests are matched to).

    A fully loaded node legitimately has zero free cores/memory, so the
    invariant is non-negativity; node *totals* are positive by construction
    (microserver specs always expose at least one core).
    """

    cores: int
    memory_gib: float

    def __post_init__(self) -> None:
        if self.cores < 0 or self.memory_gib < 0:
            raise ValueError("node resources must be non-negative")

    def fits(self, cores: int, memory_gib: float) -> bool:
        return cores <= self.cores and memory_gib <= self.memory_gib

    def minus(self, cores: int, memory_gib: float) -> "NodeResources":
        if not self.fits(cores, memory_gib):
            raise ValueError("cannot subtract more resources than available")
        return NodeResources(
            cores=self.cores - cores, memory_gib=round(self.memory_gib - memory_gib, 9)
        )

    def plus(self, cores: int, memory_gib: float) -> "NodeResources":
        return NodeResources(cores=self.cores + cores, memory_gib=self.memory_gib + memory_gib)


@dataclass
class ClusterNode:
    """One schedulable host.

    Free capacity lives in two plain attributes (``_free_cores`` /
    ``_free_memory``) so the reserve/release hot path never builds
    :class:`NodeResources` objects; :attr:`available` materialises a
    snapshot on demand for the cold-path consumers (monitoring, drain
    planning).  Memory subtraction keeps the historical
    ``round(free - requested, 9)`` discipline and release keeps the plain
    add, so capacity floats evolve exactly as they always have.
    """

    name: str
    spec: MicroserverSpec
    total: NodeResources = field(init=False)
    running: Dict[str, Tuple[int, float]] = field(default_factory=dict)
    busy_core_seconds: float = 0.0
    energy_j: float = 0.0

    def __post_init__(self) -> None:
        self.total = NodeResources(cores=self.spec.cores, memory_gib=self.spec.memory_gib)
        self._free_cores: int = self.total.cores
        self._free_memory: float = self.total.memory_gib
        self._listeners: List[Callable[["ClusterNode"], None]] = []

    # ------------------------------------------------------------------ #
    # Capacity
    # ------------------------------------------------------------------ #
    @property
    def available(self) -> NodeResources:
        """Current free resources as a (freshly built) snapshot object."""
        return NodeResources(cores=self._free_cores, memory_gib=self._free_memory)

    def subscribe(self, listener: Callable[["ClusterNode"], None]) -> None:
        """Register a callback invoked after every capacity change.

        Clusters (and federated clusters, which share node objects with
        their shard view) subscribe here to keep their capacity arrays
        incremental instead of rescanning nodes.
        """
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[["ClusterNode"], None]) -> None:
        """Remove a previously subscribed capacity listener.

        Clusters call this when a node is removed from their view (elastic
        scale-down), so a retired view no longer receives updates for a
        node it stopped indexing.
        """
        self._listeners.remove(listener)

    def _notify_capacity_change(self) -> None:
        for listener in self._listeners:
            listener(self)

    def can_host(self, cores: int, memory_gib: float) -> bool:
        return cores <= self._free_cores and memory_gib <= self._free_memory

    def reserve(self, task_id: str, cores: int, memory_gib: float) -> None:
        if task_id in self.running:
            raise KeyError(f"task {task_id!r} already running on {self.name}")
        if not (cores <= self._free_cores and memory_gib <= self._free_memory):
            raise ValueError(
                f"{self.name}: cannot host task {task_id!r} "
                f"({cores} cores / {memory_gib} GiB requested, "
                f"{self._free_cores} cores / {self._free_memory:.1f} GiB free)"
            )
        self._free_cores -= cores
        self._free_memory = round(self._free_memory - memory_gib, 9)
        self.running[task_id] = (cores, memory_gib)
        self._notify_capacity_change()

    def release(self, task_id: str) -> None:
        if task_id not in self.running:
            raise KeyError(f"task {task_id!r} not running on {self.name}")
        cores, memory = self.running.pop(task_id)
        self._free_cores += cores
        self._free_memory += memory
        self._notify_capacity_change()

    @property
    def utilisation(self) -> float:
        """Fraction of cores currently reserved."""
        return 1.0 - self._free_cores / self.total.cores

    # ------------------------------------------------------------------ #
    # Performance / power profile
    # ------------------------------------------------------------------ #
    def execution_time_s(self, workload: WorkloadKind, gops: float, cores: int) -> float:
        """Run time of a task using ``cores`` of this node.

        Throughput scales linearly with the core share -- adequate for the
        CPU-style cloud tasks HEATS schedules (its evaluation uses
        containerised CPU workloads).
        """
        if cores <= 0:
            raise ValueError("task must request at least one core")
        share = min(1.0, cores / self.spec.cores)
        throughput = self.spec.throughput_gops[workload] * share
        return gops / throughput

    def power_w(self, utilisation: Optional[float] = None) -> float:
        return self.spec.active_power_w(self.utilisation if utilisation is None else utilisation)

    def energy_for(self, workload: WorkloadKind, gops: float, cores: int) -> float:
        duration = self.execution_time_s(workload, gops, cores)
        share = min(1.0, cores / self.spec.cores)
        # The task pays its share of dynamic power plus a share of idle power.
        dynamic = (self.spec.peak_power_w - self.spec.idle_power_w) * share
        idle_share = self.spec.idle_power_w * share
        return duration * (dynamic + idle_share)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ClusterNode({self.name}, {self.spec.model})"


@dataclass(frozen=True)
class CapacitySnapshot:
    """O(1) cluster-level free-capacity aggregates.

    Maintained incrementally by the cluster's capacity index, so reading a
    snapshot never scans the nodes.  The federation layer scores whole
    shards with these numbers before descending into node-level HEATS
    placement.
    """

    free_cores: int
    total_cores: int
    free_memory_gib: float
    total_memory_gib: float
    reserved_power_w: float
    dynamic_power_w: float

    @property
    def free_core_fraction(self) -> float:
        """Fraction of the cluster's cores currently unreserved."""
        return self.free_cores / self.total_cores if self.total_cores else 0.0

    @property
    def free_memory_fraction(self) -> float:
        """Fraction of the cluster's memory currently unreserved."""
        return self.free_memory_gib / self.total_memory_gib if self.total_memory_gib else 0.0

    @property
    def thermal_headroom(self) -> float:
        """Fraction of the cluster's dynamic power envelope still unused.

        A proxy for thermal slack: reserved core shares draw their share of
        each node's dynamic (peak minus idle) power, so a cluster running
        close to its aggregate dynamic envelope has little headroom left.
        """
        if self.dynamic_power_w <= 0:
            return 1.0
        return max(0.0, 1.0 - self.reserved_power_w / self.dynamic_power_w)


class Cluster:
    """A named collection of heterogeneous nodes with an array capacity index.

    Rows of :data:`NODE_DTYPE` hold every node's capacity/power columns in
    node-insertion order; removals tombstone their row (``active=False``)
    and the table compacts once tombstones outnumber live nodes, so row
    order always equals insertion order and feasibility masks stay
    deterministic.
    """

    #: rows allocated up front; the table doubles when it fills.
    _INITIAL_ROWS = 16

    def __init__(self, nodes: Iterable[ClusterNode]) -> None:
        self._nodes: Dict[str, ClusterNode] = {}
        self._table = np.zeros(self._INITIAL_ROWS, dtype=NODE_DTYPE)
        self._row_of: Dict[str, int] = {}
        self._row_names: List[Optional[str]] = []
        self._n_rows = 0
        self._tombstones = 0
        self._refresh_columns()
        # Cluster-level aggregates stay incremental scalars (updated with
        # the same +=/-= deltas as ever) so their float evolution -- and
        # every report derived from them -- is bit-identical to the
        # pre-array index.
        self._free_cores_total = 0
        self._free_memory_total = 0.0
        self._reserved_power_total = 0.0
        self._capacity_cache: Optional[CapacitySnapshot] = None
        self._total_cores = 0
        self._total_memory = 0.0
        self._dynamic_power_total = 0.0
        self._idle_power_total = 0.0
        self._idle: Set[str] = set()
        # Node *total* shape census for O(1) can-ever-fit checks.
        self._shape_counts: Dict[Tuple[int, float], int] = {}
        self._membership_version = 0
        # Python-side mirror of each node's (free_cores, free_memory,
        # reserved_power) so capacity-change deltas never read numpy
        # scalars back out of the table on the reserve/release hot path.
        self._prev_capacity: Dict[str, Tuple[int, float, float]] = {}
        # Interned feasible-set name tuples keyed by mask bytes; cleared
        # whenever the row -> name mapping can change (membership churn).
        self._names_memo: Dict[bytes, CandidateNames] = {}
        # Feasibility answers keyed by the *request* shape, valid only
        # between capacity changes: cleared on every reserve/release and
        # on membership churn.  Placement bursts (the retry pass and the
        # arrival stretches between completions) re-ask the same handful
        # of shapes, so most lookups cost one dict hit and zero numpy.
        self._shape_feasibility: Dict[Tuple[int, float], CandidateNames] = {}
        for node in nodes:
            self.add_node(node)
        if not self._nodes:
            raise ValueError("a cluster needs at least one node")

    # ------------------------------------------------------------------ #
    # Capacity index maintenance
    # ------------------------------------------------------------------ #
    def _refresh_columns(self) -> None:
        """Re-derive the cached column views after (re)allocating the table."""
        self._col_free_cores = self._table["free_cores"]
        self._col_free_memory = self._table["free_memory"]
        self._col_reserved_power = self._table["reserved_power"]
        self._col_active = self._table["active"]

    def _grow_table(self) -> None:
        grown = np.zeros(max(self._INITIAL_ROWS, 2 * len(self._table)), dtype=NODE_DTYPE)
        grown[: self._n_rows] = self._table[: self._n_rows]
        self._table = grown
        self._refresh_columns()

    def _compact_table(self) -> None:
        """Drop tombstoned rows, preserving live-row (insertion) order."""
        live = np.flatnonzero(self._col_active[: self._n_rows])
        compacted = np.zeros(len(self._table), dtype=NODE_DTYPE)
        compacted[: len(live)] = self._table[live]
        names = [self._row_names[row] for row in live]
        self._table = compacted
        self._row_names = names
        self._row_of = {name: row for row, name in enumerate(names)}
        self._n_rows = len(names)
        self._tombstones = 0
        self._names_memo.clear()
        self._refresh_columns()

    def _node_reserved_power_w(self, node: ClusterNode) -> float:
        used_fraction = 1.0 - node._free_cores / node.total.cores
        return (node.spec.peak_power_w - node.spec.idle_power_w) * used_fraction

    def _index_node(self, node: ClusterNode) -> None:
        if self._n_rows == len(self._table):
            self._grow_table()
        row = self._n_rows
        self._n_rows += 1
        self._row_of[node.name] = row
        self._row_names.append(node.name)
        free_cores = node._free_cores
        free_memory = node._free_memory
        reserved_power = self._node_reserved_power_w(node)
        self._table[row] = (
            free_cores,
            free_memory,
            node.total.cores,
            node.total.memory_gib,
            reserved_power,
            node.spec.idle_power_w,
            node.spec.peak_power_w - node.spec.idle_power_w,
            True,
        )
        self._free_cores_total += free_cores
        self._free_memory_total += free_memory
        self._reserved_power_total += reserved_power
        self._prev_capacity[node.name] = (free_cores, free_memory, reserved_power)
        if not node.running:
            self._idle.add(node.name)

    def _on_capacity_change(self, node: ClusterNode) -> None:
        self._capacity_cache = None
        name = node.name
        row = self._row_of[name]
        # The mirror holds exactly the values last written to the row, so
        # the incremental totals evolve bit-for-bit as if the old values
        # had been read back out of the array.
        old_free, old_memory, old_power = self._prev_capacity[name]
        new_free = node._free_cores
        new_memory = node._free_memory
        if new_free != old_free:
            self._col_free_cores[row] = new_free
            self._free_cores_total += new_free - old_free
            self._shape_feasibility.clear()
        if new_memory != old_memory:
            self._col_free_memory[row] = new_memory
            self._free_memory_total += new_memory - old_memory
            if self._shape_feasibility:
                self._shape_feasibility.clear()
        # _node_reserved_power_w inlined (same expression, so identical
        # floats): this runs once per reserve/release on the hot path.
        spec = node.spec
        new_power = (spec.peak_power_w - spec.idle_power_w) * (
            1.0 - new_free / node.total.cores
        )
        if new_power != old_power:
            self._col_reserved_power[row] = new_power
            self._reserved_power_total += new_power - old_power
        self._prev_capacity[name] = (new_free, new_memory, new_power)
        if node.running:
            self._idle.discard(name)
        else:
            self._idle.add(name)

    # ------------------------------------------------------------------ #
    # Elastic membership
    # ------------------------------------------------------------------ #
    def add_node(self, node: ClusterNode) -> None:
        """Attach a node to the cluster and start indexing its capacity.

        The elastic scale-up primitive: the node gets a row in the capacity
        table and the cluster subscribes to its capacity changes, so
        ``feasible_nodes`` and ``capacity()`` see it immediately without
        any rescan.

        Args:
            node: the node to attach; its name must be cluster-unique.
        """
        if node.name in self._nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        self._total_cores += node.total.cores
        self._total_memory += node.total.memory_gib
        self._dynamic_power_total += node.spec.peak_power_w - node.spec.idle_power_w
        self._idle_power_total += node.spec.idle_power_w
        shape = (node.total.cores, node.total.memory_gib)
        self._shape_counts[shape] = self._shape_counts.get(shape, 0) + 1
        self._membership_version += 1
        self._names_memo.clear()
        self._shape_feasibility.clear()
        self._index_node(node)
        node.subscribe(self._on_capacity_change)
        self._capacity_cache = None

    def remove_node(self, name: str) -> ClusterNode:
        """Detach an idle node from the cluster (elastic scale-down).

        The node must not be hosting any task -- a caller scaling down must
        drain or migrate first (:meth:`idle_nodes` lists removable nodes).
        A cluster never shrinks to zero nodes.

        Args:
            name: the node to detach.

        Returns:
            The detached node (no longer indexed or subscribed).
        """
        if name not in self._nodes:
            raise KeyError(f"no node named {name!r}")
        node = self._nodes[name]
        if node.running:
            raise ValueError(
                f"cannot remove node {name!r}: {len(node.running)} task(s) "
                "still running -- drain or migrate them first"
            )
        if len(self._nodes) == 1:
            raise ValueError("a cluster needs at least one node")
        node.unsubscribe(self._on_capacity_change)
        row = self._row_of.pop(name)
        self._col_active[row] = False
        self._row_names[row] = None
        self._tombstones += 1
        self._free_cores_total -= int(self._col_free_cores[row])
        shape = (node.total.cores, node.total.memory_gib)
        self._shape_counts[shape] -= 1
        if not self._shape_counts[shape]:
            del self._shape_counts[shape]
        self._membership_version += 1
        self._free_memory_total -= float(self._col_free_memory[row])
        self._reserved_power_total -= float(self._col_reserved_power[row])
        self._total_cores -= node.total.cores
        self._total_memory -= node.total.memory_gib
        self._dynamic_power_total -= node.spec.peak_power_w - node.spec.idle_power_w
        self._idle_power_total -= node.spec.idle_power_w
        self._idle.discard(name)
        del self._nodes[name]
        del self._prev_capacity[name]
        self._names_memo.clear()
        self._shape_feasibility.clear()
        self._capacity_cache = None
        if self._tombstones > len(self._nodes):
            self._compact_table()
        return node

    def idle_nodes(self) -> List[ClusterNode]:
        """Nodes hosting nothing at all (safe to remove).

        Served from an incrementally maintained idle set (updated on every
        reserve/release), so a busy cluster answers in O(idle nodes)
        without scanning its loaded ones.

        Returns:
            Fully idle nodes in node-insertion order.
        """
        names = sorted(self._idle, key=self._row_of.__getitem__)
        return [self._nodes[name] for name in names]

    def capacity(self) -> CapacitySnapshot:
        """The cluster's free-capacity aggregates, read in O(1).

        The snapshot is memoised between capacity changes, so repeated
        reads on the routing hot path (shard scoring touches it several
        times per request) cost a dict hit, not an object build.
        """
        if self._capacity_cache is None:
            self._capacity_cache = CapacitySnapshot(
                free_cores=self._free_cores_total,
                total_cores=self._total_cores,
                free_memory_gib=self._free_memory_total,
                total_memory_gib=self._total_memory,
                reserved_power_w=max(0.0, self._reserved_power_total),
                dynamic_power_w=self._dynamic_power_total,
            )
        return self._capacity_cache

    @property
    def membership_version(self) -> int:
        """Monotone counter bumped by every node add/remove.

        An exact, O(1) topology-change fingerprint: two reads differ if
        and only if the node population mutated in between (a same-size
        swap of different models is still two bumps).  The simulator
        compares it around reschedule events to decide whether queued
        requests and the idle-power level need revisiting.
        """
        return self._membership_version

    @property
    def array_nbytes(self) -> int:
        """Bytes currently allocated to the structured capacity table."""
        return self._table.nbytes

    def node_row(self, name: str) -> np.void:
        """The capacity-table row mirroring one node (a read-only copy).

        Test seam for the array/object-view consistency properties: every
        field must agree with the node object it mirrors.
        """
        row = np.void(self._table[self._row_of[name]])
        return row

    def _feasible_mask(self, cores: int, memory_gib: float) -> np.ndarray:
        n = self._n_rows
        mask = self._col_free_cores[:n] >= cores
        mask &= self._col_free_memory[:n] >= memory_gib
        if self._tombstones:
            mask &= self._col_active[:n]
        return mask

    def has_feasible_node(self, cores: int, memory_gib: float) -> bool:
        """Whether some node currently has both the cores and the memory.

        The exact feasibility oracle behind the simulator's capacity-gated
        retry: equivalent to ``bool(feasible_nodes(cores, memory_gib))``
        but answered as one vectorised comparison over the capacity
        table's columns.  The columns mirror the nodes' exact rounded
        floats, so the comparison agrees bit-for-bit with per-node
        ``can_host`` checks -- there is no cache to go stale under elastic
        topology changes.

        Args:
            cores: requested core count.
            memory_gib: requested memory.

        Returns:
            True when at least one node can host the demand right now.
        """
        # Answered via the name surface so the shape memo is shared: the
        # simulator's retry gate verifies a shape and then immediately
        # places it, and both questions cost one mask build total.
        return bool(self.feasible_node_names(cores, memory_gib))

    def feasible_shape_mask(self, cores: np.ndarray, memory_gib: np.ndarray) -> np.ndarray:
        """Per-shape feasibility for many (cores, memory) shapes at once.

        One broadcast comparison of K shapes against N nodes -- the
        simulator's retry path gates every distinct queued shape with a
        single call instead of K oracle reads.

        Args:
            cores: int64 array of requested core counts, shape (K,).
            memory_gib: float64 array of requested memory, shape (K,).

        Returns:
            Boolean array of shape (K,); entry k is
            ``has_feasible_node(cores[k], memory_gib[k])``.
        """
        return self.feasible_shape_matrix(cores, memory_gib).any(axis=1)

    def feasible_shape_matrix(self, cores: np.ndarray, memory_gib: np.ndarray) -> np.ndarray:
        """Per-(shape, node) feasibility for many shapes at once.

        The full K x N boolean matrix behind :meth:`feasible_shape_mask`.
        The simulator's retry pass keeps it around so that, after a
        placement shrinks one node's capacity, each shape can be
        re-verified from the matrix plus a couple of exact Python float
        comparisons instead of a fresh vectorised scan.

        Args:
            cores: int64 array of requested core counts, shape (K,).
            memory_gib: float64 array of requested memory, shape (K,).

        Returns:
            Boolean array of shape (K, N); entry (k, n) is whether node
            row n currently fits shape k.
        """
        n = self._n_rows
        ok = (self._col_free_cores[:n] >= cores[:, None]) & (
            self._col_free_memory[:n] >= memory_gib[:, None]
        )
        if self._tombstones:
            ok &= self._col_active[:n]
        return ok

    def fits_any_node_total(self, cores: int, memory_gib: float) -> bool:
        """Whether any node could host the demand even when fully idle.

        Served from a census of distinct node *total* shapes (a handful of
        catalogue models), so arrival-time feasibility screening is O(1)
        instead of a node scan.

        Args:
            cores: requested core count.
            memory_gib: requested memory.

        Returns:
            True when at least one node's total resources suffice.
        """
        return any(
            cores <= total_cores and memory_gib <= total_memory
            for total_cores, total_memory in self._shape_counts
        )

    @classmethod
    def from_models(cls, models: Mapping[str, int], prefix: str = "node") -> "Cluster":
        """Build a cluster with ``count`` nodes of each catalogue model."""
        nodes: List[ClusterNode] = []
        index = 0
        for model, count in models.items():
            spec = MICROSERVER_CATALOG[model]
            for _ in range(count):
                nodes.append(ClusterNode(name=f"{prefix}-{index}-{model}", spec=spec))
                index += 1
        return cls(nodes)

    @classmethod
    def heats_testbed(cls, scale: int = 2, prefix: str = "node") -> "Cluster":
        """A mixed x86 / ARM / low-power cluster like the HEATS evaluation's.

        Args:
            scale: number of nodes of each of the four catalogue models.
            prefix: node-name prefix; shards of a federation pass distinct
                prefixes so node names stay unique across the federation.

        Returns:
            A fresh ``Cluster`` with ``4 * scale`` heterogeneous nodes.
        """
        return cls.from_models(
            {
                "xeon-d-x86": scale,
                "arm64-server": scale,
                "jetson-gpu-soc": scale,
                "apalis-arm-soc": scale,
            },
            prefix=prefix,
        )

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    @property
    def nodes(self) -> List[ClusterNode]:
        return list(self._nodes.values())

    def node(self, name: str) -> ClusterNode:
        if name not in self._nodes:
            raise KeyError(f"no node named {name!r}")
        return self._nodes[name]

    def __iter__(self) -> Iterator[ClusterNode]:
        return iter(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    def feasible_node_names(self, cores: int, memory_gib: float) -> CandidateNames:
        """Names of the nodes able to host a request, in insertion order.

        The placement hot path: repeated queries for the same request
        shape between two capacity changes are answered from a dict
        (cleared on every reserve/release); otherwise one vectorised mask
        over the capacity table, then an interned :class:`CandidateNames`
        tuple per distinct mask -- node objects are never touched, and
        the interned tuple's cached hash makes it cheap as a score-cache
        key component.
        """
        shape = (cores, memory_gib)
        names = self._shape_feasibility.get(shape)
        if names is not None:
            return names
        n = self._n_rows
        mask = self._col_free_cores[:n] >= cores
        mask &= self._col_free_memory[:n] >= memory_gib
        if self._tombstones:
            mask &= self._col_active[:n]
        key = mask.tobytes()
        names = self._names_memo.get(key)
        if names is None:
            row_names = self._row_names
            names = CandidateNames(
                row_names[row] for row in np.flatnonzero(mask)
            )
            if len(self._names_memo) >= 8192:
                self._names_memo.clear()
            self._names_memo[key] = names
        self._shape_feasibility[shape] = names
        return names

    def feasible_nodes(self, cores: int, memory_gib: float) -> List[ClusterNode]:
        """Nodes with enough free resources for a request.

        Served from the capacity table (one vectorised comparison); the
        result keeps the cluster's node-insertion order (row order) so
        placement stays deterministic.
        """
        nodes = self._nodes
        return [
            nodes[name] for name in self.feasible_node_names(cores, memory_gib)
        ]

    def total_idle_power_w(self) -> float:
        # Maintained incrementally on add/remove so the simulator can read
        # it per event to account idle energy under elastic membership.
        return self._idle_power_total

    def locate(self, task_id: str) -> Optional[ClusterNode]:
        for node in self._nodes.values():
            if task_id in node.running:
                return node
        return None
