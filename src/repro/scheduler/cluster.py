"""The heterogeneous cluster HEATS schedules onto.

A cluster node corresponds to one physical host (in LEGaTO: one microserver
or one server built from them).  Nodes expose countable resources (cores,
memory) that tasks reserve, plus a performance/energy profile derived from
the microserver catalogue so different nodes genuinely differ in speed and
efficiency -- the heterogeneity HEATS exploits.

The cluster maintains an incrementally-updated free-capacity index: nodes
are bucketed by free core count and per-node free memory and reserved
power are tracked as running aggregates, updated on every reserve/release
instead of rescanned per request.  ``feasible_nodes`` (the placement hot
path) only touches buckets that can satisfy the request, and
``capacity()`` exposes the O(1) cluster-level aggregates the federation
layer uses to pick a shard without looking at individual nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.hardware.microserver import (
    MICROSERVER_CATALOG,
    DeviceKind,
    MicroserverSpec,
    WorkloadKind,
)


@dataclass(frozen=True)
class NodeResources:
    """Countable resources of a node (what the task requests are matched to).

    A fully loaded node legitimately has zero free cores/memory, so the
    invariant is non-negativity; node *totals* are positive by construction
    (microserver specs always expose at least one core).
    """

    cores: int
    memory_gib: float

    def __post_init__(self) -> None:
        if self.cores < 0 or self.memory_gib < 0:
            raise ValueError("node resources must be non-negative")

    def fits(self, cores: int, memory_gib: float) -> bool:
        return cores <= self.cores and memory_gib <= self.memory_gib

    def minus(self, cores: int, memory_gib: float) -> "NodeResources":
        if not self.fits(cores, memory_gib):
            raise ValueError("cannot subtract more resources than available")
        return NodeResources(
            cores=self.cores - cores, memory_gib=round(self.memory_gib - memory_gib, 9)
        )

    def plus(self, cores: int, memory_gib: float) -> "NodeResources":
        return NodeResources(cores=self.cores + cores, memory_gib=self.memory_gib + memory_gib)


@dataclass
class ClusterNode:
    """One schedulable host."""

    name: str
    spec: MicroserverSpec
    total: NodeResources = field(init=False)
    available: NodeResources = field(init=False)
    running: Dict[str, Tuple[int, float]] = field(default_factory=dict)
    busy_core_seconds: float = 0.0
    energy_j: float = 0.0

    def __post_init__(self) -> None:
        self.total = NodeResources(cores=self.spec.cores, memory_gib=self.spec.memory_gib)
        self.available = self.total
        self._listeners: List[Callable[["ClusterNode"], None]] = []

    # ------------------------------------------------------------------ #
    # Capacity
    # ------------------------------------------------------------------ #
    def subscribe(self, listener: Callable[["ClusterNode"], None]) -> None:
        """Register a callback invoked after every capacity change.

        Clusters (and federated clusters, which share node objects with
        their shard view) subscribe here to keep their free-capacity
        indices incremental instead of rescanning nodes.
        """
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[["ClusterNode"], None]) -> None:
        """Remove a previously subscribed capacity listener.

        Clusters call this when a node is removed from their view (elastic
        scale-down), so a retired view no longer receives updates for a
        node it stopped indexing.
        """
        self._listeners.remove(listener)

    def _notify_capacity_change(self) -> None:
        for listener in self._listeners:
            listener(self)

    def can_host(self, cores: int, memory_gib: float) -> bool:
        return self.available.fits(cores, memory_gib)

    def reserve(self, task_id: str, cores: int, memory_gib: float) -> None:
        if task_id in self.running:
            raise KeyError(f"task {task_id!r} already running on {self.name}")
        if not self.can_host(cores, memory_gib):
            raise ValueError(
                f"{self.name}: cannot host task {task_id!r} "
                f"({cores} cores / {memory_gib} GiB requested, "
                f"{self.available.cores} cores / {self.available.memory_gib:.1f} GiB free)"
            )
        self.available = self.available.minus(cores, memory_gib)
        self.running[task_id] = (cores, memory_gib)
        self._notify_capacity_change()

    def release(self, task_id: str) -> None:
        if task_id not in self.running:
            raise KeyError(f"task {task_id!r} not running on {self.name}")
        cores, memory = self.running.pop(task_id)
        self.available = self.available.plus(cores, memory)
        self._notify_capacity_change()

    @property
    def utilisation(self) -> float:
        """Fraction of cores currently reserved."""
        return 1.0 - self.available.cores / self.total.cores

    # ------------------------------------------------------------------ #
    # Performance / power profile
    # ------------------------------------------------------------------ #
    def execution_time_s(self, workload: WorkloadKind, gops: float, cores: int) -> float:
        """Run time of a task using ``cores`` of this node.

        Throughput scales linearly with the core share -- adequate for the
        CPU-style cloud tasks HEATS schedules (its evaluation uses
        containerised CPU workloads).
        """
        if cores <= 0:
            raise ValueError("task must request at least one core")
        share = min(1.0, cores / self.spec.cores)
        throughput = self.spec.throughput_gops[workload] * share
        return gops / throughput

    def power_w(self, utilisation: Optional[float] = None) -> float:
        return self.spec.active_power_w(self.utilisation if utilisation is None else utilisation)

    def energy_for(self, workload: WorkloadKind, gops: float, cores: int) -> float:
        duration = self.execution_time_s(workload, gops, cores)
        share = min(1.0, cores / self.spec.cores)
        # The task pays its share of dynamic power plus a share of idle power.
        dynamic = (self.spec.peak_power_w - self.spec.idle_power_w) * share
        idle_share = self.spec.idle_power_w * share
        return duration * (dynamic + idle_share)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ClusterNode({self.name}, {self.spec.model})"


@dataclass(frozen=True)
class CapacitySnapshot:
    """O(1) cluster-level free-capacity aggregates.

    Maintained incrementally by the cluster's capacity index, so reading a
    snapshot never scans the nodes.  The federation layer scores whole
    shards with these numbers before descending into node-level HEATS
    placement.
    """

    free_cores: int
    total_cores: int
    free_memory_gib: float
    total_memory_gib: float
    reserved_power_w: float
    dynamic_power_w: float

    @property
    def free_core_fraction(self) -> float:
        """Fraction of the cluster's cores currently unreserved."""
        return self.free_cores / self.total_cores if self.total_cores else 0.0

    @property
    def free_memory_fraction(self) -> float:
        """Fraction of the cluster's memory currently unreserved."""
        return self.free_memory_gib / self.total_memory_gib if self.total_memory_gib else 0.0

    @property
    def thermal_headroom(self) -> float:
        """Fraction of the cluster's dynamic power envelope still unused.

        A proxy for thermal slack: reserved core shares draw their share of
        each node's dynamic (peak minus idle) power, so a cluster running
        close to its aggregate dynamic envelope has little headroom left.
        """
        if self.dynamic_power_w <= 0:
            return 1.0
        return max(0.0, 1.0 - self.reserved_power_w / self.dynamic_power_w)


class Cluster:
    """A named collection of heterogeneous nodes with a capacity index."""

    def __init__(self, nodes: Iterable[ClusterNode]) -> None:
        self._nodes: Dict[str, ClusterNode] = {}
        # Incremental free-capacity index: nodes bucketed by free cores,
        # per-node free memory and reserved dynamic power tracked so the
        # hot path and the aggregates never rescan all nodes.
        self._order: Dict[str, int] = {}
        self._next_order = 0
        self._free_cores: Dict[str, int] = {}
        self._free_memory: Dict[str, float] = {}
        self._reserved_power: Dict[str, float] = {}
        self._buckets: Dict[int, Set[str]] = {}
        self._free_cores_total = 0
        self._free_memory_total = 0.0
        self._reserved_power_total = 0.0
        self._capacity_cache: Optional[CapacitySnapshot] = None
        self._total_cores = 0
        self._total_memory = 0.0
        self._dynamic_power_total = 0.0
        self._idle_power_total = 0.0
        self._idle: Set[str] = set()
        # Per-bucket max free memory (lazily recomputed when the holder
        # shrinks) and node *total* shape census (for O(1) can-ever-fit
        # checks): the parts of the capacity index the simulator's
        # capacity-gated retry path reads per completion.  ``None`` marks
        # a stale bucket maximum.
        self._bucket_max_memory: Dict[int, Optional[float]] = {}
        self._shape_counts: Dict[Tuple[int, float], int] = {}
        self._membership_version = 0
        for node in nodes:
            self.add_node(node)
        if not self._nodes:
            raise ValueError("a cluster needs at least one node")

    # ------------------------------------------------------------------ #
    # Capacity index maintenance
    # ------------------------------------------------------------------ #
    def _node_reserved_power_w(self, node: ClusterNode) -> float:
        used_fraction = 1.0 - node.available.cores / node.total.cores
        return (node.spec.peak_power_w - node.spec.idle_power_w) * used_fraction

    def _index_node(self, node: ClusterNode) -> None:
        free_cores = node.available.cores
        free_memory = node.available.memory_gib
        reserved_power = self._node_reserved_power_w(node)
        self._free_cores[node.name] = free_cores
        self._free_memory[node.name] = free_memory
        self._reserved_power[node.name] = reserved_power
        self._buckets.setdefault(free_cores, set()).add(node.name)
        self._raise_bucket_max_memory(free_cores, free_memory)
        self._free_cores_total += free_cores
        self._free_memory_total += free_memory
        self._reserved_power_total += reserved_power
        if not node.running:
            self._idle.add(node.name)

    def _raise_bucket_max_memory(self, free_cores: int, memory_gib: float) -> None:
        """A node with ``memory_gib`` free joined a bucket: raise its max.

        A stale (``None``) entry stays stale -- the joining node's memory
        alone says nothing about the other members, so only the lazy
        recompute may turn stale back into a definite value.
        """
        if free_cores not in self._bucket_max_memory:
            self._bucket_max_memory[free_cores] = memory_gib
            return
        cached = self._bucket_max_memory[free_cores]
        if cached is not None and memory_gib > cached:
            self._bucket_max_memory[free_cores] = memory_gib

    def _drop_from_bucket_max_memory(self, free_cores: int, memory_gib: float) -> None:
        """A node that had ``memory_gib`` free left a bucket (or shrank)."""
        if free_cores not in self._buckets:
            self._bucket_max_memory.pop(free_cores, None)
        elif self._bucket_max_memory.get(free_cores) == memory_gib:
            # The (possibly tied) holder left; recompute lazily on read.
            self._bucket_max_memory[free_cores] = None

    def _on_capacity_change(self, node: ClusterNode) -> None:
        self._capacity_cache = None
        old_free = self._free_cores[node.name]
        old_memory = self._free_memory[node.name]
        new_free = node.available.cores
        new_memory = node.available.memory_gib
        if new_free != old_free:
            bucket = self._buckets[old_free]
            bucket.discard(node.name)
            if not bucket:
                del self._buckets[old_free]
            self._buckets.setdefault(new_free, set()).add(node.name)
            self._drop_from_bucket_max_memory(old_free, old_memory)
            self._raise_bucket_max_memory(new_free, new_memory)
            self._free_cores_total += new_free - old_free
            self._free_cores[node.name] = new_free
        if new_memory != old_memory:
            if new_free == old_free:
                self._drop_from_bucket_max_memory(new_free, old_memory)
                self._raise_bucket_max_memory(new_free, new_memory)
            self._free_memory_total += new_memory - old_memory
            self._free_memory[node.name] = new_memory
        old_power = self._reserved_power[node.name]
        new_power = self._node_reserved_power_w(node)
        if new_power != old_power:
            self._reserved_power_total += new_power - old_power
            self._reserved_power[node.name] = new_power
        if node.running:
            self._idle.discard(node.name)
        else:
            self._idle.add(node.name)

    # ------------------------------------------------------------------ #
    # Elastic membership
    # ------------------------------------------------------------------ #
    def add_node(self, node: ClusterNode) -> None:
        """Attach a node to the cluster and start indexing its capacity.

        The elastic scale-up primitive: the node joins the free-capacity
        index (buckets, aggregates) and the cluster subscribes to its
        capacity changes, so ``feasible_nodes`` and ``capacity()`` see it
        immediately without any rescan.

        Args:
            node: the node to attach; its name must be cluster-unique.
        """
        if node.name in self._nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        self._order[node.name] = self._next_order
        self._next_order += 1
        self._total_cores += node.total.cores
        self._total_memory += node.total.memory_gib
        self._dynamic_power_total += node.spec.peak_power_w - node.spec.idle_power_w
        self._idle_power_total += node.spec.idle_power_w
        shape = (node.total.cores, node.total.memory_gib)
        self._shape_counts[shape] = self._shape_counts.get(shape, 0) + 1
        self._membership_version += 1
        self._index_node(node)
        node.subscribe(self._on_capacity_change)
        self._capacity_cache = None

    def remove_node(self, name: str) -> ClusterNode:
        """Detach an idle node from the cluster (elastic scale-down).

        The node must not be hosting any task -- a caller scaling down must
        drain or migrate first (:meth:`idle_nodes` lists removable nodes).
        A cluster never shrinks to zero nodes.

        Args:
            name: the node to detach.

        Returns:
            The detached node (no longer indexed or subscribed).
        """
        if name not in self._nodes:
            raise KeyError(f"no node named {name!r}")
        node = self._nodes[name]
        if node.running:
            raise ValueError(
                f"cannot remove node {name!r}: {len(node.running)} task(s) "
                "still running -- drain or migrate them first"
            )
        if len(self._nodes) == 1:
            raise ValueError("a cluster needs at least one node")
        node.unsubscribe(self._on_capacity_change)
        free_cores = self._free_cores.pop(name)
        bucket = self._buckets[free_cores]
        bucket.discard(name)
        if not bucket:
            del self._buckets[free_cores]
        self._free_cores_total -= free_cores
        freed_memory = self._free_memory.pop(name)
        self._drop_from_bucket_max_memory(free_cores, freed_memory)
        shape = (node.total.cores, node.total.memory_gib)
        self._shape_counts[shape] -= 1
        if not self._shape_counts[shape]:
            del self._shape_counts[shape]
        self._membership_version += 1
        self._free_memory_total -= freed_memory
        self._reserved_power_total -= self._reserved_power.pop(name)
        self._total_cores -= node.total.cores
        self._total_memory -= node.total.memory_gib
        self._dynamic_power_total -= node.spec.peak_power_w - node.spec.idle_power_w
        self._idle_power_total -= node.spec.idle_power_w
        self._idle.discard(name)
        del self._nodes[name]
        del self._order[name]
        self._capacity_cache = None
        return node

    def idle_nodes(self) -> List[ClusterNode]:
        """Nodes hosting nothing at all (safe to remove).

        Served from an incrementally maintained idle set (updated on every
        reserve/release), so a busy cluster answers in O(idle nodes)
        without scanning its loaded ones.

        Returns:
            Fully idle nodes in node-insertion order.
        """
        names = sorted(self._idle, key=self._order.__getitem__)
        return [self._nodes[name] for name in names]

    def capacity(self) -> CapacitySnapshot:
        """The cluster's free-capacity aggregates, read in O(1).

        The snapshot is memoised between capacity changes, so repeated
        reads on the routing hot path (shard scoring touches it several
        times per request) cost a dict hit, not an object build.
        """
        if self._capacity_cache is None:
            self._capacity_cache = CapacitySnapshot(
                free_cores=self._free_cores_total,
                total_cores=self._total_cores,
                free_memory_gib=self._free_memory_total,
                total_memory_gib=self._total_memory,
                reserved_power_w=max(0.0, self._reserved_power_total),
                dynamic_power_w=self._dynamic_power_total,
            )
        return self._capacity_cache

    @property
    def membership_version(self) -> int:
        """Monotone counter bumped by every node add/remove.

        An exact, O(1) topology-change fingerprint: two reads differ if
        and only if the node population mutated in between (a same-size
        swap of different models is still two bumps).  The simulator
        compares it around reschedule events to decide whether queued
        requests and the idle-power level need revisiting.
        """
        return self._membership_version

    def _bucket_max_memory_gib(self, free_cores: int) -> float:
        """Max free memory among the nodes of one free-core bucket."""
        cached = self._bucket_max_memory.get(free_cores)
        if cached is None:
            cached = max(
                self._free_memory[name] for name in self._buckets[free_cores]
            )
            self._bucket_max_memory[free_cores] = cached
        return cached

    def has_feasible_node(self, cores: int, memory_gib: float) -> bool:
        """Whether some node currently has both the cores and the memory.

        The exact feasibility oracle behind the simulator's capacity-gated
        retry: equivalent to ``bool(feasible_nodes(cores, memory_gib))``
        but answered from the free-core buckets and their (lazily
        memoised) per-bucket max free memory -- O(distinct free-core
        counts) instead of a node scan, which is what makes retrying a
        deep pending queue per completion affordable.

        Args:
            cores: requested core count.
            memory_gib: requested memory.

        Returns:
            True when at least one node can host the demand right now.
        """
        for free_cores in self._buckets:
            if free_cores >= cores and (
                self._bucket_max_memory_gib(free_cores) >= memory_gib
            ):
                return True
        return False

    def fits_any_node_total(self, cores: int, memory_gib: float) -> bool:
        """Whether any node could host the demand even when fully idle.

        Served from a census of distinct node *total* shapes (a handful of
        catalogue models), so arrival-time feasibility screening is O(1)
        instead of a node scan.

        Args:
            cores: requested core count.
            memory_gib: requested memory.

        Returns:
            True when at least one node's total resources suffice.
        """
        return any(
            cores <= total_cores and memory_gib <= total_memory
            for total_cores, total_memory in self._shape_counts
        )

    @classmethod
    def from_models(cls, models: Mapping[str, int], prefix: str = "node") -> "Cluster":
        """Build a cluster with ``count`` nodes of each catalogue model."""
        nodes: List[ClusterNode] = []
        index = 0
        for model, count in models.items():
            spec = MICROSERVER_CATALOG[model]
            for _ in range(count):
                nodes.append(ClusterNode(name=f"{prefix}-{index}-{model}", spec=spec))
                index += 1
        return cls(nodes)

    @classmethod
    def heats_testbed(cls, scale: int = 2, prefix: str = "node") -> "Cluster":
        """A mixed x86 / ARM / low-power cluster like the HEATS evaluation's.

        Args:
            scale: number of nodes of each of the four catalogue models.
            prefix: node-name prefix; shards of a federation pass distinct
                prefixes so node names stay unique across the federation.

        Returns:
            A fresh ``Cluster`` with ``4 * scale`` heterogeneous nodes.
        """
        return cls.from_models(
            {
                "xeon-d-x86": scale,
                "arm64-server": scale,
                "jetson-gpu-soc": scale,
                "apalis-arm-soc": scale,
            },
            prefix=prefix,
        )

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    @property
    def nodes(self) -> List[ClusterNode]:
        return list(self._nodes.values())

    def node(self, name: str) -> ClusterNode:
        if name not in self._nodes:
            raise KeyError(f"no node named {name!r}")
        return self._nodes[name]

    def __iter__(self) -> Iterator[ClusterNode]:
        return iter(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    def feasible_nodes(self, cores: int, memory_gib: float) -> List[ClusterNode]:
        """Nodes with enough free resources for a request.

        Served from the incremental capacity index: only the free-core
        buckets that can satisfy the request are examined (a loaded
        cluster skips its saturated nodes entirely), then filtered by free
        memory.  The result keeps the cluster's node-insertion order so
        placement stays deterministic.
        """
        names: List[str] = []
        for free_cores, bucket in self._buckets.items():
            if free_cores < cores:
                continue
            for name in bucket:
                if self._free_memory[name] >= memory_gib:
                    names.append(name)
        names.sort(key=self._order.__getitem__)
        return [self._nodes[name] for name in names]

    def total_idle_power_w(self) -> float:
        # Maintained incrementally on add/remove so the simulator can read
        # it per event to account idle energy under elastic membership.
        return self._idle_power_total

    def locate(self, task_id: str) -> Optional[ClusterNode]:
        for node in self._nodes.values():
            if task_id in node.running:
                return node
        return None
