"""The heterogeneous cluster HEATS schedules onto.

A cluster node corresponds to one physical host (in LEGaTO: one microserver
or one server built from them).  Nodes expose countable resources (cores,
memory) that tasks reserve, plus a performance/energy profile derived from
the microserver catalogue so different nodes genuinely differ in speed and
efficiency -- the heterogeneity HEATS exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.hardware.microserver import (
    MICROSERVER_CATALOG,
    DeviceKind,
    MicroserverSpec,
    WorkloadKind,
)


@dataclass(frozen=True)
class NodeResources:
    """Countable resources of a node (what the task requests are matched to).

    A fully loaded node legitimately has zero free cores/memory, so the
    invariant is non-negativity; node *totals* are positive by construction
    (microserver specs always expose at least one core).
    """

    cores: int
    memory_gib: float

    def __post_init__(self) -> None:
        if self.cores < 0 or self.memory_gib < 0:
            raise ValueError("node resources must be non-negative")

    def fits(self, cores: int, memory_gib: float) -> bool:
        return cores <= self.cores and memory_gib <= self.memory_gib

    def minus(self, cores: int, memory_gib: float) -> "NodeResources":
        if not self.fits(cores, memory_gib):
            raise ValueError("cannot subtract more resources than available")
        return NodeResources(
            cores=self.cores - cores, memory_gib=round(self.memory_gib - memory_gib, 9)
        )

    def plus(self, cores: int, memory_gib: float) -> "NodeResources":
        return NodeResources(cores=self.cores + cores, memory_gib=self.memory_gib + memory_gib)


@dataclass
class ClusterNode:
    """One schedulable host."""

    name: str
    spec: MicroserverSpec
    total: NodeResources = field(init=False)
    available: NodeResources = field(init=False)
    running: Dict[str, Tuple[int, float]] = field(default_factory=dict)
    busy_core_seconds: float = 0.0
    energy_j: float = 0.0

    def __post_init__(self) -> None:
        self.total = NodeResources(cores=self.spec.cores, memory_gib=self.spec.memory_gib)
        self.available = self.total

    # ------------------------------------------------------------------ #
    # Capacity
    # ------------------------------------------------------------------ #
    def can_host(self, cores: int, memory_gib: float) -> bool:
        return self.available.fits(cores, memory_gib)

    def reserve(self, task_id: str, cores: int, memory_gib: float) -> None:
        if task_id in self.running:
            raise KeyError(f"task {task_id!r} already running on {self.name}")
        if not self.can_host(cores, memory_gib):
            raise ValueError(
                f"{self.name}: cannot host task {task_id!r} "
                f"({cores} cores / {memory_gib} GiB requested, "
                f"{self.available.cores} cores / {self.available.memory_gib:.1f} GiB free)"
            )
        self.available = self.available.minus(cores, memory_gib)
        self.running[task_id] = (cores, memory_gib)

    def release(self, task_id: str) -> None:
        if task_id not in self.running:
            raise KeyError(f"task {task_id!r} not running on {self.name}")
        cores, memory = self.running.pop(task_id)
        self.available = self.available.plus(cores, memory)

    @property
    def utilisation(self) -> float:
        """Fraction of cores currently reserved."""
        return 1.0 - self.available.cores / self.total.cores

    # ------------------------------------------------------------------ #
    # Performance / power profile
    # ------------------------------------------------------------------ #
    def execution_time_s(self, workload: WorkloadKind, gops: float, cores: int) -> float:
        """Run time of a task using ``cores`` of this node.

        Throughput scales linearly with the core share -- adequate for the
        CPU-style cloud tasks HEATS schedules (its evaluation uses
        containerised CPU workloads).
        """
        if cores <= 0:
            raise ValueError("task must request at least one core")
        share = min(1.0, cores / self.spec.cores)
        throughput = self.spec.throughput_gops[workload] * share
        return gops / throughput

    def power_w(self, utilisation: Optional[float] = None) -> float:
        return self.spec.active_power_w(self.utilisation if utilisation is None else utilisation)

    def energy_for(self, workload: WorkloadKind, gops: float, cores: int) -> float:
        duration = self.execution_time_s(workload, gops, cores)
        share = min(1.0, cores / self.spec.cores)
        # The task pays its share of dynamic power plus a share of idle power.
        dynamic = (self.spec.peak_power_w - self.spec.idle_power_w) * share
        idle_share = self.spec.idle_power_w * share
        return duration * (dynamic + idle_share)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ClusterNode({self.name}, {self.spec.model})"


class Cluster:
    """A named collection of heterogeneous nodes."""

    def __init__(self, nodes: Iterable[ClusterNode]) -> None:
        self._nodes: Dict[str, ClusterNode] = {}
        for node in nodes:
            if node.name in self._nodes:
                raise ValueError(f"duplicate node name {node.name!r}")
            self._nodes[node.name] = node
        if not self._nodes:
            raise ValueError("a cluster needs at least one node")

    @classmethod
    def from_models(cls, models: Mapping[str, int], prefix: str = "node") -> "Cluster":
        """Build a cluster with ``count`` nodes of each catalogue model."""
        nodes: List[ClusterNode] = []
        index = 0
        for model, count in models.items():
            spec = MICROSERVER_CATALOG[model]
            for _ in range(count):
                nodes.append(ClusterNode(name=f"{prefix}-{index}-{model}", spec=spec))
                index += 1
        return cls(nodes)

    @classmethod
    def heats_testbed(cls, scale: int = 2) -> "Cluster":
        """A mixed x86 / ARM / low-power cluster like the HEATS evaluation's."""
        return cls.from_models(
            {
                "xeon-d-x86": scale,
                "arm64-server": scale,
                "jetson-gpu-soc": scale,
                "apalis-arm-soc": scale,
            }
        )

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    @property
    def nodes(self) -> List[ClusterNode]:
        return list(self._nodes.values())

    def node(self, name: str) -> ClusterNode:
        if name not in self._nodes:
            raise KeyError(f"no node named {name!r}")
        return self._nodes[name]

    def __iter__(self) -> Iterator[ClusterNode]:
        return iter(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    def feasible_nodes(self, cores: int, memory_gib: float) -> List[ClusterNode]:
        """Nodes with enough free resources for a request."""
        return [node for node in self._nodes.values() if node.can_host(cores, memory_gib)]

    def total_idle_power_w(self) -> float:
        return sum(node.spec.idle_power_w for node in self._nodes.values())

    def locate(self, task_id: str) -> Optional[ClusterNode]:
        for node in self._nodes.values():
            if task_id in node.running:
                return node
        return None
