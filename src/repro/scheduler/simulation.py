"""Discrete-event cluster simulator driving any of the schedulers.

The simulator replays a stream of :class:`TaskRequest` arrivals against a
:class:`Cluster` under a scheduling policy (HEATS or a baseline), handling
queueing when nothing can host a request, task completions, periodic
re-scheduling/migration for policies that support it, and energy
accounting:

* every task is charged the energy of the node share it occupies for as long
  as it runs there (split across nodes when migrated, plus the migration
  downtime);
* the cluster's static (idle) power is charged for the whole makespan, so a
  policy that finishes earlier also saves static energy -- the effect that
  makes pure energy-greedy placement lose at the performance end of the
  trade-off curve.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

from repro.scheduler.cluster import Cluster, ClusterNode
from repro.scheduler.monitoring import ClusterMonitor
from repro.scheduler.placement import MigrationEvent, PlacementEngine
from repro.scheduler.workload import TaskRequest
from repro.telemetry.profile import NULL_PHASE, PhaseProfiler
from repro.telemetry.trace import Span, Tracer


class SchedulerProtocol(Protocol):
    """What the simulator needs from a scheduling policy."""

    name: str
    supports_rescheduling: bool

    def place(self, request: TaskRequest, cluster: Cluster, time_s: float) -> Optional[str]:
        ...

    def reschedule(
        self, running: Sequence, cluster: Cluster, time_s: float
    ) -> List[Tuple[str, str]]:
        ...


@dataclass(frozen=True)
class CompletedTask:
    """Accounting of one finished task."""

    task_id: str
    arrival_s: float
    start_s: float
    finish_s: float
    nodes: Tuple[str, ...]
    energy_j: float
    migrations: int

    @property
    def turnaround_s(self) -> float:
        return self.finish_s - self.arrival_s

    @property
    def waiting_s(self) -> float:
        return self.start_s - self.arrival_s


@dataclass
class SimulationResult:
    """Aggregate outcome of one simulated run."""

    scheduler: str
    completed: List[CompletedTask] = field(default_factory=list)
    unplaced: List[str] = field(default_factory=list)
    migrations: List[MigrationEvent] = field(default_factory=list)
    makespan_s: float = 0.0
    idle_energy_j: float = 0.0

    @property
    def task_energy_j(self) -> float:
        return sum(task.energy_j for task in self.completed)

    @property
    def total_energy_j(self) -> float:
        return self.task_energy_j + self.idle_energy_j

    @property
    def mean_turnaround_s(self) -> float:
        if not self.completed:
            return 0.0
        return sum(task.turnaround_s for task in self.completed) / len(self.completed)

    @property
    def mean_waiting_s(self) -> float:
        if not self.completed:
            return 0.0
        return sum(task.waiting_s for task in self.completed) / len(self.completed)

    @property
    def num_migrations(self) -> int:
        return len(self.migrations)

    def summary(self) -> Dict[str, float]:
        return {
            "scheduler": self.scheduler,
            "tasks": len(self.completed),
            "makespan_s": self.makespan_s,
            "total_energy_kj": self.total_energy_j / 1e3,
            "task_energy_kj": self.task_energy_j / 1e3,
            "mean_turnaround_s": self.mean_turnaround_s,
            "migrations": self.num_migrations,
            "unplaced": len(self.unplaced),
        }


class _PendingQueue:
    """FIFO retry queue indexed by resource shape (cores, memory).

    The old hot path retried *every* queued request through the scheduler
    on *every* completion -- O(pending x nodes) per event.  Serving queues
    are shape-degenerate (batches come in a handful of (cores, memory)
    shapes), so the queue is bucketed by exact shape: a completion gates
    each *shape* once against the cluster's free-capacity index and only
    surfaces requests whose shape some node can host right now.  FIFO
    order across shapes is preserved via a monotone sequence number, so
    placement outcomes are identical to the full rescan.
    """

    def __init__(self) -> None:
        self._seq = itertools.count()
        self._by_shape: Dict[Tuple[int, float], List[Tuple[int, TaskRequest]]] = {}
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def push(self, request: TaskRequest) -> None:
        self._by_shape.setdefault((request.cores, request.memory_gib), []).append(
            (next(self._seq), request)
        )
        self._count += 1

    def candidates(self, shape_fits) -> List[Tuple[int, TaskRequest]]:
        """Queued requests whose shape passes the gate, oldest first.

        Args:
            shape_fits: ``(cores, memory_gib) -> bool`` feasibility oracle
                (typically ``Cluster.has_feasible_node``), consulted once
                per distinct shape.
        """
        out: List[Tuple[int, TaskRequest]] = []
        for (cores, memory_gib), bucket in self._by_shape.items():
            if shape_fits(cores, memory_gib):
                out.extend(bucket)
        out.sort()
        return out

    def all_entries(self) -> List[Tuple[int, TaskRequest]]:
        """Every queued request, oldest first (the legacy full rescan)."""
        out: List[Tuple[int, TaskRequest]] = []
        for bucket in self._by_shape.values():
            out.extend(bucket)
        out.sort()
        return out

    def remove(self, placed: Dict[Tuple[int, float], set]) -> None:
        """Drop placed entries, rebuilding only the affected shape buckets.

        Args:
            placed: per-shape sets of placed sequence numbers; shapes not
                present are untouched (the deep gated-out tail costs
                nothing here).
        """
        for shape, seqs in placed.items():
            bucket = [e for e in self._by_shape[shape] if e[0] not in seqs]
            if bucket:
                self._by_shape[shape] = bucket
            else:
                del self._by_shape[shape]
            self._count -= len(seqs)

    def drain_ids(self) -> List[str]:
        """Task ids of everything still queued, oldest first."""
        return [request.task_id for _, request in self.all_entries()]


def _integrate_levels(levels: List[Tuple[float, float]], end_s: float) -> float:
    """Integrate a piecewise-constant level history over [0, end_s].

    With a single (static-topology) level this reduces exactly to
    ``level * end_s``, the pre-elastic accounting.
    """
    total = 0.0
    for index, (start, level) in enumerate(levels):
        if start >= end_s:
            break
        segment_end = levels[index + 1][0] if index + 1 < len(levels) else end_s
        total += level * (min(segment_end, end_s) - start)
    return total


class ClusterSimulator:
    """Event-driven execution of a request stream under one policy."""

    #: event kinds, ordered so completions release resources before arrivals.
    _COMPLETION, _ARRIVAL, _RESCHEDULE = 0, 1, 2

    #: floor on the consecutive no-progress reschedule heartbeats an
    #: *elastic* run with queued work keeps alive before giving up.  An
    #: autoscaler in a cooldown needs later heartbeats to grow capacity
    #: for a queued request nothing else will unblock; the actual window
    #: stretches to cover the attached controller's configured cooldowns
    #: (see :meth:`_elastic_grace_heartbeats`), and the bound keeps a
    #: controller that never acts from spinning the event loop forever.
    _ELASTIC_GRACE_HEARTBEATS = 8

    def _elastic_grace_heartbeats(self) -> int:
        """No-progress heartbeats to keep alive while elastic work queues.

        At least :attr:`_ELASTIC_GRACE_HEARTBEATS`; stretched so the
        window outlasts the attached autoscaler's longest configured
        cooldown (plus one interval of slack) when that is discoverable,
        so queued work is never abandoned moments before the controller
        was finally allowed to act.
        """
        floor = self._ELASTIC_GRACE_HEARTBEATS
        config = getattr(
            getattr(self.scheduler, "autoscaler", None), "config", None
        )
        if config is None or self.rescheduling_interval_s <= 0:
            return floor
        cooldown = max(
            getattr(config, "scale_up_cooldown_s", 0.0),
            getattr(config, "scale_down_cooldown_s", 0.0),
        )
        return max(floor, int(cooldown / self.rescheduling_interval_s) + 2)

    def __init__(
        self,
        cluster: Cluster,
        scheduler: SchedulerProtocol,
        monitor: Optional[ClusterMonitor] = None,
        monitoring_period_s: float = 30.0,
        rescheduling_interval_s: Optional[float] = None,
        fast_path: bool = True,
        tracer: Optional["Tracer"] = None,
        profiler: Optional["PhaseProfiler"] = None,
    ) -> None:
        """Wire a simulator over a cluster and a policy.

        Args:
            cluster: the cluster the requests are replayed against.
            scheduler: the placement policy driving the run.
            monitor: optional pre-built monitor; one is created otherwise.
            monitoring_period_s: minimum simulated time between samples.
            rescheduling_interval_s: reschedule heartbeat; defaults to the
                policy's configured cadence, else 60 s.
            fast_path: use the capacity-gated retry index and
                topology-change-only idle-power accounting.  ``False``
                keeps the pre-overhaul full pending rescan per completion
                -- identical :class:`SimulationResult`, with one caveat:
                the scheduler's attempt-based counters see fewer
                (real-only) placement attempts on the fast path, so a
                policy that *acts* on those counters (an attached
                autoscaler) may mutate topology at slightly different
                instants.  Kept for A/B benchmarking and property tests.
            tracer: optional request-scoped tracer; when enabled the run
                records ``task`` / ``task.pending`` / ``task.execute`` /
                ``task.migrate`` spans (annotated with node, shard and
                retry-index requeue counts).  ``None`` costs nothing.
            profiler: optional host-time phase profiler; when enabled the
                event loop records ``placement`` / ``advance`` /
                ``reschedule`` phases (nested under whatever phase the
                caller has open).  ``None`` costs nothing.
        """
        self.cluster = cluster
        self.scheduler = scheduler
        self.fast_path = fast_path
        self.tracer = tracer
        #: cached boolean: every instrumentation site is one branch when
        #: tracing is off, preserving the fast-path numbers exactly.
        self._trace = tracer is not None and tracer.enabled
        self.profiler = profiler
        #: same cached-boolean discipline for the host-time profiler.
        self._profile = profiler is not None and profiler.enabled
        #: federated schedulers expose ``shard_of_node``; a single-cluster
        #: policy has no shard notion, so spans are annotated with None.
        self._shard_lookup = getattr(scheduler, "shard_of_node", None)
        self._t_root: Dict[str, "Span"] = {}
        self._t_pending: Dict[str, "Span"] = {}
        self._t_exec: Dict[str, "Span"] = {}
        self._t_requeues: Dict[str, int] = {}
        self.monitor = monitor if monitor is not None else ClusterMonitor(cluster)
        self.monitoring_period_s = monitoring_period_s
        if rescheduling_interval_s is None:
            # Default to the policy's own cadence (e.g. HeatsConfig) when it
            # declares one, so configured intervals are honoured everywhere.
            rescheduling_interval_s = getattr(
                getattr(scheduler, "config", None), "rescheduling_interval_s", None
            )
        self.rescheduling_interval_s = (
            60.0 if rescheduling_interval_s is None else rescheduling_interval_s
        )
        self.engine = PlacementEngine(cluster)
        self._events: List[Tuple[float, int, int, object]] = []
        self._sequence = itertools.count()
        self._task_energy: Dict[str, float] = {}
        self._task_nodes: Dict[str, List[str]] = {}
        self._segment_start: Dict[str, Tuple[float, str]] = {}
        self._start_times: Dict[str, float] = {}
        self._completion_version: Dict[str, int] = {}
        self._consumed = False

    # ------------------------------------------------------------------ #
    # Event plumbing
    # ------------------------------------------------------------------ #
    def _push(self, time_s: float, kind: int, payload: object) -> None:
        heapq.heappush(self._events, (time_s, kind, next(self._sequence), payload))

    def _segment_power_w(self, node: ClusterNode, request: TaskRequest) -> float:
        share = min(1.0, request.cores / node.spec.cores)
        dynamic = (node.spec.peak_power_w - node.spec.idle_power_w) * share
        return dynamic + node.spec.idle_power_w * share

    def _close_segment(self, task_id: str, time_s: float, request: TaskRequest) -> None:
        start, node_name = self._segment_start[task_id]
        node = self.cluster.node(node_name)
        duration = max(0.0, time_s - start)
        self._task_energy[task_id] = self._task_energy.get(task_id, 0.0) + duration * self._segment_power_w(node, request)
        if not self._task_nodes.get(task_id) or self._task_nodes[task_id][-1] != node_name:
            self._task_nodes.setdefault(task_id, []).append(node_name)

    # ------------------------------------------------------------------ #
    # Tracing seams (only reached when ``self._trace`` is set)
    # ------------------------------------------------------------------ #
    def _trace_shard(self, node_name: str) -> Optional[str]:
        """Shard name hosting ``node_name`` (None for single clusters)."""
        if self._shard_lookup is None:
            return None
        try:
            return self._shard_lookup(node_name)
        except KeyError:
            return None

    def _trace_arrival(self, request: TaskRequest) -> None:
        """Open the task root + pending spans at the arrival instant."""
        root = self.tracer.start_span(
            "task", request.arrival_s, request.task_id, tenant=request.tenant
        )
        self._t_root[request.task_id] = root
        self._t_pending[request.task_id] = self.tracer.start_span(
            "task.pending", request.arrival_s, request.task_id, parent=root
        )

    def _trace_unplaced(self, task_id: str, time_s: float, reason: str) -> None:
        """Terminate a task trace that never reached a node."""
        pend = self._t_pending.pop(task_id, None)
        if pend is not None:
            pend.end(max(time_s, pend.start_s), requeues=self._t_requeues.get(task_id, 0))
        root = self._t_root.pop(task_id, None)
        if root is not None:
            root.annotate("terminal", True)
            root.end(max(time_s, root.start_s), verdict="unplaced", reason=reason)

    def _trace_placement(self, task_id: str, node_name: str, time_s: float) -> None:
        """Close the pending span and open the first execute segment."""
        shard = self._trace_shard(node_name)
        pend = self._t_pending.pop(task_id, None)
        if pend is not None:
            pend.end(
                time_s,
                node=node_name,
                shard=shard,
                requeues=self._t_requeues.get(task_id, 0),
            )
        self._t_exec[task_id] = self.tracer.start_span(
            "task.execute",
            time_s,
            task_id,
            parent=self._t_root.get(task_id),
            node=node_name,
            shard=shard,
        )

    def _trace_migration(
        self, task_id: str, source: str, target: str, time_s: float, downtime_s: float
    ) -> None:
        """Close the old segment, record downtime, open the new segment."""
        segment = self._t_exec.pop(task_id, None)
        if segment is not None:
            segment.end(time_s)
        root = self._t_root.get(task_id)
        source_shard = self._trace_shard(source)
        target_shard = self._trace_shard(target)
        migrate = self.tracer.start_span(
            "task.migrate",
            time_s,
            task_id,
            parent=root,
            source=source,
            target=target,
            source_shard=source_shard,
            target_shard=target_shard,
            cross_shard=(
                source_shard != target_shard
                if source_shard is not None and target_shard is not None
                else False
            ),
        )
        migrate.end(time_s + downtime_s)
        self._t_exec[task_id] = self.tracer.start_span(
            "task.execute",
            time_s + downtime_s,
            task_id,
            parent=root,
            node=target,
            shard=target_shard,
        )

    def _trace_completion(self, task_id: str, time_s: float, migrations: int) -> None:
        """Terminate a task trace at its completion instant."""
        segment = self._t_exec.pop(task_id, None)
        if segment is not None:
            segment.end(time_s)
        root = self._t_root.pop(task_id, None)
        if root is not None:
            root.annotate("terminal", True)
            root.end(time_s, verdict="completed", migrations=migrations)

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(self, requests: Sequence[TaskRequest]) -> SimulationResult:
        if self._consumed:
            # The cluster's node reservations, the engine's placements, and
            # the per-task bookkeeping dicts all carry the previous run;
            # silently reusing them drifts every accounting number.
            raise RuntimeError(
                "a ClusterSimulator can only run once; build a fresh "
                "simulator (and cluster) per request stream"
            )
        self._consumed = True
        result = SimulationResult(scheduler=self.scheduler.name)
        pending = _PendingQueue()
        remaining = len(requests)
        # An elastic topology (an autoscaler attached to the policy) may
        # grow nodes mid-run, so "no node could ever host this" is not a
        # final verdict there -- such arrivals queue instead of rejecting.
        elastic = getattr(self.scheduler, "autoscaler", None) is not None

        for request in requests:
            self._push(request.arrival_s, self._ARRIVAL, request)
        if self.scheduler.supports_rescheduling and requests:
            self._push(self.rescheduling_interval_s, self._RESCHEDULE, None)

        last_monitor_sample = -float("inf")
        idle_heartbeats = 0
        # Idle power is piecewise constant: it only changes when the node
        # population does (elastic autoscaling during a reschedule event).
        # Track the level changes so idle energy can be integrated over
        # the actual topology history instead of the end-of-run node set.
        # On the fast path the level is re-read only after reschedule
        # events (the sole place topology mutates) instead of per event.
        idle_power_levels: List[Tuple[float, float]] = [
            (0.0, self.cluster.total_idle_power_w())
        ]

        while self._events:
            time_s, kind, _, payload = heapq.heappop(self._events)
            if time_s - last_monitor_sample >= self.monitoring_period_s:
                self.monitor.sample(time_s)
                last_monitor_sample = time_s

            if kind == self._ARRIVAL:
                request = payload  # type: ignore[assignment]
                if self._trace:
                    self._trace_arrival(request)
                with self.profiler.phase("placement") if self._profile else NULL_PHASE:
                    if not self._can_ever_fit(request):
                        if elastic:
                            pending.push(request)
                        else:
                            # No node's *total* resources suffice and the
                            # topology is fixed: queueing would never help, so
                            # reject immediately instead of waiting for a
                            # completion that cannot unblock the request.
                            result.unplaced.append(request.task_id)
                            remaining -= 1
                            if self._trace:
                                self._trace_unplaced(
                                    request.task_id, time_s, "never_fits"
                                )
                    elif not self._try_place(request, time_s, result):
                        pending.push(request)
            elif kind == self._COMPLETION:
                task_id, version = payload  # type: ignore[misc]
                if self._completion_version.get(task_id) != version:
                    continue  # stale completion superseded by a migration
                with self.profiler.phase("advance") if self._profile else NULL_PHASE:
                    request = self.engine.placement(task_id).request
                    self._close_segment(task_id, time_s, request)
                    placement = self.engine.complete(task_id, time_s)
                    remaining -= 1
                    result.completed.append(
                        CompletedTask(
                            task_id=task_id,
                            arrival_s=placement.request.arrival_s,
                            start_s=self._start_times[task_id],
                            finish_s=time_s,
                            nodes=tuple(self._task_nodes.get(task_id, [])),
                            energy_j=self._task_energy.get(task_id, 0.0),
                            migrations=placement.migrations,
                        )
                    )
                    if self._trace:
                        self._trace_completion(task_id, time_s, placement.migrations)
                # The freed node may unblock queued requests.
                with self.profiler.phase("placement") if self._profile else NULL_PHASE:
                    self._retry_pending(pending, time_s, result)
            elif kind == self._RESCHEDULE:
                topology_before = self.cluster.membership_version
                with self.profiler.phase("reschedule") if self._profile else NULL_PHASE:
                    self._apply_rescheduling(time_s)
                topology_changed = topology_before != self.cluster.membership_version
                if topology_changed:
                    # Nodes grown by an autoscaler must be able to unblock
                    # queued requests *now*, not at the next unrelated
                    # completion (and requests no node could ever host may
                    # have just become feasible).
                    with self.profiler.phase("placement") if self._profile else NULL_PHASE:
                        self._retry_pending(pending, time_s, result)
                if not self.fast_path or topology_changed:
                    idle_power = self.cluster.total_idle_power_w()
                    if idle_power != idle_power_levels[-1][1]:
                        idle_power_levels.append((time_s, idle_power))
                # Re-arm only while progress is still possible: something is
                # running, or other events (arrivals/completions) are due.
                # Otherwise pending-but-unplaceable requests would keep the
                # reschedule heartbeat (and the event loop) alive forever.
                # An elastic run additionally gets a bounded grace window:
                # queued work nothing hosts *yet* must survive an autoscaler
                # cooldown spanning several heartbeats.
                if self.engine.running or topology_changed:
                    idle_heartbeats = 0
                if remaining > 0 and (self.engine.running or self._events):
                    self._push(time_s + self.rescheduling_interval_s, self._RESCHEDULE, None)
                elif (
                    remaining > 0
                    and elastic
                    and len(pending)
                    and idle_heartbeats < self._elastic_grace_heartbeats()
                ):
                    idle_heartbeats += 1
                    self._push(time_s + self.rescheduling_interval_s, self._RESCHEDULE, None)
            if not self.fast_path:
                idle_power = self.cluster.total_idle_power_w()
                if idle_power != idle_power_levels[-1][1]:
                    idle_power_levels.append((time_s, idle_power))

        result.makespan_s = max((task.finish_s for task in result.completed), default=0.0)
        result.idle_energy_j = _integrate_levels(idle_power_levels, result.makespan_s)
        result.migrations = list(self.engine.migrations)
        leftover = pending.drain_ids()
        result.unplaced.extend(leftover)
        if self._trace:
            for task_id in leftover:
                self._trace_unplaced(task_id, result.makespan_s, "queued_at_end")
        return result

    # ------------------------------------------------------------------ #
    # Placement / migration helpers
    # ------------------------------------------------------------------ #
    def _can_ever_fit(self, request: TaskRequest) -> bool:
        """Whether any node could host the request even when fully idle."""
        return self.cluster.fits_any_node_total(request.cores, request.memory_gib)

    def _retry_pending(
        self, pending: _PendingQueue, time_s: float, result: SimulationResult
    ) -> None:
        """Retry queued requests that some node could actually host.

        On the fast path each distinct queued shape is gated once against
        the cluster's feasibility oracle (a node with both the cores and
        the memory exists) and only passing shapes are surfaced -- a shape
        no node can host would fail scheduler placement anyway, so
        skipping it cannot change the outcome.  Each surfaced request is
        re-gated before its attempt because successful placements shrink
        capacity.  The legacy path replays the pre-overhaul full rescan.
        """
        if not len(pending):
            return
        if self.fast_path:
            entries = pending.candidates(self.cluster.has_feasible_node)
        else:
            entries = pending.all_entries()
        placed: Dict[Tuple[int, float], set] = {}
        # Feasibility memo per shape, valid until a placement shrinks
        # capacity: surfacing a long shape queue costs one oracle read,
        # not one per queued request.
        feasible: Dict[Tuple[int, float], bool] = {}
        for seq, request in entries:
            shape = (request.cores, request.memory_gib)
            if self.fast_path:
                fits = feasible.get(shape)
                if fits is None:
                    fits = self.cluster.has_feasible_node(*shape)
                    feasible[shape] = fits
                if not fits:
                    continue
            if self._try_place(request, time_s, result):
                placed.setdefault(shape, set()).add(seq)
                feasible.clear()
            elif self._trace:
                # Surfaced from the retry index but still not placeable:
                # one more requeue (annotation only, so fast/legacy paths
                # keep identical span counts even though the legacy scan
                # surfaces more guaranteed-failure attempts).
                self._t_requeues[request.task_id] = (
                    self._t_requeues.get(request.task_id, 0) + 1
                )
        if placed:
            pending.remove(placed)

    def _try_place(self, request: TaskRequest, time_s: float, result: SimulationResult) -> bool:
        node_name = self.scheduler.place(request, self.cluster, time_s)
        if node_name is None:
            return False
        node = self.cluster.node(node_name)
        if not node.can_host(request.cores, request.memory_gib):
            return False
        placement = self.engine.instantiate(request, node_name, time_s)
        self._start_times[request.task_id] = time_s
        self._segment_start[request.task_id] = (time_s, node_name)
        self._task_nodes.setdefault(request.task_id, []).append(node_name)
        if self._trace:
            self._trace_placement(request.task_id, node_name, time_s)
        version = self._completion_version.get(request.task_id, 0) + 1
        self._completion_version[request.task_id] = version
        self._push(placement.expected_finish_s, self._COMPLETION, (request.task_id, version))
        return True

    def _apply_rescheduling(self, time_s: float) -> None:
        decisions = self.scheduler.reschedule(self.engine.running, self.cluster, time_s)
        for task_id, target in decisions:
            try:
                placement = self.engine.placement(task_id)
            except KeyError:
                continue
            request = placement.request
            self._close_segment(task_id, time_s, request)
            try:
                event = self.engine.migrate(task_id, target, time_s)
            except (ValueError, KeyError):
                # Target filled up since the decision was computed; skip.
                self._segment_start[task_id] = (time_s, placement.node)
                continue
            self._segment_start[task_id] = (event.time_s + event.downtime_s, target)
            if self._trace:
                self._trace_migration(
                    task_id, event.source, event.target, time_s, event.downtime_s
                )
            version = self._completion_version[task_id] + 1
            self._completion_version[task_id] = version
            self._push(placement.expected_finish_s, self._COMPLETION, (task_id, version))


def run_policy_comparison(
    cluster_factory,
    scheduler_factory_map: Dict[str, object],
    requests: Sequence[TaskRequest],
) -> Dict[str, SimulationResult]:
    """Run the same request stream under several policies on fresh clusters.

    ``cluster_factory`` builds a fresh cluster per policy (node state is
    mutable); ``scheduler_factory_map`` maps a policy name to a callable
    taking the fresh cluster and returning a scheduler instance.
    """
    results: Dict[str, SimulationResult] = {}
    for name, factory in scheduler_factory_map.items():
        cluster = cluster_factory()
        scheduler = factory(cluster)
        simulator = ClusterSimulator(cluster, scheduler)
        results[name] = simulator.run(requests)
    return results
