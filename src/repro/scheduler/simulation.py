"""Discrete-event cluster simulator driving any of the schedulers.

The simulator replays a stream of :class:`TaskRequest` arrivals against a
:class:`Cluster` under a scheduling policy (HEATS or a baseline), handling
queueing when nothing can host a request, task completions, periodic
re-scheduling/migration for policies that support it, and energy
accounting:

* every task is charged the energy of the node share it occupies for as long
  as it runs there (split across nodes when migrated, plus the migration
  downtime);
* the cluster's static (idle) power is charged for the whole makespan, so a
  policy that finishes earlier also saves static energy -- the effect that
  makes pure energy-greedy placement lose at the performance end of the
  trade-off curve.

The event loop is array-native: arrivals are consumed from one pre-sorted
stream merged against a heap that only ever holds completions and
reschedule heartbeats, queued-request retry gates every distinct resource
shape with a single vectorised comparison against the cluster's capacity
table, and per-task progress/energy state lives in the placement engine's
structured :class:`~repro.scheduler.placement.TaskTable` instead of side
dicts.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.scheduler.cluster import Cluster, ClusterNode
from repro.scheduler.monitoring import ClusterMonitor
from repro.scheduler.placement import MigrationEvent, Placement, PlacementEngine
from repro.scheduler.workload import TaskRequest
from repro.telemetry.profile import NULL_PHASE, PhaseProfiler
from repro.telemetry.trace import Span, Tracer


class SchedulerProtocol(Protocol):
    """What the simulator needs from a scheduling policy."""

    name: str
    supports_rescheduling: bool

    def place(self, request: TaskRequest, cluster: Cluster, time_s: float) -> Optional[str]:
        ...

    def reschedule(
        self, running: Sequence, cluster: Cluster, time_s: float
    ) -> List[Tuple[str, str]]:
        ...


class CompletedTask(NamedTuple):
    """Accounting of one finished task.

    A named tuple rather than a frozen dataclass: one is constructed per
    completion event on the hot path, and tuple construction skips the
    per-field ``object.__setattr__`` a frozen dataclass pays.  All
    consumers read attributes, which is unchanged.
    """

    task_id: str
    arrival_s: float
    start_s: float
    finish_s: float
    nodes: Tuple[str, ...]
    energy_j: float
    migrations: int

    @property
    def turnaround_s(self) -> float:
        return self.finish_s - self.arrival_s

    @property
    def waiting_s(self) -> float:
        return self.start_s - self.arrival_s


@dataclass
class SimulationResult:
    """Aggregate outcome of one simulated run."""

    scheduler: str
    completed: List[CompletedTask] = field(default_factory=list)
    unplaced: List[str] = field(default_factory=list)
    migrations: List[MigrationEvent] = field(default_factory=list)
    makespan_s: float = 0.0
    idle_energy_j: float = 0.0
    #: bytes held in numpy structured arrays at the end of the run (the
    #: cluster capacity table plus the task table; both only grow, so the
    #: end-of-run figure is also the peak) -- what the core-speed
    #: benchmark reports as the memory cost of the array core.
    peak_array_bytes: int = 0

    @property
    def task_energy_j(self) -> float:
        return sum(task.energy_j for task in self.completed)

    @property
    def total_energy_j(self) -> float:
        return self.task_energy_j + self.idle_energy_j

    @property
    def mean_turnaround_s(self) -> float:
        if not self.completed:
            return 0.0
        return sum(task.turnaround_s for task in self.completed) / len(self.completed)

    @property
    def mean_waiting_s(self) -> float:
        if not self.completed:
            return 0.0
        return sum(task.waiting_s for task in self.completed) / len(self.completed)

    @property
    def num_migrations(self) -> int:
        return len(self.migrations)

    def summary(self) -> Dict[str, float]:
        return {
            "scheduler": self.scheduler,
            "tasks": len(self.completed),
            "makespan_s": self.makespan_s,
            "total_energy_kj": self.total_energy_j / 1e3,
            "task_energy_kj": self.task_energy_j / 1e3,
            "mean_turnaround_s": self.mean_turnaround_s,
            "migrations": self.num_migrations,
            "unplaced": len(self.unplaced),
        }


class _PendingQueue:
    """FIFO retry queue indexed by resource shape (cores, memory).

    Serving queues are shape-degenerate (batches come in a handful of
    (cores, memory) shapes), so the queue is bucketed by exact shape and a
    completion gates every *shape* at once -- one vectorised comparison
    against the cluster's capacity table -- instead of touching queued
    requests.  FIFO order across shapes is preserved via a monotone
    sequence number, so placement outcomes are identical to a full rescan.
    The distinct-shape arrays handed to the vectorised gate are memoised
    and only rebuilt when the shape population changes.
    """

    def __init__(self) -> None:
        self._seq = itertools.count()
        self._by_shape: Dict[Tuple[int, float], List[Tuple[int, TaskRequest]]] = {}
        self._count = 0
        self._shape_cache: Optional[
            Tuple[List[Tuple[int, float]], np.ndarray, np.ndarray]
        ] = None

    def __len__(self) -> int:
        return self._count

    def push(self, request: TaskRequest) -> None:
        shape = (request.cores, request.memory_gib)
        bucket = self._by_shape.get(shape)
        if bucket is None:
            self._by_shape[shape] = [(next(self._seq), request)]
            self._shape_cache = None
        else:
            bucket.append((next(self._seq), request))
        self._count += 1

    def shape_arrays(
        self,
    ) -> Tuple[List[Tuple[int, float]], np.ndarray, np.ndarray]:
        """Distinct queued shapes plus their (cores, memory) column arrays."""
        cache = self._shape_cache
        if cache is None:
            shapes = list(self._by_shape)
            cores = np.fromiter((s[0] for s in shapes), np.int64, len(shapes))
            memory = np.fromiter((s[1] for s in shapes), np.float64, len(shapes))
            cache = self._shape_cache = (shapes, cores, memory)
        return cache

    def shapes(self) -> List[Tuple[int, float]]:
        """Distinct queued shapes (insertion order), without the arrays."""
        cache = self._shape_cache
        if cache is not None:
            return cache[0]
        return list(self._by_shape)

    def bucket(self, shape: Tuple[int, float]) -> List[Tuple[int, TaskRequest]]:
        """The FIFO entry list of one shape (oldest first)."""
        return self._by_shape[shape]

    def all_entries(self) -> List[Tuple[int, TaskRequest]]:
        """Every queued request, oldest first."""
        out: List[Tuple[int, TaskRequest]] = []
        for bucket in self._by_shape.values():
            out.extend(bucket)
        out.sort()
        return out

    def remove(self, placed: Dict[Tuple[int, float], set]) -> None:
        """Drop placed entries, rebuilding only the affected shape buckets.

        Placements surface oldest-first, so in the common case the placed
        entries are exactly the bucket's head -- dropped with one prefix
        ``del`` instead of filtering the whole (possibly deep) bucket.

        Args:
            placed: per-shape sets of placed sequence numbers; shapes not
                present are untouched (the deep gated-out tail costs
                nothing here).
        """
        for shape, seqs in placed.items():
            bucket = self._by_shape[shape]
            n_placed = len(seqs)
            prefix = 0
            for entry in bucket:
                if prefix < n_placed and entry[0] in seqs:
                    prefix += 1
                else:
                    break
            if prefix == n_placed:
                del bucket[:prefix]
            else:
                bucket = [e for e in bucket if e[0] not in seqs]
                self._by_shape[shape] = bucket
            if not bucket:
                del self._by_shape[shape]
                self._shape_cache = None
            self._count -= n_placed

    def drain_ids(self) -> List[str]:
        """Task ids of everything still queued, oldest first."""
        return [request.task_id for _, request in self.all_entries()]


def _integrate_levels(levels: List[Tuple[float, float]], end_s: float) -> float:
    """Integrate a piecewise-constant level history over [0, end_s].

    With a single (static-topology) level this reduces exactly to
    ``level * end_s``, the pre-elastic accounting.
    """
    total = 0.0
    for index, (start, level) in enumerate(levels):
        if start >= end_s:
            break
        segment_end = levels[index + 1][0] if index + 1 < len(levels) else end_s
        total += level * (min(segment_end, end_s) - start)
    return total


class ClusterSimulator:
    """Event-driven execution of a request stream under one policy."""

    #: event kinds, ordered so completions release resources before arrivals.
    _COMPLETION, _ARRIVAL, _RESCHEDULE = 0, 1, 2

    #: floor on the consecutive no-progress reschedule heartbeats an
    #: *elastic* run with queued work keeps alive before giving up.  An
    #: autoscaler in a cooldown needs later heartbeats to grow capacity
    #: for a queued request nothing else will unblock; the actual window
    #: stretches to cover the attached controller's configured cooldowns
    #: (see :meth:`_elastic_grace_heartbeats`), and the bound keeps a
    #: controller that never acts from spinning the event loop forever.
    _ELASTIC_GRACE_HEARTBEATS = 8

    def _elastic_grace_heartbeats(self) -> int:
        """No-progress heartbeats to keep alive while elastic work queues.

        At least :attr:`_ELASTIC_GRACE_HEARTBEATS`; stretched so the
        window outlasts the attached autoscaler's longest configured
        cooldown (plus one interval of slack) when that is discoverable,
        so queued work is never abandoned moments before the controller
        was finally allowed to act.
        """
        floor = self._ELASTIC_GRACE_HEARTBEATS
        config = getattr(
            getattr(self.scheduler, "autoscaler", None), "config", None
        )
        if config is None or self.rescheduling_interval_s <= 0:
            return floor
        cooldown = max(
            getattr(config, "scale_up_cooldown_s", 0.0),
            getattr(config, "scale_down_cooldown_s", 0.0),
        )
        return max(floor, int(cooldown / self.rescheduling_interval_s) + 2)

    def __init__(
        self,
        cluster: Cluster,
        scheduler: SchedulerProtocol,
        monitor: Optional[ClusterMonitor] = None,
        monitoring_period_s: float = 30.0,
        rescheduling_interval_s: Optional[float] = None,
        tracer: Optional["Tracer"] = None,
        profiler: Optional["PhaseProfiler"] = None,
    ) -> None:
        """Wire a simulator over a cluster and a policy.

        Args:
            cluster: the cluster the requests are replayed against.
            scheduler: the placement policy driving the run.
            monitor: optional pre-built monitor; one is created otherwise.
            monitoring_period_s: minimum simulated time between samples.
            rescheduling_interval_s: reschedule heartbeat; defaults to the
                policy's configured cadence, else 60 s.
            tracer: optional request-scoped tracer; when enabled the run
                records ``task`` / ``task.pending`` / ``task.execute`` /
                ``task.migrate`` spans (annotated with node, shard and
                retry-index requeue counts).  ``None`` costs nothing.
            profiler: optional host-time phase profiler; when enabled the
                event loop records ``vectorized_placement`` /
                ``vectorized_advance`` / ``reschedule`` phases (nested
                under whatever phase the caller has open).  ``None`` costs
                nothing.
        """
        self.cluster = cluster
        self.scheduler = scheduler
        self.tracer = tracer
        #: cached boolean: every instrumentation site is one branch when
        #: tracing is off, preserving the hot-path numbers exactly.
        self._trace = tracer is not None and tracer.enabled
        self.profiler = profiler
        #: same cached-boolean discipline for the host-time profiler.
        self._profile = profiler is not None and profiler.enabled
        #: federated schedulers expose ``shard_of_node``; a single-cluster
        #: policy has no shard notion, so spans are annotated with None.
        self._shard_lookup = getattr(scheduler, "shard_of_node", None)
        self._t_root: Dict[str, "Span"] = {}
        self._t_pending: Dict[str, "Span"] = {}
        self._t_exec: Dict[str, "Span"] = {}
        self._t_requeues: Dict[str, int] = {}
        self.monitor = monitor if monitor is not None else ClusterMonitor(cluster)
        self.monitoring_period_s = monitoring_period_s
        if rescheduling_interval_s is None:
            # Default to the policy's own cadence (e.g. HeatsConfig) when it
            # declares one, so configured intervals are honoured everywhere.
            rescheduling_interval_s = getattr(
                getattr(scheduler, "config", None), "rescheduling_interval_s", None
            )
        self.rescheduling_interval_s = (
            60.0 if rescheduling_interval_s is None else rescheduling_interval_s
        )
        self.engine = PlacementEngine(cluster)
        self._events: List[Tuple[float, int, int, object]] = []
        self._sequence = itertools.count()
        #: hosting-node history per task (variable-length; the only
        #: per-task state that stays outside the engine's task table).
        self._task_nodes: Dict[str, List[str]] = {}
        #: nodes whose capacity *grew* since the last retry pass ended
        #: (completions and migration sources).  Between passes capacity
        #: only shrinks elsewhere, so these are the only nodes that can
        #: have made a queued shape newly feasible -- the incremental
        #: retry gate checks just them instead of the whole table.
        self._released_since_retry: set = set()
        #: force the next retry pass through the full vectorised gate.
        #: Starts True (nothing is vetted yet) and is re-raised whenever
        #: the capacity-vetted invariant cannot be assumed: an elastic
        #: arrival queued without a placement attempt, or a scheduler
        #: declining a capacity-feasible placement.
        self._retry_full_gate = True
        self._consumed = False

    # ------------------------------------------------------------------ #
    # Event plumbing
    # ------------------------------------------------------------------ #
    def _push(self, time_s: float, kind: int, payload: object) -> None:
        heapq.heappush(self._events, (time_s, kind, next(self._sequence), payload))

    def _segment_power_w(self, node: ClusterNode, request: TaskRequest) -> float:
        share = min(1.0, request.cores / node.spec.cores)
        dynamic = (node.spec.peak_power_w - node.spec.idle_power_w) * share
        return dynamic + node.spec.idle_power_w * share

    def _close_segment(self, placement: Placement, time_s: float, request: TaskRequest) -> None:
        start = placement.segment_start_s
        node_name = placement.segment_node
        node = self.cluster.node(node_name)
        duration = max(0.0, time_s - start)
        placement.energy_j = placement.energy_j + duration * self._segment_power_w(node, request)
        task_id = request.task_id
        if not self._task_nodes.get(task_id) or self._task_nodes[task_id][-1] != node_name:
            self._task_nodes.setdefault(task_id, []).append(node_name)

    # ------------------------------------------------------------------ #
    # Tracing seams (only reached when ``self._trace`` is set)
    # ------------------------------------------------------------------ #
    def _trace_shard(self, node_name: str) -> Optional[str]:
        """Shard name hosting ``node_name`` (None for single clusters)."""
        if self._shard_lookup is None:
            return None
        try:
            return self._shard_lookup(node_name)
        except KeyError:
            return None

    def _trace_arrival(self, request: TaskRequest) -> None:
        """Open the task root + pending spans at the arrival instant."""
        root = self.tracer.start_span(
            "task", request.arrival_s, request.task_id, tenant=request.tenant
        )
        self._t_root[request.task_id] = root
        self._t_pending[request.task_id] = self.tracer.start_span(
            "task.pending", request.arrival_s, request.task_id, parent=root
        )

    def _trace_unplaced(self, task_id: str, time_s: float, reason: str) -> None:
        """Terminate a task trace that never reached a node."""
        pend = self._t_pending.pop(task_id, None)
        if pend is not None:
            pend.end(max(time_s, pend.start_s), requeues=self._t_requeues.get(task_id, 0))
        root = self._t_root.pop(task_id, None)
        if root is not None:
            root.annotate("terminal", True)
            root.end(max(time_s, root.start_s), verdict="unplaced", reason=reason)

    def _trace_placement(self, task_id: str, node_name: str, time_s: float) -> None:
        """Close the pending span and open the first execute segment."""
        shard = self._trace_shard(node_name)
        pend = self._t_pending.pop(task_id, None)
        if pend is not None:
            pend.end(
                time_s,
                node=node_name,
                shard=shard,
                requeues=self._t_requeues.get(task_id, 0),
            )
        self._t_exec[task_id] = self.tracer.start_span(
            "task.execute",
            time_s,
            task_id,
            parent=self._t_root.get(task_id),
            node=node_name,
            shard=shard,
        )

    def _trace_migration(
        self, task_id: str, source: str, target: str, time_s: float, downtime_s: float
    ) -> None:
        """Close the old segment, record downtime, open the new segment."""
        segment = self._t_exec.pop(task_id, None)
        if segment is not None:
            segment.end(time_s)
        root = self._t_root.get(task_id)
        source_shard = self._trace_shard(source)
        target_shard = self._trace_shard(target)
        migrate = self.tracer.start_span(
            "task.migrate",
            time_s,
            task_id,
            parent=root,
            source=source,
            target=target,
            source_shard=source_shard,
            target_shard=target_shard,
            cross_shard=(
                source_shard != target_shard
                if source_shard is not None and target_shard is not None
                else False
            ),
        )
        migrate.end(time_s + downtime_s)
        self._t_exec[task_id] = self.tracer.start_span(
            "task.execute",
            time_s + downtime_s,
            task_id,
            parent=root,
            node=target,
            shard=target_shard,
        )

    def _trace_completion(self, task_id: str, time_s: float, migrations: int) -> None:
        """Terminate a task trace at its completion instant."""
        segment = self._t_exec.pop(task_id, None)
        if segment is not None:
            segment.end(time_s)
        root = self._t_root.pop(task_id, None)
        if root is not None:
            root.annotate("terminal", True)
            root.end(time_s, verdict="completed", migrations=migrations)

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(self, requests: Sequence[TaskRequest]) -> SimulationResult:
        if self._consumed:
            # The cluster's node reservations, the engine's placements, and
            # the per-task table rows all carry the previous run; silently
            # reusing them drifts every accounting number.
            raise RuntimeError(
                "a ClusterSimulator can only run once; build a fresh "
                "simulator (and cluster) per request stream"
            )
        self._consumed = True
        result = SimulationResult(scheduler=self.scheduler.name)
        pending = _PendingQueue()
        remaining = len(requests)
        # An elastic topology (an autoscaler attached to the policy) may
        # grow nodes mid-run, so "no node could ever host this" is not a
        # final verdict there -- such arrivals queue instead of rejecting.
        elastic = getattr(self.scheduler, "autoscaler", None) is not None

        # Arrivals are consumed from one pre-sorted stream (stable sort, so
        # equal-time arrivals keep their input order, exactly as the heap's
        # sequence tiebreak ordered them); the heap only ever holds
        # completions and reschedule heartbeats.
        arrivals = sorted(requests, key=lambda r: r.arrival_s)
        arrival_index = 0
        n_arrivals = len(arrivals)
        if self.scheduler.supports_rescheduling and requests:
            self._push(self.rescheduling_interval_s, self._RESCHEDULE, None)

        last_monitor_sample = -float("inf")
        idle_heartbeats = 0
        # Idle power is piecewise constant: it only changes when the node
        # population does (elastic autoscaling during a reschedule event).
        # Track the level changes so idle energy can be integrated over
        # the actual topology history instead of the end-of-run node set;
        # the level is re-read only after reschedule events (the sole
        # place topology mutates) instead of per event.
        idle_power_levels: List[Tuple[float, float]] = [
            (0.0, self.cluster.total_idle_power_w())
        ]

        events = self._events
        heappop = heapq.heappop
        monitoring_period = self.monitoring_period_s
        profile = self._profile
        trace = self._trace
        arrival_kind = self._ARRIVAL
        completion_kind = self._COMPLETION
        engine_get = self.engine.get
        while events or arrival_index < n_arrivals:
            if arrival_index < n_arrivals:
                if events:
                    head = events[0]
                    arrival_time = arrivals[arrival_index].arrival_s
                    head_time = head[0]
                    take_event = head_time < arrival_time or (
                        head_time == arrival_time and head[1] < arrival_kind
                    )
                else:
                    take_event = False
                if take_event:
                    time_s, kind, _, payload = heappop(events)
                else:
                    next_arrival = arrivals[arrival_index]
                    time_s, kind, payload = (
                        next_arrival.arrival_s,
                        arrival_kind,
                        next_arrival,
                    )
                    arrival_index += 1
            else:
                time_s, kind, _, payload = heappop(events)
            if time_s - last_monitor_sample >= monitoring_period:
                self.monitor.sample(time_s)
                last_monitor_sample = time_s

            if kind == arrival_kind:
                request = payload  # type: ignore[assignment]
                if trace:
                    self._trace_arrival(request)
                # The disabled-profiler path calls the handler directly:
                # no context-manager enter/exit per event on the hot loop.
                if profile:
                    with self.profiler.phase("vectorized_placement"):
                        remaining -= self._admit(
                            request, time_s, pending, result, elastic
                        )
                else:
                    remaining -= self._admit(
                        request, time_s, pending, result, elastic
                    )
            elif kind == completion_kind:
                task_id, version = payload  # type: ignore[misc]
                placement = engine_get(task_id)
                if placement is None or placement.completion_version != version:
                    continue  # stale completion superseded by a migration
                if profile:
                    with self.profiler.phase("vectorized_advance"):
                        self._finish(placement, task_id, time_s, result)
                    remaining -= 1
                    # The freed node may unblock queued requests.
                    if len(pending):
                        with self.profiler.phase("vectorized_placement"):
                            self._retry_pending(pending, time_s, result)
                else:
                    self._finish(placement, task_id, time_s, result)
                    remaining -= 1
                    if len(pending):
                        self._retry_pending(pending, time_s, result)
            elif kind == self._RESCHEDULE:
                topology_before = self.cluster.membership_version
                with self.profiler.phase("reschedule") if self._profile else NULL_PHASE:
                    self._apply_rescheduling(time_s)
                topology_changed = topology_before != self.cluster.membership_version
                if topology_changed:
                    # Nodes grown by an autoscaler must be able to unblock
                    # queued requests *now*, not at the next unrelated
                    # completion (and requests no node could ever host may
                    # have just become feasible).
                    with self.profiler.phase("vectorized_placement") if self._profile else NULL_PHASE:
                        self._retry_pending(pending, time_s, result, full=True)
                    idle_power = self.cluster.total_idle_power_w()
                    if idle_power != idle_power_levels[-1][1]:
                        idle_power_levels.append((time_s, idle_power))
                # Re-arm only while progress is still possible: something is
                # running, or other events (arrivals/completions) are due.
                # Otherwise pending-but-unplaceable requests would keep the
                # reschedule heartbeat (and the event loop) alive forever.
                # An elastic run additionally gets a bounded grace window:
                # queued work nothing hosts *yet* must survive an autoscaler
                # cooldown spanning several heartbeats.
                if self.engine.running or topology_changed:
                    idle_heartbeats = 0
                if remaining > 0 and (
                    self.engine.running or events or arrival_index < n_arrivals
                ):
                    self._push(time_s + self.rescheduling_interval_s, self._RESCHEDULE, None)
                elif (
                    remaining > 0
                    and elastic
                    and len(pending)
                    and idle_heartbeats < self._elastic_grace_heartbeats()
                ):
                    idle_heartbeats += 1
                    self._push(time_s + self.rescheduling_interval_s, self._RESCHEDULE, None)

        result.makespan_s = max((task.finish_s for task in result.completed), default=0.0)
        result.idle_energy_j = _integrate_levels(idle_power_levels, result.makespan_s)
        result.migrations = list(self.engine.migrations)
        result.peak_array_bytes = self.cluster.array_nbytes + self.engine.array_nbytes
        leftover = pending.drain_ids()
        result.unplaced.extend(leftover)
        if self._trace:
            for task_id in leftover:
                self._trace_unplaced(task_id, result.makespan_s, "queued_at_end")
        return result

    # ------------------------------------------------------------------ #
    # Placement / migration helpers
    # ------------------------------------------------------------------ #
    def _can_ever_fit(self, request: TaskRequest) -> bool:
        """Whether any node could host the request even when fully idle."""
        return self.cluster.fits_any_node_total(request.cores, request.memory_gib)

    def _admit(
        self,
        request: TaskRequest,
        time_s: float,
        pending: _PendingQueue,
        result: SimulationResult,
        elastic: bool,
    ) -> int:
        """Handle one arrival; returns 1 when it was rejected outright."""
        if not self._can_ever_fit(request):
            if elastic:
                # Queued with no placement attempt: not capacity-vetted,
                # so the incremental retry gate cannot be trusted.
                self._retry_full_gate = True
                pending.push(request)
            else:
                # No node's *total* resources suffice and the topology is
                # fixed: queueing would never help, so reject immediately
                # instead of waiting for a completion that cannot unblock
                # the request.
                result.unplaced.append(request.task_id)
                if self._trace:
                    self._trace_unplaced(request.task_id, time_s, "never_fits")
                return 1
        elif not self._try_place(request, time_s, result):
            if not self._retry_full_gate:
                # The scheduler's own feasibility pass just populated the
                # shape memo, so this re-check is a dict hit.
                cluster = self.cluster
                names = cluster._shape_feasibility.get(
                    (request.cores, request.memory_gib)
                )
                if names is None:
                    names = cluster.feasible_node_names(
                        request.cores, request.memory_gib
                    )
                if names:
                    # The scheduler declined a capacity-feasible placement
                    # (e.g. no learned model), so this entry is queued
                    # without being capacity-vetted.
                    self._retry_full_gate = True
            pending.push(request)
        return 0

    def _finish(
        self,
        placement: "Placement",
        task_id: str,
        time_s: float,
        result: SimulationResult,
    ) -> None:
        """Handle one (non-stale) completion event."""
        request = placement.request
        self._close_segment(placement, time_s, request)
        self._released_since_retry.add(placement.node)
        done = self.engine.complete(task_id, time_s)
        result.completed.append(
            CompletedTask(
                task_id,
                request.arrival_s,
                done.first_start_s,
                time_s,
                tuple(self._task_nodes.get(task_id, ())),
                done.energy_j,
                done.migrations,
            )
        )
        if self._trace:
            self._trace_completion(task_id, time_s, done.migrations)

    def _retry_pending(
        self,
        pending: _PendingQueue,
        time_s: float,
        result: SimulationResult,
        full: bool = False,
    ) -> None:
        """Retry queued requests that some node could actually host.

        Two gating modes decide which queued shapes may surface, with
        bit-identical decisions:

        * **Full** -- every distinct queued shape gated at once by one
          vectorised comparison against the whole capacity table.  Used
          for the first pass, after topology changes, and whenever the
          vetted invariant below cannot be assumed.
        * **Incremental** -- between two retry passes capacity only
          *shrinks*, except on the nodes logged in
          ``_released_since_retry`` (completion hosts and migration
          sources).  Every queued entry was capacity-vetted infeasible
          either when it was queued (its arrival placement attempt
          failed) or at the previous pass end, so only a released node
          can have made its shape feasible again -- the gate is a
          handful of exact Python float comparisons against the live
          capacity mirror (which holds the very values the numpy columns
          do), with no vectorised pass at all.

        Requests surface oldest-first across the feasible shapes' FIFO
        buckets via a heap of (head seq, shape) pairs.  Each successful
        placement shrinks capacity, so a shape is re-verified before each
        surfaced request.  A scheduler that declines a capacity-feasible
        placement leaves unvetted entries queued; that flips
        ``_retry_full_gate`` so the next pass uses the full gate again.
        """
        if not len(pending):
            return
        cluster = self.cluster
        prev_capacity = cluster._prev_capacity
        incremental = not (full or self._retry_full_gate)
        if incremental:
            # Compact working set: only shapes a released node fits are
            # carried through the pass (usually one shape out of a dozen
            # queued); everything else stays vetted-infeasible untouched.
            # Shape order may vary with set iteration, but outcomes never
            # depend on it: surfacing is ordered by the globally unique
            # entry sequence numbers alone.
            shapes: List[Tuple[int, float]] = []
            supporters: List[List[str]] = []
            slot_of: Dict[Tuple[int, float], int] = {}
            shapes_all = pending.shapes()
            for name in self._released_since_retry:
                cap = prev_capacity.get(name)
                if cap is None:
                    continue  # released node has since left the cluster
                free_cores = cap[0]
                free_memory = cap[1]
                for shape in shapes_all:
                    if free_cores >= shape[0] and free_memory >= shape[1]:
                        slot = slot_of.get(shape)
                        if slot is None:
                            slot_of[shape] = len(shapes)
                            shapes.append(shape)
                            supporters.append([name])
                        else:
                            supporters[slot].append(name)
            if not shapes:
                # Nothing became feasible: the no-op pass still
                # re-establishes the vetted invariant.
                self._released_since_retry.clear()
                return
            feasible = [True] * len(shapes)
            ok = None
            support = None
            row_names = None
            row_of = None
        else:
            shapes, cores_arr, memory_arr = pending.shape_arrays()
            ok = cluster.feasible_shape_matrix(cores_arr, memory_arr)
            support = ok.sum(axis=1).tolist()
            feasible = [count > 0 for count in support]
            supporters = []
            row_names = cluster._row_names
            row_of = cluster._row_of
        buckets = [pending.bucket(shape) for shape in shapes]
        pointers = [0] * len(shapes)
        placed: Dict[Tuple[int, float], set] = {}
        # Oldest-first across the feasible shapes' FIFO buckets: a small
        # heap of (head seq, shape index) pairs replaces a per-pick scan
        # over every shape, so each surfaced request costs O(log shapes).
        heads = [
            (bucket[0][0], index)
            for index, bucket in enumerate(buckets)
            if feasible[index] and bucket
        ]
        heapq.heapify(heads)
        heappush = heapq.heappush
        heappop = heapq.heappop
        # Capacity only shrinks inside one retry pass (placements reserve,
        # nothing releases), and only on the rows placements landed on --
        # so a shape gated feasible at pass start stays feasible unless
        # every supporting row is among the placed-on rows and none of
        # them still fits.  That re-verification is a handful of exact
        # Python float comparisons against the capacity mirror,
        # bit-identical to re-gating every shape after every placement.
        placed_rows: List[int] = []
        while heads:
            best_seq, best = heappop(heads)
            if incremental:
                # The mirror is live, so checking the shape's supporters
                # is always current; non-supporters cannot fit (they did
                # not fit at pass start and capacity only shrinks here).
                cores, memory_gib = shapes[best]
                alive = False
                for name in supporters[best]:
                    cap = prev_capacity.get(name)
                    if cap is not None and cap[0] >= cores and cap[1] >= memory_gib:
                        alive = True
                        break
                if not alive:
                    feasible[best] = False
                    continue
            elif placed_rows:
                cores, memory_gib = shapes[best]
                shape_row = ok[best]
                touched = 0
                alive = False
                for row in placed_rows:
                    if shape_row[row]:
                        touched += 1
                        if not alive:
                            free_cores, free_memory, _ = prev_capacity[row_names[row]]
                            if free_cores >= cores and free_memory >= memory_gib:
                                alive = True
                if touched and not alive and support[best] <= touched:
                    feasible[best] = False
                    continue
            bucket = buckets[best]
            pointer = pointers[best]
            request = bucket[pointer][1]
            pointer += 1
            pointers[best] = pointer
            if pointer < len(bucket):
                heappush(heads, (bucket[pointer][0], best))
            placed_on = self._try_place(request, time_s, result)
            if placed_on:
                placed.setdefault(shapes[best], set()).add(best_seq)
                if not incremental:
                    row = row_of[placed_on]
                    if row not in placed_rows:
                        placed_rows.append(row)
            elif self._trace:
                # Surfaced from the retry gate but still not placeable: one
                # more requeue (annotation only; the entry stays queued and
                # the scan moves on to the next-oldest surfaced request).
                self._t_requeues[request.task_id] = (
                    self._t_requeues.get(request.task_id, 0) + 1
                )
        # The pass end re-establishes the vetted invariant: every shape
        # still queued was gated or marked infeasible above -- unless a
        # scheduler declined a capacity-feasible placement, in which case
        # its entries remain with the shape still feasible and the next
        # pass must use the full gate.  (Checked before ``remove``, which
        # may replace bucket list objects.)
        full_gate_next = False
        for index, bucket in enumerate(buckets):
            if feasible[index]:
                shape_placed = placed.get(shapes[index])
                if len(bucket) > (len(shape_placed) if shape_placed else 0):
                    full_gate_next = True
                    break
        self._retry_full_gate = full_gate_next
        if self._released_since_retry:
            self._released_since_retry.clear()
        if placed:
            pending.remove(placed)

    def _try_place(
        self, request: TaskRequest, time_s: float, result: SimulationResult
    ) -> Optional[str]:
        """Place one request now; returns the host node's name, or None."""
        node_name = self.scheduler.place(request, self.cluster, time_s)
        if node_name is None:
            return None
        node = self.cluster._nodes.get(node_name)
        if node is None:
            node = self.cluster.node(node_name)  # raises the standard KeyError
        # can_host inlined (same comparisons): one call saved per placement.
        if not (
            request.cores <= node._free_cores
            and request.memory_gib <= node._free_memory
        ):
            return None
        placement = self.engine.instantiate(request, node_name, time_s)
        placement.set_segment(time_s, node_name)
        self._task_nodes.setdefault(request.task_id, []).append(node_name)
        if self._trace:
            self._trace_placement(request.task_id, node_name, time_s)
        version = placement.bump_completion_version()
        self._push(placement.expected_finish_s, self._COMPLETION, (request.task_id, version))
        return node_name

    def _apply_rescheduling(self, time_s: float) -> None:
        decisions = self.scheduler.reschedule(self.engine.running, self.cluster, time_s)
        for task_id, target in decisions:
            placement = self.engine.get(task_id)
            if placement is None:
                continue
            request = placement.request
            self._close_segment(placement, time_s, request)
            try:
                event = self.engine.migrate(task_id, target, time_s)
            except (ValueError, KeyError):
                # Target filled up since the decision was computed; skip.
                placement.set_segment(time_s, placement.node)
                continue
            # The source node's capacity grew; the next completion-driven
            # retry pass must consider it even though no pass runs now.
            self._released_since_retry.add(event.source)
            placement.set_segment(event.time_s + event.downtime_s, target)
            if self._trace:
                self._trace_migration(
                    task_id, event.source, event.target, time_s, event.downtime_s
                )
            version = placement.bump_completion_version()
            self._push(placement.expected_finish_s, self._COMPLETION, (task_id, version))


def run_policy_comparison(
    cluster_factory,
    scheduler_factory_map: Dict[str, object],
    requests: Sequence[TaskRequest],
) -> Dict[str, SimulationResult]:
    """Run the same request stream under several policies on fresh clusters.

    ``cluster_factory`` builds a fresh cluster per policy (node state is
    mutable); ``scheduler_factory_map`` maps a policy name to a callable
    taking the fresh cluster and returning a scheduler instance.
    """
    results: Dict[str, SimulationResult] = {}
    for name, factory in scheduler_factory_map.items():
        cluster = cluster_factory()
        scheduler = factory(cluster)
        simulator = ClusterSimulator(cluster, scheduler)
        results[name] = simulator.run(requests)
    return results
