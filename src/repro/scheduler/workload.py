"""Task requests and workload generation for the scheduler experiments.

A :class:`TaskRequest` is what a HEATS customer submits: resource demands
(cores, memory), the work to do (a workload kind and amount), and the
energy/performance trade-off weight the customer asks for (0 = pure
performance, 1 = pure energy saving).  The :class:`WorkloadGenerator`
produces reproducible synthetic arrival streams mixing the application
classes the paper's use cases represent (ML inference, analytics, streaming,
crypto for the secure IoT gateway, and scalar service tasks).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.microserver import WorkloadKind


@dataclass(frozen=True)
class TaskRequest:
    """One schedulable request submitted to the cluster.

    ``tenant`` identifies the serving customer the request belongs to (None
    for anonymous benchmark streams); the federation layer uses it to keep
    a tenant's traffic on its affinity shard so per-shard prediction-score
    caches stay hot.
    """

    task_id: str
    arrival_s: float
    workload: WorkloadKind
    gops: float
    cores: int
    memory_gib: float
    energy_weight: float = 0.5
    deadline_s: Optional[float] = None
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError("arrival time must be non-negative")
        if self.gops <= 0:
            raise ValueError("work must be positive")
        if self.cores <= 0 or self.memory_gib <= 0:
            raise ValueError("resource demands must be positive")
        if not (0.0 <= self.energy_weight <= 1.0):
            raise ValueError("energy weight must be within [0, 1]")
        if self.deadline_s is not None and self.deadline_s <= self.arrival_s:
            raise ValueError("deadline must be after arrival")


@dataclass(frozen=True)
class WorkloadMix:
    """Relative frequency of each workload kind in a generated stream."""

    weights: Mapping[WorkloadKind, float]

    def __post_init__(self) -> None:
        if not self.weights:
            raise ValueError("workload mix must contain at least one kind")
        if any(weight < 0 for weight in self.weights.values()):
            raise ValueError("mix weights must be non-negative")
        if sum(self.weights.values()) <= 0:
            raise ValueError("mix weights must not all be zero")

    @staticmethod
    def cloud_default() -> "WorkloadMix":
        """A cloud-style blend: mostly scalar services plus analytics and ML."""
        return WorkloadMix(
            {
                WorkloadKind.SCALAR: 0.35,
                WorkloadKind.DATA_PARALLEL: 0.25,
                WorkloadKind.DNN_INFERENCE: 0.2,
                WorkloadKind.STREAMING: 0.1,
                WorkloadKind.CRYPTO: 0.05,
                WorkloadKind.MEMORY_BOUND: 0.05,
            }
        )

    @staticmethod
    def ml_heavy() -> "WorkloadMix":
        return WorkloadMix(
            {
                WorkloadKind.DNN_INFERENCE: 0.6,
                WorkloadKind.DATA_PARALLEL: 0.3,
                WorkloadKind.SCALAR: 0.1,
            }
        )

    def kinds_and_probabilities(self) -> Tuple[List[WorkloadKind], np.ndarray]:
        kinds = list(self.weights.keys())
        probabilities = np.array([self.weights[k] for k in kinds], dtype=float)
        return kinds, probabilities / probabilities.sum()


#: per-workload (gops_low, gops_high, cores_low, cores_high, mem_low, mem_high)
_TASK_SHAPES: Dict[WorkloadKind, Tuple[float, float, int, int, float, float]] = {
    WorkloadKind.SCALAR: (20.0, 200.0, 1, 2, 0.5, 2.0),
    WorkloadKind.DATA_PARALLEL: (200.0, 2000.0, 2, 8, 1.0, 8.0),
    WorkloadKind.DNN_INFERENCE: (300.0, 3000.0, 2, 4, 1.0, 6.0),
    WorkloadKind.STREAMING: (100.0, 1500.0, 1, 4, 0.5, 4.0),
    WorkloadKind.CRYPTO: (50.0, 500.0, 1, 2, 0.5, 1.0),
    WorkloadKind.MEMORY_BOUND: (50.0, 600.0, 1, 4, 2.0, 12.0),
}


class WorkloadGenerator:
    """Reproducible synthetic arrival streams."""

    def __init__(
        self,
        mix: Optional[WorkloadMix] = None,
        mean_interarrival_s: float = 5.0,
        energy_weight: float = 0.5,
        seed: int = 2020,
    ) -> None:
        if mean_interarrival_s <= 0:
            raise ValueError("mean inter-arrival time must be positive")
        if not (0.0 <= energy_weight <= 1.0):
            raise ValueError("energy weight must be within [0, 1]")
        self.mix = mix if mix is not None else WorkloadMix.cloud_default()
        self.mean_interarrival_s = mean_interarrival_s
        self.energy_weight = energy_weight
        self.rng = np.random.default_rng(seed)
        self._ids = itertools.count()

    def generate(self, count: int) -> List[TaskRequest]:
        """Generate ``count`` requests with Poisson arrivals."""
        if count <= 0:
            raise ValueError("request count must be positive")
        kinds, probabilities = self.mix.kinds_and_probabilities()
        requests: List[TaskRequest] = []
        time_s = 0.0
        for _ in range(count):
            time_s += float(self.rng.exponential(self.mean_interarrival_s))
            kind = kinds[int(self.rng.choice(len(kinds), p=probabilities))]
            gops_low, gops_high, cores_low, cores_high, mem_low, mem_high = _TASK_SHAPES[kind]
            gops = float(self.rng.uniform(gops_low, gops_high))
            cores = int(self.rng.integers(cores_low, cores_high + 1))
            memory = float(self.rng.uniform(mem_low, mem_high))
            requests.append(
                TaskRequest(
                    task_id=f"task-{next(self._ids)}",
                    arrival_s=time_s,
                    workload=kind,
                    gops=gops,
                    cores=cores,
                    memory_gib=round(memory, 2),
                    energy_weight=self.energy_weight,
                )
            )
        return requests

    def generate_batch_at(self, count: int, arrival_s: float = 0.0) -> List[TaskRequest]:
        """Generate ``count`` requests all arriving at the same instant."""
        requests = self.generate(count)
        return [
            TaskRequest(
                task_id=request.task_id,
                arrival_s=arrival_s,
                workload=request.workload,
                gops=request.gops,
                cores=request.cores,
                memory_gib=request.memory_gib,
                energy_weight=request.energy_weight,
                tenant=request.tenant,
            )
            for request in requests
        ]
