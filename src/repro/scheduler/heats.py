"""The HEATS scheduling algorithm (paper Section V).

For every pending task HEATS:

1. identifies the task's resource requirements (cores, memory) and the nodes
   with enough availability (reported by monitoring),
2. uses the learned models to estimate the task's performance and energy on
   each candidate node (the profiling/estimation phase),
3. computes a score per node by normalising the predictions and weighting
   them by the customer's energy/performance ratio,
4. deploys the task on the best-fitting node.

Every ``rescheduling_interval_s`` the same evaluation re-runs for all running
tasks; when a better fit than the current host is found (by more than a
hysteresis margin, so marginal improvements do not cause migration churn),
the task is migrated to the new host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Protocol, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.registry import MetricsRegistry

from repro.scheduler.cluster import Cluster, ClusterNode
from repro.scheduler.modeling import PredictionModelSet, ProfilingCampaign
from repro.scheduler.monitoring import ClusterMonitor
from repro.scheduler.placement import Placement, PlacementEngine
from repro.scheduler.workload import TaskRequest


@dataclass(frozen=True)
class HeatsConfig:
    """Tunables of the HEATS policy."""

    rescheduling_interval_s: float = 60.0
    migration_improvement_threshold: float = 0.15
    default_energy_weight: float = 0.5

    def __post_init__(self) -> None:
        if self.rescheduling_interval_s <= 0:
            raise ValueError("rescheduling interval must be positive")
        if not (0.0 <= self.migration_improvement_threshold < 1.0):
            raise ValueError("migration threshold must be in [0, 1)")
        if not (0.0 <= self.default_energy_weight <= 1.0):
            raise ValueError("energy weight must be in [0, 1]")


@dataclass(frozen=True)
class NodeScore:
    """Score breakdown for one candidate node (lower is better)."""

    node: str
    predicted_time_s: float
    predicted_energy_j: float
    normalised_time: float
    normalised_energy: float
    score: float


class ScoreCacheProtocol(Protocol):
    """What the scheduler needs from a prediction-score cache.

    Implemented by :class:`repro.serving.cache.PredictionScoreCache`; kept
    as a protocol so the scheduler does not depend on the serving layer.
    """

    def key_for(
        self, request: TaskRequest, candidate_names: Sequence[str], energy_weight: float
    ) -> object:
        ...

    def get(self, key: object) -> Optional[Tuple[NodeScore, ...]]:
        ...

    def put(self, key: object, scores: Sequence[NodeScore]) -> None:
        ...


class HeatsScheduler:
    """Heterogeneity- and energy-aware scheduler."""

    name = "heats"
    supports_rescheduling = True

    def __init__(
        self,
        models: PredictionModelSet,
        config: Optional[HeatsConfig] = None,
        score_cache: Optional[ScoreCacheProtocol] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.models = models
        self.config = config if config is not None else HeatsConfig()
        self.score_cache = score_cache
        # Placement instruments are bound once; shard schedulers sharing a
        # registry aggregate into the same pair of instruments.
        if metrics is not None:
            self._m_place_calls = metrics.counter("heats.place_calls")
            self._m_candidates = metrics.histogram("heats.candidates")
        else:
            self._m_place_calls = None
            self._m_candidates = None

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    def score_candidates(
        self,
        request: TaskRequest,
        candidates: Sequence[ClusterNode],
        energy_weight: Optional[float] = None,
    ) -> List[NodeScore]:
        """Score all candidate nodes for one request, best (lowest) first.

        When a score cache is attached, the ranked list is memoised under a
        (task kind, resource shape, candidate set) key so repeated serving
        traffic skips the per-node model predictions.
        """
        if not candidates:
            return []
        weight = request.energy_weight if energy_weight is None else energy_weight
        cache_key: Optional[object] = None
        if self.score_cache is not None:
            cache_key = self.score_cache.key_for(
                request, [node.name for node in candidates], weight
            )
            cached = self.score_cache.get(cache_key)
            if cached is not None:
                return list(cached)
        predictions: List[Tuple[ClusterNode, float, float]] = []
        for node in candidates:
            if node.name not in self.models:
                continue
            time_s, energy_j = self.models.predict(node.name, request)
            predictions.append((node, time_s, energy_j))
        if not predictions:
            return []
        max_time = max(p[1] for p in predictions) or 1.0
        max_energy = max(p[2] for p in predictions) or 1.0
        scores: List[NodeScore] = []
        for node, time_s, energy_j in predictions:
            normalised_time = time_s / max_time
            normalised_energy = energy_j / max_energy
            score = (1.0 - weight) * normalised_time + weight * normalised_energy
            scores.append(
                NodeScore(
                    node=node.name,
                    predicted_time_s=time_s,
                    predicted_energy_j=energy_j,
                    normalised_time=normalised_time,
                    normalised_energy=normalised_energy,
                    score=score,
                )
            )
        scores.sort(key=lambda s: (s.score, s.node))
        if self.score_cache is not None and cache_key is not None:
            self.score_cache.put(cache_key, scores)
        return scores

    # ------------------------------------------------------------------ #
    # Scheduler interface used by the cluster simulator
    # ------------------------------------------------------------------ #
    def place(self, request: TaskRequest, cluster: Cluster, time_s: float) -> Optional[str]:
        """Pick a node for a new request; None when nothing can host it now.

        Candidate discovery goes through the cluster's incrementally
        maintained free-capacity index (nodes bucketed by free cores,
        updated on every reserve/release), so a loaded cluster is not
        rescanned node-by-node per request -- the placement hot path the
        serving benchmarks exercise.

        Args:
            request: the task to place.
            cluster: the cluster to place into.
            time_s: simulation time of the placement attempt.

        Returns:
            The best-scoring feasible node's name, or None.
        """
        candidates = cluster.feasible_nodes(request.cores, request.memory_gib)
        if self._m_place_calls is not None:
            self._m_place_calls.inc()
            self._m_candidates.record(float(len(candidates)))
        scored = self.score_candidates(request, candidates)
        if not scored:
            return None
        return scored[0].node

    def reschedule(
        self,
        running: Sequence[Placement],
        cluster: Cluster,
        time_s: float,
    ) -> List[Tuple[str, str]]:
        """Return (task_id, target_node) migrations that improve the fit.

        A migration is proposed when the best alternative node scores better
        than the current host by more than the configured threshold.  The
        current host is always part of the comparison, scored on the
        *remaining* work, so short-remaining tasks naturally stay put.
        """
        migrations: List[Tuple[str, str]] = []
        for placement in running:
            request = placement.request
            current_node = cluster.node(placement.node)
            candidates = cluster.feasible_nodes(request.cores, request.memory_gib)
            if current_node not in candidates:
                candidates = list(candidates) + [current_node]
            scored = self.score_candidates(request, candidates)
            if not scored:
                continue
            current_score = next((s for s in scored if s.node == placement.node), None)
            best = scored[0]
            if current_score is None or best.node == placement.node:
                continue
            improvement = current_score.score - best.score
            if improvement > self.config.migration_improvement_threshold:
                migrations.append((request.task_id, best.node))
        return migrations

    # ------------------------------------------------------------------ #
    # Convenience constructor
    # ------------------------------------------------------------------ #
    @classmethod
    def with_learned_models(
        cls,
        cluster: Cluster,
        config: Optional[HeatsConfig] = None,
        noise_fraction: float = 0.05,
        seed: int = 7,
        score_cache: Optional[ScoreCacheProtocol] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> "HeatsScheduler":
        """Run the profiling campaign on the cluster and build the scheduler."""
        campaign = ProfilingCampaign(cluster, noise_fraction=noise_fraction, seed=seed).run()
        return cls(
            models=campaign.fit(),
            config=config,
            score_cache=score_cache,
            metrics=metrics,
        )
