"""The HEATS scheduling algorithm (paper Section V).

For every pending task HEATS:

1. identifies the task's resource requirements (cores, memory) and the nodes
   with enough availability (reported by monitoring),
2. uses the learned models to estimate the task's performance and energy on
   each candidate node (the profiling/estimation phase),
3. computes a score per node by normalising the predictions and weighting
   them by the customer's energy/performance ratio,
4. deploys the task on the best-fitting node.

Every ``rescheduling_interval_s`` the same evaluation re-runs for all running
tasks; when a better fit than the current host is found (by more than a
hysteresis margin, so marginal improvements do not cause migration churn),
the task is migrated to the new host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.registry import MetricsRegistry

from repro.scheduler.cluster import Cluster, ClusterNode
from repro.scheduler.modeling import PredictionModelSet, ProfilingCampaign
from repro.scheduler.monitoring import ClusterMonitor
from repro.scheduler.placement import Placement, PlacementEngine
from repro.scheduler.workload import TaskRequest


@dataclass(frozen=True)
class HeatsConfig:
    """Tunables of the HEATS policy."""

    rescheduling_interval_s: float = 60.0
    migration_improvement_threshold: float = 0.15
    default_energy_weight: float = 0.5

    def __post_init__(self) -> None:
        if self.rescheduling_interval_s <= 0:
            raise ValueError("rescheduling interval must be positive")
        if not (0.0 <= self.migration_improvement_threshold < 1.0):
            raise ValueError("migration threshold must be in [0, 1)")
        if not (0.0 <= self.default_energy_weight <= 1.0):
            raise ValueError("energy weight must be in [0, 1]")


class NodeScore(NamedTuple):
    """Score breakdown for one candidate node (lower is better).

    A named tuple rather than a (frozen) dataclass: the scoring hot path
    constructs one per (request, candidate) model prediction, and tuple
    construction skips the per-field ``object.__setattr__`` a frozen
    dataclass pays.  Field access and ordering semantics are unchanged
    for every consumer (all read attributes).
    """

    node: str
    predicted_time_s: float
    predicted_energy_j: float
    normalised_time: float
    normalised_energy: float
    score: float


class ScoreCacheProtocol(Protocol):
    """What the scheduler needs from a prediction-score cache.

    Implemented by :class:`repro.serving.cache.PredictionScoreCache`; kept
    as a protocol so the scheduler does not depend on the serving layer.
    """

    def key_for(
        self, request: TaskRequest, candidate_names: Sequence[str], energy_weight: float
    ) -> object:
        ...

    def get(self, key: object) -> Optional[Tuple[NodeScore, ...]]:
        ...

    def put(self, key: object, scores: Sequence[NodeScore]) -> None:
        ...


class HeatsScheduler:
    """Heterogeneity- and energy-aware scheduler."""

    name = "heats"
    supports_rescheduling = True

    def __init__(
        self,
        models: PredictionModelSet,
        config: Optional[HeatsConfig] = None,
        score_cache: Optional[ScoreCacheProtocol] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.models = models
        self.config = config if config is not None else HeatsConfig()
        self.score_cache = score_cache
        # Placement instruments are bound once; shard schedulers sharing a
        # registry aggregate into the same pair of instruments.
        if metrics is not None:
            self._m_place_calls = metrics.counter("heats.place_calls")
            self._m_candidates = metrics.histogram("heats.candidates")
        else:
            self._m_place_calls = None
            self._m_candidates = None

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    def _score_names(
        self,
        request: TaskRequest,
        names: Sequence[str],
        energy_weight: Optional[float] = None,
    ) -> Sequence[NodeScore]:
        """Score candidate node *names* for one request, best (lowest) first.

        The name-based core of scoring: the model set predicts by node
        name, so the hot placement path never needs node objects at all --
        candidates arrive straight from the cluster's vectorised
        feasibility pass.  When a score cache is attached, the ranked list
        is memoised under a (task kind, resource shape, candidate set)
        key so repeated serving traffic skips the per-node model
        predictions; a hit returns the cached tuple itself (callers must
        not mutate it).
        """
        if not names:
            return ()
        weight = request.energy_weight if energy_weight is None else energy_weight
        cache_key: Optional[object] = None
        if self.score_cache is not None:
            cache_key = self.score_cache.key_for(request, names, weight)
            cached = self.score_cache.get(cache_key)
            if cached is not None:
                return cached
        # One flat-dict entry per candidate replaces the per-model map
        # lookups; the arithmetic mirrors NodeModel.predict_pair exactly
        # (same operation order, so identical floats).
        flat = self.models.flat_for(request.workload)
        gops = request.gops
        req_cores = request.cores
        predictions: List[Tuple[str, float, float]] = []
        max_time = 0.0
        max_energy = 0.0
        for name in names:
            entry = flat.get(name)
            if entry is None:
                if self.models.get(name) is None:
                    continue
                raise KeyError(
                    f"node {name} has no learned model for workload "
                    f"{request.workload.value}"
                )
            per_gop, slope, intercept, node_cores = entry
            share = req_cores / node_cores
            if share > 1.0:
                share = 1.0
            elif share <= 0:
                raise ValueError("core share must be positive")
            time_s = per_gop * gops / share
            energy_j = slope * gops + intercept
            if energy_j < 0.0:
                energy_j = 0.0
            if time_s > max_time:
                max_time = time_s
            if energy_j > max_energy:
                max_energy = energy_j
            predictions.append((name, time_s, energy_j))
        if not predictions:
            return ()
        max_time = max_time or 1.0
        max_energy = max_energy or 1.0
        time_weight = 1.0 - weight
        scores: List[NodeScore] = []
        append = scores.append
        for name, time_s, energy_j in predictions:
            normalised_time = time_s / max_time
            normalised_energy = energy_j / max_energy
            append(
                NodeScore(
                    name,
                    time_s,
                    energy_j,
                    normalised_time,
                    normalised_energy,
                    time_weight * normalised_time + weight * normalised_energy,
                )
            )
        scores.sort(key=lambda s: (s.score, s.node))
        if cache_key is not None:
            self.score_cache.put(cache_key, scores)
        return scores

    def score_candidates(
        self,
        request: TaskRequest,
        candidates: Sequence[ClusterNode],
        energy_weight: Optional[float] = None,
    ) -> List[NodeScore]:
        """Score all candidate nodes for one request, best (lowest) first.

        Object-based convenience over :meth:`_score_names` (the reschedule
        path and external callers hold node objects).
        """
        return list(
            self._score_names(
                request, [node.name for node in candidates], energy_weight
            )
        )

    # ------------------------------------------------------------------ #
    # Scheduler interface used by the cluster simulator
    # ------------------------------------------------------------------ #
    def place(self, request: TaskRequest, cluster: Cluster, time_s: float) -> Optional[str]:
        """Pick a node for a new request; None when nothing can host it now.

        Candidate discovery is one vectorised comparison against the
        cluster's structured capacity table (free cores and memory live in
        numpy columns), returning candidate *names* directly -- the
        placement hot path the serving benchmarks exercise never touches a
        node object.

        Args:
            request: the task to place.
            cluster: the cluster to place into.
            time_s: simulation time of the placement attempt.

        Returns:
            The best-scoring feasible node's name, or None.
        """
        # Inline hit on the cluster's per-shape feasibility memo (the
        # dominant case on serving traffic: a handful of distinct request
        # shapes between capacity changes); misses fall through to the
        # vectorised pass, which populates it.
        names = cluster._shape_feasibility.get((request.cores, request.memory_gib))
        if names is None:
            names = cluster.feasible_node_names(request.cores, request.memory_gib)
        if self._m_place_calls is not None:
            self._m_place_calls.inc()
            self._m_candidates.record(float(len(names)))
        if not names:
            return None
        scored = self._score_names(request, names)
        if not scored:
            return None
        return scored[0].node

    def reschedule(
        self,
        running: Sequence[Placement],
        cluster: Cluster,
        time_s: float,
    ) -> List[Tuple[str, str]]:
        """Return (task_id, target_node) migrations that improve the fit.

        A migration is proposed when the best alternative node scores better
        than the current host by more than the configured threshold.  The
        current host is always part of the comparison, scored on the
        *remaining* work, so short-remaining tasks naturally stay put.
        """
        migrations: List[Tuple[str, str]] = []
        for placement in running:
            request = placement.request
            current_node = cluster.node(placement.node)
            candidates = cluster.feasible_nodes(request.cores, request.memory_gib)
            if current_node not in candidates:
                candidates = list(candidates) + [current_node]
            scored = self.score_candidates(request, candidates)
            if not scored:
                continue
            current_score = next((s for s in scored if s.node == placement.node), None)
            best = scored[0]
            if current_score is None or best.node == placement.node:
                continue
            improvement = current_score.score - best.score
            if improvement > self.config.migration_improvement_threshold:
                migrations.append((request.task_id, best.node))
        return migrations

    # ------------------------------------------------------------------ #
    # Convenience constructor
    # ------------------------------------------------------------------ #
    @classmethod
    def with_learned_models(
        cls,
        cluster: Cluster,
        config: Optional[HeatsConfig] = None,
        noise_fraction: float = 0.05,
        seed: int = 7,
        score_cache: Optional[ScoreCacheProtocol] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> "HeatsScheduler":
        """Run the profiling campaign on the cluster and build the scheduler."""
        campaign = ProfilingCampaign(cluster, noise_fraction=noise_fraction, seed=seed).run()
        return cls(
            models=campaign.fit(),
            config=config,
            score_cache=score_cache,
            metrics=metrics,
        )
