"""HEATS: the heterogeneity- and energy-aware task scheduler (Section V).

HEATS lets customers trade performance against energy.  Its architecture
(paper Fig. 7) has four interacting components, all reproduced here:

* **Monitoring** -- resource availability (Heapster-style) and energy
  metering (PDU, PowerSpy) per cluster node
  (:mod:`repro.scheduler.monitoring`).
* **Modeling** -- a learning phase that profiles workloads on the physical
  hosts and fits performance/energy prediction models
  (:mod:`repro.scheduler.modeling`).
* **Scheduling** -- scoring candidate nodes by normalising the predictions
  and weighting them with the customer's energy/performance trade-off,
  then picking the best fitting node (:mod:`repro.scheduler.heats`).
* **Placement / migration** -- instantiating tasks on nodes and migrating
  them when periodic re-scheduling finds a better fit
  (:mod:`repro.scheduler.placement`).

Baseline schedulers (round-robin, performance-only best fit, energy-greedy)
and a discrete-event cluster simulator are included so the Fig. 7 behavioural
benchmark can compare HEATS against them.
"""

from repro.scheduler.cluster import Cluster, ClusterNode, NodeResources
from repro.scheduler.workload import TaskRequest, WorkloadGenerator, WorkloadMix
from repro.scheduler.monitoring import ClusterMonitor, NodeTelemetry
from repro.scheduler.modeling import NodeModel, ProfilingCampaign, PredictionModelSet
from repro.scheduler.placement import Placement, PlacementEngine, MigrationEvent
from repro.scheduler.heats import HeatsScheduler, HeatsConfig, NodeScore
from repro.scheduler.baselines import (
    EnergyGreedyScheduler,
    PerformanceBestFitScheduler,
    RoundRobinScheduler,
)
from repro.scheduler.simulation import (
    ClusterSimulator,
    SimulationResult,
    run_policy_comparison,
)

__all__ = [
    "Cluster",
    "ClusterNode",
    "NodeResources",
    "TaskRequest",
    "WorkloadGenerator",
    "WorkloadMix",
    "ClusterMonitor",
    "NodeTelemetry",
    "NodeModel",
    "ProfilingCampaign",
    "PredictionModelSet",
    "Placement",
    "PlacementEngine",
    "MigrationEvent",
    "HeatsScheduler",
    "HeatsConfig",
    "NodeScore",
    "RoundRobinScheduler",
    "PerformanceBestFitScheduler",
    "EnergyGreedyScheduler",
    "ClusterSimulator",
    "SimulationResult",
    "run_policy_comparison",
]
